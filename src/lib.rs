#![warn(missing_docs)]

//! # bitlevel
//!
//! Workspace facade for the reproduction of **Shang & Wah, "Dependence
//! Analysis and Architecture Design for Bit-Level Algorithms" (ICPP 1993)**.
//!
//! The paper's contribution and every substrate it relies on are implemented
//! as separate crates, all re-exported here:
//!
//! | crate | contents |
//! |---|---|
//! | [`linalg`] | exact integer linear algebra (rank, HNF, Smith, Diophantine) |
//! | [`ir`] | loop-nest IR: index sets, predicates, dependence structures, broadcast elimination, the word-level model (3.5) |
//! | [`arith`] | add-shift / carry-save multipliers, ripple adders — structures **and** bit-exact functional models |
//! | [`depanal`] | Theorem 3.1 compositional analysis, algorithm expansion, and the general baselines (exhaustive, Diophantine, GCD/Banerjee) |
//! | [`mapping`] | Definition 4.1: feasibility, `SD = PK` routing, conflicts, time-optimal schedule search, the Figs. 4–5 designs |
//! | [`systolic`] | cycle-accurate mapped-algorithm simulator, the bit-exact Expansion II matmul array, the word-level comparator |
//! | [`fault`] | deterministic fault injection ([`FaultPlan`]), ABFT checksum protection, and the exhaustive/Monte-Carlo campaign drivers |
//! | [`core`](mod@core_api) | the end-to-end [`DesignFlow`] pipeline and paper-style reports |
//! | [`serve`] | the long-running NDJSON evaluation service (`bitlevel-serve` binary) sharing one [`CompileCache`] across concurrent requests |
//!
//! Quickstart:
//!
//! ```
//! use bitlevel::{DesignFlow, PaperDesign};
//! let flow = DesignFlow::matmul(3, 3);
//! let fig4 = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
//! assert!(fig4.feasible);
//! assert_eq!(fig4.run.cycles, 13); // eq. (4.5): 3(u-1)+3(p-1)+1
//! ```

pub use bitlevel_arith as arith;
pub use bitlevel_cache as cache;
pub use bitlevel_core as core_api;
pub use bitlevel_depanal as depanal;
pub use bitlevel_fault as fault;
pub use bitlevel_ir as ir;
pub use bitlevel_linalg as linalg;
pub use bitlevel_mapping as mapping;
pub use bitlevel_serve as serve;
pub use bitlevel_systolic as systolic;

pub use bitlevel_core::{
    batched_single_fault_campaign, check_feasibility, compare_analyses, compose, expand, explore,
    find_optimal_schedule, generate_space_family, monte_carlo_campaign,
    monte_carlo_campaign_with_cache, partitioned_single_fault_campaign, render_architecture,
    render_frontier, render_matmul_comparison, render_structure, render_trace_summary,
    run_clocked_compiled, schedule_key, simulate_mapped, simulate_mapped_compiled,
    single_fault_campaign, single_fault_campaign_with_cache, AddShift, AlgorithmTriplet,
    ArchitectureReport, BackendConfigError, BackendUsed, BatchRunReport,
    BatchedFaultCampaignReport, BatchedFaultCase, BitMatmulArray, BoxSet, CacheActivity, CacheKey,
    CacheOutcome, CacheStats, CarrySave, CompileCache, CompiledSchedule, DesignFlow, Expansion,
    ExplorationReport, ExploreConfig, FaultCampaignReport, FaultKind, FaultOutcome, FaultPlan,
    Interconnect, MachineOption, MappingError, MappingMatrix, MonteCarloReport,
    MultiplierAlgorithm, NullSink, PaperDesign, PartitionError, PartitionStats,
    PartitionedCampaignReport, PartitionedSchedule, PersistError, RandomFault, RecordingSink,
    RippleAdder, SimBackend, TargetedFault, TraceConfig, TraceEvent, TraceRollup, TraceSink,
    VerifiedFrontierPoint, WordLevelAlgorithm, WordLevelArray, SCHEDULE_FORMAT_VERSION,
};
