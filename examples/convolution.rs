//! Bit-level design for a different workload: 1-D convolution.
//!
//! Section 3.2: the model (3.5) "can describe applications such as matrix
//! multiplication, convolution, matrix-vector multiplication, discrete
//! cosine transform, and discrete Fourier transform". This example walks the
//! same flow for convolution: Theorem 3.1 composition, validation against
//! exhaustive analysis of the expanded code, and an automatically *searched*
//! (not hand-designed) time-optimal schedule for a projected array.
//!
//! Run with: `cargo run --release --example convolution`

use bitlevel::depanal::{enumerate_dependences, expand, instances_of_triplet};
use bitlevel::ir::annotated_dependence_table;
use bitlevel::linalg::IMat;
use bitlevel::mapping::{find_optimal_schedule, processor_count, Interconnect};
use bitlevel::{compose, Expansion, WordLevelAlgorithm};

fn main() {
    // z(j1) = Σ_{j2} x(j1+j2-1)·w(j2): 8 outputs, 3 taps, 3-bit words.
    let (outputs, taps, p) = (8, 3, 3usize);
    let word = WordLevelAlgorithm::convolution(outputs, taps);
    println!(
        "word-level convolution: D_w =\n{}",
        word.dependence_matrix()
    );

    // Theorem 3.1 (Expansion I: the faster, more uniform expansion).
    let alg = compose(&word, p, Expansion::I);
    println!(
        "bit-level structure ({} index points):",
        alg.index_set.cardinality()
    );
    println!("{}", annotated_dependence_table(&alg));

    // Validate against ground truth on a smaller instance (exhaustive
    // analysis of the mechanically expanded code).
    let small = WordLevelAlgorithm::convolution(3, 2);
    let small_alg = compose(&small, 2, Expansion::I);
    let truth = enumerate_dependences(&expand(&small, 2, Expansion::I));
    assert_eq!(instances_of_triplet(&small_alg), truth);
    println!("Theorem 3.1 structure == exhaustive analysis of expanded code\n");

    // Design an array: project away the tap axis (j2) — PEs indexed by
    // (i1, i2) within a tap-parallel slice — and search for the best
    // schedule on a machine with unit links, the diagonal, a static link,
    // and a [0,2] double-hop budgeted route for c'.
    let s = IMat::from_rows(&[&[0, 1, 1, 0], &[0, 0, 0, 1]]);
    let ic = Interconnect::new(IMat::from_rows(&[
        &[0, 0, 1, -1, 1, 0],
        &[1, -1, 0, 0, -1, 0],
    ]));
    match find_optimal_schedule(&s, &alg, &ic, 3) {
        Some(best) => {
            println!("searched schedule: Pi = {}", best.pi);
            println!("total time (eq. 4.5 form): {} cycles", best.time);
            println!("processors: {}", processor_count(&s, &alg.index_set));
            println!(
                "({} feasible schedules among {} candidates)",
                best.feasible_count, best.examined
            );
        }
        None => println!("no feasible schedule within the bound for this S/P choice"),
    }
}
