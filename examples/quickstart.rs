//! Quickstart: the whole paper in one page.
//!
//! Derives the bit-level dependence structure of matrix multiplication
//! (Theorem 3.1), verifies the paper's time-optimal architecture (Theorem
//! 4.5 / Fig. 4), simulates it cycle-accurately, and checks it really
//! multiplies matrices through full-adder cells.
//!
//! Run with: `cargo run --example quickstart`

use bitlevel::{render_architecture, render_structure, DesignFlow, PaperDesign};

fn main() {
    // The paper's running example: u×u matrices of p-bit words, Expansion II.
    let (u, p) = (3, 3);
    let flow = DesignFlow::matmul(u, p);

    // Step 1+2: word-level algorithm -> bit-level dependence structure,
    // derived compositionally (no general dependence analysis).
    println!("{}", render_structure(&flow));

    // Step 3+4: the Fig. 4 time-optimal architecture — feasibility
    // (Definition 4.1), measured cycles vs eq. (4.5), processors, wiring.
    let fig4 = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
    println!("{}", render_architecture(&fig4));
    assert!(fig4.feasible);
    assert_eq!(fig4.run.cycles, 3 * (u - 1) + 3 * (p as i64 - 1) + 1);

    // The same structure on the nearest-neighbour machine (Fig. 5): slower,
    // but no long wires.
    let fig5 = flow.evaluate_paper_design(PaperDesign::NearestNeighbour);
    println!("{}", render_architecture(&fig5));
    assert!(fig5.run.cycles > fig4.run.cycles);

    // And the architecture actually computes: Z = X·Y, bit by bit.
    let verified_u = flow.verify_matmul_functionally();
    println!("functional check passed for {verified_u}x{verified_u} matrices of {p}-bit words");
}
