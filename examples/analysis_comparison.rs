//! The headline claim, measured: compositional bit-level dependence analysis
//! (Theorem 3.1) vs "time consuming general dependence analysis methods".
//!
//! For each instance the three routes are run and cross-checked:
//! 1. the closed-form composition (O(n), never touches the index set),
//! 2. exhaustive enumeration over the expanded bit-level code,
//! 3. the classical route: solve the linear Diophantine system per access
//!    pair, then verify solutions inside the index set.
//!
//! Run with: `cargo run --release --example analysis_comparison`

use bitlevel::compare_analyses;
use bitlevel::depanal::compare::summarize;
use bitlevel::{Expansion, WordLevelAlgorithm};

fn main() {
    println!("cross-checking and timing the three analysis routes\n");

    let instances: Vec<(WordLevelAlgorithm, usize)> = vec![
        (WordLevelAlgorithm::matmul(2), 2),
        (WordLevelAlgorithm::matmul(2), 3),
        (WordLevelAlgorithm::matmul(3), 2),
        (WordLevelAlgorithm::matmul(3), 3),
        (WordLevelAlgorithm::convolution(4, 3), 3),
        (WordLevelAlgorithm::matvec(4, 4), 3),
    ];

    let mut all_agree = true;
    for (word, p) in &instances {
        for expansion in [Expansion::I, Expansion::II] {
            let rep = compare_analyses(word, *p, expansion);
            all_agree &= rep.matches_enumeration && rep.diophantine_matches;
            println!("{}", summarize(&rep));
        }
    }

    assert!(all_agree, "a general method disagreed with Theorem 3.1");
    println!("\nall routes agree on every instance; the compositional route");
    println!("is orders of magnitude faster and its cost does not grow with |J|.");
}
