//! The arithmetic-algorithm catalogue of Section 3.1.
//!
//! "Since many word-level algorithms involve a limited number of word-level
//! arithmetic algorithms, the dependence structures of these algorithms need
//! to be derived only once." This example walks the whole catalogue —
//! add-shift multiplication, carry-save multiplication, ripple-carry
//! addition, carry-save compression, and non-restoring division — printing
//! each algorithm's dependence structure and proving its functional model
//! bit-exact on the spot.
//!
//! Run with: `cargo run --example arithmetic_catalogue`

use bitlevel::arith::{
    AddShift, BaughWooley, CarrySave, CarrySaveAdder, MultiplierAlgorithm, NonRestoringDivider,
    RippleAdder,
};

fn main() {
    let p = 4;

    println!("== add-shift multiplication (eqs. 3.1-3.4, Fig. 1) ==");
    let addshift = AddShift::new(p);
    println!("J_as = {}", AddShift::index_set(&addshift));
    println!("D_as =\n{}", AddShift::dependences(&addshift).matrix());
    println!(
        "word latency t_b = {} (O(p^2))",
        AddShift::word_latency(&addshift)
    );
    demo_multiplier(&addshift, p);
    // The documented deviation: the paper's literal boundary values drop
    // row-end carries.
    println!(
        "paper-literal 7x3 at p=3: {} (exact wiring: {})\n",
        AddShift::paper_literal(3).multiply(7, 3),
        AddShift::new(3).multiply(7, 3)
    );

    println!("== carry-save multiplication (Section 4.2's t_b = O(p)) ==");
    let carrysave = CarrySave::new(p);
    println!("D_cs =\n{}", CarrySave::dependences(&carrysave).matrix());
    println!(
        "word latency t_b = {} (O(p))",
        CarrySave::word_latency(&carrysave)
    );
    demo_multiplier(&carrysave, p);
    println!();

    println!("== ripple-carry addition (the deferred adder structure) ==");
    let adder = RippleAdder::new(p);
    println!("D_add = {}", adder.dependences().matrix());
    for (a, b) in [(9u128, 8u128), (15, 15), (0, 3)] {
        let s = adder.add(a, b);
        assert_eq!(s, a + b);
        println!("  {a} + {b} = {s} through the carry chain");
    }
    println!();

    println!("== carry-save (3:2) compression ==");
    let csa = CarrySaveAdder::new(p);
    let (s, c) = csa.compress(13, 11, 6);
    assert_eq!(s + 2 * c, 30);
    println!("  13 + 11 + 6 -> sum {s} + 2*carry {c} (one cell delay)\n");

    println!("== Baugh-Wooley signed multiplication (two's complement) ==");
    let bw = BaughWooley::new(p + 2);
    println!("same grid as carry-save (D identical), complemented sign row/column cells");
    for (a, b) in [(-17i128, 23i128), (-31, -31), (12, -5)] {
        let got = bw.multiply_signed(a, b);
        assert_eq!(got, a * b);
        println!("  {a} x {b} = {got} through the signed array");
    }
    println!();

    println!("== non-restoring division (the catalogue's division entry) ==");
    let div = NonRestoringDivider::new(p);
    println!("J_div = {}", div.index_set());
    println!(
        "D_div =\n{}",
        bitlevel::ir::annotated_dependence_table(&bitlevel::AlgorithmTriplet::new(
            div.index_set(),
            div.dependences(),
            "CAS array division"
        ))
    );
    for (n, d) in [(100u128, 7u128), (224, 15), (14, 15)] {
        let (q, r) = div.divide(n, d);
        assert_eq!((q, r), (n / d, n % d));
        println!("  {n} / {d} = {q} rem {r} through CAS rows");
    }
    println!("note the long conditional sign-feedback dependence: division");
    println!("arrays pipeline worse than multiplication arrays.");
}

fn demo_multiplier(m: &dyn MultiplierAlgorithm, p: usize) {
    let mask = (1u128 << p) - 1;
    for (a, b) in [(0xDu128 & mask, 0xBu128 & mask), (mask, mask), (1, 0)] {
        let got = m.multiply(a, b);
        assert_eq!(got, a * b);
        println!("  {a} x {b} = {got} through the {} array", m.name());
    }
}
