//! Fault campaign: how resilient are the paper's two architectures?
//!
//! Runs the E17 exhaustive single-fault sweep (every index point × every
//! signal bit, as a transient flip) on the Fig. 4 time-optimal and Fig. 5
//! nearest-neighbour designs, classifies every case through the ABFT
//! checksum planes (masked / detected / SDC), and renders the per-PE
//! vulnerability heat map comparing the two designs. Then reruns the same
//! sweep lane-packed — up to 64 fault cases per word-wide walk (E20) —
//! through the same compile cache, and checks it reaches the identical
//! verdicts with a fraction of the walks and zero extra compiles.
//!
//! Run with: `cargo run --example fault_campaign`

use bitlevel::systolic::render_fault_heatmap;
use bitlevel::{
    batched_single_fault_campaign, monte_carlo_campaign_with_cache, single_fault_campaign,
    single_fault_campaign_with_cache, CompileCache, PaperDesign,
};

fn main() {
    let (u, p, seed) = (2, 2, 0xE17);
    let cache = CompileCache::new();

    // Exhaustive sweep on both designs: every fault lands in exactly one
    // class, and on a single fault the checksum planes never miss (zero SDC).
    let fig4 = single_fault_campaign_with_cache(PaperDesign::TimeOptimal, u, p, seed, &cache);
    let fig5 = single_fault_campaign(PaperDesign::NearestNeighbour, u, p, seed);
    for r in [&fig4, &fig5] {
        println!(
            "{}: {} cases -> {} masked, {} detected, {} SDC ({} engine mismatches)",
            r.design, r.total, r.masked, r.detected, r.sdc, r.engine_mismatches
        );
        assert!(r.classifications_partition());
        assert_eq!(r.sdc, 0, "a single fault slipped past the ABFT planes");
        assert_eq!(r.engine_mismatches, 0);
    }

    // Which PEs are most vulnerable, and does the slower design trade
    // latency for a different fault profile?
    println!();
    println!(
        "{}",
        render_fault_heatmap(
            "Fig. 4",
            &fig4.vulnerability_map(),
            "Fig. 5",
            &fig5.vulnerability_map(),
            12
        )
    );

    // The same exhaustive sweep, lane-packed: 64 distinct fault cases ride
    // the bit-lanes of ONE schedule walk, so the whole campaign shrinks from
    // `total` walks to `ceil(total / 64)` — and because it shares the
    // compile cache with the scalar campaign above, the schedule is not
    // recompiled.
    println!();
    let batched = batched_single_fault_campaign(PaperDesign::TimeOptimal, u, p, seed, 64, &cache);
    println!(
        "lane-packed rerun: {} cases in {} walks of width {} -> {} masked, {} detected, {} SDC",
        batched.total, batched.walks, batched.width, batched.masked, batched.detected, batched.sdc
    );
    assert!(
        batched.matches_scalar(&fig4),
        "lane-packed campaign diverged from the scalar sweep"
    );
    assert_eq!(batched.vulnerability_map(), fig4.vulnerability_map());
    let stats = cache.stats();
    assert_eq!(
        stats.compiles(),
        1,
        "scalar + batched campaigns should share one compile"
    );
    println!(
        "compile cache: {} compile(s), {} hit(s) across both campaigns",
        stats.compiles(),
        stats.hits
    );

    // Seeded Monte Carlo with multiple simultaneous faults: cancellation mod
    // the checksum modulus is now possible, so SDCs are measured, not zero.
    let mc =
        monte_carlo_campaign_with_cache(PaperDesign::TimeOptimal, u, p, seed, 60, 0.02, &cache);
    println!(
        "Monte Carlo ({} trials, rate {}): {} masked, {} detected, {} SDC, {:.2} faults/trial",
        mc.trials, mc.rate, mc.masked, mc.detected, mc.sdc, mc.mean_injected
    );
    assert_eq!(mc.engine_mismatches, 0);
}
