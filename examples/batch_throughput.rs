//! The lane-packed batch engine, end to end: 64 independent matmul
//! instances in the bit-lanes of a `u64`, one compiled schedule walk per
//! word.
//!
//! Every signal in the paper's expanded bit-level arrays carries a single
//! bit, so the compiled backend's per-cycle bookkeeping is pure overhead
//! amortised over one payload bit per signal. `SimBackend::CompiledBatch`
//! packs up to 64 whole *problem instances* into each machine word instead:
//! the same walk, the same bookkeeping, 64 simulations. This example runs a
//! 64-instance batch through `DesignFlow::evaluate_batch` at widths 1 and
//! 64 on both paper designs, verifies every product against native
//! arithmetic, and prints the measured amortisation.
//!
//! Run with: `cargo run --release --example batch_throughput`

use bitlevel::{BitMatmulArray, DesignFlow, PaperDesign, SimBackend};
use std::time::Instant;

const INSTANCES: usize = 64;

fn main() {
    let (u, p) = (3usize, 4usize);
    let cap = BitMatmulArray::new(u, p).max_safe_entry();
    let mut state = 0x1CC7_1993u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as u128) % (cap + 1)
    };
    let mut mat =
        move || -> Vec<Vec<u128>> { (0..u).map(|_| (0..u).map(|_| next()).collect()).collect() };
    let xs: Vec<Vec<Vec<u128>>> = (0..INSTANCES).map(|_| mat()).collect();
    let ys: Vec<Vec<Vec<u128>>> = (0..INSTANCES).map(|_| mat()).collect();

    println!("batch of {INSTANCES} independent {u}x{u} matmuls, p = {p} bit words\n");
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let mut throughput = Vec::new();
        for width in [1usize, 64] {
            let flow =
                DesignFlow::matmul(u as i64, p).with_backend(SimBackend::CompiledBatch { width });
            let t0 = Instant::now();
            let report = flow.evaluate_batch(design, &xs, &ys);
            let secs = t0.elapsed().as_secs_f64();
            assert!(report.legal, "illegal run on {}", report.design);
            for (k, (x, y)) in xs.iter().zip(&ys).enumerate() {
                for i in 0..u {
                    for j in 0..u {
                        let want: u128 = (0..u).map(|l| x[i][l] * y[l][j]).sum();
                        assert_eq!(report.products[k][i][j], want, "lane {k} Z[{i}][{j}]");
                    }
                }
            }
            throughput.push(INSTANCES as f64 / secs);
            println!(
                "{}: width {:>2} -> {:>2} walk(s) of {} cycles, {:>10.0} instances/sec  [{}]",
                report.design,
                report.width,
                report.walks,
                report.cycles,
                INSTANCES as f64 / secs,
                report.backend_used,
            );
        }
        println!(
            "  word-parallel amortisation: {:.1}x\n",
            throughput[1] / throughput[0].max(f64::MIN_POSITIVE)
        );
    }
    println!("every product of every lane verified against native arithmetic.");
}
