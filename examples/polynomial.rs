//! Polynomial multiplication on a bit-level array.
//!
//! `c(x) = a(x)·b(x)` has the convolution structure of model (3.5); this
//! example synthesises the bit-level array for a (deg 4)×(deg 2) product,
//! runs it on the clocked RTL engine, and checks every output coefficient —
//! demonstrating that the whole flow (Theorem 3.1 → Definition 4.1 →
//! clocked simulation) is workload-generic, not matmul-specific.
//!
//! Run with: `cargo run --release --example polynomial`

use bitlevel::depanal::{compose, Expansion};
use bitlevel::linalg::IMat;
use bitlevel::mapping::{find_optimal_schedule_bestfirst, Interconnect, MappingMatrix};
use bitlevel::systolic::{run_clocked, Model35Cells};
use bitlevel::WordLevelAlgorithm;

fn main() {
    // a(x) = 2 + x + 3x² + x³ + 2x⁴, b(x) = 1 + 2x + x².
    let a = [2u128, 1, 3, 1, 2];
    let b = [1u128, 2, 1];
    let (deg_a, deg_b) = (a.len() as i64 - 1, b.len() as i64 - 1);
    let p = 4usize;

    let word = WordLevelAlgorithm::polynomial_mul(deg_a, deg_b);
    let alg = compose(&word, p, Expansion::II);
    println!(
        "polynomial product structure: {} coefficients x {} taps, |J| = {}",
        deg_a + deg_b + 1,
        deg_b + 1,
        alg.index_set.cardinality()
    );

    // Architecture: one block row per output coefficient.
    let s = IMat::from_rows(&[&[p as i64, 0, 1, 0], &[0, 0, 0, 1]]);
    let ic = Interconnect::new(IMat::from_rows(&[
        &[p as i64, 0, 1, 0, 1],
        &[0, 0, 0, 1, -1],
    ]));
    let best = find_optimal_schedule_bestfirst(&s, &alg, &ic, 3).expect("feasible schedule");
    println!("schedule Pi = {} ({} cycles)", best.pi, best.time);
    let t = MappingMatrix::new(s, best.pi);

    // Operand functions: the convolution structure computes the correlation
    // z(j1) = Σ x(j1+j2−1)·w(j2); feeding b reversed turns it into the
    // polynomial product c_{j1-1} = Σ_j a_{j1-1-j}·b_j.
    let (av, bv) = (a.to_vec(), b.to_vec());
    let x_of = move |j: &bitlevel::linalg::IVec| {
        // x stream index j1 + j2 − 1 ∈ [1, deg_a + deg_b + deg_b + 1]; pad a
        // with zeros on both sides by (taps − 1).
        let idx = j[0] + j[1] - 2 - deg_b; // shift into a's coefficient space
        if (0..av.len() as i64).contains(&idx) {
            av[idx as usize]
        } else {
            0
        }
    };
    let y_of = move |j: &bitlevel::linalg::IVec| bv[(deg_b + 1 - j[1]) as usize];

    let mut cells = Model35Cells::new(&word, p, &alg, x_of, y_of);
    let run = run_clocked(&alg, &t, &ic, &mut cells);
    assert!(run.is_legal(), "violations: {:?}", run.violations);

    // Reference product coefficients.
    let mut want = vec![0u128; (deg_a + deg_b + 1) as usize];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            want[i + j] += ai * bj;
        }
    }

    let mut results: Vec<(i64, u128)> = cells
        .extract_results(&run)
        .into_iter()
        .map(|(tail, v)| (tail[0], v))
        .collect();
    results.sort();
    println!("\nc(x) coefficients out of the array:");
    for (k, value) in results {
        assert_eq!(value, want[(k - 1) as usize], "coefficient {k}");
        println!("  c_{} = {value}", k - 1);
    }
    println!("\nevery coefficient bit-correct: the flow generalises beyond matmul.");
}
