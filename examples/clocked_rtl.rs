//! Register-transfer-level execution of the Fig. 4 architecture.
//!
//! The deepest verification in the repository: the time-optimal bit-level
//! matmul array is executed cycle by cycle with value-carrying tokens —
//! every token's route is timed against the machine's links, every PE fires
//! exactly at its scheduled cycle — and the product bits collected at the
//! boundary are compared against native arithmetic. The run goes through
//! both engines — the interpreted reference and the compiled static-schedule
//! backend — which must agree bit for bit. Also prints the
//! paper-figure-style visualisations, plus the *measured* profile captured
//! by the trace layer during the compiled run.
//!
//! Run with: `cargo run --example clocked_rtl`

use bitlevel::core_api::render_trace_summary;
use bitlevel::depanal::{compose, Expansion};
use bitlevel::systolic::{
    render_activity_profile, render_block_structure, render_gantt, render_links,
    render_processor_grid, render_trace_pe_load, render_trace_wavefront, run_clocked,
    CompiledSchedule, MatmulExpansionIICells, RecordingSink,
};
use bitlevel::{BitMatmulArray, PaperDesign, WordLevelAlgorithm};

fn main() {
    let (u, p) = (3usize, 3usize);
    let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
    let design = PaperDesign::TimeOptimal;
    let mapping = design.mapping(p as i64);
    let machine = design.interconnect(p as i64);

    // Operands within the safe accumulator bound.
    let m = BitMatmulArray::new(u, p).max_safe_entry();
    let x: Vec<Vec<u128>> = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| ((2 * i + 3 * j + 1) as u128) % (m + 1))
                .collect()
        })
        .collect();
    let y: Vec<Vec<u128>> = (0..u)
        .map(|i| (0..u).map(|j| ((i + j + 1) as u128) % (m + 1)).collect())
        .collect();

    println!("{}", render_block_structure(u as i64, p as i64));
    println!("{}", render_processor_grid(&alg, &mapping));
    println!("{}", render_links(&alg, &mapping, &machine));
    println!("{}", render_activity_profile(&alg, &mapping));
    println!("{}", render_gantt(&alg, &mapping, 12));

    let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
    let run = run_clocked(&alg, &mapping, &machine, &mut cells);
    assert!(run.is_legal(), "violations: {:?}", run.violations);
    println!(
        "clocked run: {} cycles, peak in-flight tokens per edge class: {:?}",
        run.cycles, run.peak_in_flight
    );

    // The compiled backend: rank the schedule once into dense slots, execute
    // cycle-sliced, and get the identical run back — this time with the
    // trace layer watching every firing and token.
    let sched = CompiledSchedule::try_compile(&alg, &mapping, &machine)
        .expect("the 7-column matmul structure compiles");
    let mut sink = RecordingSink::new();
    let compiled = sched.execute_traced(&cells, &mut sink);
    assert_eq!(compiled.cycles, run.cycles);
    assert_eq!(compiled.violations, run.violations);
    assert_eq!(compiled.peak_in_flight, run.peak_in_flight);
    assert_eq!(compiled.outputs, run.outputs);
    println!(
        "compiled backend: {} slots over {} cycles on {} PEs, parallel-safe = {}, bit-identical",
        sched.n_points(),
        sched.n_cycles(),
        sched.n_processors(),
        sched.is_causal()
    );

    // What the trace layer saw: the observed wavefront, PE load and rollup
    // counters of the run above (not the predicted profile — the measured one).
    println!("\n{}", render_trace_wavefront(sink.rollup()));
    println!("{}", render_trace_pe_load(sink.rollup(), 8));
    println!("{}", render_trace_summary(sink.rollup()));

    let z = cells.extract_product(&run);
    println!("\nZ = X*Y, extracted from the array boundary:");
    for (i, row) in z.iter().enumerate() {
        let want: Vec<u128> = (0..u)
            .map(|j| (0..u).map(|k| x[i][k] * y[k][j]).sum())
            .collect();
        assert_eq!(row, &want, "row {i}");
        println!("  {row:?}");
    }
    println!("\nevery bit correct, every token on time: the architecture works.");
}
