//! Expansion I vs Expansion II (Section 3.2's design discussion).
//!
//! "Expansion II is slower than Expansion I because the computation at j̄ has
//! to wait for the final results at j̄−h̄₃… Further, Expansion I is more
//! computationally uniform… in contrast, in Expansion II, four or five bits
//! have to be summed on the hyperplane i₁ = p. This may cause unbalanced
//! load distribution."
//!
//! This example quantifies both effects on the 1-D recurrence (3.7) and on
//! matrix multiplication.
//!
//! Run with: `cargo run --release --example expansion_tradeoffs`

use bitlevel::linalg::IVec;
use bitlevel::systolic::{critical_path, fanin_histogram, mean_producer_depth};
use bitlevel::{compose, BoxSet, Expansion, WordLevelAlgorithm};

fn main() {
    let one_d = WordLevelAlgorithm::new(
        "1-D recurrence (3.7)",
        BoxSet::cube(1, 1, 4),
        Some(IVec::from([1])),
        Some(IVec::from([1])),
        IVec::from([1]),
    );

    for (name, word, p) in [
        ("1-D recurrence, u=4", one_d, 3usize),
        ("matmul, u=3", WordLevelAlgorithm::matmul(3), 3),
    ] {
        println!("== {name}, p={p} ==");
        for expansion in [Expansion::I, Expansion::II] {
            let alg = compose(&word, p, expansion);
            let cp = critical_path(&alg);
            // Column 2 is d̄₃ in both expansions (x, y, then z).
            let d3_depth = mean_producer_depth(&alg, 2).unwrap_or(0.0);
            let hist = fanin_histogram(&alg);
            let wide: u64 = hist.iter().skip(4).sum();
            println!(
                "  {expansion}: critical path {cp}, mean d3-producer depth {d3_depth:.2}, \
                 points with >=4 summed inputs: {wide}, fan-in histogram {hist:?}"
            );
        }
        println!();
    }

    println!("Expansion I forwards partial sums (shallow producers, few wide adders);");
    println!("Expansion II waits for completed words at tile boundaries (deep producers,");
    println!("4-5-input adders along the whole i1=p plane -> unbalanced cell designs).");
}
