//! The full Section 4.2 story: both bit-level matmul architectures across a
//! parameter sweep, compared with the best word-level array.
//!
//! Reproduces the shape of the paper's comparison — the Fig. 4 design is
//! `O(p²)` faster than a word-level array built on add-shift PEs and `O(p)`
//! faster than one built on carry-save PEs — with *measured* cycle counts
//! from the cycle-accurate simulator, not just the closed forms.
//!
//! Run with: `cargo run --release --example matmul_architectures`

use bitlevel::mapping::word_level_total_time;
use bitlevel::{
    compose, simulate_mapped, AddShift, CarrySave, Expansion, PaperDesign, WordLevelAlgorithm,
};

fn main() {
    println!(
        "{:>3} {:>3} | {:>9} {:>9} | {:>12} {:>12} | {:>9} {:>9}",
        "u", "p", "fig4", "fig5", "word(as)", "word(cs)", "spd(as)", "spd(cs)"
    );
    println!("{}", "-".repeat(84));

    for (u, p) in [
        (2i64, 2i64),
        (3, 3),
        (4, 3),
        (4, 4),
        (6, 4),
        (8, 4),
        (8, 6),
        (10, 8),
    ] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);

        // Measured cycles of the two bit-level designs.
        let fig4 = simulate_mapped(
            &alg,
            &PaperDesign::TimeOptimal.mapping(p),
            &PaperDesign::TimeOptimal.interconnect(p),
        );
        let fig5 = simulate_mapped(
            &alg,
            &PaperDesign::NearestNeighbour.mapping(p),
            &PaperDesign::NearestNeighbour.interconnect(p),
        );
        assert!(fig4.conflict_free && fig4.causality_ok);
        assert!(fig5.conflict_free && fig5.causality_ok);

        // Word-level baselines (closed form (3(u-1)+1)·t_b with the real
        // multiplier latencies).
        let word_addshift =
            word_level_total_time(u, AddShift::new(p as usize).word_latency() as i64);
        let word_carrysave =
            word_level_total_time(u, CarrySave::new(p as usize).word_latency() as i64);

        println!(
            "{:>3} {:>3} | {:>9} {:>9} | {:>12} {:>12} | {:>8.1}x {:>8.1}x",
            u,
            p,
            fig4.cycles,
            fig5.cycles,
            word_addshift,
            word_carrysave,
            word_addshift as f64 / fig4.cycles as f64,
            word_carrysave as f64 / fig4.cycles as f64,
        );
    }

    println!();
    println!("fig4: time-optimal design (eq. 4.2), long wires of length p, 1 buffered link");
    println!("fig5: nearest-neighbour design (eq. 4.6), unit wires only");
    println!("word(as)/word(cs): best word-level array with add-shift (t_b = p^2) /");
    println!("                   carry-save (t_b = 2p) PEs  [(3(u-1)+1) * t_b]");
    println!("speedups grow ~p^2 (add-shift) and ~p (carry-save), as Section 4.2 claims");
}
