//! Blocking NDJSON client for the `bitlevel-serve` evaluation service.
//!
//! Connects to a running server, then walks the full request surface the
//! way an external tool would: a cold `Evaluate` (watch the `cache` progress
//! frame report the compile), the identical request again (now a hit — the
//! terminal line must be byte-identical), a `Stats` snapshot, and, with
//! `--shutdown`, a graceful server shutdown. Every frame is streamed to
//! stdout exactly as it came off the wire, so the output doubles as a
//! protocol transcript. CI runs this against a background server as the
//! end-to-end smoke test.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_client -- 127.0.0.1:<port> [--shutdown] [--u N] [--p N]
//! ```

use bitlevel::serve::{DesignSpec, Frame, Request, RequestEnvelope, ServeClient};
use bitlevel::SimBackend;

fn usage() -> ! {
    eprintln!("usage: serve_client <addr> [--shutdown] [--u N] [--p N]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut shutdown = false;
    let mut u = 3i64;
    let mut p = 3usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shutdown" => shutdown = true,
            "--u" => {
                i += 1;
                u = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--p" => {
                i += 1;
                p = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            other if addr.is_none() && !other.starts_with("--") => addr = Some(other.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let addr = addr.unwrap_or_else(|| usage());

    let mut client = ServeClient::connect(addr.as_str()).expect("connect to bitlevel-serve");
    let evaluate = RequestEnvelope {
        id: 1,
        deadline_ms: None,
        request: Request::Evaluate {
            u,
            p,
            design: DesignSpec::TimeOptimal,
            backend: SimBackend::Compiled,
        },
    };

    fn run(
        client: &mut ServeClient,
        label: &str,
        env: &RequestEnvelope,
        failed: &mut bool,
        terminal_lines: &mut Vec<String>,
    ) {
        println!("--- {label} ---");
        let tx = client.request_collect(env).expect("transaction completes");
        for (line, _) in &tx.frames {
            println!("{line}");
        }
        if tx.error().is_some() {
            *failed = true;
        }
        if let Some(line) = tx.terminal_line() {
            terminal_lines.push(line.to_string());
        }
    }

    let mut failed = false;
    let mut terminal_lines = Vec::new();
    run(
        &mut client,
        "evaluate (cold)",
        &evaluate,
        &mut failed,
        &mut terminal_lines,
    );
    run(
        &mut client,
        "evaluate (warm, identical request)",
        &evaluate,
        &mut failed,
        &mut terminal_lines,
    );
    run(
        &mut client,
        "stats",
        &RequestEnvelope {
            id: 2,
            deadline_ms: None,
            request: Request::Stats,
        },
        &mut failed,
        &mut terminal_lines,
    );
    if shutdown {
        run(
            &mut client,
            "shutdown",
            &RequestEnvelope {
                id: 3,
                deadline_ms: None,
                request: Request::Shutdown,
            },
            &mut failed,
            &mut terminal_lines,
        );
    }

    let cold = terminal_lines.first().expect("cold terminal frame");
    let warm = terminal_lines.get(1).expect("warm terminal frame");
    assert_eq!(
        cold, warm,
        "identical requests must produce byte-identical terminal frames"
    );
    assert!(
        matches!(Frame::parse(cold), Ok(Frame::Result { id: 1, .. })),
        "evaluate must terminate in a Result frame echoing id 1"
    );
    println!("--- ok: warm terminal frame byte-identical to cold ---");
    if failed {
        std::process::exit(1);
    }
}
