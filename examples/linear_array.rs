//! Lower-dimensional synthesis: a **linear (1-D) bit-level array** for
//! matrix multiplication.
//!
//! The design method the paper builds on ([5,6,10]) targets lower-dimensional
//! arrays; this example runs the joint `(S, Π)` search of
//! `bitlevel-mapping::lowerdim` to synthesise a 1-D array for the 5-D
//! bit-level matmul structure, then contrasts it with the 2-D Fig. 4 design:
//! fewer than half the processors traded for one extra cycle.
//!
//! Run with: `cargo run --release --example linear_array`

use bitlevel::depanal::{compose, Expansion};
use bitlevel::mapping::{
    check_feasibility, find_linear_array_mapping, linear_interconnect, processor_count,
};
use bitlevel::{PaperDesign, WordLevelAlgorithm};

fn main() {
    let (u, p) = (2i64, 2i64);
    let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
    println!(
        "bit-level matmul structure: |J| = {} computations",
        alg.index_set.cardinality()
    );

    // The 2-D reference point (Fig. 4).
    let two_d_time = PaperDesign::TimeOptimal.total_time(u, p);
    let two_d_pes = PaperDesign::processors(u, p);
    println!("2-D Fig. 4 design: {two_d_time} cycles on {two_d_pes} PEs\n");

    // Synthesise a linear array: machine = east/west units + stride-2 long
    // wires + static link.
    let ic = linear_interconnect(Some(2));
    println!("searching S in [-2,2]^5, Pi in [-3,3]^5 on the 1-D machine ...");
    match find_linear_array_mapping(&alg, &ic, 2, 3) {
        Some(design) => {
            println!(
                "found: S = {:?}, Pi = {}",
                design.mapping.space.row(0),
                design.mapping.schedule
            );
            println!(
                "linear array: {} cycles on {} PEs ({} S-candidates examined)",
                design.time, design.processors, design.candidates_examined
            );
            let rep = check_feasibility(&design.mapping, &alg, &ic);
            assert!(rep.is_feasible(), "{:?}", rep.violations);
            assert_eq!(
                design.processors,
                processor_count(&design.mapping.space, &alg.index_set)
            );
            println!(
                "\ntrade-off: {:.1}x fewer processors, {:.1}x more cycles \
                 (work bound: {} x {} = {} >= |J| = {})",
                two_d_pes as f64 / design.processors as f64,
                design.time as f64 / two_d_time as f64,
                design.time,
                design.processors,
                design.time * design.processors as i64,
                alg.index_set.cardinality()
            );
        }
        None => println!("no feasible linear design within the bounds"),
    }
}
