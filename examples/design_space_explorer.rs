//! Pareto design-space exploration over Definition 4.1.
//!
//! Section 4 derives its two matmul arrays by hand for one fixed space
//! mapping `S` (eq. (4.2)); Theorem 4.5 certifies time-optimality for that
//! slice only. This example searches the **joint** space — space mappings,
//! schedules, and both Section 4 machines — and prints the verified Pareto
//! frontier over `(total_time, processor_count, max_wire_length)`.
//!
//! Two things to watch for in the output:
//!
//! * the time-minimal end always reproduces Theorem 4.5's schedule
//!   `Π = [1,1,1,2,1]` at `t = 3(u−1)+3(p−1)+1`, and the best
//!   nearest-neighbour design at `u > p` reproduces the (4.6) schedule
//!   `Π' = [p,p,1,2,1]`;
//! * at the tiny `u = p = 2` size the joint search finds nearest-neighbour
//!   designs *faster and smaller* than the paper's `T'` — optimising over
//!   `S` as well as `Π` genuinely enlarges the design space.
//!
//! Run with: `cargo run --release --example design_space_explorer`

use bitlevel::{render_frontier, DesignFlow};

fn main() {
    for (u, p) in [(2i64, 2usize), (3, 2), (3, 3)] {
        let flow = DesignFlow::matmul(u, p);
        let (family, config) = flow.default_exploration();
        println!(
            "== u = {u}, p = {p}: exploring {} spaces x {} machines ==",
            family.len(),
            config.machines.len()
        );
        let ex = flow
            .explore(&family, &config)
            .expect("well-formed exploration");
        print!("{}", render_frontier(&ex));
        assert!(
            ex.all_verified(),
            "every frontier design must verify bit-exactly"
        );
        println!();
    }
}
