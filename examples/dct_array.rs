//! A bit-level array computing an integer discrete cosine transform.
//!
//! Section 3.2 lists the DCT/DFT among the model-(3.5) applications: both
//! are coefficient-matrix-times-vector computations, so they expand exactly
//! like the matrix–vector product (no word-level reuse of the coefficient
//! operand — the `d̄₂` column is absent). This example builds the bit-level
//! architecture for an 8-point integer DCT (quantised nonnegative
//! coefficients, as fixed-point hardware uses), searches a schedule, runs it
//! on the clocked RTL engine, and checks every output word.
//!
//! Run with: `cargo run --release --example dct_array`

use bitlevel::depanal::{compose, Expansion};
use bitlevel::linalg::IMat;
use bitlevel::mapping::{find_optimal_schedule_bestfirst, Interconnect, MappingMatrix};
use bitlevel::systolic::{run_clocked, Model35Cells};
use bitlevel::WordLevelAlgorithm;

fn main() {
    let n = 8i64; // transform size
    let p = 6usize; // word length

    // Quantised DCT-II coefficient matrix, shifted nonnegative (fixed-point
    // hardware convention: coefficients in [0, 8]).
    let coeff: Vec<Vec<u128>> = (0..n)
        .map(|k| {
            (0..n)
                .map(|t| {
                    let angle = std::f64::consts::PI * (k as f64) * (t as f64 + 0.5) / n as f64;
                    ((angle.cos() + 1.0) * 4.0).round() as u128
                })
                .collect()
        })
        .collect();
    let samples: Vec<u128> = (0..n).map(|t| ((3 * t + 1) % 4) as u128).collect();

    // Word level: X(j1) = Σ_{j2} C(j1,j2)·x(j2) — the DCT constructor is
    // matvec-shaped with the samples pipelined along j1.
    let word = WordLevelAlgorithm::dct(n);
    let alg = compose(&word, p, Expansion::II);
    println!(
        "bit-level DCT structure: {} axes, {} dependence columns, |J| = {}",
        alg.dim(),
        alg.deps.len(),
        alg.index_set.cardinality()
    );

    // Architecture: PEs at (p·j1 + i1, i2) — one block row per output
    // coefficient; machine with block-stride wire, units, diagonal, static.
    let s = IMat::from_rows(&[&[p as i64, 0, 1, 0], &[0, 0, 0, 1]]);
    let ic = Interconnect::new(IMat::from_rows(&[
        &[p as i64, 0, 1, 0, 1],
        &[0, 0, 0, 1, -1],
    ]));
    let best = find_optimal_schedule_bestfirst(&s, &alg, &ic, 3).expect("feasible schedule");
    println!("searched schedule Pi = {} ({} cycles)", best.pi, best.time);
    let t = MappingMatrix::new(s, best.pi);

    // Operand functions: x(j̄) = samples[j2], y(j̄) = C[j1][j2].
    let (c2, s2) = (coeff.clone(), samples.clone());
    let mut cells = Model35Cells::new(
        &word,
        p,
        &alg,
        move |j| s2[(j[1] - 1) as usize],
        move |j| c2[(j[0] - 1) as usize][(j[1] - 1) as usize],
    );
    let run = run_clocked(&alg, &t, &ic, &mut cells);
    assert!(run.is_legal(), "violations: {:?}", run.violations);

    println!("\nDCT coefficients out of the array (vs direct evaluation):");
    let mut results: Vec<(i64, u128)> = cells
        .extract_results(&run)
        .into_iter()
        .map(|(tail, v)| (tail[0], v))
        .collect();
    results.sort();
    for (k, value) in results {
        let want: u128 = (0..n as usize)
            .map(|tt| coeff[(k - 1) as usize][tt] * samples[tt])
            .sum();
        assert_eq!(value, want, "coefficient {k}");
        println!("  X[{k}] = {value}");
    }
    println!(
        "\nall {n} coefficients bit-correct through {}-bit cells.",
        p
    );
}
