//! One test per quantitative equation/figure of the paper — a navigable
//! index from paper artifact to verified behaviour. (The experiment harness
//! prints the same checks as paper-vs-measured tables; these tests pin them
//! in CI form.)

use bitlevel::depanal::{compose, enumerate_dependences, expand, instances_of_triplet, Expansion};
use bitlevel::ir::{eliminate_broadcasts, BoxSet, WordLevelAlgorithm};
use bitlevel::linalg::{IMat, IVec};
use bitlevel::mapping::{
    check_feasibility, processor_count, total_time, word_level_total_time, Interconnect,
    PaperDesign,
};
use bitlevel::systolic::simulate_mapped;
use bitlevel::AddShift;

/// Eq. (2.2)→(2.3): broadcast elimination pipelines x along j₂ and y along
/// j₁ (Fortes–Moldovan).
#[test]
fn eq_2_3_broadcast_free_matmul() {
    use bitlevel::ir::{Access, AffineFn, LoopNest, OpKind, Statement};
    let nest = LoopNest::new(
        BoxSet::cube(3, 1, 3),
        vec![Statement::new(
            Access::new("z", AffineFn::identity(3)),
            vec![
                Access::new("z", AffineFn::shift_back(&IVec::from([0, 0, 1]))),
                Access::new("x", AffineFn::select_axes(3, &[0, 2])),
                Access::new("y", AffineFn::select_axes(3, &[2, 1])),
            ],
            OpKind::MulAdd,
        )],
    );
    let be = eliminate_broadcasts(&nest);
    let dirs: Vec<IVec> = be
        .new_dependences
        .iter()
        .map(|d| d.vector.clone())
        .collect();
    assert_eq!(dirs, vec![IVec::from([0, 1, 0]), IVec::from([1, 0, 0])]);
}

/// Eq. (2.4): the word-level matmul triplet — D = I₃, uniform.
#[test]
fn eq_2_4_word_level_triplet() {
    let alg = WordLevelAlgorithm::matmul(4).triplet();
    // The paper prints D = I₃ with columns ordered y, x, z; our model order
    // is x, y, z — same column set.
    assert_eq!(
        alg.dependence_matrix(),
        IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0], &[0, 0, 1]])
    );
    assert!(alg.is_uniform());
    assert_eq!(alg.index_set.cardinality(), 64);
}

/// Eqs. (3.1)–(3.2): the add-shift cells compute f = parity, g = majority.
#[test]
fn eq_3_2_boolean_cells() {
    use bitlevel::arith::{carry3, sum3};
    for bits in 0..8u8 {
        let (x1, x2, x3) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
        assert_eq!(sum3(x1, x2, x3), x1 ^ x2 ^ x3);
        assert_eq!(carry3(x1, x2, x3), (x1 & x2) | (x2 & x3) | (x3 & x1));
    }
}

/// Eq. (3.4): `J_as` and `D_as = [δ̄₁, δ̄₂, δ̄₃]` of the add-shift algorithm.
#[test]
fn eq_3_4_addshift_structure() {
    let m = AddShift::new(3);
    assert_eq!(AddShift::index_set(&m), BoxSet::cube(2, 1, 3));
    assert_eq!(
        AddShift::dependences(&m).matrix(),
        IMat::from_rows(&[&[1, 0, 1], &[0, 1, -1]])
    );
}

/// Eqs. (3.8)/(3.9): the 1-D expansion dependence matrices, cross-checked
/// against exhaustive analysis of the expanded code.
#[test]
fn eq_3_8_3_9_one_dimensional_expansions() {
    let word = WordLevelAlgorithm::new(
        "1-D recurrence",
        BoxSet::cube(1, 1, 4),
        Some(IVec::from([1])),
        Some(IVec::from([1])),
        IVec::from([1]),
    );
    let expected = IMat::from_rows(&[
        &[1, 1, 1, 0, 0, 0, 0],
        &[0, 0, 0, 1, 0, 1, 0],
        &[0, 0, 0, 0, 1, -1, 2],
    ]);
    for e in [Expansion::I, Expansion::II] {
        let alg = compose(&word, 3, e);
        assert_eq!(alg.dependence_matrix(), expected);
        assert_eq!(
            instances_of_triplet(&alg),
            enumerate_dependences(&expand(&word, 3, e))
        );
    }
}

/// Theorem 3.1 (eq. 3.11a): `J = J_w × J_as`.
#[test]
fn eq_3_11a_compound_index_set() {
    let alg = compose(&WordLevelAlgorithm::matmul(4), 5, Expansion::II);
    assert_eq!(
        alg.index_set,
        BoxSet::cube(3, 1, 4).product(&BoxSet::cube(2, 1, 5))
    );
}

/// Example 3.1 (eqs. 3.12–3.13): the 5-D bit-level matmul structure.
#[test]
fn eq_3_12_3_13_bitlevel_matmul_structure() {
    let alg = compose(&WordLevelAlgorithm::matmul(3), 3, Expansion::II);
    assert_eq!(alg.deps.len(), 7);
    assert_eq!(alg.index_set.cardinality(), 27 * 9);
    // d̄₆ uniform (Expansion II), d̄₃ boundary-only.
    assert!(alg.deps.get(5).is_uniform_over(&alg.index_set));
    assert!(!alg.deps.get(2).is_uniform_over(&alg.index_set));
}

/// Definition 4.1 / Theorem 4.5 (eq. 4.2): `T` is feasible.
#[test]
fn eq_4_2_t_is_feasible() {
    let alg = compose(&WordLevelAlgorithm::matmul(3), 3, Expansion::II);
    let rep = check_feasibility(
        &PaperDesign::TimeOptimal.mapping(3),
        &alg,
        &Interconnect::paper_p(3),
    );
    assert!(rep.is_feasible(), "{:?}", rep.violations);
}

/// Eq. (4.3): `SD = PK`, `K ≥ 0`, column sums within `Π·D` (4.1).
#[test]
#[allow(clippy::needless_range_loop)] // i indexes K columns and budgets together
fn eq_4_3_routing_matrices() {
    let p = 3i64;
    let alg = compose(&WordLevelAlgorithm::matmul(3), p as usize, Expansion::II);
    let d = alg.dependence_matrix();
    let t = PaperDesign::TimeOptimal.mapping(p);
    let ic = Interconnect::paper_p(p);
    let sd = t.space.matmul(&d);
    let budgets: Vec<i64> = (0..d.cols()).map(|i| d.col(i).dot(&t.schedule)).collect();
    let sol = ic.solve_k(&sd, &budgets).expect("routable");
    assert_eq!(ic.p.matmul(&sol.k), sd);
    for i in 0..sol.k.cols() {
        assert!(sol.k.col(i).iter().all(|&x| x >= 0));
        assert!(sol.k.col(i).iter().sum::<i64>() <= budgets[i]);
    }
}

/// Eq. (4.4): `T·D` — timing and connections of the Fig. 4 design.
#[test]
fn eq_4_4_td_matrix() {
    let p = 3i64;
    let alg = compose(&WordLevelAlgorithm::matmul(3), p as usize, Expansion::II);
    let td = PaperDesign::TimeOptimal
        .mapping(p)
        .td(&alg.dependence_matrix());
    assert_eq!(td.row(2), &[1, 1, 1, 2, 1, 1, 2]); // Π·D row of (4.4)
}

/// Eq. (4.5): `t = 3(u−1) + 3(p−1) + 1`, measured.
#[test]
fn eq_4_5_total_time() {
    for (u, p) in [(2i64, 3i64), (3, 3), (4, 2)] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
        let design = PaperDesign::TimeOptimal;
        let run = simulate_mapped(&alg, &design.mapping(p), &design.interconnect(p));
        assert_eq!(run.cycles, 3 * (u - 1) + 3 * (p - 1) + 1);
        assert_eq!(
            run.cycles,
            total_time(&design.mapping(p).schedule, &alg.index_set)
        );
    }
}

/// Processor count `u²p²` below eq. (4.5), exact.
#[test]
fn processor_count_u2p2() {
    for (u, p) in [(2i64, 2i64), (3, 3)] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
        assert_eq!(
            processor_count(&PaperDesign::space(p), &alg.index_set) as i64,
            u * u * p * p
        );
    }
}

/// Eqs. (4.6)–(4.8): the Fig. 5 design — feasible, slower, no long wires.
/// (The measured time is `(2p+1)(u−1)+3(p−1)+1`, consistent with the
/// paper's own Π′ expansion; the printed `(2p−1)` in (4.8) is a slip.)
#[test]
fn eq_4_6_to_4_8_fig5_design() {
    let (u, p) = (3i64, 3i64);
    let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
    let design = PaperDesign::NearestNeighbour;
    let rep = check_feasibility(&design.mapping(p), &alg, &design.interconnect(p));
    assert!(rep.is_feasible());
    let run = simulate_mapped(&alg, &design.mapping(p), &design.interconnect(p));
    assert_eq!(run.cycles, (2 * p + 1) * (u - 1) + 3 * (p - 1) + 1);
    assert_eq!(design.interconnect(p).max_wire_length(), 1);
    assert!(run.cycles > PaperDesign::TimeOptimal.total_time(u, p));
}

/// Section 4.2's speedup claim: `O(p²)` over add-shift word PEs, `O(p)`
/// over carry-save word PEs (u > p).
#[test]
fn section_4_2_speedup_orders() {
    let ratios: Vec<(f64, f64)> = [4i64, 8, 16]
        .iter()
        .map(|&p| {
            let u = 2 * p;
            let bit = PaperDesign::TimeOptimal.total_time(u, p) as f64;
            (
                word_level_total_time(u, p * p) as f64 / bit,
                word_level_total_time(u, 2 * p) as f64 / bit,
            )
        })
        .collect();
    // Quadratic growth: each doubling of p roughly quadruples the add-shift
    // speedup; linear growth: roughly doubles the carry-save speedup.
    for w in ratios.windows(2) {
        let (a0, c0) = w[0];
        let (a1, c1) = w[1];
        assert!(
            (a1 / a0) > 3.0 && (a1 / a0) < 5.0,
            "quadratic shape: {}",
            a1 / a0
        );
        assert!(
            (c1 / c0) > 1.6 && (c1 / c0) < 2.4,
            "linear shape: {}",
            c1 / c0
        );
    }
}
