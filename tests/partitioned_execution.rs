//! Integration tests for the LSGP-partitioned execution engine: a fixed
//! pool of physical workers executing the unbounded virtual PE array must
//! be a pure implementation detail — bit-identical runs, products,
//! violations and fault classifications at every pool size, on both paper
//! designs, for scalar and lane-packed batches alike.

use bitlevel::systolic::{
    run_clocked, MatmulExpansionIICells, MatmulLaneCells, PartitionedSchedule,
};
use bitlevel::{
    compose, BackendUsed, BitMatmulArray, CompileCache, DesignFlow, Expansion, PaperDesign,
    SimBackend, WordLevelAlgorithm,
};
use proptest::prelude::*;
use std::sync::Arc;

const DESIGNS: [PaperDesign; 2] = [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour];

fn random_matrix(u: usize, cap: u128, state: &mut u64) -> Vec<Vec<u128>> {
    (0..u)
        .map(|_| {
            (0..u)
                .map(|_| {
                    *state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((*state >> 33) as u128) % (cap + 1)
                })
                .collect()
        })
        .collect()
}

fn random_batch(
    u: usize,
    p: usize,
    n: usize,
    seed: u64,
) -> (Vec<Vec<Vec<u128>>>, Vec<Vec<Vec<u128>>>) {
    let cap = BitMatmulArray::new(u, p).max_safe_entry();
    let mut state = seed | 1;
    let xs = (0..n).map(|_| random_matrix(u, cap, &mut state)).collect();
    let ys = (0..n).map(|_| random_matrix(u, cap, &mut state)).collect();
    (xs, ys)
}

/// Runs one (u, p, design, workers) instance through the interpreted
/// oracle, the compiled engine and the partitioned engine and asserts the
/// whole runs are identical.
fn check_partitioned_matches_oracle(u: usize, p: usize, design: PaperDesign, workers: usize) {
    let word = WordLevelAlgorithm::matmul(u as i64);
    let alg = compose(&word, p, Expansion::II);
    let t = design.mapping(p as i64);
    let ic = design.interconnect(p as i64);
    let (xs, ys) = random_batch(u, p, 1, 0x9E37 ^ (workers as u64) << 8 ^ u as u64);
    let mut cells = MatmulExpansionIICells::new(u, p, &xs[0], &ys[0]);

    let oracle = run_clocked(&alg, &t, &ic, &mut cells);
    let cache = CompileCache::new();
    let (sched, _) = cache.get_or_compile(&alg, &t, &ic).unwrap();
    let part = PartitionedSchedule::try_new(Arc::clone(&sched), workers)
        .expect("paper schedules are causal");
    let prun = part.execute(&cells);

    let label = format!("{design:?} u={u} p={p} workers={workers}");
    assert_eq!(prun.outputs, oracle.outputs, "{label}: outputs diverged");
    assert_eq!(
        prun.violations, oracle.violations,
        "{label}: violations diverged"
    );
    assert_eq!(prun.cycles, oracle.cycles, "{label}: cycles diverged");
    assert_eq!(
        prun.peak_in_flight, oracle.peak_in_flight,
        "{label}: in-flight peaks diverged"
    );
    assert!(
        part.stats().max_shard_pes <= part.stats().virtual_pes,
        "{label}: shard larger than the array"
    );
}

#[test]
fn partitioned_matches_the_interpreted_oracle_across_pool_sizes() {
    for design in DESIGNS {
        for workers in 1..=8 {
            check_partitioned_matches_oracle(2, 2, design, workers);
        }
        check_partitioned_matches_oracle(3, 2, design, 5);
    }
}

#[test]
fn one_worker_is_bit_identical_to_the_compiled_backend() {
    // The degenerate pool: a single worker owns every virtual PE, so the
    // partitioned walk must be the compiled walk, bit for bit — including
    // the violation list and the in-flight peak.
    for design in DESIGNS {
        let (u, p) = (3, 2);
        let word = WordLevelAlgorithm::matmul(u as i64);
        let alg = compose(&word, p, Expansion::II);
        let t = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);
        let (xs, ys) = random_batch(u, p, 1, 0xD00D);
        let cells = MatmulExpansionIICells::new(u, p, &xs[0], &ys[0]);
        let cache = CompileCache::new();
        let (sched, _) = cache.get_or_compile(&alg, &t, &ic).unwrap();
        let part = PartitionedSchedule::try_new(Arc::clone(&sched), 1).unwrap();
        let crun = sched.execute(&cells);
        let prun = part.execute(&cells);
        assert_eq!(prun.outputs, crun.outputs, "{design:?}");
        assert_eq!(prun.violations, crun.violations, "{design:?}");
        assert_eq!(prun.cycles, crun.cycles, "{design:?}");
        assert_eq!(prun.peak_in_flight, crun.peak_in_flight, "{design:?}");
        assert_eq!(part.stats().workers, 1, "{design:?}");
        assert_eq!(
            part.stats().cross_shard_tokens,
            0,
            "{design:?}: one shard has no cross-shard traffic"
        );
    }
}

#[test]
fn partitioned_lane_packed_batches_match_the_compiled_batch_engine() {
    // Lane-packed words flowing through shards: the partition and the batch
    // layer compose without changing a bit, at ragged widths.
    for design in DESIGNS {
        for (n, workers) in [(3usize, 2usize), (7, 4), (5, 8)] {
            let (u, p) = (2, 2);
            let word = WordLevelAlgorithm::matmul(u as i64);
            let alg = compose(&word, p, Expansion::II);
            let t = design.mapping(p as i64);
            let ic = design.interconnect(p as i64);
            let (xs, ys) = random_batch(u, p, n, 0xBA7C4 ^ n as u64);
            let cells = MatmulLaneCells::new(u, p, &xs, &ys);
            let cache = CompileCache::new();
            let (sched, _) = cache.get_or_compile(&alg, &t, &ic).unwrap();
            let part = PartitionedSchedule::try_new(Arc::clone(&sched), workers).unwrap();
            let crun = sched.execute_batch(&cells);
            let prun = part.execute_batch(&cells);
            let label = format!("{design:?} n={n} workers={workers}");
            assert_eq!(prun.outputs, crun.outputs, "{label}");
            assert_eq!(prun.violations, crun.violations, "{label}");
            assert_eq!(prun.cycles, crun.cycles, "{label}");
            assert_eq!(
                cells.extract_products(&prun),
                cells.extract_products(&crun),
                "{label}"
            );
        }
    }
}

#[test]
fn partitioned_flow_reports_the_backend_and_survives_fallbacks() {
    let flow = DesignFlow::matmul(2, 2).with_backend(SimBackend::Partitioned { workers: 2 });
    let rep = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
    assert!(rep.feasible, "{:?}", rep.violations);
    assert_eq!(rep.backend_used, BackendUsed::Partitioned { workers: 2 });
    assert_eq!(rep.backend_used, "partitioned (workers 2)");
    assert!(rep.backend_used.is_compiled());
    assert!(!rep.backend_used.is_fallback());
    let stats = rep.partition.expect("partitioned evaluations carry stats");
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.shard_points.iter().sum::<u64>() as usize, 32);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Engine agreement as a property: random pool sizes, designs, sizes
    /// and ragged batch widths — the partitioned batch products must equal
    /// the interpreted per-instance oracle's bit for bit.
    #[test]
    fn prop_partitioned_batches_match_the_interpreted_oracle(
        workers in 1usize..=8,
        design_idx in 0usize..2,
        u in 2usize..=3,
        n in 1usize..=9,
        seed in 0u64..1 << 48,
    ) {
        let design = DESIGNS[design_idx];
        let p = 2usize;
        let (xs, ys) = random_batch(u, p, n, seed);
        let part_flow = DesignFlow::matmul(u as i64, p)
            .with_backend(SimBackend::Partitioned { workers });
        let oracle_flow = DesignFlow::matmul(u as i64, p)
            .with_backend(SimBackend::Interpreted);
        let prep = part_flow.evaluate_batch(design, &xs, &ys);
        let orep = oracle_flow.evaluate_batch(design, &xs, &ys);
        prop_assert!(prep.legal);
        prop_assert_eq!(
            prep.backend_used,
            BackendUsed::Partitioned { workers }
        );
        prop_assert_eq!(prep.products, orep.products);
        prop_assert_eq!(prep.cycles, orep.cycles);
        prop_assert_eq!(prep.walks, 1);
    }
}
