//! Failure injection: corrupt each artifact and verify the corresponding
//! checker *rejects* it. Equivalence and feasibility tests are only
//! meaningful if they have discriminating power — these tests pin that down.

use bitlevel::depanal::{enumerate_dependences, expand, instances_of_triplet, Expansion};
use bitlevel::ir::{AlgorithmTriplet, Dependence, DependenceSet, Predicate, WordLevelAlgorithm};
use bitlevel::linalg::IVec;
use bitlevel::mapping::Violation;
use bitlevel::{check_feasibility, compose, simulate_mapped, Interconnect, PaperDesign};

fn matmul_structure() -> AlgorithmTriplet {
    compose(&WordLevelAlgorithm::matmul(2), 2, Expansion::II)
}

/// Rebuilds a structure with one dependence replaced.
fn with_replaced_dep(alg: &AlgorithmTriplet, index: usize, dep: Dependence) -> AlgorithmTriplet {
    let deps: Vec<Dependence> = alg
        .deps
        .iter()
        .enumerate()
        .map(|(i, d)| if i == index { dep.clone() } else { d.clone() })
        .collect();
    AlgorithmTriplet::new(
        alg.index_set.clone(),
        DependenceSet::new(deps),
        &alg.computation,
    )
}

#[test]
fn corrupted_vector_is_caught_by_ground_truth() {
    let alg = matmul_structure();
    let truth = enumerate_dependences(&expand(&WordLevelAlgorithm::matmul(2), 2, Expansion::II));
    assert_eq!(instances_of_triplet(&alg), truth, "baseline must agree");

    // Flip d̄₆'s direction: [0,0,0,1,-1] -> [0,0,0,-1,1].
    let bad = with_replaced_dep(&alg, 5, Dependence::uniform([0, 0, 0, -1, 1], "z"));
    assert_ne!(
        instances_of_triplet(&bad),
        truth,
        "flipped drain must be caught"
    );
}

#[test]
fn corrupted_validity_region_is_caught() {
    let alg = matmul_structure();
    let truth = enumerate_dependences(&expand(&WordLevelAlgorithm::matmul(2), 2, Expansion::II));

    // Make d̄₃ uniform (that is Expansion I's region, not II's).
    let bad = with_replaced_dep(&alg, 2, Dependence::uniform([0, 0, 1, 0, 0], "z"));
    assert_ne!(instances_of_triplet(&bad), truth);

    // Shrink d̄₅'s region to a single plane. At p = 2 the regions i₂ ≠ 1 and
    // i₂ = 2 coincide (a semantically trivial mutation the checker must NOT
    // flag), so this needs p = 3 to be a real corruption.
    let alg3 = compose(&WordLevelAlgorithm::matmul(2), 3, Expansion::II);
    let truth3 = enumerate_dependences(&expand(&WordLevelAlgorithm::matmul(2), 3, Expansion::II));
    let trivial = with_replaced_dep(
        &alg,
        4,
        Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::eq_const(4, 2)),
    );
    assert_eq!(
        instances_of_triplet(&trivial),
        truth,
        "i2=2 equals i2!=1 at p=2: must not be flagged"
    );
    let bad3 = with_replaced_dep(
        &alg3,
        4,
        Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::eq_const(4, 2)),
    );
    assert_ne!(instances_of_triplet(&bad3), truth3);
}

#[test]
fn missing_column_is_caught() {
    // d̄₇'s sources (i₂ − 2) only exist for p ≥ 3: at p = 2 the column is
    // vacuous and dropping it must be invisible; at p = 3 it must be caught.
    let alg2 = matmul_structure();
    let truth2 = enumerate_dependences(&expand(&WordLevelAlgorithm::matmul(2), 2, Expansion::II));
    let deps2: Vec<Dependence> = alg2.deps.iter().take(6).cloned().collect();
    let dropped2 = AlgorithmTriplet::new(alg2.index_set.clone(), DependenceSet::new(deps2), "");
    assert_eq!(
        instances_of_triplet(&dropped2),
        truth2,
        "vacuous column drop at p=2"
    );

    let alg3 = compose(&WordLevelAlgorithm::matmul(2), 3, Expansion::II);
    let truth3 = enumerate_dependences(&expand(&WordLevelAlgorithm::matmul(2), 3, Expansion::II));
    let deps3: Vec<Dependence> = alg3.deps.iter().take(6).cloned().collect();
    let dropped3 = AlgorithmTriplet::new(alg3.index_set.clone(), DependenceSet::new(deps3), "");
    assert_ne!(
        instances_of_triplet(&dropped3),
        truth3,
        "d̄₇ drop at p=3 must be caught"
    );
}

#[test]
fn each_feasibility_condition_can_individually_fail() {
    let p = 2i64;
    let alg = matmul_structure();
    let good = PaperDesign::TimeOptimal.mapping(p);
    let ic = PaperDesign::TimeOptimal.interconnect(p);
    assert!(check_feasibility(&good, &alg, &ic).is_feasible());

    // Condition 1: negate one schedule entry.
    let mut t = good.clone();
    t.schedule[2] = -1;
    let rep = check_feasibility(&t, &alg, &ic);
    assert!(rep
        .violations
        .iter()
        .any(|v| matches!(v, Violation::NonPositiveSchedule { .. })));

    // Condition 2: starve the machine of the diagonal link.
    let poor = Interconnect::new(bitlevel::linalg::IMat::from_rows(&[
        &[p, 0, 0, 1, 0],
        &[0, p, 0, 0, 1],
    ]));
    let rep = check_feasibility(&good, &alg, &poor);
    assert!(rep
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Unroutable { .. })));

    // Condition 3: collapse one space row.
    let mut t = good.clone();
    t.space = bitlevel::linalg::IMat::from_rows(&[&[p, 0, 0, 1, 0], &[p, 0, 0, 1, 0]]);
    let rep = check_feasibility(&t, &alg, &ic);
    assert!(rep
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Conflict { .. })));

    // Condition 4: rank deficiency (same mutation also trips rank).
    assert!(rep
        .violations
        .iter()
        .any(|v| matches!(v, Violation::RankDeficient { .. })));

    // Condition 5: scale everything by 2.
    let t = bitlevel::MappingMatrix::new(good.space.map(|x| 2 * x), good.schedule.scaled(2));
    let rep = check_feasibility(&t, &alg, &Interconnect::paper_p(2 * p));
    assert!(rep
        .violations
        .iter()
        .any(|v| matches!(v, Violation::NotCoprime { gcd: 2 })));
}

#[test]
fn simulator_rejects_what_feasibility_rejects() {
    // Feasibility and simulation must agree on legality for schedule /
    // routing failures (conflicts and causality are dynamic properties the
    // simulator observes directly).
    let p = 2i64;
    let alg = matmul_structure();
    let fast = PaperDesign::TimeOptimal.mapping(p);
    let slow_machine = PaperDesign::NearestNeighbour.interconnect(p);
    let feas = check_feasibility(&fast, &alg, &slow_machine);
    let run = simulate_mapped(&alg, &fast, &slow_machine);
    assert!(!feas.is_feasible());
    assert!(!run.causality_ok);
}

#[test]
fn off_by_one_schedule_changes_measured_cycles() {
    // The measured-vs-closed-form check in E6 is not vacuous: a slightly
    // different (still feasible) schedule yields different cycles.
    let p = 2i64;
    let alg = matmul_structure();
    let mut t = PaperDesign::NearestNeighbour.mapping(p); // Π' = [2,2,1,2,1]
    let base = simulate_mapped(&alg, &t, &PaperDesign::NearestNeighbour.interconnect(p)).cycles;
    t.schedule = IVec::from([3, 2, 1, 2, 1]); // still all-positive, d̄-ordered
    let changed = simulate_mapped(&alg, &t, &PaperDesign::NearestNeighbour.interconnect(p)).cycles;
    assert_ne!(base, changed);
}
