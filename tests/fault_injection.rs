//! Integration tests for the fault-injection & ABFT subsystem (E17): plan
//! determinism across engines, bit-identity of the empty plan, and the
//! partition/zero-SDC bars of the exhaustive campaign.

use bitlevel::fault::{matmul_structure, operand_matrices, single_fault_campaign, MatmulChecksums};
use bitlevel::systolic::{
    render_fault_heatmap, run_clocked, run_clocked_faulted, CompiledSchedule,
    MatmulExpansionIICells, NullSink,
};
use bitlevel::{BitMatmulArray, FaultKind, FaultOutcome, FaultPlan, PaperDesign, RandomFault};
use proptest::prelude::*;

const DESIGNS: [PaperDesign; 2] = [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour];

#[test]
fn empty_plan_is_bit_identical_to_a_faultless_run_on_both_engines() {
    let (u, p) = (2usize, 2usize);
    let alg = matmul_structure(u, p);
    let (x, y) = operand_matrices(u, p, 11);
    for design in DESIGNS {
        let t = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);
        let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let baseline = run_clocked(&alg, &t, &ic, &mut cells);
        assert!(baseline.is_legal());

        let resolved = FaultPlan::empty().resolve(&alg, &t);
        assert!(resolved.injected.is_empty());

        let interp = run_clocked_faulted(&alg, &t, &ic, &mut cells, &mut NullSink, &resolved);
        assert_eq!(
            baseline.outputs, interp.outputs,
            "{design:?} interpreted outputs drifted"
        );
        assert_eq!(baseline.cycles, interp.cycles);
        assert_eq!(baseline.violations, interp.violations);
        assert_eq!(baseline.peak_in_flight, interp.peak_in_flight);

        let sched = CompiledSchedule::try_compile(&alg, &t, &ic).expect("matmul compiles");
        let compiled = sched.execute_faulted(&cells, &mut NullSink, &resolved);
        assert_eq!(
            baseline.outputs, compiled.outputs,
            "{design:?} compiled outputs drifted"
        );
        assert_eq!(baseline.cycles, compiled.cycles);
        assert_eq!(baseline.violations, compiled.violations);
    }
}

#[test]
fn exhaustive_campaign_classifies_every_case_exactly_once_with_zero_sdc() {
    for design in DESIGNS {
        let r = single_fault_campaign(design, 2, 2, 0xE17);
        // Every (point, bit) pair appears as exactly one case, each in
        // exactly one class.
        assert_eq!(r.total, 32 * 5, "{design:?}");
        assert_eq!(r.cases.len(), r.total);
        assert!(
            r.classifications_partition(),
            "{design:?} classes overlap or leak"
        );
        assert_eq!(r.sdc, 0, "{design:?} leaked a silent corruption");
        assert_eq!(r.engine_mismatches, 0, "{design:?} engines disagreed");
        assert!(
            r.masked > 0 && r.detected > 0,
            "{design:?} campaign is degenerate"
        );
        for c in &r.cases {
            assert!(
                c.agree(),
                "case {:?} at {} split across engines",
                c.kind,
                c.point
            );
        }
    }
}

#[test]
fn heat_map_renders_the_two_campaign_vulnerability_profiles() {
    let fig4 = single_fault_campaign(PaperDesign::TimeOptimal, 2, 2, 5);
    let fig5 = single_fault_campaign(PaperDesign::NearestNeighbour, 2, 2, 5);
    let map = render_fault_heatmap(
        "Fig. 4",
        &fig4.vulnerability_map(),
        "Fig. 5",
        &fig5.vulnerability_map(),
        usize::MAX,
    );
    assert!(map.contains("fault vulnerability heat map"));
    assert!(map.contains("Fig. 4") && map.contains("Fig. 5"));
    assert!(map.lines().count() > 2, "no PE rows rendered:\n{map}");
}

/// Runs one randomized plan on both engines of both designs and checks the
/// ABFT classifications (and the raw output bundles) agree bit for bit.
fn check_engines_agree(seed: u64, rate: f64, bit: usize) {
    let (u, p) = (2usize, 2usize);
    let alg = matmul_structure(u, p);
    let (x, y) = operand_matrices(u, p, seed);
    let golden = BitMatmulArray::new(u, p).reference(&x, &y);
    let checksums = MatmulChecksums::derive(&x, &y, p);
    let plan = FaultPlan {
        seed,
        targeted: vec![],
        random: vec![
            RandomFault {
                kind: FaultKind::TransientFlip { bit },
                rate,
            },
            RandomFault {
                kind: FaultKind::StuckAt {
                    bit,
                    value: seed % 2 == 0,
                },
                rate: rate / 2.0,
            },
        ],
    };
    for design in DESIGNS {
        let t = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);
        let resolved = plan.resolve(&alg, &t);
        let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let irun = run_clocked_faulted(&alg, &t, &ic, &mut cells, &mut NullSink, &resolved);
        let sched = CompiledSchedule::try_compile(&alg, &t, &ic).expect("matmul compiles");
        let crun = sched.execute_faulted(&cells, &mut NullSink, &resolved);
        let iout: FaultOutcome = checksums.classify(&golden, &cells.extract_product(&irun));
        let cout: FaultOutcome = checksums.classify(&golden, &cells.extract_product(&crun));
        assert_eq!(
            iout, cout,
            "engines disagreed on {design:?} seed={seed} rate={rate}"
        );
        assert_eq!(
            irun.outputs, crun.outputs,
            "raw outputs diverged on {design:?}"
        );
    }
}

#[test]
fn engines_classify_identically_on_fixed_randomized_plans() {
    for (seed, rate, bit) in [
        (0, 0.0, 0),
        (1, 0.05, 1),
        (0xE17, 0.1, 2),
        (42, 0.2, 3),
        (7_777_777, 0.15, 4),
    ] {
        check_engines_agree(seed, rate, bit);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Both engines classify identically under identical randomized plans,
    /// whatever the seed and rate.
    #[test]
    fn engines_classify_identically_under_identical_plans(
        seed in 0u64..1 << 48,
        rate in 0.0f64..0.2,
        bit in 0usize..5,
    ) {
        check_engines_agree(seed, rate, bit);
    }
}
