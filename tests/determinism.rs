//! Determinism: every API that involves parallelism or search must return
//! identical results across repeated invocations (documented tie-breaking,
//! no iteration-order leakage). Reproducible experiments depend on this.

use bitlevel::depanal::{compose, Expansion};
use bitlevel::mapping::{
    find_linear_array_mapping, find_optimal_schedule, find_optimal_schedule_bestfirst,
    linear_interconnect, Interconnect, PaperDesign,
};
use bitlevel::systolic::simulate_mapped_parallel;
use bitlevel::WordLevelAlgorithm;

#[test]
fn schedule_search_is_deterministic() {
    let alg = compose(&WordLevelAlgorithm::matmul(2), 2, Expansion::II);
    let s = PaperDesign::space(2);
    let ic = Interconnect::paper_p(2);
    let first = find_optimal_schedule(&s, &alg, &ic, 2).unwrap();
    for _ in 0..3 {
        let again = find_optimal_schedule(&s, &alg, &ic, 2).unwrap();
        assert_eq!(first.pi, again.pi);
        assert_eq!(first.time, again.time);
        assert_eq!(first.feasible_count, again.feasible_count);
    }
    // And the best-first variant lands on the same optimum.
    let bf = find_optimal_schedule_bestfirst(&s, &alg, &ic, 2).unwrap();
    assert_eq!(first.pi, bf.pi);
}

#[test]
fn parallel_simulation_is_deterministic() {
    let alg = compose(&WordLevelAlgorithm::matmul(3), 3, Expansion::II);
    let design = PaperDesign::TimeOptimal;
    let t = design.mapping(3);
    let ic = design.interconnect(3);
    let first = simulate_mapped_parallel(&alg, &t, &ic);
    for _ in 0..3 {
        let again = simulate_mapped_parallel(&alg, &t, &ic);
        assert_eq!(first.cycles, again.cycles);
        assert_eq!(first.link_traffic, again.link_traffic);
        assert_eq!(first.buffer_cycles, again.buffer_cycles);
        assert_eq!(first.peak_parallelism, again.peak_parallelism);
    }
}

#[test]
fn linear_array_synthesis_is_deterministic() {
    // Rayon fans out over S candidates; the min_by tie-break must make the
    // winner order-independent.
    let word_alg = WordLevelAlgorithm::matmul(3).triplet();
    let ic = linear_interconnect(None);
    let first = find_linear_array_mapping(&word_alg, &ic, 1, 2).unwrap();
    for _ in 0..3 {
        let again = find_linear_array_mapping(&word_alg, &ic, 1, 2).unwrap();
        assert_eq!(first.mapping, again.mapping);
        assert_eq!(first.time, again.time);
        assert_eq!(first.processors, again.processors);
    }
}
