//! Larger-scale stress tests (run with `cargo test -- --ignored --release`).
//!
//! The regular suite keeps index sets small so exhaustive baselines stay
//! fast; these tests exercise the production paths at realistic sizes.

use bitlevel::depanal::{compose, Expansion};
use bitlevel::systolic::{simulate_mapped_parallel, BitMatmulArray};
use bitlevel::{PaperDesign, WordLevelAlgorithm};

/// A million-point mapped simulation (u = 16, p = 16 → 16³·16² ≈ 1.05M
/// points) through the parallel simulator, with every closed form intact.
#[test]
#[ignore = "stress: ~1M index points; run with --ignored --release"]
fn million_point_mapped_simulation() {
    let (u, p) = (16i64, 16i64);
    let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
    assert_eq!(
        alg.index_set.cardinality(),
        (u as u128).pow(3) * (p as u128).pow(2)
    );
    let design = PaperDesign::TimeOptimal;
    let run = simulate_mapped_parallel(&alg, &design.mapping(p), &design.interconnect(p));
    assert_eq!(run.cycles, 3 * (u - 1) + 3 * (p - 1) + 1);
    assert_eq!(run.processors as i64, u * u * p * p);
    assert!(run.conflict_free && run.causality_ok);
}

/// 32-bit words through the functional array: 8×8 matrices of 32-bit
/// operands, bit-exact.
#[test]
#[ignore = "stress: 8x8 @ p=32 functional array; run with --ignored --release"]
fn wide_word_functional_array() {
    let (u, p) = (8usize, 32usize);
    let arr = BitMatmulArray::new(u, p);
    let cap = arr.max_safe_entry();
    assert!(
        cap > 1 << 20,
        "32-bit accumulator leaves real headroom: {cap}"
    );
    let x: Vec<Vec<u128>> = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| (0x9e37 * i as u128 + 0x79b9 * j as u128 + 1) % (cap + 1))
                .collect()
        })
        .collect();
    let y: Vec<Vec<u128>> = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| (0x85eb * i as u128 + 0xca6b * j as u128 + 2) % (cap + 1))
                .collect()
        })
        .collect();
    let z = arr.multiply(&x, &y);
    for i in 0..u {
        for j in 0..u {
            let want: u128 = (0..u).map(|k| x[i][k] * y[k][j]).sum();
            assert_eq!(z[i][j], want, "Z[{i}][{j}]");
        }
    }
}

/// Deep accumulation chains: u = 64 word-level steps with the word-level
/// array and exact bit-level PEs.
#[test]
#[ignore = "stress: 64x64 word-level array with bit-level PEs; run with --ignored --release"]
fn deep_word_level_accumulation() {
    let u = 64usize;
    let p = 16usize;
    let mul = bitlevel::CarrySave::new(p);
    let arr = bitlevel::WordLevelArray::new(u, &mul);
    let cap = (1u128 << p) - 1;
    let x: Vec<Vec<u128>> = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| (i as u128 * 7919 + j as u128 * 104729) % (cap + 1))
                .collect()
        })
        .collect();
    let y: Vec<Vec<u128>> = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| (i as u128 * 15485863 + j as u128 + 3) % (cap + 1))
                .collect()
        })
        .collect();
    let run = arr.run(&x, &y);
    assert_eq!(run.word_cycles, 3 * (u as i64 - 1) + 1);
    for i in (0..u).step_by(17) {
        for j in (0..u).step_by(13) {
            let want: u128 = (0..u).map(|k| x[i][k] * y[k][j]).sum();
            assert_eq!(run.z[i][j], want);
        }
    }
}
