//! Serialization round-trips for the public data types.
//!
//! The experiment harness serialises record tables and reports to JSON;
//! these tests pin down that the core IR and mapping types round-trip
//! losslessly through serde, so saved analyses can be reloaded.

use bitlevel::depanal::{compose, Expansion};
use bitlevel::ir::{
    AlgorithmTriplet, BoxSet, Dependence, DependenceSet, Polyhedron, Predicate, WordLevelAlgorithm,
};
use bitlevel::linalg::{IMat, IVec};
use bitlevel::{FaultKind, FaultPlan, MappingMatrix, RandomFault, TargetedFault};

/// True when the offline `.dev-stubs` serde_json (which serialises everything
/// to the empty string) is in use; round-trip assertions are meaningless then
/// and each test degrades to a no-op. Against the real crates this probe is
/// `false` and the tests run in full.
fn stub_serde() -> bool {
    serde_json::to_string(&1i64)
        .map(|s| s.is_empty())
        .unwrap_or(true)
}

fn roundtrip<T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(
    value: &T,
) {
    if stub_serde() {
        return;
    }
    let json = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, value);
}

#[test]
fn linalg_types_roundtrip() {
    roundtrip(&IVec::from([1, -2, 3]));
    roundtrip(&IMat::from_rows(&[&[1, 0, 1], &[0, 1, -1]]));
}

#[test]
fn index_sets_roundtrip() {
    roundtrip(&BoxSet::cube(3, 1, 5));
    roundtrip(&Polyhedron::lower_triangle(1, 4));
}

#[test]
fn predicates_and_dependences_roundtrip() {
    let q1 = Predicate::ne_const(1, 1)
        .or(&Predicate::not_in(2, &[1, 2]))
        .and(&Predicate::eq_upper(0));
    roundtrip(&q1);
    roundtrip(&Dependence::conditional([0, 1, -1], "z", q1));
    roundtrip(&DependenceSet::new(vec![
        Dependence::uniform([1, 0], "a"),
        Dependence::uniform([0, 1], "b,c"),
    ]));
}

#[test]
fn whole_bitlevel_structure_roundtrips() {
    let alg = compose(&WordLevelAlgorithm::matmul(3), 3, Expansion::II);
    roundtrip(&alg);
    if stub_serde() {
        return;
    }
    // And the deserialized structure still evaluates identically.
    let json = serde_json::to_string(&alg).unwrap();
    let back: AlgorithmTriplet = serde_json::from_str(&json).unwrap();
    assert!(alg.same_dependence_behaviour(&back));
}

#[test]
fn word_level_algorithms_roundtrip() {
    roundtrip(&WordLevelAlgorithm::matmul(4));
    roundtrip(&WordLevelAlgorithm::convolution(5, 3));
    roundtrip(&WordLevelAlgorithm::matvec(3, 4)); // h2 = None case
}

#[test]
fn mapping_matrix_roundtrips() {
    let t = MappingMatrix::new(
        IMat::from_rows(&[&[3, 0, 0, 1, 0], &[0, 3, 0, 0, 1]]),
        IVec::from([1, 1, 1, 2, 1]),
    );
    roundtrip(&t);
}

#[test]
fn expansion_tag_roundtrips() {
    roundtrip(&Expansion::I);
    roundtrip(&Expansion::II);
}

#[test]
fn fault_plans_roundtrip() {
    roundtrip(&FaultPlan::empty());
    let plan = FaultPlan {
        seed: 0xE17,
        targeted: vec![
            TargetedFault {
                kind: FaultKind::TransientFlip { bit: 2 },
                pe: IVec::from([3, 4]),
                cycle: Some(5),
            },
            TargetedFault {
                kind: FaultKind::DeadPe,
                pe: IVec::from([6, 6]),
                cycle: None,
            },
            TargetedFault {
                kind: FaultKind::StuckAt {
                    bit: 0,
                    value: true,
                },
                pe: IVec::from([4, 4]),
                cycle: None,
            },
        ],
        random: vec![
            RandomFault {
                kind: FaultKind::DroppedTransfer { column: 3 },
                rate: 0.01,
            },
            RandomFault {
                kind: FaultKind::DuplicatedTransfer { column: 6 },
                rate: 0.005,
            },
        ],
    };
    roundtrip(&plan);
    if stub_serde() {
        return;
    }
    // A reloaded plan resolves identically: resolution is a pure function
    // of the (plan, structure, mapping) triple.
    let json = serde_json::to_string(&plan).unwrap();
    let back: FaultPlan = serde_json::from_str(&json).unwrap();
    let alg = compose(&WordLevelAlgorithm::matmul(2), 2, Expansion::II);
    let t = bitlevel::PaperDesign::TimeOptimal.mapping(2);
    assert_eq!(
        plan.resolve(&alg, &t).injected,
        back.resolve(&alg, &t).injected
    );
}

#[test]
fn compiled_schedules_roundtrip_through_serde_and_the_wire_format() {
    use bitlevel::{CompiledSchedule, PaperDesign};
    let alg = compose(&WordLevelAlgorithm::matmul(2), 2, Expansion::II);
    let design = PaperDesign::TimeOptimal;
    let sched = CompiledSchedule::try_compile(&alg, &design.mapping(2), &design.interconnect(2))
        .expect("the matmul structure compiles");
    // JSON via serde (skipped under the offline stub) ...
    roundtrip(&sched);
    // ... and the versioned binary wire format the disk cache persists,
    // which round-trips offline too.
    let back = CompiledSchedule::from_bytes(&sched.to_bytes()).expect("own bytes decode");
    assert_eq!(back, sched);
}
