//! End-to-end behaviour of the content-hashed compile cache through the
//! public facade: warm evaluations are recompile-free and bit-identical,
//! persisted entries survive "process restarts", and every flavour of disk
//! damage — corruption, truncation, version skew — degrades to a recorded
//! miss plus a correct recompile, never a panic or a wrong result.

use bitlevel::{DesignFlow, PaperDesign, SimBackend};
use std::fs;
use std::path::PathBuf;

/// A fresh scratch directory under the system temp dir, unique per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bitlevel-cache-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The single persisted `*.blsc` entry inside `dir`.
fn only_entry(dir: &std::path::Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "blsc"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one persisted schedule");
    entries.pop().unwrap()
}

/// Evaluates Fig. 4 on a fresh disk-backed flow and returns the report.
fn evaluate_with_dir(dir: &std::path::Path) -> bitlevel::ArchitectureReport {
    DesignFlow::matmul(2, 2)
        .with_cache_dir(dir)
        .evaluate_paper_design(PaperDesign::TimeOptimal)
}

#[test]
fn warm_evaluation_is_recompile_free_and_bit_identical() {
    let flow = DesignFlow::matmul(3, 3);
    let cold = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
    let warm = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
    let stats = flow.cache().stats();
    assert_eq!(stats.compiles(), 1, "one compile serves both evaluations");
    assert_eq!(stats.hits, 1);
    assert_eq!(warm.run.divergences_from(&cold.run), Vec::<&str>::new());
    assert_eq!(warm.backend_used, cold.backend_used);
    assert_eq!(warm.feasible, cold.feasible);
    assert_eq!(
        warm.cache.as_ref().unwrap().key,
        cold.cache.as_ref().unwrap().key
    );
    assert_eq!(warm.cache.as_ref().unwrap().outcome, "memory-hit");
}

#[test]
fn persisted_entry_survives_a_restart() {
    let dir = scratch("restart");
    let cold = evaluate_with_dir(&dir);
    assert_eq!(cold.cache.as_ref().unwrap().outcome, "miss-compiled");
    // A brand-new flow over the same directory models a process restart.
    let warm_flow = DesignFlow::matmul(2, 2).with_cache_dir(&dir);
    let warm = warm_flow.evaluate_paper_design(PaperDesign::TimeOptimal);
    assert_eq!(warm.cache.as_ref().unwrap().outcome, "disk-hit");
    assert_eq!(warm_flow.cache().stats().compiles(), 0);
    assert_eq!(warm.run.divergences_from(&cold.run), Vec::<&str>::new());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_disk_entry_degrades_to_a_recorded_recompile() {
    let dir = scratch("corrupt");
    let cold = evaluate_with_dir(&dir);
    let path = only_entry(&dir);
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    fs::write(&path, &bytes).unwrap();

    let flow = DesignFlow::matmul(2, 2).with_cache_dir(&dir);
    let rep = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
    let stats = flow.cache().stats();
    assert_eq!(rep.cache.as_ref().unwrap().outcome, "miss-compiled");
    assert_eq!(stats.corrupt_entries, 1, "the damage must be recorded");
    assert_eq!(stats.compiles(), 1);
    assert_eq!(rep.run.divergences_from(&cold.run), Vec::<&str>::new());
    // The recompile re-published a good entry: the next restart disk-hits.
    let again = evaluate_with_dir(&dir);
    assert_eq!(again.cache.as_ref().unwrap().outcome, "disk-hit");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_disk_entry_degrades_to_a_recorded_recompile() {
    let dir = scratch("truncate");
    let cold = evaluate_with_dir(&dir);
    let path = only_entry(&dir);
    let bytes = fs::read(&path).unwrap();
    for keep in [0usize, 3, 16, bytes.len() - 1] {
        fs::write(&path, &bytes[..keep]).unwrap();
        let flow = DesignFlow::matmul(2, 2).with_cache_dir(&dir);
        let rep = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
        assert_eq!(
            rep.cache.as_ref().unwrap().outcome,
            "miss-compiled",
            "truncation to {keep} bytes must fall back to a recompile"
        );
        assert_eq!(flow.cache().stats().corrupt_entries, 1);
        assert_eq!(rep.run.divergences_from(&cold.run), Vec::<&str>::new());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn version_skewed_disk_entry_degrades_to_a_recorded_recompile() {
    let dir = scratch("skew");
    let cold = evaluate_with_dir(&dir);
    let path = only_entry(&dir);
    // The wire format stores its version as a u32 at offset 4; a future
    // format writes a number this reader does not understand.
    let mut bytes = fs::read(&path).unwrap();
    bytes[4] = bytes[4].wrapping_add(1);
    fs::write(&path, &bytes).unwrap();

    let flow = DesignFlow::matmul(2, 2).with_cache_dir(&dir);
    let rep = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
    assert_eq!(rep.cache.as_ref().unwrap().outcome, "miss-compiled");
    assert_eq!(flow.cache().stats().corrupt_entries, 1);
    assert_eq!(rep.run.divergences_from(&cold.run), Vec::<&str>::new());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn one_shared_cache_warms_every_backend_flavour() {
    use bitlevel::CompileCache;
    let cache = CompileCache::new();
    let scalar = DesignFlow::matmul(2, 3).with_cache(cache.clone());
    let batch = DesignFlow::matmul(2, 3)
        .with_cache(cache.clone())
        .with_backend(SimBackend::CompiledBatch { width: 4 });
    let oracle = DesignFlow::matmul(2, 3).with_backend(SimBackend::Interpreted);

    let (xs, ys): (Vec<_>, Vec<_>) = (0..5)
        .map(|k| {
            let x = vec![vec![(k + 1) as u128, 2], vec![3, (k + 2) as u128]];
            let y = vec![vec![1, (k + 3) as u128], vec![(k + 1) as u128, 2]];
            (x, y)
        })
        .unzip();
    let a = scalar.evaluate_batch(PaperDesign::TimeOptimal, &xs, &ys);
    let b = batch.evaluate_batch(PaperDesign::TimeOptimal, &xs, &ys);
    let c = oracle.evaluate_batch(PaperDesign::TimeOptimal, &xs, &ys);
    // Cross-engine agreement is unchanged with the cache in the loop: the
    // scalar flow compiled once, the batch flow hit that same artifact.
    assert_eq!(a.products, c.products);
    assert_eq!(b.products, c.products);
    assert_eq!(a.cycles, c.cycles);
    assert_eq!(cache.stats().compiles(), 1, "one compile for both flows");
    assert!(cache.stats().hits >= 1);
}

#[test]
fn degenerate_batch_widths_are_rejected_with_typed_errors() {
    use bitlevel::BackendConfigError;
    let flow = DesignFlow::matmul(2, 2);
    assert_eq!(
        flow.clone()
            .with_validated_backend(SimBackend::CompiledBatch { width: 0 })
            .unwrap_err(),
        BackendConfigError::ZeroBatchWidth
    );
    assert!(matches!(
        flow.clone()
            .with_validated_backend(SimBackend::CompiledBatch { width: 1000 })
            .unwrap_err(),
        BackendConfigError::BatchWidthTooLarge { width: 1000, .. }
    ));
    assert!(flow
        .with_validated_backend(SimBackend::CompiledBatch { width: 64 })
        .is_ok());
}
