//! Integration tests for the lane-packed fault campaign (E20): the batched
//! sweep must reach the scalar dual-engine campaign's verdict case for case
//! at every lane width — including ragged tails — while sharing one compiled
//! schedule through the cache.

use bitlevel::{
    batched_single_fault_campaign, single_fault_campaign_with_cache, CompileCache, PaperDesign,
};
use proptest::prelude::*;

const DESIGNS: [PaperDesign; 2] = [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour];

/// Runs the scalar and the width-`width` batched campaign on one design and
/// asserts case-for-case identity plus the structural invariants.
fn check_batched_matches_scalar(design: PaperDesign, u: usize, p: usize, seed: u64, width: usize) {
    let cache = CompileCache::new();
    let scalar = single_fault_campaign_with_cache(design, u, p, seed, &cache);
    let batched = batched_single_fault_campaign(design, u, p, seed, width, &cache);

    assert_eq!(batched.total, scalar.total, "{design:?} width {width}");
    assert_eq!(
        batched.walks,
        scalar.total.div_ceil(width),
        "{design:?} width {width}: wrong walk count"
    );
    assert!(
        batched.classifications_partition(),
        "{design:?} width {width}: classes overlap or leak"
    );
    assert!(
        batched.matches_scalar(&scalar),
        "{design:?} width {width}: a lane's classification diverged from the scalar sweep"
    );
    assert_eq!(batched.sdc, 0, "{design:?} width {width}: SDC appeared");
    assert_eq!(
        batched.vulnerability_map(),
        scalar.vulnerability_map(),
        "{design:?} width {width}: heat maps diverged"
    );
    // One compile serves both campaigns; the batched one replays from cache.
    let stats = cache.stats();
    assert_eq!(stats.compiles(), 1, "{design:?} width {width}");
    assert_eq!(stats.hits, 1, "{design:?} width {width}");
}

#[test]
fn batched_campaign_matches_scalar_at_full_and_ragged_widths() {
    // 160 cases at (2, 2): width 64 leaves a 32-lane ragged tail, width 7 a
    // 6-lane tail, width 3 a 1-lane tail; width 1 degenerates to the scalar
    // sweep one case per walk.
    for design in DESIGNS {
        for width in [1usize, 3, 7, 64] {
            check_batched_matches_scalar(design, 2, 2, 0xE20, width);
        }
    }
}

#[test]
fn batched_campaign_matches_scalar_on_a_deeper_word() {
    // (u, p) = (2, 3) stretches every chain to 3 bits: 360 cases, so width
    // 64 runs 6 walks with a 40-lane tail.
    for design in DESIGNS {
        check_batched_matches_scalar(design, 2, 3, 0x1CC7_1993, 64);
    }
}

#[test]
fn batched_campaign_is_seed_deterministic() {
    let cache = CompileCache::new();
    let a = batched_single_fault_campaign(PaperDesign::TimeOptimal, 2, 2, 0xE20, 64, &cache);
    let b = batched_single_fault_campaign(PaperDesign::TimeOptimal, 2, 2, 0xE20, 64, &cache);
    assert_eq!(a.to_json(), b.to_json());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the lane width (ragged tails included) and seed, the
    /// batched campaign reaches the scalar campaign's verdict case for
    /// case on both paper designs.
    #[test]
    fn batched_campaign_matches_scalar_for_any_width(
        width in 1usize..=64,
        seed in 0u64..1 << 48,
    ) {
        for design in DESIGNS {
            check_batched_matches_scalar(design, 2, 2, seed, width);
        }
    }
}
