//! End-to-end behaviour of the NDJSON evaluation service through the public
//! facade: concurrent identical requests share one compile and return
//! byte-identical frames, deadlines surface as typed timeout frames on a
//! still-usable connection, malformed and oversized lines never kill a
//! worker, exploration and Monte Carlo campaigns stream progress before the
//! terminal result, and a graceful shutdown drains everything.

use bitlevel::serve::{
    serve, CampaignMode, DesignSpec, ErrorKind, Frame, Request, RequestEnvelope, ServeClient,
    ServeConfig,
};
use bitlevel::SimBackend;

/// A server on an ephemeral loopback port with a fast poll tick.
fn start() -> bitlevel::serve::ServerHandle {
    serve(ServeConfig {
        workers: 8,
        poll_interval_ms: 10,
        ..ServeConfig::default()
    })
    .expect("ephemeral-port server starts")
}

fn evaluate(id: u64) -> RequestEnvelope {
    RequestEnvelope {
        id,
        deadline_ms: None,
        request: Request::Evaluate {
            u: 3,
            p: 3,
            design: DesignSpec::TimeOptimal,
            backend: SimBackend::Compiled,
        },
    }
}

#[test]
fn eight_concurrent_identical_evaluates_cost_one_compile() {
    let handle = start();
    let addr = handle.local_addr();
    let env = evaluate(7);

    const CLIENTS: usize = 8;
    let lines: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let env = env.clone();
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let tx = client.request_collect(&env).expect("transaction completes");
                    assert!(tx.error().is_none(), "no error frame expected");
                    tx.terminal_line().expect("terminal frame").to_string()
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread"))
            .collect()
    });

    // Single-flight: all eight racing misses collapse onto one compile.
    let stats = handle.cache().snapshot();
    assert_eq!(
        stats.misses, 1,
        "exactly one compile for 8 identical requests"
    );

    // Bit-identical responses, and a Result frame echoing the request id.
    assert!(lines.iter().all(|l| *l == lines[0]), "responses diverged");
    assert!(matches!(
        Frame::parse(&lines[0]),
        Ok(Frame::Result { id: 7, .. })
    ));

    handle.shutdown();
    handle.join();
}

#[test]
fn zero_deadline_is_a_typed_timeout_on_a_surviving_connection() {
    let handle = start();
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    let mut env = evaluate(11);
    env.deadline_ms = Some(0);
    let tx = client.request_collect(&env).expect("transaction completes");
    let err = tx
        .error()
        .expect("a zero deadline must produce an error frame");
    assert_eq!(err.kind, ErrorKind::Timeout);
    assert!(matches!(
        Frame::parse(tx.terminal_line().unwrap()),
        Ok(Frame::Error { id: Some(11), .. })
    ));

    // The connection (and its worker) must survive the timeout.
    let ok = client
        .request_collect(&evaluate(12))
        .expect("connection still usable");
    assert!(ok.error().is_none());
    assert!(matches!(
        Frame::parse(ok.terminal_line().unwrap()),
        Ok(Frame::Result { id: 12, .. })
    ));

    handle.shutdown();
    handle.join();
}

#[test]
fn malformed_and_oversized_lines_get_typed_errors_not_a_dead_worker() {
    let handle = start();
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    client.send_raw("this is not json").expect("send");
    let (_, frame) = client.next_frame().expect("read").expect("frame");
    assert!(matches!(
        frame,
        Frame::Error { id: None, ref error } if error.kind == ErrorKind::MalformedRequest
    ));

    let oversized = format!("{{\"pad\":\"{}\"}}", "x".repeat(2 * 1024 * 1024));
    client.send_raw(&oversized).expect("send");
    let (_, frame) = client.next_frame().expect("read").expect("frame");
    assert!(matches!(
        frame,
        Frame::Error { id: None, ref error } if error.kind == ErrorKind::FrameTooLarge
    ));

    // Same connection, same worker: a well-formed request still succeeds.
    let tx = client.request_collect(&evaluate(13)).expect("still usable");
    assert!(tx.error().is_none());

    handle.shutdown();
    handle.join();
}

#[test]
fn explore_and_monte_carlo_stream_progress_before_the_result() {
    let handle = start();
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    let explored = client
        .request_collect(&RequestEnvelope {
            id: 21,
            deadline_ms: None,
            request: Request::Explore {
                u: 2,
                p: 2,
                backend: SimBackend::Compiled,
            },
        })
        .expect("explore completes");
    assert!(explored.error().is_none());
    let points = explored
        .progress_frames()
        .filter(|p| p.get("stage").and_then(|s| s.as_str()) == Some("frontier-point"))
        .count();
    let designs = explored
        .result()
        .and_then(|r| r.get("designs"))
        .and_then(|d| d.as_i64())
        .expect("designs count");
    assert!(points > 0, "frontier points must stream as progress frames");
    assert_eq!(
        points as i64, designs,
        "one progress frame per frontier design"
    );

    let campaign = client
        .request_collect(&RequestEnvelope {
            id: 22,
            deadline_ms: None,
            request: Request::FaultCampaign {
                u: 2,
                p: 2,
                design: DesignSpec::TimeOptimal,
                mode: CampaignMode::MonteCarlo {
                    seed: 7,
                    trials: 130,
                    rate: 1e-2,
                },
            },
        })
        .expect("campaign completes");
    assert!(campaign.error().is_none());
    let chunks = campaign
        .progress_frames()
        .filter(|p| p.get("stage").and_then(|s| s.as_str()) == Some("campaign-chunk"))
        .count();
    assert_eq!(chunks, 3, "130 trials chunk as 64 + 64 + 2");
    let trials = campaign
        .result()
        .and_then(|r| r.get("trials"))
        .and_then(|t| t.as_i64());
    assert_eq!(trials, Some(130));

    handle.shutdown();
    handle.join();
}

#[test]
fn stats_report_the_cache_delta_and_shutdown_acks() {
    let handle = start();
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    client.request_collect(&evaluate(31)).expect("evaluate");
    let stats = client
        .request_collect(&RequestEnvelope {
            id: 32,
            deadline_ms: None,
            request: Request::Stats,
        })
        .expect("stats");
    let delta = stats
        .result()
        .and_then(|r| r.get("cache_delta"))
        .expect("cache_delta present");
    assert_eq!(
        delta.get("misses").and_then(|m| m.as_i64()),
        Some(1),
        "one compile since server start"
    );

    let ack = client
        .request_collect(&RequestEnvelope {
            id: 33,
            deadline_ms: None,
            request: Request::Shutdown,
        })
        .expect("shutdown ack");
    assert_eq!(
        ack.result()
            .and_then(|r| r.get("shutting_down"))
            .and_then(|b| b.as_bool()),
        Some(true)
    );
    handle.join();
}
