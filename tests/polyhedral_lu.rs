//! LU decomposition over a triangular (polyhedral) index set.
//!
//! The paper names LU decomposition among the word-level workloads its
//! method targets ("matrix multiplications, LU decompositions and
//! convolutions…") — LU is exactly why the toolkit carries both the
//! polyhedral index-set machinery (LU's iteration space `{k ≤ i, j}` is a
//! wedge, not a box) and the division entry of the arithmetic catalogue
//! (the `a(i,k)/a(k,k)` step). This test maps the classic uniformised LU
//! dependence structure onto the standard 2-D array and verifies the known
//! results through the polyhedral checkers.

use bitlevel::arith::NonRestoringDivider;
use bitlevel::ir::{BoxSet, Polyhedron};
use bitlevel::linalg::{IMat, IVec};
use bitlevel::mapping::{
    check_conflicts_polyhedral, processor_count_polyhedral, total_time_polyhedral,
};
use bitlevel::MappingMatrix;

/// The LU iteration wedge `{ (k, i, j) : 1 ≤ k ≤ n, k ≤ i ≤ n, k ≤ j ≤ n }`.
fn lu_wedge(n: i64) -> Polyhedron {
    // Constraints: k ≤ n, −k ≤ −1, i ≤ n, k − i ≤ 0, j ≤ n, k − j ≤ 0.
    let a = IMat::from_rows(&[
        &[1, 0, 0],
        &[-1, 0, 0],
        &[0, 1, 0],
        &[1, -1, 0],
        &[0, 0, 1],
        &[1, 0, -1],
    ]);
    let b = IVec::from([n, -1, n, 0, n, 0]);
    Polyhedron::new(a, b, BoxSet::cube(3, 1, n))
}

#[test]
fn wedge_cardinality() {
    // Σ_{k=1}^{n} (n−k+1)² = Σ m² for m = 1..n.
    for n in 2..6i64 {
        let wedge = lu_wedge(n);
        let expect: u128 = (1..=n as u128).map(|m| m * m).sum();
        assert_eq!(wedge.cardinality(), expect, "n = {n}");
    }
}

#[test]
fn classic_lu_mapping_is_conflict_free_on_the_wedge() {
    // The classic design: project along k onto the (i, j) grid, schedule
    // Π = [1, 1, 1].
    let n = 4i64;
    let wedge = lu_wedge(n);
    let t = MappingMatrix::new(
        IMat::from_rows(&[&[0, 1, 0], &[0, 0, 1]]),
        IVec::from([1, 1, 1]),
    );
    assert!(check_conflicts_polyhedral(&t, &wedge).is_free());
    // Kernel of T is span([1,0,0]): two iterations (k, i, j) and (k', i, j)
    // would collide iff both lie in the wedge at the same time k+i+j — the
    // k-projection is only conflict-free because Π separates the k levels.
    // Removing Π's k-term must create conflicts:
    let bad = MappingMatrix::new(
        IMat::from_rows(&[&[0, 1, 0], &[0, 0, 1]]),
        IVec::from([0, 1, 1]),
    );
    assert!(!check_conflicts_polyhedral(&bad, &wedge).is_free());
}

#[test]
fn lu_word_level_time_and_processors() {
    // Known results for the classic array: total time 3(n−1)+1 under
    // Π = [1,1,1] (extremes (1,1,1) and (n,n,n)), n² processors.
    let n = 5i64;
    let wedge = lu_wedge(n);
    let pi = IVec::from([1, 1, 1]);
    assert_eq!(total_time_polyhedral(&pi, &wedge), Some(3 * (n - 1) + 1));
    let s = IMat::from_rows(&[&[0, 1, 0], &[0, 0, 1]]);
    assert_eq!(processor_count_polyhedral(&s, &wedge), (n * n) as usize);
}

#[test]
fn triangular_set_is_cheaper_than_its_bounding_box() {
    // The wedge admits the same mapping with fewer computations than the
    // full box — the quantitative reason polyhedral sets matter.
    let n = 5i64;
    let wedge = lu_wedge(n);
    let b = Polyhedron::from_box(&BoxSet::cube(3, 1, n));
    assert!(wedge.cardinality() < b.cardinality());
    // Same schedule, same makespan (the extremes lie in the wedge) — the
    // saving is pure work, not time.
    let pi = IVec::from([1, 1, 1]);
    assert_eq!(
        total_time_polyhedral(&pi, &wedge),
        total_time_polyhedral(&pi, &b)
    );
}

#[test]
fn lu_word_pe_needs_the_division_entry() {
    // The k-th pivot step divides by a(k,k): the word PE contains the
    // catalogue's divider. Check the divider handles the LU-sized words and
    // that its latency dominates the multiply (division is the slow cell).
    let p = 8;
    let div = NonRestoringDivider::new(p);
    let mul = bitlevel::AddShift::new(p);
    for (n, d) in [(200u128, 13u128), (255, 255), (77, 3)] {
        let (q, r) = div.divide(n, d);
        assert_eq!((q, r), (n / d, n % d));
    }
    assert!(div.word_latency() > bitlevel::AddShift::word_latency(&mul));
}
