//! Semantic equivalence of the algorithm expansion itself.
//!
//! `bitlevel-depanal::expand` produces the explicit bit-level loop nest; the
//! `bitlevel-ir` interpreter executes it. This test closes the loop the
//! other artifacts only imply: the *expanded code* (not just its dependence
//! structure) computes the word-level product — exactly, up to the
//! boundary carries the paper's literal formulation drops, each of which is
//! accounted for bit by bit.

use bitlevel::depanal::{expand, Expansion};
use bitlevel::ir::{interpret, WordLevelAlgorithm};
use bitlevel::linalg::IVec;

fn bit(x: u128, k: i64) -> i64 {
    ((x >> (k - 1)) & 1) as i64
}

/// Interprets the expanded Expansion II matmul nest and reconstructs each
/// accumulator with its dropped carries; the accounting identity must hold
/// for arbitrary operands.
#[test]
fn expanded_matmul_code_computes_products_with_exact_accounting() {
    let (u, p) = (2i64, 3i64);
    let word = WordLevelAlgorithm::matmul(u);
    let nest = expand(&word, p as usize, Expansion::II);

    let xval = |i: i64, k: i64| ((3 * i + k) % 8) as u128;
    let yval = |k: i64, j: i64| ((5 * k + 2 * j + 1) % 8) as u128;

    let ext = move |arr: &str, idx: &IVec| -> i64 {
        match arr {
            // x bits enter on the j2 = 0 face at i1 = 1: bit i2 of x(j1, j3).
            "x" => {
                assert_eq!(idx[1], 0);
                bit(xval(idx[0], idx[2]), idx[4])
            }
            // y bits enter on the j1 = 0 face at i2 = 1: bit i1 of y(j3, j2).
            "y" => {
                assert_eq!(idx[0], 0);
                bit(yval(idx[2], idx[1]), idx[3])
            }
            // Carries, second carries and partial sums are zero at every
            // boundary (the literal eq. (3.1) convention).
            "c" | "c'" | "z" => 0,
            other => unreachable!("unexpected array {other}"),
        }
    };

    let values = interpret(&nest, &ext);
    let zkey = |j1: i64, j2: i64, j3: i64, i1: i64, i2: i64| {
        ("z".to_string(), IVec::from([j1, j2, j3, i1, i2]))
    };

    let mask = (1u128 << (2 * p - 1)) - 1;
    for j1 in 1..=u {
        for j2 in 1..=u {
            // Result bits from the last tile, per the add-shift extraction.
            let mut result: u128 = 0;
            for i in 1..=p {
                result |= (values[&zkey(j1, j2, u, i, 1)] as u128) << (i - 1);
            }
            for i in p + 1..=2 * p - 1 {
                result |= (values[&zkey(j1, j2, u, p, i - p + 1)] as u128) << (i - 1);
            }

            // Dropped carries: row-end carries c(·, i1, p) (weight i1+p−1)
            // and drain-plane second carries c'(·, p, p−1|p) (weight p+i2),
            // in every tile of this accumulator chain.
            let mut lost: u128 = 0;
            for j3 in 1..=u {
                for i1 in 1..=p {
                    let w = (i1 + p - 1) as u32;
                    if (w as i64) < 2 * p - 1 {
                        let c = values[&("c".to_string(), IVec::from([j1, j2, j3, i1, p]))];
                        lost += (c as u128) << w;
                    }
                }
                for i2 in [p - 1, p] {
                    if i2 >= 1 {
                        if let Some(&cp) =
                            values.get(&("c'".to_string(), IVec::from([j1, j2, j3, p, i2])))
                        {
                            let w = (p + i2) as u32;
                            if (w as i64) < 2 * p - 1 {
                                lost += (cp as u128) << w;
                            }
                        }
                    }
                }
            }

            let truth: u128 = (1..=u).map(|k| xval(j1, k) * yval(k, j2)).sum();
            assert_eq!(
                (result + lost) & mask,
                truth & mask,
                "accounting identity failed at z({j1},{j2}): result {result}, lost {lost}, truth {truth}"
            );
        }
    }
}

/// With operands that provably generate no carries at all (single-bit rows
/// summed into disjoint positions), the expanded code is exact outright.
#[test]
fn expanded_code_exact_for_carry_free_operands() {
    let (u, p) = (2i64, 3i64);
    let word = WordLevelAlgorithm::matmul(u);
    let nest = expand(&word, p as usize, Expansion::II);

    // x(j1, k) = 2^(k−1), y ≡ 1: each accumulation adds a fresh bit.
    let xval = |_i: i64, k: i64| 1u128 << (k - 1);
    let yval = |_k: i64, _j: i64| 1u128;
    let ext = move |arr: &str, idx: &IVec| -> i64 {
        match arr {
            "x" => bit(xval(idx[0], idx[2]), idx[4]),
            "y" => bit(yval(idx[2], idx[1]), idx[3]),
            "c" | "c'" | "z" => 0,
            other => unreachable!("unexpected array {other}"),
        }
    };
    let values = interpret(&nest, &ext);
    for j1 in 1..=u {
        for j2 in 1..=u {
            let mut result: u128 = 0;
            for i in 1..=p {
                result |=
                    (values[&("z".to_string(), IVec::from([j1, j2, u, i, 1]))] as u128) << (i - 1);
            }
            for i in p + 1..=2 * p - 1 {
                let v = values[&("z".to_string(), IVec::from([j1, j2, u, p, i - p + 1]))];
                result |= (v as u128) << (i - 1);
            }
            let truth: u128 = (1..=u).map(|k| xval(j1, k) * yval(k, j2)).sum();
            assert_eq!(result, truth, "z({j1},{j2})");
        }
    }
}
