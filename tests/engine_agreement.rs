//! Cross-engine agreement: the four independent executions of the
//! Expansion II matmul architecture — the topological array sweep, the
//! clocked RTL engine on the Fig. 4 mapping, the clocked RTL engine on the
//! Fig. 5 mapping, and the compiled static-schedule engine — must produce
//! identical bits for identical operands, across random sizes and operand
//! patterns. The compiled engine must match the interpreted one not just on
//! products but on the *whole run*: outputs, violations, cycle count and
//! in-flight peaks. Tracing must be a pure observer: traced runs stay
//! bit-identical to untraced ones, and the captured profiles agree across
//! engines.

use bitlevel::depanal::{compose, Expansion};
use bitlevel::systolic::{
    run_clocked, run_clocked_compiled, run_clocked_traced, CompiledSchedule, Model35Cells,
    RecordingSink,
};
use bitlevel::{BitMatmulArray, PaperDesign, WordLevelAlgorithm};
use proptest::prelude::*;

fn random_matrix(u: usize, cap: u128, state: &mut u64) -> Vec<Vec<u128>> {
    (0..u)
        .map(|_| {
            (0..u)
                .map(|_| {
                    *state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((*state >> 33) as u128) % (cap + 1)
                })
                .collect()
        })
        .collect()
}

fn matmul_cells(u: usize, p: usize, x: &[Vec<u128>], y: &[Vec<u128>]) -> Model35Cells {
    let word = WordLevelAlgorithm::matmul(u as i64);
    let alg = compose(&word, p, Expansion::II);
    let (xo, yo) = (x.to_vec(), y.to_vec());
    Model35Cells::new(
        &word,
        p,
        &alg,
        move |j| xo[(j[0] - 1) as usize][(j[2] - 1) as usize],
        move |j| yo[(j[2] - 1) as usize][(j[1] - 1) as usize],
    )
}

fn clocked_product(
    u: usize,
    p: usize,
    design: PaperDesign,
    x: &[Vec<u128>],
    y: &[Vec<u128>],
) -> Vec<Vec<u128>> {
    let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
    let mut cells = matmul_cells(u, p, x, y);
    let run = run_clocked(
        &alg,
        &design.mapping(p as i64),
        &design.interconnect(p as i64),
        &mut cells,
    );
    assert!(run.is_legal(), "{design:?}: {:?}", run.violations);
    let mut z = vec![vec![0u128; u]; u];
    for (tail, value) in cells.extract_results(&run) {
        z[(tail[0] - 1) as usize][(tail[1] - 1) as usize] = value;
    }
    z
}

fn compiled_product(
    u: usize,
    p: usize,
    design: PaperDesign,
    x: &[Vec<u128>],
    y: &[Vec<u128>],
) -> Vec<Vec<u128>> {
    let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
    let cells = matmul_cells(u, p, x, y);
    let run = run_clocked_compiled(
        &alg,
        &design.mapping(p as i64),
        &design.interconnect(p as i64),
        &cells,
    );
    assert!(
        run.is_legal(),
        "{design:?} (compiled): {:?}",
        run.violations
    );
    let mut z = vec![vec![0u128; u]; u];
    for (tail, value) in cells.extract_results(&run) {
        z[(tail[0] - 1) as usize][(tail[1] - 1) as usize] = value;
    }
    z
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four engines agree bit-for-bit, and match native arithmetic
    /// within the safe operand bound.
    #[test]
    fn prop_four_engines_agree(u in 1usize..4, p in 2usize..5, seed in any::<u64>()) {
        let arr = BitMatmulArray::new(u, p);
        let cap = arr.max_safe_entry();
        prop_assume!(cap > 0);
        let mut state = seed | 1;
        let x = random_matrix(u, cap, &mut state);
        let y = random_matrix(u, cap, &mut state);

        let topo = arr.multiply(&x, &y);
        let fig4 = clocked_product(u, p, PaperDesign::TimeOptimal, &x, &y);
        let fig5 = clocked_product(u, p, PaperDesign::NearestNeighbour, &x, &y);
        let fig4c = compiled_product(u, p, PaperDesign::TimeOptimal, &x, &y);
        let fig5c = compiled_product(u, p, PaperDesign::NearestNeighbour, &x, &y);
        prop_assert_eq!(&topo, &fig4);
        prop_assert_eq!(&topo, &fig5);
        prop_assert_eq!(&topo, &fig4c);
        prop_assert_eq!(&topo, &fig5c);
        for i in 0..u {
            for j in 0..u {
                let want: u128 = (0..u).map(|k| x[i][k] * y[k][j]).sum();
                prop_assert_eq!(topo[i][j], want);
            }
        }
    }

    /// Under overflow (operands beyond the safe bound) the engines still
    /// agree with each other and with the mod-2^{2p−1} reference.
    #[test]
    fn prop_engines_agree_under_wraparound(u in 1usize..3, p in 2usize..4, seed in any::<u64>()) {
        let arr = BitMatmulArray::new(u, p);
        let cap = (1u128 << p) - 1;
        let mut state = seed | 1;
        let x = random_matrix(u, cap, &mut state);
        let y = random_matrix(u, cap, &mut state);
        let topo = arr.multiply(&x, &y);
        let fig4 = clocked_product(u, p, PaperDesign::TimeOptimal, &x, &y);
        let fig4c = compiled_product(u, p, PaperDesign::TimeOptimal, &x, &y);
        prop_assert_eq!(&topo, &fig4);
        prop_assert_eq!(&topo, &fig4c);
        prop_assert_eq!(topo, arr.reference(&x, &y));
    }

    /// The compiled engine reproduces the interpreted engine's *entire* run —
    /// outputs, violation stream, cycle count and in-flight peaks — on both
    /// paper designs.
    #[test]
    fn prop_compiled_run_is_bit_identical(u in 1usize..4, p in 2usize..4, seed in any::<u64>()) {
        let arr = BitMatmulArray::new(u, p);
        let cap = arr.max_safe_entry().max(1);
        let mut state = seed | 1;
        let x = random_matrix(u, cap, &mut state);
        let y = random_matrix(u, cap, &mut state);
        let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let t = design.mapping(p as i64);
            let ic = design.interconnect(p as i64);
            let mut cells = matmul_cells(u, p, &x, &y);
            let interpreted = run_clocked(&alg, &t, &ic, &mut cells);
            let compiled = run_clocked_compiled(&alg, &t, &ic, &cells);
            prop_assert_eq!(compiled.cycles, interpreted.cycles);
            prop_assert_eq!(&compiled.violations, &interpreted.violations);
            prop_assert_eq!(&compiled.peak_in_flight, &interpreted.peak_in_flight);
            prop_assert_eq!(&compiled.outputs, &interpreted.outputs);
        }
    }
}

/// A larger deterministic instance on both engines (release-speed sizes are
/// exercised by the benches; this pins a mid-size case into the suite).
#[test]
fn mid_size_instance_agrees() {
    let (u, p) = (4usize, 5usize);
    let arr = BitMatmulArray::new(u, p);
    let cap = arr.max_safe_entry();
    let x: Vec<Vec<u128>> = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| ((11 * i + 3 * j + 2) as u128) % (cap + 1))
                .collect()
        })
        .collect();
    let y: Vec<Vec<u128>> = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| ((5 * i + 7 * j + 1) as u128) % (cap + 1))
                .collect()
        })
        .collect();
    let topo = arr.multiply(&x, &y);
    let fig4 = clocked_product(u, p, PaperDesign::TimeOptimal, &x, &y);
    let fig4c = compiled_product(u, p, PaperDesign::TimeOptimal, &x, &y);
    assert_eq!(topo, fig4);
    assert_eq!(topo, fig4c);
}

/// Tracing is a pure observer: a traced run is bit-identical to an untraced
/// one on both engines, the captured profile accounts for every index point
/// exactly once, and the two engines record the same wavefront and PE-load
/// shapes.
#[test]
fn traced_runs_are_bit_identical_and_account_for_every_point() {
    let (u, p) = (2usize, 3usize);
    let arr = BitMatmulArray::new(u, p);
    let cap = arr.max_safe_entry();
    let mut state = 0xfeed_beef_u64;
    let x = random_matrix(u, cap, &mut state);
    let y = random_matrix(u, cap, &mut state);
    let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
    let points = (u * u * u * p * p) as u64;
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let t = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);

        let mut cells = matmul_cells(u, p, &x, &y);
        let plain = run_clocked(&alg, &t, &ic, &mut cells);
        let mut cells = matmul_cells(u, p, &x, &y);
        let mut rec_i = RecordingSink::new();
        let traced = run_clocked_traced(&alg, &t, &ic, &mut cells, &mut rec_i);
        assert_eq!(traced.cycles, plain.cycles, "{design:?}");
        assert_eq!(traced.violations, plain.violations, "{design:?}");
        assert_eq!(traced.peak_in_flight, plain.peak_in_flight, "{design:?}");
        assert_eq!(traced.outputs, plain.outputs, "{design:?}");

        let cells = matmul_cells(u, p, &x, &y);
        let sched = CompiledSchedule::try_compile(&alg, &t, &ic)
            .expect("the 7-column matmul structure compiles");
        let plain_c = sched.execute(&cells);
        let mut rec_c = RecordingSink::new();
        let traced_c = sched.execute_traced(&cells, &mut rec_c);
        assert_eq!(traced_c.cycles, plain_c.cycles, "{design:?}");
        assert_eq!(traced_c.violations, plain_c.violations, "{design:?}");
        assert_eq!(
            traced_c.peak_in_flight, plain_c.peak_in_flight,
            "{design:?}"
        );
        assert_eq!(traced_c.outputs, plain_c.outputs, "{design:?}");
        assert_eq!(traced_c.outputs, traced.outputs, "{design:?}");

        // Every index point fires exactly once in both captured profiles,
        // and the engines agree on the shape of the run they observed.
        assert_eq!(rec_i.rollup().fire_total(), points, "{design:?}");
        assert_eq!(rec_c.rollup().fire_total(), points, "{design:?}");
        assert_eq!(
            rec_i.rollup().wavefront,
            rec_c.rollup().wavefront,
            "{design:?}"
        );
        assert_eq!(
            rec_i.rollup().pe_fires,
            rec_c.rollup().pe_fires,
            "{design:?}"
        );
        assert_eq!(rec_i.rollup().violations, 0, "{design:?}");
        assert_eq!(rec_c.rollup().violations, 0, "{design:?}");
    }
}

/// On an illegal architecture the captured violation events are exactly the
/// engine's violation stream, rendered in order.
#[test]
fn traced_violations_mirror_the_engines_violation_stream() {
    let (u, p) = (2usize, 2usize);
    let arr = BitMatmulArray::new(u, p);
    let cap = arr.max_safe_entry().max(1);
    let mut state = 0x0dd_ba11_u64;
    let x = random_matrix(u, cap, &mut state);
    let y = random_matrix(u, cap, &mut state);
    let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
    // Fig. 4's fast schedule over Fig. 5's wire-poor interconnect: tokens
    // cannot make their route deadlines, so the run is illegal.
    let t = PaperDesign::TimeOptimal.mapping(p as i64);
    let ic = PaperDesign::NearestNeighbour.interconnect(p as i64);
    let mut cells = matmul_cells(u, p, &x, &y);
    let mut rec = RecordingSink::new();
    let run = run_clocked_traced(&alg, &t, &ic, &mut cells, &mut rec);
    assert!(!run.is_legal());
    let rendered: Vec<String> = run.violations.iter().map(|v| v.to_string()).collect();
    assert_eq!(rec.violation_descriptions(), rendered);
    assert_eq!(rec.rollup().violations, run.violations.len() as u64);
}

// ---------------------------------------------------------------------------
// Lane-packed batch engine: every lane of a word-wide walk must reproduce
// the interpreted oracle bit for bit.
// ---------------------------------------------------------------------------

use bitlevel::systolic::{run_clocked_faulted, MatmulExpansionIICells, MatmulLaneCells, NullSink};
use bitlevel::{FaultKind, FaultPlan, TargetedFault};

fn random_batch(
    u: usize,
    cap: u128,
    n: usize,
    state: &mut u64,
) -> (Vec<Vec<Vec<u128>>>, Vec<Vec<Vec<u128>>>) {
    (
        (0..n).map(|_| random_matrix(u, cap, state)).collect(),
        (0..n).map(|_| random_matrix(u, cap, state)).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every lane of every chunk of a randomized batch — including the
    /// ragged final chunk when the width does not divide the batch size —
    /// reproduces the interpreted engine's *entire* per-instance run on both
    /// paper designs: outputs, violations, cycle count and in-flight peaks.
    #[test]
    fn prop_batch_lanes_match_the_interpreted_oracle(
        width in 1usize..=64,
        n in 1usize..=70,
        seed in any::<u64>(),
    ) {
        let (u, p) = (2usize, 2usize);
        let cap = BitMatmulArray::new(u, p).max_safe_entry().max(1);
        let mut state = seed | 1;
        let (xs, ys) = random_batch(u, cap, n, &mut state);
        let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let t = design.mapping(p as i64);
            let ic = design.interconnect(p as i64);
            let sched = CompiledSchedule::try_compile(&alg, &t, &ic).expect("matmul compiles");
            for (xc, yc) in xs.chunks(width).zip(ys.chunks(width)) {
                let cells = MatmulLaneCells::new(u, p, xc, yc);
                let batch = sched.execute_batch(&cells);
                prop_assert!(batch.is_legal(), "{:?}: {:?}", design, batch.violations);
                prop_assert_eq!(batch.lanes, xc.len());
                for lane in 0..xc.len() {
                    let lane_run = batch.extract_lane_run(&cells, lane);
                    let mut oracle_cells = MatmulExpansionIICells::new(u, p, &xc[lane], &yc[lane]);
                    let oracle = run_clocked(&alg, &t, &ic, &mut oracle_cells);
                    prop_assert_eq!(lane_run.cycles, oracle.cycles);
                    prop_assert_eq!(&lane_run.violations, &oracle.violations);
                    prop_assert_eq!(&lane_run.peak_in_flight, &oracle.peak_in_flight);
                    prop_assert_eq!(&lane_run.outputs, &oracle.outputs);
                }
            }
        }
    }
}

/// A fault plan replayed against one lane of a batch perturbs exactly that
/// lane: the faulted lane matches the interpreted faulted oracle on the same
/// instance, every other lane stays bit-identical to the clean batch, and
/// the clean batch itself is untouched by the fault machinery.
#[test]
fn batch_fault_injection_hits_exactly_the_targeted_lane() {
    let (u, p) = (2usize, 2usize);
    let (n, target) = (8usize, 5usize);
    let cap = BitMatmulArray::new(u, p).max_safe_entry().max(1);
    let mut state = 0xfa11_u64 | 1;
    let (xs, ys) = random_batch(u, cap, n, &mut state);
    let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
    let plan = FaultPlan {
        seed: 0,
        targeted: vec![TargetedFault {
            kind: FaultKind::DeadPe,
            pe: bitlevel::linalg::IVec::from([3, 3]),
            cycle: None,
        }],
        random: vec![],
    };
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let t = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);
        let resolved = plan.resolve(&alg, &t);
        let sched = CompiledSchedule::try_compile(&alg, &t, &ic).expect("matmul compiles");
        let cells = MatmulLaneCells::new(u, p, &xs, &ys);
        let clean = sched.execute_batch(&cells);
        let fr = sched.execute_batch_faulted(&cells, &mut NullSink, &resolved, target);
        assert_eq!(fr.fault_lane, target, "{design:?}");
        // Untargeted lanes ride the clean word-wide walk, bit for bit.
        for lane in (0..n).filter(|&l| l != target) {
            assert_eq!(
                fr.batch.extract_lane_run(&cells, lane).outputs,
                clean.extract_lane_run(&cells, lane).outputs,
                "{design:?}: lane {lane} perturbed by a fault aimed at lane {target}"
            );
        }
        // The targeted lane replays under the plan and matches the
        // interpreted faulted engine on the same instance.
        let faulted = fr.faulted.as_ref().expect("plan has faults");
        let mut oracle_cells = MatmulExpansionIICells::new(u, p, &xs[target], &ys[target]);
        let oracle =
            run_clocked_faulted(&alg, &t, &ic, &mut oracle_cells, &mut NullSink, &resolved);
        assert_eq!(faulted.cycles, oracle.cycles, "{design:?}");
        assert_eq!(faulted.violations, oracle.violations, "{design:?}");
        assert_eq!(faulted.outputs, oracle.outputs, "{design:?}");
        // The fault really bit: the dead PE changed the targeted lane.
        assert_ne!(
            faulted.outputs,
            fr.batch.extract_lane_run(&cells, target).outputs,
            "{design:?}: the dead PE must perturb the targeted lane"
        );
    }
}

/// Width-1 batches take the same word-wide machinery with a single occupied
/// lane; the result must be bit-identical to the scalar compiled engine.
#[test]
fn width_one_batch_agrees_with_the_scalar_compiled_engine() {
    let (u, p) = (3usize, 3usize);
    let cap = BitMatmulArray::new(u, p).max_safe_entry().max(1);
    let mut state = 0x5eed_u64;
    let x = random_matrix(u, cap, &mut state);
    let y = random_matrix(u, cap, &mut state);
    let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let t = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);
        let sched = CompiledSchedule::try_compile(&alg, &t, &ic).expect("matmul compiles");
        let scalar_cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let scalar = sched.execute(&scalar_cells);
        let lane_cells =
            MatmulLaneCells::new(u, p, std::slice::from_ref(&x), std::slice::from_ref(&y));
        let batch = sched.execute_batch(&lane_cells);
        let lane0 = batch.extract_lane_run(&lane_cells, 0);
        assert_eq!(lane0.cycles, scalar.cycles, "{design:?}");
        assert_eq!(lane0.violations, scalar.violations, "{design:?}");
        assert_eq!(lane0.peak_in_flight, scalar.peak_in_flight, "{design:?}");
        assert_eq!(lane0.outputs, scalar.outputs, "{design:?}");
        assert_eq!(
            lane_cells.extract_products(&batch)[0],
            scalar_cells.extract_product(&scalar),
            "{design:?}"
        );
    }
}

/// Deterministic pin of the proptest above: fixed (width, n, seed) triples
/// covering an exact word, a ragged tail, and a single lane.
#[test]
fn randomized_batch_lanes_match_the_interpreted_oracle() {
    let (u, p) = (2usize, 2usize);
    let cap = BitMatmulArray::new(u, p).max_safe_entry().max(1);
    let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
    for (width, n, seed) in [(64usize, 64usize, 1u64), (7, 23, 0x1CC7_1993), (1, 3, 99)] {
        let mut state = seed | 1;
        let (xs, ys) = random_batch(u, cap, n, &mut state);
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let t = design.mapping(p as i64);
            let ic = design.interconnect(p as i64);
            let sched = CompiledSchedule::try_compile(&alg, &t, &ic).expect("matmul compiles");
            for (xc, yc) in xs.chunks(width).zip(ys.chunks(width)) {
                let cells = MatmulLaneCells::new(u, p, xc, yc);
                let batch = sched.execute_batch(&cells);
                assert!(batch.is_legal(), "{design:?}: {:?}", batch.violations);
                assert_eq!(batch.lanes, xc.len());
                for lane in 0..xc.len() {
                    let lane_run = batch.extract_lane_run(&cells, lane);
                    let mut oracle_cells = MatmulExpansionIICells::new(u, p, &xc[lane], &yc[lane]);
                    let oracle = run_clocked(&alg, &t, &ic, &mut oracle_cells);
                    assert_eq!(lane_run.cycles, oracle.cycles, "{design:?} lane {lane}");
                    assert_eq!(
                        lane_run.violations, oracle.violations,
                        "{design:?} lane {lane}"
                    );
                    assert_eq!(
                        lane_run.peak_in_flight, oracle.peak_in_flight,
                        "{design:?} lane {lane}"
                    );
                    assert_eq!(lane_run.outputs, oracle.outputs, "{design:?} lane {lane}");
                }
            }
        }
    }
}
