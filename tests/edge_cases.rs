//! Degenerate-parameter edge cases across the whole stack: `p = 1` (single
//! bit words), `u = 1` (single word-level iteration), and their combination.
//! Nothing in the pipeline may panic or silently produce the wrong shape at
//! the boundaries of its parameter space.

use bitlevel::depanal::{compose, enumerate_dependences, expand, instances_of_triplet, Expansion};
use bitlevel::systolic::simulate_mapped;
use bitlevel::{AddShift, BitMatmulArray, PaperDesign, WordLevelAlgorithm};

#[test]
fn single_bit_words_compose_and_agree() {
    // p = 1: the add-shift tile is a single AND gate; d̄₄…d̄₇ are all inactive
    // (their sources never exist), so only the word-level columns carry
    // instances — and the structure still matches ground truth.
    for expansion in [Expansion::I, Expansion::II] {
        let word = WordLevelAlgorithm::matmul(2);
        let alg = compose(&word, 1, expansion);
        assert_eq!(alg.dim(), 5);
        assert_eq!(
            instances_of_triplet(&alg),
            enumerate_dependences(&expand(&word, 1, expansion)),
            "{expansion}"
        );
    }
}

#[test]
fn single_bit_multiplier_is_an_and_gate() {
    let m = AddShift::new(1);
    assert_eq!(m.multiply(1, 1), 1);
    assert_eq!(m.multiply(1, 0), 0);
    assert_eq!(m.index_set().cardinality(), 1);
}

#[test]
fn single_iteration_matmul_architecture() {
    // u = 1: one tile; no injection ever happens (z(j̄,0) = 0 chain heads
    // everywhere); the Fig. 4 design degenerates to one add-shift tile with
    // cycles 3·0 + 3(p−1) + 1.
    let p = 4i64;
    let alg = compose(&WordLevelAlgorithm::matmul(1), p as usize, Expansion::II);
    let design = PaperDesign::TimeOptimal;
    let run = simulate_mapped(&alg, &design.mapping(p), &design.interconnect(p));
    assert_eq!(run.cycles, 3 * (p - 1) + 1);
    assert_eq!(run.processors as i64, p * p);
    assert!(run.conflict_free && run.causality_ok);
}

#[test]
fn one_by_one_everything() {
    // u = p = 1: a single AND gate "architecture".
    let alg = compose(&WordLevelAlgorithm::matmul(1), 1, Expansion::II);
    assert_eq!(alg.index_set.cardinality(), 1);
    let design = PaperDesign::TimeOptimal;
    let run = simulate_mapped(&alg, &design.mapping(1), &design.interconnect(1));
    assert_eq!(run.cycles, 1);
    assert_eq!(run.processors, 1);
    let arr = BitMatmulArray::new(1, 1);
    assert_eq!(arr.multiply(&[vec![1]], &[vec![1]]), vec![vec![1]]);
    assert_eq!(arr.multiply(&[vec![1]], &[vec![0]]), vec![vec![0]]);
}

#[test]
fn single_tap_convolution() {
    // taps = 1: the accumulation chain has length 1 (h̄₃ never realised).
    let word = WordLevelAlgorithm::convolution(4, 1);
    let alg = compose(&word, 2, Expansion::II);
    assert_eq!(
        instances_of_triplet(&alg),
        enumerate_dependences(&expand(&word, 2, Expansion::II))
    );
}

#[test]
fn thin_matrices_matvec() {
    // 1×k and m×1 matvec shapes.
    for (m, k) in [(1i64, 4i64), (4, 1), (1, 1)] {
        let word = WordLevelAlgorithm::matvec(m, k);
        let alg = compose(&word, 2, Expansion::I);
        assert_eq!(
            instances_of_triplet(&alg),
            enumerate_dependences(&expand(&word, 2, Expansion::I)),
            "matvec {m}x{k}"
        );
    }
}

#[test]
fn divider_minimal_width() {
    let div = bitlevel::arith::NonRestoringDivider::new(1);
    assert_eq!(div.divide(1, 1), (1, 0));
    assert_eq!(div.divide(0, 1), (0, 0));
}

#[test]
fn functional_array_handles_zero_matrices() {
    let arr = BitMatmulArray::new(3, 4);
    let zero = vec![vec![0u128; 3]; 3];
    let x = vec![vec![5u128, 1, 2], vec![3, 4, 0], vec![1, 1, 1]];
    assert_eq!(arr.multiply(&x, &zero), zero);
    assert_eq!(arr.multiply(&zero, &x), zero);
}
