//! Cross-crate integration: the full pipeline of the paper, end to end.
//!
//! word-level algorithm → broadcast elimination → Theorem 3.1 composition →
//! cross-check vs general analysis → Definition 4.1 feasibility → schedule
//! optimality → cycle-accurate simulation → bit-exact functional result.

use bitlevel::depanal::{enumerate_dependences, expand, instances_of_triplet};
use bitlevel::ir::eliminate_broadcasts;
use bitlevel::linalg::{IMat, IVec};
use bitlevel::mapping::{processor_count, total_time};
use bitlevel::{
    check_feasibility, compose, find_optimal_schedule, simulate_mapped, BitMatmulArray, DesignFlow,
    Expansion, Interconnect, PaperDesign, WordLevelAlgorithm,
};

/// The complete paper pipeline for the running example, asserting every
/// intermediate artifact against the paper's equations.
#[test]
fn full_paper_pipeline_matmul() {
    let (u, p) = (3i64, 3usize);

    // Section 2: word-level matmul (2.3) with D of (2.4).
    let word = WordLevelAlgorithm::matmul(u);
    assert_eq!(word.dependence_matrix().cols(), 3);
    assert!(word.triplet().is_uniform());

    // Section 3: Theorem 3.1 gives the 5-D structure of (3.12)/(3.13)…
    let alg = compose(&word, p, Expansion::II);
    assert_eq!(alg.dim(), 5);
    assert_eq!(alg.deps.len(), 7);

    // …which matches exhaustive analysis of the mechanically expanded code
    // (verified at a tractable size).
    let small = WordLevelAlgorithm::matmul(2);
    let small_alg = compose(&small, 2, Expansion::II);
    assert_eq!(
        instances_of_triplet(&small_alg),
        enumerate_dependences(&expand(&small, 2, Expansion::II))
    );

    // Section 4: T of (4.2) satisfies all of Definition 4.1 on P of (4.3)…
    let design = PaperDesign::TimeOptimal;
    let feas = check_feasibility(
        &design.mapping(p as i64),
        &alg,
        &design.interconnect(p as i64),
    );
    assert!(feas.is_feasible(), "{:?}", feas.violations);

    // …its simulation measures exactly eq. (4.5) with u²p² processors…
    let run = simulate_mapped(
        &alg,
        &design.mapping(p as i64),
        &design.interconnect(p as i64),
    );
    assert_eq!(run.cycles, 3 * (u - 1) + 3 * (p as i64 - 1) + 1);
    assert_eq!(run.processors as i64, u * u * (p * p) as i64);
    assert!(run.conflict_free && run.causality_ok);

    // …and the architecture computes real products through real full adders.
    DesignFlow::matmul(u, p).verify_matmul_functionally();
}

/// Broadcast elimination (Section 2) feeds the word-level model: starting
/// from the broadcast form (2.2), the derived pipelining directions are
/// exactly the h̄-vectors the model constructors use.
#[test]
fn broadcast_elimination_matches_model_constructors() {
    use bitlevel::ir::{Access, AffineFn, LoopNest, OpKind, Statement};
    let n = 3;
    let nest = LoopNest::new(
        bitlevel::BoxSet::cube(n, 1, 3),
        vec![Statement::new(
            Access::new("z", AffineFn::identity(n)),
            vec![
                Access::new("z", AffineFn::shift_back(&IVec::from([0, 0, 1]))),
                Access::new("x", AffineFn::select_axes(n, &[0, 2])),
                Access::new("y", AffineFn::select_axes(n, &[2, 1])),
            ],
            OpKind::MulAdd,
        )],
    );
    let be = eliminate_broadcasts(&nest);
    let word = WordLevelAlgorithm::matmul(3);
    let dirs: Vec<IVec> = be
        .new_dependences
        .iter()
        .map(|d| d.vector.clone())
        .collect();
    assert!(dirs.contains(word.h1.as_ref().unwrap()));
    assert!(dirs.contains(word.h2.as_ref().unwrap()));
}

/// The schedule found by search equals the paper's Π and its time formula,
/// and the simulated run of the searched mapping matches `total_time`.
#[test]
fn searched_schedule_round_trips_through_simulation() {
    let (u, p) = (2i64, 2i64);
    let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
    let s = PaperDesign::space(p);
    let ic = Interconnect::paper_p(p);
    let best = find_optimal_schedule(&s, &alg, &ic, 2).expect("Theorem 4.5");
    assert_eq!(best.pi, IVec::from([1, 1, 1, 2, 1]));
    assert_eq!(best.time, total_time(&best.pi, &alg.index_set));

    let t = bitlevel::MappingMatrix::new(s.clone(), best.pi.clone());
    let run = simulate_mapped(&alg, &t, &ic);
    assert_eq!(run.cycles, best.time);
    assert_eq!(run.processors, processor_count(&s, &alg.index_set));
}

/// Every word-level constructor flows through composition and agrees with
/// ground truth under both expansions (cross-crate property over the whole
/// model zoo).
#[test]
fn all_model_instances_compose_correctly() {
    let instances: Vec<(WordLevelAlgorithm, usize)> = vec![
        (WordLevelAlgorithm::matmul(2), 2),
        (WordLevelAlgorithm::convolution(3, 2), 2),
        (WordLevelAlgorithm::matvec(3, 2), 2),
        (WordLevelAlgorithm::dft(3), 2),
        (WordLevelAlgorithm::dct(2), 3),
    ];
    for (word, p) in instances {
        for expansion in [Expansion::I, Expansion::II] {
            let composed = compose(&word, p, expansion);
            let truth = enumerate_dependences(&expand(&word, p, expansion));
            assert_eq!(
                instances_of_triplet(&composed),
                truth,
                "{} p={p} {expansion}",
                word.name
            );
        }
    }
}

/// Functional agreement of all three matmul routes: native integers, the
/// word-level systolic array with bit-level PEs, and the bit-level array.
#[test]
fn three_matmul_routes_agree() {
    let (u, p) = (3usize, 4usize);
    let arr = BitMatmulArray::new(u, p);
    let m = arr.max_safe_entry();
    let x: Vec<Vec<u128>> = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| ((5 * i + j + 1) as u128) % (m + 1))
                .collect()
        })
        .collect();
    let y: Vec<Vec<u128>> = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| ((i + 3 * j + 2) as u128) % (m + 1))
                .collect()
        })
        .collect();

    // Native.
    let mut native = vec![vec![0u128; u]; u];
    for i in 0..u {
        for j in 0..u {
            native[i][j] = (0..u).map(|k| x[i][k] * y[k][j]).sum();
        }
    }
    // Word-level systolic with add-shift PEs.
    let addshift = bitlevel::AddShift::new(p);
    let word = bitlevel::WordLevelArray::new(u, &addshift).run(&x, &y).z;
    // Bit-level Expansion II array.
    let bit = arr.multiply(&x, &y);

    assert_eq!(native, word);
    assert_eq!(native, bit);
}

/// The paper's TD matrix (4.4) falls out of the composed structure and the
/// design matrices (cross-crate: depanal × mapping).
#[test]
fn td_matrix_of_eq_4_4() {
    let p = 3i64;
    let alg = compose(&WordLevelAlgorithm::matmul(3), p as usize, Expansion::II);
    let td = PaperDesign::TimeOptimal
        .mapping(p)
        .td(&alg.dependence_matrix());
    // Our column order (x,y,z,d4..d7); the paper's (4.4) swaps the first two.
    let expected = IMat::from_rows(&[
        &[0, p, 0, 1, 0, 1, 0],
        &[p, 0, 0, 0, 1, -1, 2],
        &[1, 1, 1, 2, 1, 1, 2],
    ]);
    assert_eq!(td, expected);
}
