//! Cross-crate property-based tests: randomized invariants spanning the
//! whole pipeline.

use bitlevel::depanal::{enumerate_dependences, expand, instances_of_triplet};
use bitlevel::linalg::IVec;
use bitlevel::mapping::{
    check_conflicts, check_conflicts_bruteforce, find_optimal_schedule_bestfirst, total_time,
};
use bitlevel::systolic::critical_path;
use bitlevel::{
    compose, explore, find_optimal_schedule, simulate_mapped, AlgorithmTriplet, BoxSet, Expansion,
    ExploreConfig, Interconnect, MachineOption, MappingMatrix, WordLevelAlgorithm,
};
use proptest::prelude::*;

/// Random small word-level algorithms of model (3.5): random box bounds and
/// random small h̄-vectors (h̄₃ nonzero so the recurrence is well-formed).
fn arb_word_algorithm() -> impl Strategy<Value = WordLevelAlgorithm> {
    (
        1usize..3,                              // dimension n
        proptest::collection::vec(1i64..3, 2),  // extents
        proptest::collection::vec(-1i64..2, 6), // h components
    )
        .prop_filter_map(
            "h3 must be nonzero and h's within extents",
            |(n, ext, h)| {
                let upper: Vec<i64> = (0..n).map(|i| 1 + ext[i % ext.len()]).collect();
                let bounds = BoxSet::new(IVec(vec![1; n]), IVec(upper));
                let h1 = IVec(h[0..n].to_vec());
                let h2 = IVec(h[n..2 * n].to_vec());
                let h3 = IVec(h[2 * n..3 * n].to_vec());
                if h3.is_zero() {
                    return None;
                }
                Some(WordLevelAlgorithm::new(
                    "random",
                    bounds,
                    (!h1.is_zero()).then_some(h1),
                    (!h2.is_zero()).then_some(h2),
                    h3,
                ))
            },
        )
}

/// The shape of the paper's fixed `S` of eq. (4.2) generalised to `m`
/// columns: word axes carry the stride `p`, the two trailing bit axes carry
/// `1`. For the 5-D matmul structure this is *exactly* the paper's `S`.
fn paper_style_space(m: usize, p: i64) -> bitlevel::linalg::IMat {
    let mut s = bitlevel::linalg::IMat::zeros(2, m);
    s[(0, 0)] = p;
    s[(0, m - 2)] = 1;
    if m >= 4 {
        s[(1, 1)] = p;
    }
    s[(1, m - 1)] = 1;
    s
}

/// The exhaustive search, the best-first search, and the design-space
/// explorer restricted to that one fixed `S` must agree on the optimum time
/// *and* the tie-broken `Π` — or all three must agree nothing is feasible
/// within the bound. (Plain helper so the deterministic instances below
/// share the exact assertion with the property.)
fn assert_searches_agree(alg: &AlgorithmTriplet, p: i64, bound: i64) {
    let s = paper_style_space(alg.dim(), p);
    let ic = Interconnect::paper_p(p);
    let exhaustive = find_optimal_schedule(&s, alg, &ic, bound);
    let bestfirst = find_optimal_schedule_bestfirst(&s, alg, &ic, bound);
    let ex = explore(
        alg,
        std::slice::from_ref(&s),
        &ExploreConfig {
            pi_bound: bound,
            machines: vec![MachineOption::new("P", ic)],
            max_physical_pes: None,
        },
    )
    .expect("well-formed exploration");
    match exhaustive {
        None => {
            assert!(
                bestfirst.is_none(),
                "best-first found {bestfirst:?}, exhaustive none"
            );
            assert!(
                ex.frontier.is_empty(),
                "explorer found {:?}, exhaustive none",
                ex.frontier
            );
        }
        Some(opt) => {
            let bf = bestfirst.expect("exhaustive feasible ⇒ best-first feasible");
            assert_eq!(bf.time, opt.time, "optimum time must agree");
            assert_eq!(bf.pi, opt.pi, "tie-broken Π must agree");
            assert_eq!(
                ex.frontier.len(),
                1,
                "single (S, machine) pair → single point"
            );
            assert_eq!(
                ex.frontier[0].time, opt.time,
                "explorer optimum time must agree"
            );
            assert_eq!(
                ex.frontier[0].mapping.schedule, opt.pi,
                "explorer Π must agree"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 3.1 composition equals ground truth for *random* model-(3.5)
    /// instances, not just the named constructors — both expansions.
    #[test]
    fn prop_composition_matches_ground_truth(word in arb_word_algorithm(), p in 2usize..4) {
        for expansion in [Expansion::I, Expansion::II] {
            let composed = compose(&word, p, expansion);
            let truth = enumerate_dependences(&expand(&word, p, expansion));
            prop_assert_eq!(
                instances_of_triplet(&composed),
                truth,
                "expansion {} on {:?}", expansion, word
            );
        }
    }

    /// The two conflict checkers agree on random mappings of random
    /// bit-level structures (kernel-lattice vs brute force).
    #[test]
    fn prop_conflict_checkers_agree(
        word in arb_word_algorithm(),
        entries in proptest::collection::vec(-2i64..3, 18),
    ) {
        let alg = compose(&word, 2, Expansion::II);
        let n = alg.dim();
        prop_assume!(3 * n <= entries.len());
        let s = bitlevel::linalg::IMat::from_flat(2, n, entries[0..2 * n].to_vec());
        let pi = IVec(entries[2 * n..3 * n].to_vec());
        let t = MappingMatrix::new(s, pi);
        prop_assert_eq!(
            check_conflicts(&t, &alg.index_set).is_free(),
            check_conflicts_bruteforce(&t, &alg.index_set).is_free()
        );
    }

    /// For any schedule that simulates conflict-free and causally, the
    /// simulated makespan equals the closed-form total_time (4.5).
    #[test]
    fn prop_simulated_makespan_equals_total_time(
        word in arb_word_algorithm(),
        pi_seed in proptest::collection::vec(1i64..3, 6),
    ) {
        let alg = compose(&word, 2, Expansion::II);
        let n = alg.dim();
        // All-positive schedules with π_{i2-axis} scaled so Π·d̄₆ > 0.
        let mut pi = IVec(pi_seed[0..n].to_vec());
        pi[n - 2] += pi[n - 1]; // ensure π(i1) > π(i2) so d̄₆ = [.. 1, -1] is positive
        // Identity-ish space map: first two axes.
        let mut s = bitlevel::linalg::IMat::zeros(2, n);
        s[(0, 0)] = 1;
        s[(1, n - 1)] = 1;
        let t = MappingMatrix::new(s, pi.clone());
        // A permissive machine: full 8-neighbour mesh + static link.
        let ic = bitlevel::Interconnect::new(bitlevel::linalg::IMat::from_rows(&[
            &[1, -1, 0, 0, 1, -1, 1, -1, 0],
            &[0, 0, 1, -1, 1, -1, -1, 1, 0],
        ]));
        let run = simulate_mapped(&alg, &t, &ic);
        prop_assert_eq!(run.cycles, total_time(&pi, &alg.index_set));
    }

    /// The three searches of `bitlevel-mapping` — exhaustive, best-first,
    /// and the Pareto explorer restricted to the fixed paper-shape `S` —
    /// agree on optimum time and tie-broken Π over random small structures.
    #[test]
    fn prop_schedule_searches_and_explorer_agree(
        word in arb_word_algorithm(),
        p in 2usize..4,
    ) {
        let alg = compose(&word, p, Expansion::II);
        assert_searches_agree(&alg, p as i64, 2);
    }

    /// The critical path never exceeds a *legal* schedule's makespan (a
    /// schedule with Π·d̄ > 0 for every dependence column executes at most
    /// one chain node per cycle).
    #[test]
    fn prop_critical_path_lower_bounds_schedules(word in arb_word_algorithm()) {
        let alg = compose(&word, 2, Expansion::II);
        let cp = critical_path(&alg);
        let n = alg.dim();
        let mut pi = IVec(vec![1; n]);
        pi[n - 2] = 2; // Π·d̄₆ > 0
        // The canonical schedule is legal only when every column is ordered
        // positively (random h̄'s can break that); skip illegal schedules.
        let d = alg.dependence_matrix();
        prop_assume!((0..d.cols()).all(|c| d.col(c).dot(&pi) > 0));
        let time = total_time(&pi, &alg.index_set);
        prop_assert!(cp as i64 <= time, "cp {} > time {}", cp, time);
    }
}

// Named promotions of the saved proptest shrinks (see
// `properties.proptest-regressions`): the seeds keep re-running through
// proptest, but these deterministic copies survive a deleted seed file and
// name *what* the shrink exposed.

/// Regression (seed `fe0875e2…`): the 1-D pure recurrence — no input
/// variables at all (h̄₁ = h̄₂ = ∅), h̄₃ = [1] — at word length p = 2.
/// Composition must match enumerated ground truth even when only the
/// recurrence columns exist.
#[test]
fn regression_composition_on_pure_recurrence_word() {
    let word = WordLevelAlgorithm::new(
        "random",
        BoxSet::new(IVec(vec![1]), IVec(vec![2])),
        None,
        None,
        IVec(vec![1]),
    );
    for expansion in [Expansion::I, Expansion::II] {
        let composed = compose(&word, 2, expansion);
        let truth = enumerate_dependences(&expand(&word, 2, expansion));
        assert_eq!(
            instances_of_triplet(&composed),
            truth,
            "expansion {} on {:?}",
            expansion,
            word
        );
    }
}

/// Deterministic instance of `prop_schedule_searches_and_explorer_agree` on
/// the paper's own 5-D matmul structure, where `paper_style_space` is
/// literally the `S` of eq. (4.2) — the slice Theorem 4.5 certifies.
#[test]
fn searches_and_explorer_agree_on_the_paper_structure() {
    let alg = compose(&WordLevelAlgorithm::matmul(2), 2, Expansion::II);
    assert_searches_agree(&alg, 2, 2);
}

/// Deterministic 3-D instance (1-D word recurrence): the smallest structure
/// the property ranges over, exercising the `m < 4` space shape.
#[test]
fn searches_and_explorer_agree_on_a_pure_recurrence() {
    let word = WordLevelAlgorithm::new(
        "recurrence",
        BoxSet::new(IVec(vec![1]), IVec(vec![3])),
        Some(IVec(vec![1])),
        None,
        IVec(vec![1]),
    );
    let alg = compose(&word, 3, Expansion::II);
    assert_searches_agree(&alg, 3, 2);
}

/// Regression (seed `32e3f2a3…`): h̄₁ = [1] combined with the *negative*
/// recurrence direction h̄₃ = [-1]. The critical path must lower-bound the
/// canonical schedule's makespan whenever that schedule is legal.
#[test]
fn regression_critical_path_bound_on_negative_recurrence_word() {
    let word = WordLevelAlgorithm::new(
        "random",
        BoxSet::new(IVec(vec![1]), IVec(vec![2])),
        Some(IVec(vec![1])),
        None,
        IVec(vec![-1]),
    );
    let alg = compose(&word, 2, Expansion::II);
    let cp = critical_path(&alg);
    let n = alg.dim();
    let mut pi = IVec(vec![1; n]);
    pi[n - 2] = 2;
    let d = alg.dependence_matrix();
    if (0..d.cols()).any(|c| d.col(c).dot(&pi) <= 0) {
        // Mirrors the property's prop_assume: the canonical schedule is
        // illegal for this word, so there is no makespan to bound.
        return;
    }
    let time = total_time(&pi, &alg.index_set);
    assert!(cp as i64 <= time, "cp {cp} > time {time}");
}
