//! Offline typecheck stub for serde: blanket no-op trait impls plus the
//! derive macros re-exported from the stub serde_derive.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub mod de {
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}

pub mod ser {}
