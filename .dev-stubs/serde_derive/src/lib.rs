//! Offline typecheck stub: derive macros that emit nothing (the stub serde
//! crate provides blanket impls, so nothing is needed here).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
