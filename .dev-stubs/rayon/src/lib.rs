//! Offline typecheck stub for rayon: a sequential, eager implementation of
//! the parallel-iterator surface this workspace uses. Closure bounds mirror
//! rayon's (`Sync + Send`) so code written against the stub stays valid
//! against the real crate.

use std::cmp::Ordering;

pub fn current_num_threads() -> usize {
    1
}

pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// Sequential stand-in for rayon's parallel iterators.
pub struct Par<T>(Vec<T>);

impl<T: Send> Par<T> {
    pub fn map<U: Send>(self, f: impl Fn(T) -> U + Sync + Send) -> Par<U> {
        Par(self.0.into_iter().map(f).collect())
    }

    pub fn map_init<I, U: Send>(
        self,
        init: impl Fn() -> I + Sync + Send,
        f: impl Fn(&mut I, T) -> U + Sync + Send,
    ) -> Par<U> {
        let mut state = init();
        Par(self.0.into_iter().map(|t| f(&mut state, t)).collect())
    }

    pub fn collect_into_vec(self, target: &mut Vec<T>) {
        target.clear();
        target.extend(self.0);
    }

    pub fn filter(self, f: impl Fn(&T) -> bool + Sync + Send) -> Par<T> {
        Par(self.0.into_iter().filter(f).collect())
    }

    pub fn filter_map<U: Send>(self, f: impl Fn(T) -> Option<U> + Sync + Send) -> Par<U> {
        Par(self.0.into_iter().filter_map(f).collect())
    }

    pub fn flat_map<U: Send, I: IntoIterator<Item = U>>(
        self,
        f: impl Fn(T) -> I + Sync + Send,
    ) -> Par<U> {
        Par(self.0.into_iter().flat_map(f).collect())
    }

    pub fn for_each(self, f: impl Fn(T) + Sync + Send) {
        self.0.into_iter().for_each(f)
    }

    pub fn reduce(
        self,
        identity: impl Fn() -> T + Sync + Send,
        op: impl Fn(T, T) -> T + Sync + Send,
    ) -> T {
        self.0.into_iter().fold(identity(), op)
    }

    pub fn reduce_with(self, op: impl Fn(T, T) -> T + Sync + Send) -> Option<T> {
        self.0.into_iter().reduce(op)
    }

    pub fn min_by(self, cmp: impl Fn(&T, &T) -> Ordering + Sync + Send) -> Option<T> {
        self.0.into_iter().min_by(|a, b| cmp(a, b))
    }

    pub fn max_by(self, cmp: impl Fn(&T, &T) -> Ordering + Sync + Send) -> Option<T> {
        self.0.into_iter().max_by(|a, b| cmp(a, b))
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.0.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.0.len()
    }

    pub fn any(self, f: impl Fn(T) -> bool + Sync + Send) -> bool {
        self.0.into_iter().any(|t| f(t))
    }

    pub fn all(self, f: impl Fn(T) -> bool + Sync + Send) -> bool {
        self.0.into_iter().all(|t| f(t))
    }

    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.0.into_iter().sum()
    }

    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    pub fn with_max_len(self, _len: usize) -> Self {
        self
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> Par<I::Item> {
        Par(self.into_iter().collect())
    }
}

pub trait ParallelRefIterator<T> {
    fn par_iter(&self) -> Par<&T>;
}

impl<T: Sync> ParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> Par<&T> {
        Par(self.iter().collect())
    }
}

pub trait ParallelSliceExt<T> {
    fn par_chunks(&self, chunk_size: usize) -> Par<&[T]>;
}

impl<T: Sync> ParallelSliceExt<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<&[T]> {
        Par(self.chunks(chunk_size).collect())
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelRefIterator, ParallelSliceExt};
}
