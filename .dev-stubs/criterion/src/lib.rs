//! Offline typecheck stub for criterion (bench targets are harness=false and
//! are not compiled by `cargo check`/`cargo test`, so this is resolution-only).
