//! Offline typecheck stub for serde_json. Serialization returns empty
//! strings; deserialization always errors. Good enough to typecheck and to
//! run tests that do not exercise JSON round-trips.

use std::fmt;

#[derive(Clone, Debug, Default, PartialEq)]
pub struct Value;

#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: serialization disabled in offline dev build")
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn to_string_pretty<T: ?Sized>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn from_str<T>(_s: &str) -> Result<T> {
    Err(Error)
}

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        None
    }
    pub fn as_str(&self) -> Option<&str> {
        None
    }
    pub fn as_i64(&self) -> Option<i64> {
        None
    }
    pub fn as_u64(&self) -> Option<u64> {
        None
    }
    pub fn as_f64(&self) -> Option<f64> {
        None
    }
    pub fn as_bool(&self) -> Option<bool> {
        None
    }
    pub fn get<I>(&self, _index: I) -> Option<&Value> {
        None
    }
    pub fn is_object(&self) -> bool {
        false
    }
    pub fn is_array(&self) -> bool {
        false
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "null")
    }
}

impl<I> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, _index: I) -> &Value {
        self
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, _other: &i64) -> bool {
        false
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, _other: &u64) -> bool {
        false
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, _other: &i32) -> bool {
        false
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, _other: &&str) -> bool {
        false
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, _other: &str) -> bool {
        false
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, _other: &String) -> bool {
        false
    }
}

#[macro_export]
macro_rules! json {
    ($($tt:tt)*) => {
        $crate::Value
    };
}
