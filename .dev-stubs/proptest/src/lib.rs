//! Offline typecheck stub for proptest. The `proptest!` macro swallows its
//! body (so property tests vanish in offline dev builds); the Strategy
//! combinators used *outside* the macro typecheck but are never run.

use std::marker::PhantomData;

/// Placeholder strategy producing values of type `T` (never actually runs).
pub struct Stub<T>(PhantomData<T>);

pub trait Strategy: Sized {
    type Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, _f: F) -> Stub<O> {
        Stub(PhantomData)
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, _whence: &'static str, _f: F) -> Self {
        self
    }

    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        _whence: &'static str,
        _f: F,
    ) -> Stub<O> {
        Stub(PhantomData)
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, _f: F) -> Stub<S::Value> {
        Stub(PhantomData)
    }

    fn boxed(self) -> Stub<Self::Value> {
        Stub(PhantomData)
    }
}

impl<T> Strategy for Stub<T> {
    type Value = T;
}

impl<T> Strategy for std::ops::Range<T> {
    type Value = T;
}

impl<T> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
}

pub fn any<T>() -> Stub<T> {
    Stub(PhantomData)
}

pub struct ProptestConfig;

impl ProptestConfig {
    pub fn with_cases(_cases: u32) -> Self {
        ProptestConfig
    }
}

pub mod collection {
    use super::{Strategy, Stub};
    use std::marker::PhantomData;

    pub fn vec<S: Strategy, R>(_element: S, _size: R) -> Stub<Vec<S::Value>> {
        Stub(PhantomData)
    }
}

pub mod prelude {
    pub use crate::{any, proptest, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}
