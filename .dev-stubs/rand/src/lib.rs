//! Offline typecheck stub for rand (unused by the workspace sources).
