#![warn(missing_docs)]

//! # bitlevel-core
//!
//! The end-to-end facade of the reproduction of Shang & Wah, *Dependence
//! Analysis and Architecture Design for Bit-Level Algorithms* (ICPP 1993):
//! word-level algorithm → bit-level dependence structure (Theorem 3.1) →
//! feasible/optimal space–time mapping (Definition 4.1) → cycle-accurate,
//! bit-exact simulation.
//!
//! ```
//! use bitlevel_core::{DesignFlow, PaperDesign};
//!
//! // The paper's running example: 3×3 matrices of 3-bit words (Fig. 4).
//! let flow = DesignFlow::matmul(3, 3);
//! let report = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
//! assert!(report.feasible);
//! assert_eq!(report.run.cycles, 3 * (3 - 1) + 3 * (3 - 1) + 1); // eq. (4.5)
//! flow.verify_matmul_functionally(); // the array really multiplies matrices
//! ```

pub mod pipeline;
pub mod report;

pub use pipeline::{
    ArchitectureReport, BackendUsed, BatchRunReport, CacheActivity, DesignFlow, ExplorationReport,
    VerifiedFrontierPoint,
};
pub use report::{
    render_architecture, render_frontier, render_matmul_comparison, render_structure,
    render_trace_summary,
};

// Re-export the layer crates so downstream users need a single dependency.
pub use bitlevel_arith as arith;
pub use bitlevel_cache as cache;
pub use bitlevel_depanal as depanal;
pub use bitlevel_fault as fault;
pub use bitlevel_ir as ir;
pub use bitlevel_linalg as linalg;
pub use bitlevel_mapping as mapping;
pub use bitlevel_systolic as systolic;

// The most-used items, flattened.
pub use bitlevel_arith::{AddShift, CarrySave, MultiplierAlgorithm, RippleAdder};
pub use bitlevel_cache::{schedule_key, CacheKey, CacheOutcome, CacheStats, CompileCache};
pub use bitlevel_depanal::{compare_analyses, compose, expand, Expansion};
pub use bitlevel_fault::{
    batched_single_fault_campaign, monte_carlo_campaign, monte_carlo_campaign_with_cache,
    partitioned_single_fault_campaign, single_fault_campaign, single_fault_campaign_with_cache,
    BatchedFaultCampaignReport, BatchedFaultCase, FaultCampaignReport, FaultKind, FaultOutcome,
    FaultPlan, MonteCarloReport, PartitionedCampaignReport, RandomFault, TargetedFault,
};
pub use bitlevel_ir::{AlgorithmTriplet, BoxSet, WordLevelAlgorithm};
pub use bitlevel_mapping::{
    check_feasibility, explore, find_optimal_schedule, generate_space_family, ExploreConfig,
    Interconnect, MachineOption, MappingError, MappingMatrix, PaperDesign,
};
pub use bitlevel_systolic::{
    run_clocked_compiled, simulate_mapped, simulate_mapped_compiled, BackendConfigError,
    BitMatmulArray, CompiledSchedule, NullSink, PartitionError, PartitionStats,
    PartitionedSchedule, PersistError, RecordingSink, SimBackend, TraceConfig, TraceEvent,
    TraceRollup, TraceSink, WordLevelArray, SCHEDULE_FORMAT_VERSION,
};
