//! The end-to-end design flow of the paper's Section 1:
//!
//! 1. take a word-level algorithm of model (3.5);
//! 2. **expand** it to bit level (conceptually — the dependence structure is
//!    derived compositionally by Theorem 3.1, never materialising the
//!    expanded code);
//! 3. **map** the bit-level structure to a processor array (Definition 4.1),
//!    either by verifying a given design or by searching for a time-optimal
//!    schedule;
//! 4. **simulate** the resulting architecture cycle-accurately and, for
//!    matmul, bit-exactly.

use bitlevel_cache::{CacheStats, CompileCache};
use bitlevel_depanal::{compose, Expansion};
use bitlevel_ir::{AlgorithmTriplet, WordLevelAlgorithm};
use bitlevel_linalg::IMat;
use bitlevel_mapping::{
    check_feasibility, find_optimal_schedule, generate_space_family, total_time, ExploreConfig,
    ExploreStats, FrontierPoint, Interconnect, MachineOption, MappingError, MappingMatrix,
    OptimalSchedule, PaperDesign,
};
use bitlevel_systolic::{
    run_clocked, simulate_mapped_faulted, simulate_mapped_traced, BitMatmulArray, CompileError,
    CompiledSchedule, FaultInjector, MappedRunReport, MatmulExpansionICells,
    MatmulExpansionIICells, MatmulLaneCells, NullSink, PartitionStats, PartitionedSchedule,
    SimBackend, TraceEvent, TraceSink, MAX_LANES,
};
use serde::Serialize;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Which simulation engine actually ran an evaluation, as a typed value.
///
/// The `Display` (and serde) rendering reproduces the historical free-form
/// strings exactly — `"compiled"`, `"interpreted"`,
/// `"interpreted (fallback: <reason>)"`,
/// `"compiled-batch (bitwise, width <w>)"` — so persisted reports, CSV/JSON
/// consumers, and CI checks keyed on those strings keep working unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
#[serde(into = "String")]
pub enum BackendUsed {
    /// The compiled dense-slot engine.
    Compiled,
    /// The interpreted reference engine, chosen deliberately.
    Interpreted,
    /// The word-parallel bit-sliced engine at the given (clamped) lane width.
    CompiledBatch {
        /// Lanes per machine word actually used.
        width: usize,
    },
    /// The LSGP-partitioned engine over a fixed physical worker pool.
    Partitioned {
        /// Physical workers actually used (after clamping to the virtual PE
        /// count).
        workers: usize,
    },
    /// The interpreted engine, reached by graceful degradation after the
    /// compiled backend declined the structure or semantics.
    InterpretedFallback {
        /// Why the compiled backend declined (a `CompileError` rendering or
        /// a semantic reason such as stateful Expansion I cells).
        reason: String,
    },
    /// The compiled engine, reached by graceful degradation after the
    /// partitioned backend declined the schedule (e.g. a non-causal
    /// schedule, whose interpreted-order bookkeeping the shard barriers
    /// cannot reproduce).
    CompiledFallback {
        /// Why the partitioned backend declined (a `PartitionError`
        /// rendering).
        reason: String,
    },
}

impl BackendUsed {
    /// An [`BackendUsed::InterpretedFallback`] from any rendered reason.
    pub fn fallback(reason: impl Into<String>) -> Self {
        BackendUsed::InterpretedFallback {
            reason: reason.into(),
        }
    }

    /// A [`BackendUsed::CompiledFallback`] from any rendered reason.
    pub fn compiled_fallback(reason: impl Into<String>) -> Self {
        BackendUsed::CompiledFallback {
            reason: reason.into(),
        }
    }

    /// True iff the engine was reached by fallback rather than selection.
    pub fn is_fallback(&self) -> bool {
        matches!(
            self,
            BackendUsed::InterpretedFallback { .. } | BackendUsed::CompiledFallback { .. }
        )
    }

    /// True for every compiled flavour (scalar, batch, partitioned, and the
    /// partitioned-to-compiled degradation — all run the compiled schedule).
    pub fn is_compiled(&self) -> bool {
        matches!(
            self,
            BackendUsed::Compiled
                | BackendUsed::CompiledBatch { .. }
                | BackendUsed::Partitioned { .. }
                | BackendUsed::CompiledFallback { .. }
        )
    }
}

impl fmt::Display for BackendUsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendUsed::Compiled => write!(f, "compiled"),
            BackendUsed::Interpreted => write!(f, "interpreted"),
            BackendUsed::CompiledBatch { width } => {
                write!(f, "compiled-batch (bitwise, width {width})")
            }
            BackendUsed::Partitioned { workers } => {
                write!(f, "partitioned (workers {workers})")
            }
            BackendUsed::InterpretedFallback { reason } => {
                write!(f, "interpreted (fallback: {reason})")
            }
            BackendUsed::CompiledFallback { reason } => {
                write!(f, "compiled (fallback: {reason})")
            }
        }
    }
}

impl From<BackendUsed> for String {
    fn from(b: BackendUsed) -> String {
        b.to_string()
    }
}

impl std::str::FromStr for BackendUsed {
    type Err = String;

    /// Parses the exact `Display` renderings back (the legacy string space).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "compiled" => return Ok(BackendUsed::Compiled),
            "interpreted" => return Ok(BackendUsed::Interpreted),
            _ => {}
        }
        if let Some(rest) = s
            .strip_prefix("interpreted (fallback: ")
            .and_then(|r| r.strip_suffix(')'))
        {
            return Ok(BackendUsed::fallback(rest));
        }
        if let Some(rest) = s
            .strip_prefix("compiled (fallback: ")
            .and_then(|r| r.strip_suffix(')'))
        {
            return Ok(BackendUsed::compiled_fallback(rest));
        }
        if let Some(k) = s
            .strip_prefix("partitioned (workers ")
            .and_then(|r| r.strip_suffix(')'))
            .and_then(|k| k.parse::<usize>().ok())
        {
            return Ok(BackendUsed::Partitioned { workers: k });
        }
        if let Some(w) = s
            .strip_prefix("compiled-batch (bitwise, width ")
            .and_then(|r| r.strip_suffix(')'))
            .and_then(|w| w.parse::<usize>().ok())
        {
            return Ok(BackendUsed::CompiledBatch { width: w });
        }
        Err(format!("unrecognised backend string: {s:?}"))
    }
}

impl TryFrom<String> for BackendUsed {
    type Error = String;

    fn try_from(s: String) -> Result<Self, Self::Error> {
        s.parse()
    }
}

impl PartialEq<&str> for BackendUsed {
    // Equality is defined as "renders to exactly this legacy string", so the
    // canonical rendering is the comparison — the allocation is the point.
    #[allow(clippy::cmp_owned)]
    fn eq(&self, other: &&str) -> bool {
        self.to_string() == *other
    }
}

impl PartialEq<BackendUsed> for &str {
    fn eq(&self, other: &BackendUsed) -> bool {
        other == self
    }
}

/// Evidence of how an evaluation's compiled schedule was obtained from the
/// flow's shared [`CompileCache`].
#[derive(Debug, Clone, Serialize)]
pub struct CacheActivity {
    /// The 32-hex-digit content key of the (structure, mapping, machine)
    /// triple — the stem of the on-disk `*.blsc` entry when persistence is
    /// configured.
    pub key: String,
    /// Where the lookup was answered: `"memory-hit"`, `"disk-hit"`, or
    /// `"miss-compiled"`.
    pub outcome: String,
    /// Cumulative cache counters right after this lookup.
    pub stats: CacheStats,
}

/// A configured design flow: one word-level algorithm, one word length, one
/// expansion, and the simulation backend executing steps 4+.
#[derive(Debug, Clone)]
pub struct DesignFlow {
    /// The word-level algorithm.
    pub word: WordLevelAlgorithm,
    /// Word length `p`.
    pub p: usize,
    /// Algorithm expansion.
    pub expansion: Expansion,
    /// Simulation engine (compiled dense-slot by default; the interpreted
    /// engine remains available as the reference oracle).
    pub backend: SimBackend,
    /// Shared compile cache: every compiled-backend evaluation (traced,
    /// faulted, batch, clocked, explorer re-verification) looks schedules up
    /// here by content key before compiling. Clones of the flow share it.
    cache: CompileCache,
}

/// Everything known about one concrete architecture for the flow.
#[derive(Debug, Clone, Serialize)]
pub struct ArchitectureReport {
    /// Design label.
    pub name: String,
    /// Whether all five Definition 4.1 conditions hold.
    pub feasible: bool,
    /// Violations, rendered (empty when feasible).
    pub violations: Vec<String>,
    /// Measured simulation results.
    pub run: MappedRunReport,
    /// Closed-form execution time for cross-checking (when known).
    pub closed_form_cycles: Option<i64>,
    /// Longest wire length of the machine.
    pub max_wire_length: i64,
    /// Which simulation engine actually ran — [`BackendUsed::Compiled`],
    /// [`BackendUsed::Interpreted`], or a fallback recording why the
    /// compiled backend declined the structure (e.g. more than 64 dependence
    /// columns). Renders as the legacy strings.
    pub backend_used: BackendUsed,
    /// Compile-cache evidence for this evaluation: the content key, the
    /// lookup outcome, and the cumulative counters. `None` when no compiled
    /// schedule was consulted (interpreted backend, or compile fallback).
    pub cache: Option<CacheActivity>,
    /// Shard statistics of the LSGP partition when the evaluation ran (or
    /// attempted) the [`SimBackend::Partitioned`] engine; `None` on every
    /// other backend.
    pub partition: Option<PartitionStats>,
}

/// One frontier design with its verification evidence: the architecture
/// report from the flow's configured backend plus the field-by-field
/// comparison against an independent interpreted-engine reference run.
#[derive(Debug, Clone, Serialize)]
pub struct VerifiedFrontierPoint {
    /// The explorer's design (mapping, machine, objective triple).
    pub point: FrontierPoint,
    /// Full evaluation on the flow's backend (compiled with interpreted
    /// fallback by default; `report.backend_used` says which engine ran).
    pub report: ArchitectureReport,
    /// Fields on which the backend's measurement differed from the
    /// interpreted reference — empty means the design is verified bit-exact
    /// across engines.
    pub divergences: Vec<String>,
}

impl VerifiedFrontierPoint {
    /// True iff the design is Definition-4.1 feasible **and** both engines
    /// measured the identical run.
    pub fn verified(&self) -> bool {
        self.report.feasible && self.divergences.is_empty()
    }
}

/// Result of [`DesignFlow::explore`]: every frontier design independently
/// re-simulated and cross-checked, plus the explorer's pruning statistics.
#[derive(Debug, Clone, Serialize)]
pub struct ExplorationReport {
    /// Verified frontier designs, in the explorer's deterministic order.
    pub designs: Vec<VerifiedFrontierPoint>,
    /// Search statistics (examined vs exhaustive, pruning counters).
    pub stats: ExploreStats,
}

impl ExplorationReport {
    /// True iff every frontier design passed feasibility and the bit-exact
    /// engine cross-check.
    pub fn all_verified(&self) -> bool {
        self.designs.iter().all(|d| d.verified())
    }
}

/// Result of [`DesignFlow::evaluate_batch`]: one paper design executed over
/// a whole batch of independent matmul instances, with the products of every
/// instance extracted bit-exactly.
///
/// Not serialisable: the products are `u128` matrices, which serde's derive
/// does not portably support.
#[derive(Debug, Clone)]
pub struct BatchRunReport {
    /// Design label (`PaperDesign::name`).
    pub design: String,
    /// Number of problem instances in the batch.
    pub instances: usize,
    /// Lane width per schedule walk — the clamped `CompiledBatch` width on
    /// the word-parallel path, `1` on every scalar path.
    pub width: usize,
    /// Number of schedule walks actually performed
    /// (`⌈instances/width⌉` word-parallel, `instances` scalar).
    pub walks: usize,
    /// Measured cycle count of one walk (schedule-determined, hence
    /// identical across walks and lanes).
    pub cycles: i64,
    /// True iff every walk was free of timing/routing/conflict violations.
    pub legal: bool,
    /// Which engine ran: [`BackendUsed::CompiledBatch`] on the word-parallel
    /// path, otherwise the same values as [`ArchitectureReport::backend_used`]
    /// (including fallbacks when the batch/compiled backend declined the
    /// structure or semantics).
    pub backend_used: BackendUsed,
    /// Per-instance product matrices `Z = X·Y`, in batch order.
    pub products: Vec<Vec<Vec<u128>>>,
}

impl DesignFlow {
    /// Creates the flow (with the default [`SimBackend::Compiled`]).
    pub fn new(word: WordLevelAlgorithm, p: usize, expansion: Expansion) -> Self {
        DesignFlow {
            word,
            p,
            expansion,
            backend: SimBackend::default(),
            cache: CompileCache::new(),
        }
    }

    /// Selects the simulation backend (builder style).
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the simulation backend, rejecting invalid configurations
    /// (zero or over-wide batch lane counts) with a typed error instead of
    /// clamping them at run time.
    pub fn with_validated_backend(
        self,
        backend: SimBackend,
    ) -> Result<Self, bitlevel_systolic::BackendConfigError> {
        backend.validate()?;
        Ok(self.with_backend(backend))
    }

    /// Replaces the flow's compile cache (builder style). Handing the same
    /// [`CompileCache`] to several flows makes them share warm artifacts.
    pub fn with_cache(mut self, cache: CompileCache) -> Self {
        self.cache = cache;
        self
    }

    /// Backs the flow's compile cache with a persistent directory: compiled
    /// schedules are written through as checksummed `*.blsc` images and
    /// survive process restarts. Corrupt or version-skewed entries degrade
    /// to a recorded miss + recompile; an uncreatable directory degrades the
    /// cache to memory-only. Never fails.
    pub fn with_cache_dir(self, dir: impl Into<PathBuf>) -> Self {
        self.with_cache(CompileCache::with_disk_dir(dir))
    }

    /// The flow's shared compile cache (counters, disk dir, manual lookups).
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Convenience: the paper's running example (u×u matmul, word length p,
    /// Expansion II).
    pub fn matmul(u: i64, p: usize) -> Self {
        DesignFlow::new(WordLevelAlgorithm::matmul(u), p, Expansion::II)
    }

    /// Step 2: the bit-level dependence structure via Theorem 3.1.
    pub fn bit_level_structure(&self) -> AlgorithmTriplet {
        compose(&self.word, self.p, self.expansion)
    }

    /// Step 3+4 for an arbitrary mapping: feasibility check plus simulation.
    pub fn evaluate(
        &self,
        name: &str,
        t: &MappingMatrix,
        ic: &Interconnect,
        closed_form_cycles: Option<i64>,
    ) -> ArchitectureReport {
        self.evaluate_traced(name, t, ic, closed_form_cycles, &mut NullSink)
    }

    /// [`DesignFlow::evaluate`] with observability: every firing, token
    /// movement, and violation of the simulated run is emitted into `sink`.
    pub fn evaluate_traced<K: TraceSink>(
        &self,
        name: &str,
        t: &MappingMatrix,
        ic: &Interconnect,
        closed_form_cycles: Option<i64>,
        sink: &mut K,
    ) -> ArchitectureReport {
        let alg = self.bit_level_structure();
        self.evaluate_structure_traced(name, &alg, t, ic, closed_form_cycles, sink)
    }

    /// Step 3+4 for an explicit bit-level structure, bypassing the flow's own
    /// composition — the entry point for structures that are not derivable
    /// from `self.word` (e.g. stress shapes with more dependence columns than
    /// the compiled backend supports).
    pub fn evaluate_structure(
        &self,
        name: &str,
        alg: &AlgorithmTriplet,
        t: &MappingMatrix,
        ic: &Interconnect,
        closed_form_cycles: Option<i64>,
    ) -> ArchitectureReport {
        self.evaluate_structure_traced(name, alg, t, ic, closed_form_cycles, &mut NullSink)
    }

    /// [`DesignFlow::evaluate_structure`] with observability.
    ///
    /// Under [`SimBackend::Compiled`], structures the compiled backend cannot
    /// represent (more than 64 dependence columns, or an index set whose
    /// cardinality overflows the dense `u32` slot space) degrade gracefully:
    /// a [`TraceEvent::BackendFallback`] is emitted, the interpreted engine
    /// runs instead, and the report's `backend_used` records the reason.
    pub fn evaluate_structure_traced<K: TraceSink>(
        &self,
        name: &str,
        alg: &AlgorithmTriplet,
        t: &MappingMatrix,
        ic: &Interconnect,
        closed_form_cycles: Option<i64>,
        sink: &mut K,
    ) -> ArchitectureReport {
        let rep = check_feasibility(t, alg, ic);
        let mut partition = None;
        let (run, backend_used, cache) = match self.backend {
            SimBackend::Interpreted => (
                simulate_mapped_traced(alg, t, ic, sink),
                BackendUsed::Interpreted,
                None,
            ),
            // Timing-only evaluation is value-independent, so the batch
            // backend measures exactly what the scalar compiled backend does
            // (one schedule walk covers every lane).
            SimBackend::Compiled | SimBackend::CompiledBatch { .. } => {
                match self.schedule_cached(alg, t, ic, "compiled", sink) {
                    Ok((sched, activity)) => (
                        sched.mapped_report_traced(sink),
                        BackendUsed::Compiled,
                        Some(activity),
                    ),
                    Err(e) => (
                        simulate_mapped_traced(alg, t, ic, sink),
                        BackendUsed::fallback(e.to_string()),
                        None,
                    ),
                }
            }
            SimBackend::Partitioned { workers } => {
                match self.schedule_cached(alg, t, ic, "partitioned", sink) {
                    Ok((sched, activity)) => {
                        match PartitionedSchedule::try_new(Arc::clone(&sched), workers) {
                            Ok(part) => {
                                partition = Some(part.stats().clone());
                                let used = part.workers();
                                (
                                    part.mapped_report_traced(sink),
                                    BackendUsed::Partitioned { workers: used },
                                    Some(activity),
                                )
                            }
                            Err(e) => {
                                self.record_partition_fallback(sink, &e.to_string());
                                (
                                    sched.mapped_report_traced(sink),
                                    BackendUsed::compiled_fallback(e.to_string()),
                                    Some(activity),
                                )
                            }
                        }
                    }
                    Err(e) => (
                        simulate_mapped_traced(alg, t, ic, sink),
                        BackendUsed::fallback(e.to_string()),
                        None,
                    ),
                }
            }
        };
        ArchitectureReport {
            name: name.to_string(),
            feasible: rep.is_feasible(),
            violations: rep.violations.iter().map(|v| v.to_string()).collect(),
            run,
            closed_form_cycles,
            max_wire_length: ic.max_wire_length(),
            backend_used,
            cache,
            partition,
        }
    }

    /// [`DesignFlow::evaluate_traced`] under fault injection: the timing
    /// simulation consults `faults` for dead PEs and dropped/duplicated
    /// link transfers (resolve a `bitlevel_fault::FaultPlan` against the
    /// flow's structure to build one), with the same backend dispatch and
    /// graceful interpreted fallback as the faultless path. Injections
    /// surface as [`TraceEvent::FaultInjected`] events in `sink`.
    pub fn evaluate_faulted<K: TraceSink, F: FaultInjector<()>>(
        &self,
        name: &str,
        t: &MappingMatrix,
        ic: &Interconnect,
        closed_form_cycles: Option<i64>,
        sink: &mut K,
        faults: &F,
    ) -> ArchitectureReport {
        let alg = self.bit_level_structure();
        let rep = check_feasibility(t, &alg, ic);
        let mut partition = None;
        let (run, backend_used, cache) = match self.backend {
            SimBackend::Interpreted => (
                simulate_mapped_faulted(&alg, t, ic, sink, faults),
                BackendUsed::Interpreted,
                None,
            ),
            SimBackend::Compiled | SimBackend::CompiledBatch { .. } => {
                match self.schedule_cached(&alg, t, ic, "compiled", sink) {
                    Ok((sched, activity)) => (
                        sched.mapped_report_faulted(sink, faults),
                        BackendUsed::Compiled,
                        Some(activity),
                    ),
                    Err(e) => (
                        simulate_mapped_faulted(&alg, t, ic, sink, faults),
                        BackendUsed::fallback(e.to_string()),
                        None,
                    ),
                }
            }
            SimBackend::Partitioned { workers } => {
                match self.schedule_cached(&alg, t, ic, "partitioned", sink) {
                    Ok((sched, activity)) => {
                        match PartitionedSchedule::try_new(Arc::clone(&sched), workers) {
                            Ok(part) => {
                                partition = Some(part.stats().clone());
                                let used = part.workers();
                                (
                                    part.mapped_report_faulted(sink, faults),
                                    BackendUsed::Partitioned { workers: used },
                                    Some(activity),
                                )
                            }
                            Err(e) => {
                                self.record_partition_fallback(sink, &e.to_string());
                                (
                                    sched.mapped_report_faulted(sink, faults),
                                    BackendUsed::compiled_fallback(e.to_string()),
                                    Some(activity),
                                )
                            }
                        }
                    }
                    Err(e) => (
                        simulate_mapped_faulted(&alg, t, ic, sink, faults),
                        BackendUsed::fallback(e.to_string()),
                        None,
                    ),
                }
            }
        };
        ArchitectureReport {
            name: name.to_string(),
            feasible: rep.is_feasible(),
            violations: rep.violations.iter().map(|v| v.to_string()).collect(),
            run,
            closed_form_cycles,
            max_wire_length: ic.max_wire_length(),
            backend_used,
            cache,
            partition,
        }
    }

    /// Step 3+4 for one of the paper's Section 4.2 matmul designs.
    ///
    /// # Panics
    /// Panics if the flow is not a matmul flow (the designs are specific to
    /// the 5-dimensional matmul structure).
    pub fn evaluate_paper_design(&self, design: PaperDesign) -> ArchitectureReport {
        assert_eq!(
            self.word.dim(),
            3,
            "the Section 4 designs target the 3-D matmul word-level algorithm"
        );
        let p = self.p as i64;
        let u = self.word.bounds.upper()[0];
        self.evaluate(
            design.name(),
            &design.mapping(p),
            &design.interconnect(p),
            Some(design.total_time(u, p)),
        )
    }

    /// Searches for a time-optimal schedule for a fixed space mapping
    /// (Theorem 4.5 reproduced when applied to `S` of (4.2)).
    pub fn optimize_schedule(
        &self,
        space: &IMat,
        ic: &Interconnect,
        bound: i64,
    ) -> Option<OptimalSchedule> {
        find_optimal_schedule(space, &self.bit_level_structure(), ic, bound)
    }

    /// The execution time a schedule would give on this flow's index set.
    pub fn schedule_time(&self, pi: &bitlevel_linalg::IVec) -> i64 {
        total_time(pi, &self.bit_level_structure().index_set)
    }

    /// The default design-space exploration setup for this flow: the
    /// generated family of space mappings (two-row combinations with entries
    /// up to the word length, which includes the paper's `S` of (4.2)) and
    /// the machine menu of Section 4 — the long-wire machine `P` and the
    /// nearest-neighbour machine `P'`.
    ///
    /// Under [`SimBackend::Partitioned`] the worker count doubles as the
    /// explorer's physical-PE budget, so the frontier is costed on the
    /// LSGP-folded axes `(physical_time, physical_pes, wire)` out of the box.
    pub fn default_exploration(&self) -> (Vec<IMat>, ExploreConfig) {
        let p = self.p as i64;
        let n = self.bit_level_structure().dim();
        let family = generate_space_family(n, 2, p);
        let config = ExploreConfig {
            pi_bound: p,
            machines: vec![
                MachineOption::new("P (long wires)", Interconnect::paper_p(p)),
                MachineOption::new("P' (nearest neighbour)", Interconnect::paper_p_prime()),
            ],
            max_physical_pes: match self.backend {
                SimBackend::Partitioned { workers } => Some(workers),
                _ => None,
            },
        };
        (family, config)
    }

    /// Full design-space exploration (steps 3+4 over the whole frontier):
    /// runs [`bitlevel_mapping::explore`] over `spaces × config.machines`,
    /// then **verifies** every frontier design — evaluation on the flow's
    /// backend (compiled with interpreted fallback, `backend_used` recorded)
    /// plus a field-by-field bit-exact comparison against an independent
    /// interpreted-engine run.
    pub fn explore(
        &self,
        spaces: &[IMat],
        config: &ExploreConfig,
    ) -> Result<ExplorationReport, MappingError> {
        self.explore_traced(spaces, config, &mut NullSink)
    }

    /// [`DesignFlow::explore`] with observability: the verification run of
    /// every frontier design streams its events (including any
    /// [`TraceEvent::BackendFallback`]) into `sink`.
    pub fn explore_traced<K: TraceSink>(
        &self,
        spaces: &[IMat],
        config: &ExploreConfig,
        sink: &mut K,
    ) -> Result<ExplorationReport, MappingError> {
        self.explore_streamed(spaces, config, sink, |_| {})
    }

    /// [`DesignFlow::explore_traced`] with **incremental delivery**: every
    /// frontier design is handed to `on_point` the moment its verification
    /// (backend evaluation + interpreted cross-check) completes, before the
    /// next design is touched. This is how the evaluation service streams
    /// frontier points to a client as NDJSON progress frames instead of
    /// sitting silent until the whole frontier is verified; the full
    /// [`ExplorationReport`] is still returned at the end.
    pub fn explore_streamed<K: TraceSink, F: FnMut(&VerifiedFrontierPoint)>(
        &self,
        spaces: &[IMat],
        config: &ExploreConfig,
        sink: &mut K,
        mut on_point: F,
    ) -> Result<ExplorationReport, MappingError> {
        let alg = self.bit_level_structure();
        let ex = bitlevel_mapping::explore(&alg, spaces, config)?;
        let designs = ex
            .frontier
            .iter()
            .map(|point| {
                let name = format!("frontier t={} on {}", point.time, point.machine);
                let report = self.evaluate_structure_traced(
                    &name,
                    &alg,
                    &point.mapping,
                    &point.interconnect,
                    Some(point.time),
                    sink,
                );
                let reference = simulate_mapped_traced(
                    &alg,
                    &point.mapping,
                    &point.interconnect,
                    &mut NullSink,
                );
                let divergences = report
                    .run
                    .divergences_from(&reference)
                    .into_iter()
                    .map(str::to_string)
                    .collect();
                let verified = VerifiedFrontierPoint {
                    point: point.clone(),
                    report,
                    divergences,
                };
                on_point(&verified);
                verified
            })
            .collect();
        Ok(ExplorationReport {
            designs,
            stats: ex.stats,
        })
    }

    /// The deepest verification available for matmul flows: executes the
    /// chosen paper design on the **clocked RTL engine** (value-carrying
    /// tokens, per-token route timing) with deterministic safe operands and
    /// checks every product entry. Returns the measured cycle count.
    ///
    /// Under [`SimBackend::Compiled`] a structure the compiled backend cannot
    /// represent falls back to the interpreted engine rather than panicking.
    ///
    /// # Panics
    /// Panics if the run is illegal (timing/routing/conflict violations) or
    /// any product bit is wrong — with a message saying which.
    pub fn run_clocked_matmul(&self, design: PaperDesign) -> i64 {
        use bitlevel_systolic::Model35Cells;
        assert_eq!(
            self.word.dim(),
            3,
            "clocked matmul verification targets matmul"
        );
        assert_eq!(
            self.expansion,
            Expansion::II,
            "the clocked cells implement Expansion II"
        );
        let u = self.word.bounds.upper()[0] as usize;
        let p = self.p;
        let alg = self.bit_level_structure();

        let m = BitMatmulArray::new(u, p).max_safe_entry();
        let x: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((7 * i + 2 * j + 1) as u128) % (m + 1))
                    .collect()
            })
            .collect();
        let y: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((i + 5 * j + 3) as u128) % (m + 1))
                    .collect()
            })
            .collect();

        let (xo, yo) = (x.clone(), y.clone());
        let mut cells = Model35Cells::new(
            &self.word,
            p,
            &alg,
            move |j| xo[(j[0] - 1) as usize][(j[2] - 1) as usize],
            move |j| yo[(j[2] - 1) as usize][(j[1] - 1) as usize],
        );
        let t = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);
        let run = match self.backend {
            SimBackend::Interpreted => run_clocked(&alg, &t, &ic, &mut cells),
            SimBackend::Compiled | SimBackend::CompiledBatch { .. } => {
                match self.schedule_cached(&alg, &t, &ic, "compiled", &mut NullSink) {
                    Ok((sched, _)) => sched.execute(&cells),
                    Err(_) => run_clocked(&alg, &t, &ic, &mut cells),
                }
            }
            SimBackend::Partitioned { workers } => {
                match self.schedule_cached(&alg, &t, &ic, "partitioned", &mut NullSink) {
                    Ok((sched, _)) => {
                        match PartitionedSchedule::try_new(Arc::clone(&sched), workers) {
                            Ok(part) => part.execute(&cells),
                            Err(_) => sched.execute(&cells),
                        }
                    }
                    Err(_) => run_clocked(&alg, &t, &ic, &mut cells),
                }
            }
        };
        assert!(run.is_legal(), "clocked violations: {:?}", run.violations);
        for (tail, value) in cells.extract_results(&run) {
            let (i, j) = ((tail[0] - 1) as usize, (tail[1] - 1) as usize);
            let want: u128 = (0..u).map(|k| x[i][k] * y[k][j]).sum();
            assert_eq!(value, want, "clocked Z[{i}][{j}] wrong");
        }
        run.cycles
    }

    /// Bit-exact functional verification for matmul flows: runs the
    /// Expansion II array on deterministic safe operands and compares with
    /// native arithmetic. Under [`SimBackend::Compiled`] the same operands
    /// are additionally pushed through the compiled clocked engine on the
    /// Fig. 4 design and must extract the same products. Returns the tested
    /// matrix size.
    ///
    /// # Panics
    /// Panics (with a descriptive message) if the array miscomputes — this is
    /// the "does the architecture actually multiply matrices" check.
    pub fn verify_matmul_functionally(&self) -> usize {
        assert_eq!(self.word.dim(), 3, "functional verification targets matmul");
        let u = self.word.bounds.upper()[0] as usize;
        let arr = BitMatmulArray::new(u, self.p);
        let m = arr.max_safe_entry();
        let x: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((3 * i + 7 * j + 1) as u128) % (m + 1))
                    .collect()
            })
            .collect();
        let y: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((5 * i + 2 * j + 3) as u128) % (m + 1))
                    .collect()
            })
            .collect();
        let got = arr.multiply(&x, &y);
        for i in 0..u {
            for j in 0..u {
                let want: u128 = (0..u).map(|k| x[i][k] * y[k][j]).sum();
                assert_eq!(
                    got[i][j], want,
                    "bit-level array miscomputed Z[{i}][{j}] for u={u}, p={}",
                    self.p
                );
            }
        }
        if matches!(
            self.backend,
            SimBackend::Compiled
                | SimBackend::CompiledBatch { .. }
                | SimBackend::Partitioned { .. }
        ) && self.expansion == Expansion::II
        {
            let alg = self.bit_level_structure();
            let design = PaperDesign::TimeOptimal;
            let cells = MatmulExpansionIICells::new(u, self.p, &x, &y);
            let t = design.mapping(self.p as i64);
            let ic = design.interconnect(self.p as i64);
            let (sched, _) = self
                .schedule_cached(&alg, &t, &ic, "compiled", &mut NullSink)
                .expect("the Fig. 4 matmul design always compiles");
            let run = match self.backend {
                SimBackend::Partitioned { workers } => {
                    match PartitionedSchedule::try_new(Arc::clone(&sched), workers) {
                        Ok(part) => part.execute(&cells),
                        Err(_) => sched.execute(&cells),
                    }
                }
                _ => sched.execute(&cells),
            };
            assert!(
                run.is_legal(),
                "compiled clocked violations: {:?}",
                run.violations
            );
            assert_eq!(
                cells.extract_product(&run),
                got,
                "compiled backend disagrees with the topological array"
            );
        }
        u
    }

    /// Executes a **batch** of independent matmul instances on one paper
    /// design and extracts every product bit-exactly.
    ///
    /// Under [`SimBackend::CompiledBatch`] the instances are packed into the
    /// bit-lanes of machine words (up to [`MAX_LANES`] per word, ragged final
    /// word masked to zero) and each word takes **one** schedule walk through
    /// the compiled engine — the word-parallel fast path this backend exists
    /// for. Scalar backends run the same batch one instance at a time, so the
    /// report is comparable across backends.
    ///
    /// Degradation is graceful, mirroring [`DesignFlow::evaluate_structure`]:
    /// if the structure does not compile, or the flow's expansion has no
    /// word-parallel cell semantics (Expansion I cells are stateful), the
    /// batch falls back to per-instance interpreted runs and `backend_used`
    /// records why.
    ///
    /// # Panics
    /// Panics if the flow is not a matmul flow, the batch is empty, or
    /// `xs`/`ys` disagree in length.
    pub fn evaluate_batch(
        &self,
        design: PaperDesign,
        xs: &[Vec<Vec<u128>>],
        ys: &[Vec<Vec<u128>>],
    ) -> BatchRunReport {
        self.evaluate_batch_traced(design, xs, ys, &mut NullSink)
    }

    /// [`DesignFlow::evaluate_batch`] with observability: fallbacks surface
    /// as [`TraceEvent::BackendFallback`] and, on the word-parallel path,
    /// each walk streams its per-cycle events into `sink`.
    pub fn evaluate_batch_traced<K: TraceSink>(
        &self,
        design: PaperDesign,
        xs: &[Vec<Vec<u128>>],
        ys: &[Vec<Vec<u128>>],
        sink: &mut K,
    ) -> BatchRunReport {
        assert_eq!(self.word.dim(), 3, "batch evaluation targets matmul");
        assert_eq!(xs.len(), ys.len(), "need one Y operand per X operand");
        assert!(!xs.is_empty(), "batch must hold at least one instance");
        let u = self.word.bounds.upper()[0] as usize;
        let p = self.p;
        let n = xs.len();
        let alg = self.bit_level_structure();
        let t = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);

        // Per-instance interpreted execution: the reference oracle, and the
        // landing spot for everything the word-parallel path cannot take.
        let interpret_all = |backend_used: BackendUsed| -> BatchRunReport {
            let mut products = Vec::with_capacity(n);
            let mut cycles = 0;
            let mut legal = true;
            for (x, y) in xs.iter().zip(ys) {
                let run = match self.expansion {
                    Expansion::II => {
                        let mut cells = MatmulExpansionIICells::new(u, p, x, y);
                        let run = run_clocked(&alg, &t, &ic, &mut cells);
                        products.push(cells.extract_product(&run));
                        run
                    }
                    Expansion::I => {
                        let mut cells = MatmulExpansionICells::new(u, p, x, y);
                        let run = run_clocked(&alg, &t, &ic, &mut cells);
                        products.push(cells.extract_product(&run));
                        run
                    }
                };
                cycles = run.cycles;
                legal &= run.is_legal();
            }
            BatchRunReport {
                design: design.name().to_string(),
                instances: n,
                width: 1,
                walks: n,
                cycles,
                legal,
                backend_used,
                products,
            }
        };

        match self.backend {
            SimBackend::Interpreted => interpret_all(BackendUsed::Interpreted),
            SimBackend::Compiled => {
                if self.expansion != Expansion::II {
                    self.record_batch_fallback(sink, "Expansion I cells are sequential");
                    return interpret_all(BackendUsed::fallback(
                        "Expansion I cells are sequential",
                    ));
                }
                match self.schedule_cached(&alg, &t, &ic, "compiled", sink) {
                    Ok((sched, _)) => {
                        let mut products = Vec::with_capacity(n);
                        let mut cycles = 0;
                        let mut legal = true;
                        for (x, y) in xs.iter().zip(ys) {
                            let cells = MatmulExpansionIICells::new(u, p, x, y);
                            let run = sched.execute(&cells);
                            cycles = run.cycles;
                            legal &= run.is_legal();
                            products.push(cells.extract_product(&run));
                        }
                        BatchRunReport {
                            design: design.name().to_string(),
                            instances: n,
                            width: 1,
                            walks: n,
                            cycles,
                            legal,
                            backend_used: BackendUsed::Compiled,
                            products,
                        }
                    }
                    Err(e) => interpret_all(BackendUsed::fallback(e.to_string())),
                }
            }
            SimBackend::CompiledBatch { width } => {
                if self.expansion != Expansion::II {
                    self.record_batch_fallback(sink, "Expansion I cells are sequential");
                    return interpret_all(BackendUsed::fallback(
                        "Expansion I cells are sequential",
                    ));
                }
                match self.schedule_cached(&alg, &t, &ic, "compiled-batch", sink) {
                    Ok((sched, _)) => {
                        let w = width.clamp(1, MAX_LANES);
                        if K::ENABLED && w != width {
                            sink.record(TraceEvent::BatchWidthClamped {
                                requested: width,
                                used: w,
                            });
                        }
                        let chunks: Vec<MatmulLaneCells> = xs
                            .chunks(w)
                            .zip(ys.chunks(w))
                            .map(|(xc, yc)| MatmulLaneCells::new(u, p, xc, yc))
                            .collect();
                        let runs = if K::ENABLED {
                            // Traced walks run sequentially so the sink sees
                            // a deterministic event order.
                            chunks
                                .iter()
                                .map(|cells| sched.execute_batch_traced(cells, sink))
                                .collect::<Vec<_>>()
                        } else {
                            sched.execute_batch_chunks(&chunks)
                        };
                        let mut products = Vec::with_capacity(n);
                        let mut cycles = 0;
                        let mut legal = true;
                        for (cells, run) in chunks.iter().zip(&runs) {
                            cycles = run.cycles;
                            legal &= run.is_legal();
                            products.extend(cells.extract_products(run));
                        }
                        BatchRunReport {
                            design: design.name().to_string(),
                            instances: n,
                            width: w,
                            walks: chunks.len(),
                            cycles,
                            legal,
                            backend_used: BackendUsed::CompiledBatch { width: w },
                            products,
                        }
                    }
                    Err(e) => interpret_all(BackendUsed::fallback(e.to_string())),
                }
            }
            SimBackend::Partitioned { workers } => {
                if self.expansion != Expansion::II {
                    self.record_batch_fallback(sink, "Expansion I cells are sequential");
                    return interpret_all(BackendUsed::fallback(
                        "Expansion I cells are sequential",
                    ));
                }
                match self.schedule_cached(&alg, &t, &ic, "partitioned", sink) {
                    Ok((sched, _)) => {
                        // Lane-pack at full word width: the partition shards
                        // PEs, the lanes shard instances — the two compose.
                        let chunks: Vec<MatmulLaneCells> = xs
                            .chunks(MAX_LANES)
                            .zip(ys.chunks(MAX_LANES))
                            .map(|(xc, yc)| MatmulLaneCells::new(u, p, xc, yc))
                            .collect();
                        let w = n.min(MAX_LANES);
                        let (runs, backend_used) =
                            match PartitionedSchedule::try_new(Arc::clone(&sched), workers) {
                                Ok(part) => {
                                    let runs: Vec<_> = if K::ENABLED {
                                        chunks
                                            .iter()
                                            .map(|cells| part.execute_batch_traced(cells, sink))
                                            .collect()
                                    } else {
                                        chunks.iter().map(|c| part.execute_batch(c)).collect()
                                    };
                                    let used = part.workers();
                                    (runs, BackendUsed::Partitioned { workers: used })
                                }
                                Err(e) => {
                                    self.record_partition_fallback(sink, &e.to_string());
                                    (
                                        sched.execute_batch_chunks(&chunks),
                                        BackendUsed::compiled_fallback(e.to_string()),
                                    )
                                }
                            };
                        let mut products = Vec::with_capacity(n);
                        let mut cycles = 0;
                        let mut legal = true;
                        for (cells, run) in chunks.iter().zip(&runs) {
                            cycles = run.cycles;
                            legal &= run.is_legal();
                            products.extend(cells.extract_products(run));
                        }
                        BatchRunReport {
                            design: design.name().to_string(),
                            instances: n,
                            width: w,
                            walks: chunks.len(),
                            cycles,
                            legal,
                            backend_used,
                            products,
                        }
                    }
                    Err(e) => interpret_all(BackendUsed::fallback(e.to_string())),
                }
            }
        }
    }

    /// The LSGP-partitioned exhaustive single-fault campaign: the same fault
    /// space as [`DesignFlow::single_fault_campaign`], every case executed on
    /// a fixed pool of `workers` physical workers and cross-checked
    /// case-for-case against the compiled engine, sharing the flow's
    /// [`CompileCache`].
    ///
    /// # Panics
    /// Panics unless the flow is an Expansion II matmul.
    pub fn partitioned_fault_campaign(
        &self,
        design: PaperDesign,
        seed: u64,
        workers: usize,
    ) -> bitlevel_fault::PartitionedCampaignReport {
        let (u, p) = self.campaign_shape();
        bitlevel_fault::partitioned_single_fault_campaign(design, u, p, seed, workers, &self.cache)
    }

    /// The exhaustive dual-engine single-fault campaign (experiment E17) on
    /// this flow's matmul, compiling through the flow's shared
    /// [`CompileCache`]: a campaign after any compiled evaluation of the
    /// same design is a cache hit, and repeated campaigns never recompile.
    ///
    /// # Panics
    /// Panics unless the flow is an Expansion II matmul (the fault space and
    /// ABFT checksums are matmul-specific).
    pub fn single_fault_campaign(
        &self,
        design: PaperDesign,
        seed: u64,
    ) -> bitlevel_fault::FaultCampaignReport {
        let (u, p) = self.campaign_shape();
        bitlevel_fault::single_fault_campaign_with_cache(design, u, p, seed, &self.cache)
    }

    /// The lane-packed exhaustive single-fault campaign: up to
    /// [`MAX_LANES`] distinct fault cases per word-wide compiled walk,
    /// case-for-case identical to [`DesignFlow::single_fault_campaign`]
    /// (`report.matches_scalar` checks it), sharing the flow's
    /// [`CompileCache`].
    ///
    /// # Panics
    /// Panics unless the flow is an Expansion II matmul.
    pub fn batched_single_fault_campaign(
        &self,
        design: PaperDesign,
        seed: u64,
        width: usize,
    ) -> bitlevel_fault::BatchedFaultCampaignReport {
        let (u, p) = self.campaign_shape();
        bitlevel_fault::batched_single_fault_campaign(design, u, p, seed, width, &self.cache)
    }

    /// Seeded Monte Carlo multi-fault campaign through the flow's shared
    /// [`CompileCache`] (see [`DesignFlow::single_fault_campaign`]).
    ///
    /// # Panics
    /// Panics unless the flow is an Expansion II matmul.
    pub fn monte_carlo_campaign(
        &self,
        design: PaperDesign,
        seed: u64,
        trials: usize,
        rate: f64,
    ) -> bitlevel_fault::MonteCarloReport {
        let (u, p) = self.campaign_shape();
        bitlevel_fault::monte_carlo_campaign_with_cache(
            design,
            u,
            p,
            seed,
            trials,
            rate,
            &self.cache,
        )
    }

    fn campaign_shape(&self) -> (usize, usize) {
        assert_eq!(self.word.dim(), 3, "fault campaigns target matmul flows");
        assert_eq!(
            self.expansion,
            Expansion::II,
            "fault campaigns run the Expansion II structure"
        );
        (self.word.bounds.upper()[0] as usize, self.p)
    }

    /// The one cached-compile path every compiled-backend entry point shares:
    /// consults the flow's [`CompileCache`] by content key, emits a
    /// [`TraceEvent::CacheQuery`] for the lookup, and — when the structure
    /// does not compile — emits the [`TraceEvent::BackendFallback`] (tagged
    /// with the originating backend, `"compiled"` or `"compiled-batch"`)
    /// before handing the error back for graceful degradation.
    fn schedule_cached<K: TraceSink>(
        &self,
        alg: &AlgorithmTriplet,
        t: &MappingMatrix,
        ic: &Interconnect,
        from: &str,
        sink: &mut K,
    ) -> Result<(Arc<CompiledSchedule>, CacheActivity), CompileError> {
        match self.cache.get_or_compile(alg, t, ic) {
            Ok((sched, outcome)) => {
                let activity = CacheActivity {
                    key: self.cache.key_for(alg, t, ic).hex(),
                    outcome: outcome.to_string(),
                    stats: self.cache.stats(),
                };
                if K::ENABLED {
                    sink.record(TraceEvent::CacheQuery {
                        key: activity.key.clone(),
                        outcome: activity.outcome.clone(),
                    });
                }
                Ok((sched, activity))
            }
            Err(e) => {
                if K::ENABLED {
                    sink.record(TraceEvent::BackendFallback {
                        from: from.to_string(),
                        to: "interpreted".to_string(),
                        reason: e.to_string(),
                    });
                }
                Err(e)
            }
        }
    }

    /// Emits the [`TraceEvent::BackendFallback`] every batch fallback path
    /// shares.
    fn record_batch_fallback<K: TraceSink>(&self, sink: &mut K, reason: &str) {
        if K::ENABLED {
            let from = match self.backend {
                SimBackend::CompiledBatch { .. } => "compiled-batch",
                SimBackend::Partitioned { .. } => "partitioned",
                _ => "compiled",
            };
            sink.record(TraceEvent::BackendFallback {
                from: from.to_string(),
                to: "interpreted".to_string(),
                reason: reason.to_string(),
            });
        }
    }

    /// Emits the [`TraceEvent::BackendFallback`] recorded when the LSGP
    /// partitioner declines a compiled schedule and the evaluation degrades
    /// to the plain compiled engine.
    fn record_partition_fallback<K: TraceSink>(&self, sink: &mut K, reason: &str) {
        if K::ENABLED {
            sink.record(TraceEvent::BackendFallback {
                from: "partitioned".to_string(),
                to: "compiled".to_string(),
                reason: reason.to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_matmul_fig4() {
        let flow = DesignFlow::matmul(3, 3);
        let rep = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
        assert!(rep.feasible, "{:?}", rep.violations);
        assert_eq!(Some(rep.run.cycles), rep.closed_form_cycles);
        assert_eq!(rep.run.cycles, 13);
        assert_eq!(rep.run.processors, 81);
        assert_eq!(rep.max_wire_length, 3);
        flow.verify_matmul_functionally();
    }

    #[test]
    fn end_to_end_matmul_fig5() {
        let flow = DesignFlow::matmul(3, 3);
        let rep = flow.evaluate_paper_design(PaperDesign::NearestNeighbour);
        assert!(rep.feasible, "{:?}", rep.violations);
        assert_eq!(Some(rep.run.cycles), rep.closed_form_cycles);
        assert_eq!(rep.max_wire_length, 1);
    }

    #[test]
    fn clocked_rtl_matches_closed_forms_for_both_designs() {
        let flow = DesignFlow::matmul(3, 3);
        assert_eq!(flow.run_clocked_matmul(PaperDesign::TimeOptimal), 13);
        assert_eq!(flow.run_clocked_matmul(PaperDesign::NearestNeighbour), 21);
    }

    #[test]
    fn backends_agree_on_paper_designs() {
        let compiled = DesignFlow::matmul(3, 3);
        let interpreted = DesignFlow::matmul(3, 3).with_backend(SimBackend::Interpreted);
        assert_eq!(compiled.backend, SimBackend::Compiled);
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let c = compiled.evaluate_paper_design(design);
            let i = interpreted.evaluate_paper_design(design);
            assert_eq!(c.feasible, i.feasible);
            assert_eq!(c.run.cycles, i.run.cycles);
            assert_eq!(c.run.processors, i.run.processors);
            assert_eq!(c.run.conflict_free, i.run.conflict_free);
            assert_eq!(c.run.causality_ok, i.run.causality_ok);
            assert_eq!(c.run.link_traffic, i.run.link_traffic);
            assert_eq!(c.run.buffer_cycles, i.run.buffer_cycles);
            assert_eq!(
                compiled.run_clocked_matmul(design),
                interpreted.run_clocked_matmul(design)
            );
        }
    }

    #[test]
    fn reports_record_which_backend_ran() {
        let compiled = DesignFlow::matmul(2, 2);
        let interpreted = DesignFlow::matmul(2, 2).with_backend(SimBackend::Interpreted);
        let c = compiled.evaluate_paper_design(PaperDesign::TimeOptimal);
        let i = interpreted.evaluate_paper_design(PaperDesign::TimeOptimal);
        assert_eq!(c.backend_used, "compiled");
        assert_eq!(i.backend_used, "interpreted");
    }

    #[test]
    fn compiled_backend_falls_back_on_wide_structures() {
        use bitlevel_ir::{BoxSet, Dependence, DependenceSet};
        use bitlevel_linalg::IVec;
        use bitlevel_systolic::RecordingSink;
        // 65 dependence columns exceed the compiled backend's 64-column
        // bitmask; evaluate_structure must complete via the interpreted
        // engine and say so instead of panicking.
        let deps: Vec<Dependence> = (0..65)
            .map(|k| Dependence::uniform(IVec::from([1, 0]), &format!("c{k}")))
            .collect();
        let alg = AlgorithmTriplet::new(
            BoxSet::cube(2, 1, 3),
            DependenceSet::new(deps),
            "65-column stress structure",
        );
        let t = MappingMatrix::new(IMat::from_rows(&[&[1, 0], &[0, 1]]), IVec::from([1, 1]));
        let ic = Interconnect::new(IMat::from_rows(&[&[1, 0], &[0, 1]]));
        let flow = DesignFlow::matmul(2, 2); // default backend: Compiled
        let mut sink = RecordingSink::new();
        let rep = flow.evaluate_structure_traced("wide", &alg, &t, &ic, None, &mut sink);
        assert!(rep.backend_used.is_fallback(), "{}", rep.backend_used);
        assert!(
            rep.backend_used.to_string().contains("64"),
            "{}",
            rep.backend_used
        );
        assert!(rep.cache.is_none(), "no schedule was compiled or cached");
        assert_eq!(rep.run.computations, 9);
        assert!(
            sink.events()
                .iter()
                .any(|e| matches!(e, bitlevel_systolic::TraceEvent::BackendFallback { .. })),
            "fallback must be visible in the trace"
        );
        assert_eq!(sink.rollup().fire_total(), 9);
        // The untraced entry point takes the same path.
        let rep2 = flow.evaluate_structure("wide", &alg, &t, &ic, None);
        assert_eq!(rep2.backend_used, rep.backend_used);
        assert_eq!(rep2.run.cycles, rep.run.cycles);
    }

    #[test]
    fn faulted_evaluate_suppresses_dead_pes_on_both_backends() {
        use bitlevel_fault::{FaultKind, FaultPlan, TargetedFault};
        use bitlevel_systolic::RecordingSink;
        let design = PaperDesign::TimeOptimal;
        let dead_pe = bitlevel_linalg::IVec::from([3, 3]);
        let plan = FaultPlan {
            seed: 0,
            targeted: vec![TargetedFault {
                kind: FaultKind::DeadPe,
                pe: dead_pe,
                cycle: None,
            }],
            random: vec![],
        };
        let mut runs = Vec::new();
        for backend in [SimBackend::Compiled, SimBackend::Interpreted] {
            let flow = DesignFlow::matmul(2, 2).with_backend(backend);
            let resolved = plan.resolve(&flow.bit_level_structure(), &design.mapping(2));
            let mut sink = RecordingSink::new();
            let rep = flow.evaluate_faulted(
                design.name(),
                &design.mapping(2),
                &design.interconnect(2),
                Some(7),
                &mut sink,
                &resolved,
            );
            // Each PE fires u = 2 of the 32 points; a dead PE loses both.
            assert_eq!(rep.run.computations, 30, "{backend:?}");
            assert_eq!(sink.rollup().faults, 2, "{backend:?}");
            runs.push(rep.run);
        }
        assert_eq!(runs[0].divergences_from(&runs[1]), Vec::<&str>::new());
        // NoFaults keeps evaluate_faulted bit-identical to evaluate.
        let flow = DesignFlow::matmul(2, 2);
        let faultless = flow.evaluate_faulted(
            design.name(),
            &design.mapping(2),
            &design.interconnect(2),
            Some(7),
            &mut NullSink,
            &bitlevel_systolic::NoFaults,
        );
        let baseline = flow.evaluate_paper_design(design);
        assert_eq!(
            faultless.run.divergences_from(&baseline.run),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn traced_evaluate_captures_the_full_fig4_profile() {
        use bitlevel_systolic::RecordingSink;
        let flow = DesignFlow::matmul(3, 3);
        let mut sink = RecordingSink::new();
        let design = PaperDesign::TimeOptimal;
        let rep = flow.evaluate_traced(
            design.name(),
            &design.mapping(3),
            &design.interconnect(3),
            Some(13),
            &mut sink,
        );
        assert_eq!(rep.backend_used, "compiled");
        assert_eq!(sink.rollup().fire_total(), 243); // |J| = u³p²
        assert_eq!(sink.rollup().cycle_span(), 13);
        assert_eq!(sink.rollup().violations, 0);
    }

    #[test]
    fn optimizer_recovers_theorem_4_5() {
        let flow = DesignFlow::matmul(2, 2);
        let s = PaperDesign::space(2);
        let best = flow
            .optimize_schedule(&s, &Interconnect::paper_p(2), 2)
            .expect("feasible");
        assert_eq!(best.pi, bitlevel_linalg::IVec::from([1, 1, 1, 2, 1]));
        assert_eq!(best.time, flow.schedule_time(&best.pi));
    }

    #[test]
    fn explore_verifies_every_frontier_design_bit_exactly() {
        let flow = DesignFlow::matmul(2, 2);
        let (family, config) = flow.default_exploration();
        let ex = flow.explore(&family, &config).expect("well-formed inputs");
        assert!(!ex.designs.is_empty(), "matmul must have feasible designs");
        assert!(
            ex.all_verified(),
            "{:?}",
            ex.designs
                .iter()
                .map(|d| &d.divergences)
                .collect::<Vec<_>>()
        );
        for d in &ex.designs {
            assert!(d.report.feasible, "{:?}", d.report.violations);
            assert_eq!(d.report.backend_used, "compiled");
            assert_eq!(
                d.report.run.cycles, d.point.time,
                "simulation confirms the explorer"
            );
            assert_eq!(d.report.run.processors, d.point.processors);
            assert_eq!(Some(d.report.run.cycles), d.report.closed_form_cycles);
        }
        // Theorem 4.5's schedule heads the frontier.
        assert_eq!(
            ex.designs[0].point.mapping.schedule,
            bitlevel_linalg::IVec::from([1, 1, 1, 2, 1])
        );
        assert!(
            ex.stats.full_checks * 10 <= ex.stats.exhaustive,
            "pruning must be >=10x"
        );
    }

    #[test]
    fn explore_traced_streams_verification_runs() {
        use bitlevel_systolic::RecordingSink;
        let flow = DesignFlow::matmul(2, 2);
        let (family, config) = flow.default_exploration();
        let mut sink = RecordingSink::new();
        let ex = flow.explore_traced(&family, &config, &mut sink).unwrap();
        // Every frontier verification fires all |J| = 32 computations.
        assert_eq!(sink.rollup().fire_total(), 32 * ex.designs.len() as u64);
    }

    #[test]
    fn explore_propagates_typed_errors() {
        let flow = DesignFlow::matmul(2, 2);
        let (family, mut config) = flow.default_exploration();
        config.pi_bound = 0;
        assert_eq!(
            flow.explore(&family, &config).unwrap_err(),
            MappingError::NonPositiveBound { bound: 0 }
        );
    }

    /// Deterministic batch of `n` operand pairs, entries capped at the
    /// carry-safe maximum for `(u, p)`.
    fn random_batch(
        u: usize,
        p: usize,
        n: usize,
        seed: u64,
    ) -> (Vec<Vec<Vec<u128>>>, Vec<Vec<Vec<u128>>>) {
        let m = BitMatmulArray::new(u, p).max_safe_entry();
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u128) % (m + 1)
        };
        let mut mat = move || -> Vec<Vec<u128>> {
            (0..u).map(|_| (0..u).map(|_| next()).collect()).collect()
        };
        (
            (0..n).map(|_| mat()).collect(),
            (0..n).map(|_| mat()).collect(),
        )
    }

    #[test]
    fn batch_backend_matches_scalar_backends_and_native_arithmetic() {
        let (u, p, n) = (2usize, 3usize, 7usize);
        let (xs, ys) = random_batch(u, p, n, 0x1CC7_1993);
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let batch = DesignFlow::matmul(u as i64, p)
                .with_backend(SimBackend::CompiledBatch { width: 64 })
                .evaluate_batch(design, &xs, &ys);
            assert!(batch.legal);
            assert_eq!(batch.instances, n);
            assert_eq!(batch.walks, 1, "7 instances fit one 64-lane word");
            assert_eq!(batch.backend_used, "compiled-batch (bitwise, width 64)");
            let compiled = DesignFlow::matmul(u as i64, p).evaluate_batch(design, &xs, &ys);
            assert_eq!(compiled.backend_used, "compiled");
            assert_eq!(compiled.walks, n);
            let oracle = DesignFlow::matmul(u as i64, p)
                .with_backend(SimBackend::Interpreted)
                .evaluate_batch(design, &xs, &ys);
            assert_eq!(oracle.backend_used, "interpreted");
            assert_eq!(batch.products, compiled.products);
            assert_eq!(batch.products, oracle.products);
            assert_eq!(batch.cycles, oracle.cycles);
            for (k, (x, y)) in xs.iter().zip(&ys).enumerate() {
                for i in 0..u {
                    for j in 0..u {
                        let want: u128 = (0..u).map(|l| x[i][l] * y[l][j]).sum();
                        assert_eq!(batch.products[k][i][j], want, "lane {k} Z[{i}][{j}]");
                    }
                }
            }
        }
    }

    #[test]
    fn batch_width_is_clamped_and_drives_the_walk_count() {
        let (xs, ys) = random_batch(2, 2, 7, 42);
        let flow =
            |w| DesignFlow::matmul(2, 2).with_backend(SimBackend::CompiledBatch { width: w });
        let narrow = flow(0).evaluate_batch(PaperDesign::TimeOptimal, &xs, &ys);
        assert_eq!((narrow.width, narrow.walks), (1, 7), "0 clamps up to 1");
        let wide = flow(500).evaluate_batch(PaperDesign::TimeOptimal, &xs, &ys);
        assert_eq!((wide.width, wide.walks), (64, 1), "500 clamps down to 64");
        let ragged = flow(3).evaluate_batch(PaperDesign::TimeOptimal, &xs, &ys);
        assert_eq!((ragged.width, ragged.walks), (3, 3), "7 = 3 + 3 + 1");
        assert_eq!(narrow.products, wide.products);
        assert_eq!(narrow.products, ragged.products);
    }

    #[test]
    fn batch_expansion_i_falls_back_to_per_instance_interpreted() {
        use bitlevel_systolic::RecordingSink;
        let (xs, ys) = random_batch(2, 3, 3, 7);
        let flow = DesignFlow::new(WordLevelAlgorithm::matmul(2), 3, Expansion::I)
            .with_backend(SimBackend::CompiledBatch { width: 8 });
        let mut sink = RecordingSink::new();
        let rep = flow.evaluate_batch_traced(PaperDesign::TimeOptimal, &xs, &ys, &mut sink);
        assert!(rep.legal);
        assert!(rep.backend_used.is_fallback(), "{}", rep.backend_used);
        assert_eq!((rep.width, rep.walks), (1, 3));
        assert!(
            sink.events().iter().any(|e| matches!(
                e,
                TraceEvent::BackendFallback { from, .. } if from == "compiled-batch"
            )),
            "fallback must be visible in the trace"
        );
        // The fallback is bit-identical to the interpreted Expansion I flow.
        let oracle = flow
            .clone()
            .with_backend(SimBackend::Interpreted)
            .evaluate_batch(PaperDesign::TimeOptimal, &xs, &ys);
        assert_eq!(rep.products, oracle.products);
        assert_eq!(rep.cycles, oracle.cycles);
    }

    #[test]
    fn batch_backend_reuses_the_compiled_timing_paths() {
        // Timing-only entry points treat CompiledBatch exactly like Compiled.
        let flow = DesignFlow::matmul(2, 2).with_backend(SimBackend::CompiledBatch { width: 16 });
        let rep = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
        assert!(rep.feasible);
        assert_eq!(rep.backend_used, "compiled");
        assert_eq!(flow.run_clocked_matmul(PaperDesign::TimeOptimal), 7);
        flow.verify_matmul_functionally();
    }

    #[test]
    fn expansion_choice_flows_through() {
        let f1 = DesignFlow::new(WordLevelAlgorithm::matmul(2), 2, Expansion::I);
        let f2 = DesignFlow::new(WordLevelAlgorithm::matmul(2), 2, Expansion::II);
        let a1 = f1.bit_level_structure();
        let a2 = f2.bit_level_structure();
        assert_eq!(a1.dependence_matrix(), a2.dependence_matrix());
        assert_ne!(a1.deps, a2.deps); // validity regions differ
    }

    #[test]
    fn non_matmul_flow_works_generically() {
        // Convolution through the generic evaluate() path with a hand-built
        // 4-D mapping: S projects onto (i1, i2), Π serialises outer loops.
        let flow = DesignFlow::new(WordLevelAlgorithm::convolution(3, 2), 2, Expansion::I);
        let alg = flow.bit_level_structure();
        assert_eq!(alg.dim(), 4);
        let s = IMat::from_rows(&[&[0, 0, 1, 0], &[0, 0, 0, 1]]);
        // Conv deps: x [1,-1,0,0] (i1=1), y [1,0,0,0] (i2=1), z [0,1,0,0],
        // d4..d7. Π must order them all positively.
        let pi = bitlevel_linalg::IVec::from([7, 3, 2, 1]);
        let t = MappingMatrix::new(s, pi);
        // Machine: mesh + static + diagonal (+[0,2] routing for c').
        let ic = Interconnect::new(IMat::from_rows(&[
            &[0, 0, 1, -1, 1, 0],
            &[1, -1, 0, 0, -1, 0],
        ]));
        let rep = flow.evaluate("conv-seq", &t, &ic, None);
        // The mapping may or may not be conflict-free; the report must be
        // internally consistent either way.
        assert_eq!(rep.feasible, rep.violations.is_empty());
        assert!(rep.run.cycles > 0);
    }

    #[test]
    fn backend_used_display_serde_and_parse_roundtrip() {
        let cases = [
            (BackendUsed::Compiled, "compiled"),
            (BackendUsed::Interpreted, "interpreted"),
            (
                BackendUsed::CompiledBatch { width: 64 },
                "compiled-batch (bitwise, width 64)",
            ),
            (
                BackendUsed::fallback("too many columns: 65"),
                "interpreted (fallback: too many columns: 65)",
            ),
            (
                BackendUsed::Partitioned { workers: 8 },
                "partitioned (workers 8)",
            ),
            (
                BackendUsed::compiled_fallback("schedule is not causal"),
                "compiled (fallback: schedule is not causal)",
            ),
        ];
        for (value, legacy) in cases {
            assert_eq!(value, legacy, "Display must preserve the legacy string");
            assert_eq!(String::from(value.clone()), legacy);
            assert_eq!(legacy.parse::<BackendUsed>().unwrap(), value);
            assert_eq!(BackendUsed::try_from(legacy.to_string()).unwrap(), value);
        }
        assert!("compiled-ish".parse::<BackendUsed>().is_err());
    }

    #[test]
    fn backend_validation_rejects_degenerate_batch_widths() {
        use bitlevel_systolic::BackendConfigError;
        let flow = DesignFlow::matmul(2, 2);
        assert_eq!(
            flow.clone()
                .with_validated_backend(SimBackend::CompiledBatch { width: 0 })
                .unwrap_err(),
            BackendConfigError::ZeroBatchWidth
        );
        assert_eq!(
            flow.clone()
                .with_validated_backend(SimBackend::CompiledBatch { width: 65 })
                .unwrap_err(),
            BackendConfigError::BatchWidthTooLarge {
                width: 65,
                max: MAX_LANES
            }
        );
        assert_eq!(
            flow.clone()
                .with_validated_backend(SimBackend::Partitioned { workers: 0 })
                .unwrap_err(),
            BackendConfigError::ZeroWorkers
        );
        for ok in [
            SimBackend::Interpreted,
            SimBackend::Compiled,
            SimBackend::CompiledBatch { width: 1 },
            SimBackend::CompiledBatch { width: MAX_LANES },
            SimBackend::Partitioned { workers: 1 },
            SimBackend::Partitioned { workers: 128 },
        ] {
            assert!(flow.clone().with_validated_backend(ok).is_ok(), "{ok:?}");
        }
    }

    #[test]
    fn batch_width_clamp_is_visible_in_the_trace() {
        use bitlevel_systolic::RecordingSink;
        let (xs, ys) = random_batch(2, 2, 3, 9);
        let flow = DesignFlow::matmul(2, 2).with_backend(SimBackend::CompiledBatch { width: 500 });
        let mut sink = RecordingSink::new();
        let rep = flow.evaluate_batch_traced(PaperDesign::TimeOptimal, &xs, &ys, &mut sink);
        assert_eq!(rep.width, MAX_LANES);
        assert!(
            sink.events().iter().any(|e| matches!(
                e,
                TraceEvent::BatchWidthClamped {
                    requested: 500,
                    used: MAX_LANES
                }
            )),
            "the silent clamp must leave a trace"
        );
        // An in-range width stays silent.
        let flow = DesignFlow::matmul(2, 2).with_backend(SimBackend::CompiledBatch { width: 3 });
        let mut sink = RecordingSink::new();
        flow.evaluate_batch_traced(PaperDesign::TimeOptimal, &xs, &ys, &mut sink);
        assert!(!sink
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::BatchWidthClamped { .. })));
    }

    #[test]
    fn partitioned_backend_matches_compiled_and_records_stats() {
        let compiled = DesignFlow::matmul(3, 3);
        let partitioned =
            DesignFlow::matmul(3, 3).with_backend(SimBackend::Partitioned { workers: 4 });
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let c = compiled.evaluate_paper_design(design);
            let q = partitioned.evaluate_paper_design(design);
            assert_eq!(q.backend_used, BackendUsed::Partitioned { workers: 4 });
            assert_eq!(q.run.divergences_from(&c.run), Vec::<&str>::new());
            let stats = q.partition.as_ref().expect("partitioned runs carry stats");
            assert_eq!(stats.workers, 4);
            assert_eq!(stats.virtual_pes, q.run.processors);
            assert!(
                stats.max_shard_pes < stats.virtual_pes,
                "4 workers over {} virtual PEs must shard",
                stats.virtual_pes
            );
            assert!(c.partition.is_none(), "compiled runs carry no partition");
            // The clocked value-carrying path agrees cycle-for-cycle too.
            assert_eq!(
                partitioned.run_clocked_matmul(design),
                compiled.run_clocked_matmul(design)
            );
        }
        partitioned.verify_matmul_functionally();
    }

    #[test]
    fn partitioned_batch_extracts_every_product_bit_exactly() {
        let (xs, ys) = random_batch(3, 2, 7, 0xE21);
        let flow = DesignFlow::matmul(3, 2).with_backend(SimBackend::Partitioned { workers: 3 });
        let rep = flow.evaluate_batch(PaperDesign::TimeOptimal, &xs, &ys);
        assert!(rep.legal);
        assert_eq!(rep.backend_used, "partitioned (workers 3)");
        assert_eq!(rep.instances, 7);
        assert_eq!(rep.walks, 1, "7 instances lane-pack into one walk");
        let reference = DesignFlow::matmul(3, 2)
            .with_backend(SimBackend::Interpreted)
            .evaluate_batch(PaperDesign::TimeOptimal, &xs, &ys);
        assert_eq!(rep.products, reference.products);
        assert_eq!(rep.cycles, reference.cycles);
    }

    #[test]
    fn partitioned_default_exploration_budgets_the_frontier() {
        let flow = DesignFlow::matmul(2, 2).with_backend(SimBackend::Partitioned { workers: 4 });
        let (spaces, config) = flow.default_exploration();
        assert_eq!(config.max_physical_pes, Some(4));
        let report = flow.explore(&spaces, &config).unwrap();
        assert!(report.all_verified());
        assert!(!report.designs.is_empty());
        for d in &report.designs {
            assert!(
                d.point.physical_pes <= 4,
                "frontier point exceeds the physical budget: {:?}",
                d.point
            );
            assert!(d.point.physical_time >= d.point.time);
        }
    }

    #[test]
    fn warm_cache_reproduces_the_report_without_recompiling() {
        let flow = DesignFlow::matmul(3, 3);
        let cold = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
        assert_eq!(flow.cache().stats().compiles(), 1);
        let cold_cache = cold.cache.as_ref().expect("compiled path records cache");
        assert_eq!(cold_cache.outcome, "miss-compiled");

        let warm = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
        let stats = flow.cache().stats();
        assert_eq!(stats.compiles(), 1, "the warm run must not recompile");
        assert_eq!(stats.hits, 1);
        let warm_cache = warm.cache.as_ref().unwrap();
        assert_eq!(warm_cache.outcome, "memory-hit");
        assert_eq!(warm_cache.key, cold_cache.key, "same content, same key");

        // Identical measurements, bit for bit.
        assert_eq!(warm.run.divergences_from(&cold.run), Vec::<&str>::new());
        assert_eq!(warm.backend_used, cold.backend_used);
        assert_eq!(warm.feasible, cold.feasible);
        assert_eq!(warm.closed_form_cycles, cold.closed_form_cycles);
    }

    #[test]
    fn flow_clones_share_cache_warmth() {
        let flow = DesignFlow::matmul(2, 2);
        flow.evaluate_paper_design(PaperDesign::TimeOptimal);
        let clone = flow.clone();
        let rep = clone.evaluate_paper_design(PaperDesign::TimeOptimal);
        assert_eq!(rep.cache.unwrap().outcome, "memory-hit");
        assert_eq!(flow.cache().stats().compiles(), 1);
        assert_eq!(flow.cache().stats().hits, 1);
    }

    #[test]
    fn every_compiled_entry_point_shares_one_cache_entry() {
        // evaluate, evaluate_faulted, run_clocked_matmul, evaluate_batch and
        // verify_matmul_functionally all walk the same Fig. 4 schedule: one
        // compile serves them all.
        let flow = DesignFlow::matmul(2, 2);
        let design = PaperDesign::TimeOptimal;
        flow.evaluate_paper_design(design);
        flow.evaluate_faulted(
            design.name(),
            &design.mapping(2),
            &design.interconnect(2),
            None,
            &mut NullSink,
            &bitlevel_systolic::NoFaults,
        );
        flow.run_clocked_matmul(design);
        flow.verify_matmul_functionally();
        let (xs, ys) = random_batch(2, 2, 3, 1);
        flow.evaluate_batch(design, &xs, &ys);
        let stats = flow.cache().stats();
        assert_eq!(
            stats.compiles(),
            1,
            "five entry points, one compile: {stats:?}"
        );
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn explorer_frontier_reverification_is_compile_free() {
        let flow = DesignFlow::matmul(2, 2);
        let (family, config) = flow.default_exploration();
        let ex = flow.explore(&family, &config).expect("well-formed inputs");
        assert!(!ex.designs.is_empty());
        let compiles_after_explore = flow.cache().stats().compiles();
        assert_eq!(
            compiles_after_explore,
            ex.designs.len() as u64,
            "explore compiles each frontier design exactly once"
        );
        // Re-verifying the whole frontier must hit warm artifacts only.
        let alg = flow.bit_level_structure();
        for d in &ex.designs {
            let rep = flow.evaluate_structure(
                "re-verify",
                &alg,
                &d.point.mapping,
                &d.point.interconnect,
                Some(d.point.time),
            );
            assert_eq!(rep.backend_used, BackendUsed::Compiled);
            assert_eq!(rep.cache.unwrap().outcome, "memory-hit");
            assert_eq!(rep.run.divergences_from(&d.report.run), Vec::<&str>::new());
        }
        let stats = flow.cache().stats();
        assert_eq!(
            stats.compiles(),
            compiles_after_explore,
            "zero redundant compiles on re-verification: {stats:?}"
        );
        assert!(stats.hits >= ex.designs.len() as u64);
    }

    #[test]
    fn cache_queries_surface_in_the_trace_rollup() {
        use bitlevel_systolic::RecordingSink;
        let flow = DesignFlow::matmul(2, 2);
        let design = PaperDesign::TimeOptimal;
        let mut sink = RecordingSink::new();
        flow.evaluate_traced(
            design.name(),
            &design.mapping(2),
            &design.interconnect(2),
            None,
            &mut sink,
        );
        flow.evaluate_traced(
            design.name(),
            &design.mapping(2),
            &design.interconnect(2),
            None,
            &mut sink,
        );
        let rollup = sink.rollup();
        assert_eq!(rollup.cache_misses, 1, "first evaluation compiles");
        assert_eq!(rollup.cache_hits, 1, "second evaluation hits");
        let keys: Vec<&str> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::CacheQuery { key, .. } => Some(key.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0], keys[1]);
        assert_eq!(keys[0].len(), 32, "keys render as 32 hex digits");
    }

    #[test]
    fn campaigns_ride_the_flow_cache_and_batched_matches_scalar() {
        // The campaign compile-cache bypass regression: a scalar campaign,
        // a batched campaign and a Monte Carlo campaign through one flow
        // must share a single schedule compile, and the batched sweep must
        // be case-for-case identical to the scalar one.
        let flow = DesignFlow::matmul(2, 2);
        let design = PaperDesign::TimeOptimal;
        let scalar = flow.single_fault_campaign(design, 0xB17);
        let batched = flow.batched_single_fault_campaign(design, 0xB17, 64);
        let mc = flow.monte_carlo_campaign(design, 9, 3, 0.02);
        assert_eq!(scalar.sdc, 0);
        assert_eq!(scalar.engine_mismatches, 0);
        assert!(batched.matches_scalar(&scalar));
        assert_eq!(batched.walks, scalar.total.div_ceil(64));
        assert_eq!(mc.trials, 3);
        assert_eq!(
            flow.cache().stats().compiles(),
            1,
            "all three campaigns share one compile"
        );
    }

    #[test]
    fn disk_backed_flow_survives_a_cold_restart_without_recompiling() {
        let dir = std::env::temp_dir().join(format!("bl-flow-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let design = PaperDesign::TimeOptimal;
        let cold = {
            let flow = DesignFlow::matmul(2, 2).with_cache_dir(&dir);
            assert_eq!(flow.cache().disk_dir(), Some(dir.as_path()));
            flow.evaluate_paper_design(design)
        };
        // A fresh process (fresh flow, same dir): the schedule loads from
        // disk, no recompile.
        let flow = DesignFlow::matmul(2, 2).with_cache_dir(&dir);
        let warm = flow.evaluate_paper_design(design);
        assert_eq!(warm.cache.as_ref().unwrap().outcome, "disk-hit");
        assert_eq!(flow.cache().stats().compiles(), 0);
        assert_eq!(warm.run.divergences_from(&cold.run), Vec::<&str>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_exploration_delivers_every_design_incrementally() {
        let flow = DesignFlow::matmul(2, 2);
        let (family, config) = flow.default_exploration();
        let mut streamed: Vec<(i64, String, bool)> = Vec::new();
        let report = flow
            .explore_streamed(&family, &config, &mut NullSink, |vp| {
                streamed.push((vp.point.time, vp.point.machine.clone(), vp.verified()));
            })
            .expect("well-formed inputs");
        assert!(!report.designs.is_empty());
        assert_eq!(streamed.len(), report.designs.len());
        for (got, want) in streamed.iter().zip(&report.designs) {
            assert_eq!(got.0, want.point.time);
            assert_eq!(got.1, want.point.machine);
            assert_eq!(got.2, want.verified());
        }
        // And the plain entry point still returns the identical frontier.
        let plain = flow.explore(&family, &config).expect("well-formed inputs");
        assert_eq!(plain.designs.len(), report.designs.len());
    }
}
