//! Human-readable reports in the paper's own notation.
//!
//! Renders a whole design flow — structure, mapping, `T·D`, measured vs
//! closed-form times — the way Sections 3–4 present them, for the examples
//! and the experiment harness.

use crate::pipeline::{ArchitectureReport, DesignFlow, ExplorationReport};
use bitlevel_ir::annotated_dependence_table;
use bitlevel_mapping::PaperDesign;
use bitlevel_systolic::TraceRollup;
use std::fmt::Write as _;

/// Renders the Theorem 3.1 derivation for a flow: index set, annotated
/// dependence matrix with validity regions, uniformity notes.
pub fn render_structure(flow: &DesignFlow) -> String {
    let alg = flow.bit_level_structure();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Bit-level structure of {} (p = {}, {}):",
        flow.word.name, flow.p, flow.expansion
    );
    let _ = writeln!(
        out,
        "J = {}  (|J| = {})",
        alg.index_set,
        alg.index_set.cardinality()
    );
    out.push_str(&annotated_dependence_table(&alg));
    let uniform: Vec<String> = alg
        .deps
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_uniform_over(&alg.index_set))
        .map(|(i, _)| format!("d{}", i + 1))
        .collect();
    let _ = writeln!(
        out,
        "uniform columns: {}",
        if uniform.is_empty() {
            "none".into()
        } else {
            uniform.join(", ")
        }
    );
    out
}

/// Renders one architecture evaluation: feasibility, measured cycles vs the
/// closed form, processors, wiring.
pub fn render_architecture(rep: &ArchitectureReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "architecture: {}", rep.name);
    let _ = writeln!(out, "  feasible (Def. 4.1): {}", rep.feasible);
    for v in &rep.violations {
        let _ = writeln!(out, "    violation: {v}");
    }
    match rep.closed_form_cycles {
        Some(cf) => {
            let _ = writeln!(
                out,
                "  cycles: measured {} vs closed-form {} ({})",
                rep.run.cycles,
                cf,
                if rep.run.cycles == cf {
                    "match"
                } else {
                    "MISMATCH"
                }
            );
        }
        None => {
            let _ = writeln!(out, "  cycles: measured {}", rep.run.cycles);
        }
    }
    let _ = writeln!(out, "  processors: {}", rep.run.processors);
    let _ = writeln!(out, "  peak parallelism: {}", rep.run.peak_parallelism);
    let _ = writeln!(out, "  utilization: {:.3}", rep.run.utilization);
    let _ = writeln!(out, "  longest wire: {}", rep.max_wire_length);
    let _ = writeln!(out, "  buffer-cycles: {}", rep.run.buffer_cycles);
    let _ = writeln!(
        out,
        "  conflict-free: {}, causality: {}",
        rep.run.conflict_free, rep.run.causality_ok
    );
    let _ = writeln!(out, "  backend: {}", rep.backend_used);
    out
}

/// Renders the measured profile of a traced run — the observability
/// counterpart of [`render_architecture`], fed by what the engine actually
/// did rather than what the schedule promises.
pub fn render_trace_summary(rollup: &TraceRollup) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "traced run:");
    let _ = writeln!(out, "  firings: {}", rollup.fire_total());
    let _ = writeln!(out, "  busy span: {} cycles", rollup.cycle_span());
    let _ = writeln!(out, "  PEs observed: {}", rollup.pe_fires.len());
    let _ = writeln!(out, "  peak wavefront: {}", rollup.peak_wavefront());
    let _ = writeln!(out, "  utilization: {:.3}", rollup.utilization());
    let _ = writeln!(out, "  violations: {}", rollup.violations);
    let _ = writeln!(
        out,
        "  tokens launched: {}, consumed: {}",
        rollup.launched.iter().sum::<u64>(),
        rollup.consumed.iter().sum::<u64>()
    );
    for (i, peak) in rollup.in_flight_peak.iter().enumerate() {
        let _ = writeln!(out, "  d{}: in-flight peak {peak}", i + 1);
    }
    for (l, occ) in rollup.link_occupancy.iter().enumerate() {
        let _ = writeln!(out, "  P[{l}]: occupancy {occ}");
    }
    out
}

/// Renders the Pareto frontier of a design-space exploration: one row per
/// non-dominated design with its objective triple `(time, PEs, wire)`, the
/// `T = [S; Π]` witness, the engine that verified it, and the search
/// statistics (full checks vs the exhaustive joint space).
pub fn render_frontier(ex: &ExplorationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Pareto frontier over (time, processors, wire): {} design(s)",
        ex.designs.len()
    );
    let _ = writeln!(
        out,
        "  {:>6} {:>6} {:>5}  {:<24} {:<10} T = [S; Pi]",
        "time", "PEs", "wire", "machine", "verified"
    );
    for d in &ex.designs {
        let t = &d.point.mapping;
        let rows: Vec<String> = (0..t.space.rows())
            .map(|r| format!("{:?}", t.space.row(r)))
            .chain(std::iter::once(format!("{:?}", t.schedule.as_slice())))
            .collect();
        let verified = if d.verified() {
            format!("yes ({})", d.report.backend_used)
        } else if !d.report.feasible {
            "INFEASIBLE".to_string()
        } else {
            format!("DIVERGED: {}", d.divergences.join(","))
        };
        let _ = writeln!(
            out,
            "  {:>6} {:>6} {:>5}  {:<24} {:<10} {}",
            d.point.time,
            d.point.processors,
            d.point.max_wire_length,
            d.point.machine,
            verified,
            rows.join(" ; ")
        );
    }
    let s = &ex.stats;
    let _ = writeln!(
        out,
        "search: {} spaces x {} machines x {} schedules = {} joint designs",
        s.spaces, s.machines, s.schedule_candidates, s.exhaustive
    );
    let _ = writeln!(
        out,
        "  condition-1 screen kept {} schedule(s); {} full Def. 4.1 checks ({}x fewer than exhaustive)",
        s.screened,
        s.full_checks,
        s.exhaustive
            .checked_div(s.full_checks)
            .unwrap_or(s.exhaustive)
    );
    let _ = writeln!(
        out,
        "  pairs pruned before any check: {}; feasible pairs: {}; schedule-only lower bound: {}",
        s.pruned_pairs,
        s.feasible_pairs,
        s.lower_bound.map_or("-".to_string(), |t| t.to_string())
    );
    out
}

/// Renders the full Section 4.2 comparison for a matmul flow: both paper
/// designs plus the word-level baselines.
pub fn render_matmul_comparison(u: i64, p: i64) -> String {
    let flow = DesignFlow::matmul(u, p as usize);
    let mut out = String::new();
    let _ = writeln!(out, "== matrix multiplication, u = {u}, p = {p} ==");
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        out.push_str(&render_architecture(&flow.evaluate_paper_design(design)));
    }
    let word_addshift = bitlevel_mapping::word_level_total_time(u, p * p);
    let word_carrysave = bitlevel_mapping::word_level_total_time(u, 2 * p);
    let bit = PaperDesign::TimeOptimal.total_time(u, p);
    let _ = writeln!(
        out,
        "word-level (add-shift PE, t_b = p^2): {word_addshift} cycles"
    );
    let _ = writeln!(
        out,
        "word-level (carry-save PE, t_b = 2p): {word_carrysave} cycles"
    );
    let _ = writeln!(
        out,
        "speedup of Fig. 4: {:.1}x over add-shift word PEs, {:.1}x over carry-save",
        word_addshift as f64 / bit as f64,
        word_carrysave as f64 / bit as f64
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_depanal::Expansion;
    use bitlevel_ir::WordLevelAlgorithm;

    #[test]
    fn structure_report_mentions_validity_regions() {
        let flow = DesignFlow::matmul(2, 2);
        let s = render_structure(&flow);
        assert!(s.contains("i1=1"), "{s}");
        assert!(s.contains("uniform columns: d6"), "{s}");
    }

    #[test]
    fn expansion_i_report_shows_d3_uniform() {
        let flow = DesignFlow::new(WordLevelAlgorithm::matmul(2), 2, Expansion::I);
        let s = render_structure(&flow);
        assert!(s.contains("d3"), "{s}");
    }

    #[test]
    fn architecture_report_flags_match() {
        let flow = DesignFlow::matmul(2, 2);
        let rep = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
        let s = render_architecture(&rep);
        assert!(s.contains("match"), "{s}");
        assert!(!s.contains("MISMATCH"), "{s}");
    }

    #[test]
    fn architecture_report_names_the_backend() {
        let flow = DesignFlow::matmul(2, 2);
        let rep = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
        let s = render_architecture(&rep);
        assert!(s.contains("backend: compiled"), "{s}");
    }

    #[test]
    fn trace_summary_reports_measured_profile() {
        use bitlevel_systolic::RecordingSink;
        let flow = DesignFlow::matmul(2, 2);
        let design = PaperDesign::TimeOptimal;
        let mut sink = RecordingSink::new();
        flow.evaluate_traced(
            design.name(),
            &design.mapping(2),
            &design.interconnect(2),
            None,
            &mut sink,
        );
        let s = render_trace_summary(sink.rollup());
        assert!(s.contains("firings: 32"), "{s}"); // |J| = u³p² = 8·4
        assert!(s.contains("busy span: 7 cycles"), "{s}"); // 3(u−1)+3(p−1)+1
        assert!(s.contains("violations: 0"), "{s}");
    }

    #[test]
    fn comparison_report_computes_speedups() {
        let s = render_matmul_comparison(3, 3);
        assert!(s.contains("speedup"), "{s}");
        assert!(s.contains("word-level"), "{s}");
    }

    #[test]
    fn frontier_report_shows_designs_and_pruning() {
        let flow = DesignFlow::matmul(2, 2);
        let (family, config) = flow.default_exploration();
        let ex = flow.explore(&family, &config).unwrap();
        let s = render_frontier(&ex);
        assert!(s.contains("Pareto frontier"), "{s}");
        assert!(s.contains("yes (compiled)"), "{s}");
        assert!(!s.contains("DIVERGED"), "{s}");
        assert!(s.contains("full Def. 4.1 checks"), "{s}");
        // The Theorem 4.5 schedule appears as a witness row.
        assert!(s.contains("[1, 1, 1, 2, 1]"), "{s}");
    }
}
