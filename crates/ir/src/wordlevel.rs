//! Word-level algorithms of the restricted model (3.5).
//!
//! ```text
//! DO (j1=l1,u1; …; jn=ln,un)
//!     x(j̄) = x(j̄ − h̄₁)
//!     y(j̄) = y(j̄ − h̄₂)
//!     z(j̄) = z(j̄ − h̄₃) + x(j̄)·y(j̄)
//! END
//! ```
//!
//! "This model can describe applications such as matrix multiplication,
//! convolution, matrix-vector multiplication, discrete cosine transform, and
//! discrete Fourier transform." This module provides the model as a type
//! ([`WordLevelAlgorithm`]) plus constructors for each of those applications.
//!
//! For matrix–vector products (and the matvec-shaped DCT/DFT instances) the
//! coefficient array is consumed exactly once per index point, so it induces
//! no cross-iteration dependence; the corresponding pipelining vector is
//! `None` and the composed bit-level structure simply omits that column.

use crate::affine::AffineFn;
use crate::dependence::{Dependence, DependenceSet};
use crate::index_set::BoxSet;
use crate::statement::{Access, LoopNest, OpKind, Statement};
use crate::triplet::AlgorithmTriplet;
use bitlevel_linalg::{IMat, IVec};
use serde::{Deserialize, Serialize};

/// An instance of the word-level model (3.5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordLevelAlgorithm {
    /// Human-readable name ("matrix multiplication", …).
    pub name: String,
    /// Iteration space `J_w`.
    pub bounds: BoxSet,
    /// Pipelining vector `h̄₁` of the `x` operand (`None` = no reuse).
    pub h1: Option<IVec>,
    /// Pipelining vector `h̄₂` of the `y` operand (`None` = no reuse).
    pub h2: Option<IVec>,
    /// Accumulation vector `h̄₃` of the result `z` (always present — the model
    /// is a multiply–accumulate recurrence).
    pub h3: IVec,
}

impl WordLevelAlgorithm {
    /// Generic constructor; checks dimensions.
    ///
    /// # Panics
    /// Panics if any vector's dimension differs from the bounds dimension.
    pub fn new(name: &str, bounds: BoxSet, h1: Option<IVec>, h2: Option<IVec>, h3: IVec) -> Self {
        let n = bounds.dim();
        for h in [h1.as_ref(), h2.as_ref(), Some(&h3)].into_iter().flatten() {
            assert_eq!(h.dim(), n, "pipelining vector dimension mismatch");
        }
        WordLevelAlgorithm {
            name: name.to_string(),
            bounds,
            h1,
            h2,
            h3,
        }
    }

    /// Matrix multiplication `Z = X·Y` of `u×u` matrices — program (2.3):
    /// `h̄₁ = [0,1,0]ᵀ` (x along j₂), `h̄₂ = [1,0,0]ᵀ` (y along j₁),
    /// `h̄₃ = [0,0,1]ᵀ` (z along j₃).
    pub fn matmul(u: i64) -> Self {
        assert!(u >= 1, "matrix size must be positive");
        WordLevelAlgorithm::new(
            "matrix multiplication",
            BoxSet::cube(3, 1, u),
            Some(IVec::from([0, 1, 0])),
            Some(IVec::from([1, 0, 0])),
            IVec::from([0, 0, 1]),
        )
    }

    /// 1-D convolution `z(j₁) = Σ_{j₂} x(j₁+j₂−1)·w(j₂)` with `taps` weights
    /// and `outputs` output samples: `x` travels along `[1,−1]ᵀ` (constant
    /// `j₁+j₂`), `w` is broadcast along `j₁` (pipelined with `[1,0]ᵀ`), and
    /// `z` accumulates along `j₂`.
    pub fn convolution(outputs: i64, taps: i64) -> Self {
        assert!(
            outputs >= 1 && taps >= 1,
            "convolution sizes must be positive"
        );
        WordLevelAlgorithm::new(
            "convolution",
            BoxSet::new(IVec::from([1, 1]), IVec::from([outputs, taps])),
            Some(IVec::from([1, -1])),
            Some(IVec::from([1, 0])),
            IVec::from([0, 1]),
        )
    }

    /// Matrix–vector multiplication `z(j₁) = Σ_{j₂} A(j₁,j₂)·x(j₂)` for an
    /// `m×k` matrix: `x(j₂)` pipelined along `j₁`; the matrix entry is used
    /// once (`h̄₂ = None`); `z` accumulates along `j₂`.
    pub fn matvec(m: i64, k: i64) -> Self {
        assert!(m >= 1 && k >= 1, "matvec sizes must be positive");
        WordLevelAlgorithm::new(
            "matrix-vector multiplication",
            BoxSet::new(IVec::from([1, 1]), IVec::from([m, k])),
            Some(IVec::from([1, 0])),
            None,
            IVec::from([0, 1]),
        )
    }

    /// Polynomial multiplication `c(x) = a(x)·b(x)` with `deg_a + 1`
    /// coefficients in `a` and `deg_b + 1` in `b` — structurally identical
    /// to [`Self::convolution`] (`c_k = Σ_j a_{k−j}·b_j`; feed one operand
    /// reversed through the operand functions to turn the correlation
    /// indexing into convolution indexing). Provided as its own constructor
    /// because it is the other classic systolic workload with this shape.
    pub fn polynomial_mul(deg_a: i64, deg_b: i64) -> Self {
        assert!(deg_a >= 0 && deg_b >= 0, "degrees must be nonnegative");
        let mut alg = Self::convolution(deg_a + deg_b + 1, deg_b + 1);
        alg.name = "polynomial multiplication".to_string();
        alg
    }

    /// `u`-point discrete Fourier transform in matvec shape:
    /// `X(j₁) = Σ_{j₂} F(j₁,j₂)·x(j₂)` with `F(j₁,j₂) = W^{(j₁−1)(j₂−1)}`
    /// streamed in (used once), input samples pipelined along `j₁`.
    pub fn dft(u: i64) -> Self {
        let mut alg = Self::matvec(u, u);
        alg.name = "discrete Fourier transform".to_string();
        alg
    }

    /// `u`-point discrete cosine transform in matvec shape (cosine coefficient
    /// matrix streamed in, samples pipelined).
    pub fn dct(u: i64) -> Self {
        let mut alg = Self::matvec(u, u);
        alg.name = "discrete cosine transform".to_string();
        alg
    }

    /// Algorithm dimension `n`.
    pub fn dim(&self) -> usize {
        self.bounds.dim()
    }

    /// The word-level dependence structure `(J_w, D_w)` of (3.6), with
    /// columns in the model's x, y, z order (absent operands skipped).
    pub fn dependences(&self) -> DependenceSet {
        let mut deps = Vec::new();
        if let Some(h1) = &self.h1 {
            deps.push(Dependence::uniform(h1.clone(), "x"));
        }
        if let Some(h2) = &self.h2 {
            deps.push(Dependence::uniform(h2.clone(), "y"));
        }
        deps.push(Dependence::uniform(self.h3.clone(), "z"));
        DependenceSet::new(deps)
    }

    /// The word-level dependence matrix `D_w = [h̄₁, h̄₂, h̄₃]` of (3.6).
    pub fn dependence_matrix(&self) -> IMat {
        self.dependences().matrix()
    }

    /// The algorithm triplet `(J_w, D_w, E_w)`.
    pub fn triplet(&self) -> AlgorithmTriplet {
        AlgorithmTriplet::new(
            self.bounds.clone(),
            self.dependences(),
            &format!("{}: z(j) = z(j-h3) + x(j)*y(j)", self.name),
        )
    }

    /// The loop nest of form (3.5), in single-assignment pipelined form.
    pub fn nest(&self) -> LoopNest {
        let n = self.dim();
        let mut statements = Vec::new();
        if let Some(h1) = &self.h1 {
            statements.push(Statement::pipeline("x", n, h1));
        }
        if let Some(h2) = &self.h2 {
            statements.push(Statement::pipeline("y", n, h2));
        }
        statements.push(Statement::new(
            Access::new("z", AffineFn::identity(n)),
            vec![
                Access::new("z", AffineFn::shift_back(&self.h3)),
                Access::new("x", AffineFn::identity(n)),
                Access::new("y", AffineFn::identity(n)),
            ],
            OpKind::MulAdd,
        ));
        LoopNest::new(self.bounds.clone(), statements)
    }

    /// True when both operands are pipelined — the full model (3.5) that
    /// Theorem 3.1 is stated for.
    pub fn is_full_model(&self) -> bool {
        self.h1.is_some() && self.h2.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_eq_2_4() {
        let m = WordLevelAlgorithm::matmul(4);
        assert_eq!(m.dim(), 3);
        assert!(m.is_full_model());
        // D_w columns in x, y, z order.
        let d = m.dependence_matrix();
        assert_eq!(d.col(0), IVec::from([0, 1, 0])); // x
        assert_eq!(d.col(1), IVec::from([1, 0, 0])); // y
        assert_eq!(d.col(2), IVec::from([0, 0, 1])); // z
        assert!(m.triplet().is_uniform());
        assert_eq!(m.bounds.cardinality(), 64);
    }

    #[test]
    fn convolution_structure() {
        let c = WordLevelAlgorithm::convolution(8, 3);
        assert_eq!(c.dim(), 2);
        assert!(c.is_full_model());
        // The x stream moves along the anti-diagonal: subscript j1+j2-1 is
        // constant along [1,-1].
        assert_eq!(c.h1.as_ref().unwrap(), &IVec::from([1, -1]));
        assert_eq!(c.bounds.cardinality(), 24);
        assert!(c.triplet().is_uniform());
    }

    #[test]
    fn matvec_has_no_y_dependence() {
        let m = WordLevelAlgorithm::matvec(4, 5);
        assert!(!m.is_full_model());
        assert_eq!(m.dependences().len(), 2); // x and z only
        let d = m.dependence_matrix();
        assert_eq!(d.cols(), 2);
    }

    #[test]
    fn polynomial_mul_is_convolution_shaped() {
        // (deg 2)·(deg 1): 4 output coefficients, 2-tap weight stream.
        let pm = WordLevelAlgorithm::polynomial_mul(2, 1);
        assert_eq!(pm.name, "polynomial multiplication");
        assert_eq!(pm.bounds.upper().as_slice(), &[4, 2]);
        let conv = WordLevelAlgorithm::convolution(4, 2);
        assert_eq!(pm.dependence_matrix(), conv.dependence_matrix());
        assert!(pm.triplet().is_uniform());
    }

    #[test]
    fn dft_dct_are_matvec_shaped() {
        let f = WordLevelAlgorithm::dft(8);
        assert_eq!(f.bounds.cardinality(), 64);
        assert_eq!(f.name, "discrete Fourier transform");
        let c = WordLevelAlgorithm::dct(8);
        assert_eq!(c.name, "discrete cosine transform");
        assert_eq!(f.dependences().matrix(), c.dependences().matrix());
    }

    #[test]
    fn nest_is_single_assignment_form_3_5() {
        let nest = WordLevelAlgorithm::matmul(2).nest();
        assert_eq!(nest.statements.len(), 3);
        assert_eq!(nest.statements[0].op, OpKind::Copy);
        assert_eq!(nest.statements[2].op, OpKind::MulAdd);
        assert_eq!(nest.arrays(), vec!["x".to_string(), "y".into(), "z".into()]);
    }

    #[test]
    fn nest_of_partial_model_skips_missing_pipeline() {
        let nest = WordLevelAlgorithm::matvec(3, 3).nest();
        // x pipeline + z muladd (no y pipeline statement).
        assert_eq!(nest.statements.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_check() {
        let _ = WordLevelAlgorithm::new(
            "bad",
            BoxSet::cube(2, 1, 3),
            Some(IVec::from([1, 0, 0])),
            None,
            IVec::from([0, 1]),
        );
    }
}
