//! Paper-style rendering of dependence structures.
//!
//! The paper prints a dependence matrix with the causing variable above each
//! column and the validity region below it (eqs. (2.4), (3.8)–(3.12)). This
//! module reproduces that layout in plain text, so derived structures can be
//! eyeballed against the paper directly.

use crate::triplet::AlgorithmTriplet;
use std::fmt::Write as _;

/// Renders the dependence structure of `alg` in the paper's annotated-matrix
/// layout:
///
/// ```text
///        y      x      z
///   [    1      0      0 ]
///   [    0      1      0 ]
///   [    0      0      1 ]
///     always always always
/// ```
pub fn annotated_dependence_table(alg: &AlgorithmTriplet) -> String {
    let deps: Vec<_> = alg.deps.iter().collect();
    if deps.is_empty() {
        return "D = [] (no dependences)\n".to_string();
    }
    let n = alg.dim();
    let m = deps.len();

    // Column text blocks: cause, entries, validity.
    let causes: Vec<String> = deps.iter().map(|d| d.cause.clone()).collect();
    let valid: Vec<String> = deps
        .iter()
        .map(|d| {
            let v = d.validity.to_string();
            // Re-express axis numbers with the triplet's axis names.
            substitute_axis_names(&v, &alg.axis_names)
        })
        .collect();
    let mut widths = vec![0usize; m];
    for c in 0..m {
        widths[c] = causes[c].len().max(valid[c].len());
        for r in 0..n {
            widths[c] = widths[c].max(deps[c].vector[r].to_string().len());
        }
    }

    let mut out = String::new();
    // Header: causes.
    out.push_str("      ");
    for c in 0..m {
        let _ = write!(out, " {:^width$}", causes[c], width = widths[c]);
    }
    out.push('\n');
    // Rows with axis names on the left.
    let name_w = alg.axis_names.iter().map(|s| s.len()).max().unwrap_or(2);
    for r in 0..n {
        let _ = write!(out, "{:>name_w$} [", alg.axis_names[r]);
        for c in 0..m {
            let _ = write!(out, " {:^width$}", deps[c].vector[r], width = widths[c]);
        }
        out.push_str(" ]\n");
    }
    // Footer: validity regions.
    let _ = write!(out, "{:>name_w$}  ", "");
    for c in 0..m {
        let _ = write!(out, " {:^width$}", valid[c], width = widths[c]);
    }
    out.push('\n');
    out
}

/// Replaces `j<k>`/`u<k>`/`l<k>` textual axis references produced by
/// [`crate::predicate::Predicate`]'s `Display` with the triplet's axis names
/// (so the 4th axis of a 5-D bit-level set prints as `i1`, matching the
/// paper).
fn substitute_axis_names(text: &str, names: &[String]) -> String {
    let mut out = text.to_string();
    // Substitute from the highest axis number down so "j10" is not mangled by
    // the "j1" replacement.
    for k in (1..=names.len()).rev() {
        let name = &names[k - 1];
        out = out.replace(&format!("j{k}"), name);
        // Upper/lower bound symbols follow the axis name: u_i1 etc. Keep the
        // paper's flavour: u<k> stays u-prefixed with the axis name.
        out = out.replace(&format!("u{k}"), &format!("u({name})"));
        out = out.replace(&format!("l{k}"), &format!("l({name})"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependence::{Dependence, DependenceSet};
    use crate::index_set::BoxSet;
    use crate::predicate::Predicate;

    #[test]
    fn table_shows_causes_entries_and_validity() {
        let alg = AlgorithmTriplet::new(
            BoxSet::cube(3, 1, 3),
            DependenceSet::new(vec![
                Dependence::uniform([1, 0, 0], "y"),
                Dependence::conditional([0, 1, 0], "x", Predicate::eq_const(1, 1)),
            ]),
            "test",
        );
        let t = annotated_dependence_table(&alg);
        assert!(t.contains('y'), "{t}");
        assert!(t.contains("j2=1"), "{t}");
        assert!(t.contains("always"), "{t}");
        // Three matrix rows plus header and footer.
        assert_eq!(t.lines().count(), 5, "{t}");
    }

    #[test]
    fn axis_names_substituted_into_validity() {
        let alg = AlgorithmTriplet::new(
            BoxSet::cube(5, 1, 3),
            DependenceSet::new(vec![Dependence::conditional(
                [0, 0, 0, 1, 0],
                "x",
                Predicate::ne_const(3, 1),
            )]),
            "test",
        )
        .with_axis_names(&["j1", "j2", "j3", "i1", "i2"]);
        let t = annotated_dependence_table(&alg);
        assert!(t.contains("i1!=1"), "{t}");
        assert!(!t.contains("j4"), "{t}");
    }

    #[test]
    fn upper_bound_prints_with_axis_name() {
        let alg = AlgorithmTriplet::new(
            BoxSet::cube(2, 1, 4),
            DependenceSet::new(vec![Dependence::conditional(
                [1, 0],
                "z",
                Predicate::eq_upper(0),
            )]),
            "test",
        );
        let t = annotated_dependence_table(&alg);
        assert!(t.contains("j1=u(j1)"), "{t}");
    }

    #[test]
    fn empty_dependences_render_gracefully() {
        let alg = AlgorithmTriplet::new(BoxSet::cube(2, 1, 2), DependenceSet::default(), "none");
        assert!(annotated_dependence_table(&alg).contains("no dependences"));
    }
}
