//! Dependence vectors, conditional validity, and dependence sets.
//!
//! A dependence is a pair `(j̄, d̄)` (Section 2): iteration `j̄` depends on
//! iteration `j̄ − d̄`. A *uniform* dependence is valid at every point where
//! both endpoints lie in `J`; the bit-level structures of Section 3 also
//! contain **conditional** vectors valid only on sub-regions (`i₁ = 1`,
//! `jₙ = uₙ`, …), which we capture with a [`Predicate`].

use crate::index_set::BoxSet;
use crate::predicate::Predicate;
use bitlevel_linalg::{IMat, IVec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of a dependence (Section 2). The paper's single-assignment
/// convention removes output dependences; they remain representable for the
/// general analyser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// Read-after-write.
    Flow,
    /// Write-after-read.
    Anti,
    /// Write-after-write.
    Output,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::Flow => write!(f, "flow"),
            DepKind::Anti => write!(f, "anti"),
            DepKind::Output => write!(f, "output"),
        }
    }
}

/// One (possibly conditional) dependence vector: the paper's column of `D`
/// together with the variable that causes it and the validity region printed
/// under the column in eqs. (3.8)–(3.12).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dependence {
    /// The dependence vector `d̄ = j̄ − j̄′`.
    pub vector: IVec,
    /// Variable(s) causing the dependence, e.g. `"x"`, `"y,c"`, `"c'"`.
    pub cause: String,
    /// Dependence classification.
    pub kind: DepKind,
    /// Where the dependence is valid (`Predicate::always()` = uniform).
    pub validity: Predicate,
}

impl Dependence {
    /// A uniform flow dependence — the common case for systolic algorithms.
    pub fn uniform(vector: impl Into<IVec>, cause: &str) -> Self {
        Dependence {
            vector: vector.into(),
            cause: cause.to_string(),
            kind: DepKind::Flow,
            validity: Predicate::always(),
        }
    }

    /// A conditional flow dependence valid only where `validity` holds.
    pub fn conditional(vector: impl Into<IVec>, cause: &str, validity: Predicate) -> Self {
        Dependence {
            vector: vector.into(),
            cause: cause.to_string(),
            kind: DepKind::Flow,
            validity,
        }
    }

    /// True if valid at every point of `set` (both endpoint-membership and the
    /// validity predicate are the caller's concern; this checks the predicate
    /// only, matching the paper's usage).
    pub fn is_uniform_over(&self, set: &BoxSet) -> bool {
        self.validity.is_uniform_over(set)
    }

    /// True if the dependence is *actually exercised* at `j̄` within `set`:
    /// the predicate holds and the source `j̄ − d̄` also lies in `set`.
    pub fn active_at(&self, j: &IVec, set: &BoxSet) -> bool {
        if !set.contains(j) || !self.validity.eval(j, set) {
            return false;
        }
        set.contains(&(j - &self.vector))
    }
}

/// The dependence structure of an algorithm: an ordered set of (conditional)
/// dependence vectors over a common index set dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct DependenceSet {
    deps: Vec<Dependence>,
}

impl DependenceSet {
    /// Creates a dependence set from a vector of dependences.
    ///
    /// # Panics
    /// Panics if the vectors do not share a dimension.
    pub fn new(deps: Vec<Dependence>) -> Self {
        if let Some(first) = deps.first() {
            let n = first.vector.dim();
            assert!(
                deps.iter().all(|d| d.vector.dim() == n),
                "dependence vectors of mixed dimension"
            );
        }
        DependenceSet { deps }
    }

    /// Number of dependence vectors (columns of `D`).
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// True if there are no dependences.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Read-only view of the dependences.
    pub fn iter(&self) -> std::slice::Iter<'_, Dependence> {
        self.deps.iter()
    }

    /// The `i`-th dependence.
    pub fn get(&self, i: usize) -> &Dependence {
        &self.deps[i]
    }

    /// Appends a dependence.
    ///
    /// # Panics
    /// Panics on dimension mismatch with existing vectors.
    pub fn push(&mut self, d: Dependence) {
        if let Some(first) = self.deps.first() {
            assert_eq!(first.vector.dim(), d.vector.dim(), "dimension mismatch");
        }
        self.deps.push(d);
    }

    /// The dependence matrix `D` whose columns are the vectors, in order —
    /// exactly the paper's `D`.
    pub fn matrix(&self) -> IMat {
        IMat::from_columns(
            &self
                .deps
                .iter()
                .map(|d| d.vector.clone())
                .collect::<Vec<_>>(),
        )
    }

    /// True if every dependence is uniform over `set` (a *uniform dependence
    /// algorithm*).
    pub fn all_uniform_over(&self, set: &BoxSet) -> bool {
        self.deps.iter().all(|d| d.is_uniform_over(set))
    }

    /// All dependences active at point `j̄` (predicate holds, source inside).
    pub fn active_at<'a>(
        &'a self,
        j: &'a IVec,
        set: &'a BoxSet,
    ) -> impl Iterator<Item = &'a Dependence> {
        self.deps.iter().filter(move |d| d.active_at(j, set))
    }

    /// Semantic equality over `set`: same multiset of (vector, active-region)
    /// pairs, ignoring order, cause strings and predicate syntax. This is the
    /// check used to compare a compositionally-derived structure (Theorem 3.1)
    /// against the output of general dependence analysis.
    pub fn equivalent_over(&self, other: &DependenceSet, set: &BoxSet) -> bool {
        fn signature(ds: &DependenceSet, set: &BoxSet) -> Vec<(IVec, Vec<IVec>)> {
            let mut sig: Vec<(IVec, Vec<IVec>)> = ds
                .deps
                .iter()
                .map(|d| {
                    let pts: Vec<IVec> =
                        set.iter_points().filter(|j| d.active_at(j, set)).collect();
                    (d.vector.clone(), pts)
                })
                // A dependence active nowhere contributes nothing.
                .filter(|(_, pts)| !pts.is_empty())
                .collect();
            // Merge duplicate vectors (two conditional deps with the same
            // vector act as their union).
            sig.sort();
            let mut merged: Vec<(IVec, Vec<IVec>)> = Vec::new();
            for (v, pts) in sig {
                if let Some(last) = merged.last_mut() {
                    if last.0 == v {
                        last.1.extend(pts);
                        last.1.sort();
                        last.1.dedup();
                        continue;
                    }
                }
                merged.push((v, pts));
            }
            merged
        }
        signature(self, set) == signature(other, set)
    }
}

impl fmt::Display for DependenceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.deps.iter().enumerate() {
            writeln!(
                f,
                "d{} = {}  ({}, {}; valid: {})",
                i + 1,
                d.vector,
                d.cause,
                d.kind,
                d.validity
            )?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a DependenceSet {
    type Item = &'a Dependence;
    type IntoIter = std::slice::Iter<'a, Dependence>;
    fn into_iter(self) -> Self::IntoIter {
        self.deps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;

    fn matmul_deps() -> DependenceSet {
        // Eq. (2.4): D = I₃ with causes y, x, z.
        DependenceSet::new(vec![
            Dependence::uniform([1, 0, 0], "y"),
            Dependence::uniform([0, 1, 0], "x"),
            Dependence::uniform([0, 0, 1], "z"),
        ])
    }

    #[test]
    fn matrix_matches_eq_2_4() {
        let d = matmul_deps();
        assert_eq!(d.matrix(), IMat::identity(3));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn uniformity() {
        let set = BoxSet::cube(3, 1, 3);
        assert!(matmul_deps().all_uniform_over(&set));
        let mut ds = matmul_deps();
        ds.push(Dependence::conditional(
            [0, 1, -1],
            "s",
            Predicate::eq_upper(0),
        ));
        assert!(!ds.all_uniform_over(&set));
    }

    #[test]
    fn active_at_requires_source_in_set() {
        let set = BoxSet::cube(3, 1, 3);
        let d = Dependence::uniform([0, 0, 1], "z");
        // At j3 = 1 the source j3 = 0 is outside J: boundary input, not an
        // internal dependence instance.
        assert!(!d.active_at(&IVec::from([1, 1, 1]), &set));
        assert!(d.active_at(&IVec::from([1, 1, 2]), &set));
        assert!(!d.active_at(&IVec::from([0, 1, 2]), &set)); // j outside
    }

    #[test]
    fn conditional_dependence_respects_predicate() {
        let set = BoxSet::cube(3, 1, 3);
        // d̄₄-style: [0,1,0] valid where axis1 (0-based) ≠ 1.
        let d = Dependence::conditional([0, 1, 0], "x", Predicate::ne_const(1, 1));
        // j = (1,2,1): predicate j2≠1 holds, source (1,1,1) ∈ J -> active.
        assert!(d.active_at(&IVec::from([1, 2, 1]), &set));
        // j = (1,1,1): predicate fails.
        assert!(!d.active_at(&IVec::from([1, 1, 1]), &set));
    }

    #[test]
    fn equivalence_ignores_column_order_and_predicate_syntax() {
        let set = BoxSet::cube(2, 1, 3);
        let a = DependenceSet::new(vec![
            Dependence::uniform([1, 0], "x"),
            Dependence::conditional([0, 1], "y", Predicate::ne_const(0, 1)),
        ]);
        let b = DependenceSet::new(vec![
            // Same region expressed differently: j1 ∈ {2,3} = ¬(j1=1).
            Dependence::conditional(
                [0, 1],
                "anything",
                Predicate::eq_const(0, 2).or(&Predicate::eq_const(0, 3)),
            ),
            Dependence::uniform([1, 0], "w"),
        ]);
        assert!(a.equivalent_over(&b, &set));
        // Different region -> not equivalent.
        let c = DependenceSet::new(vec![
            Dependence::uniform([1, 0], "x"),
            Dependence::uniform([0, 1], "y"),
        ]);
        assert!(!a.equivalent_over(&c, &set));
    }

    #[test]
    fn equivalence_merges_split_conditional_vectors() {
        let set = BoxSet::cube(1, 1, 4);
        // One uniform dep == two conditionals covering a partition.
        let whole = DependenceSet::new(vec![Dependence::uniform([1], "x")]);
        let split = DependenceSet::new(vec![
            Dependence::conditional([1], "x", Predicate::eq_const(0, 2)),
            Dependence::conditional([1], "x", Predicate::ne_const(0, 2)),
        ]);
        assert!(whole.equivalent_over(&split, &set));
    }

    #[test]
    fn dependence_active_nowhere_is_ignored_by_equivalence() {
        let set = BoxSet::cube(1, 1, 3);
        let a = DependenceSet::new(vec![Dependence::uniform([1], "x")]);
        let b = DependenceSet::new(vec![
            Dependence::uniform([1], "x"),
            // Vector [5] can never have its source inside J.
            Dependence::uniform([5], "ghost"),
        ]);
        assert!(a.equivalent_over(&b, &set));
    }

    #[test]
    #[should_panic(expected = "mixed dimension")]
    fn mixed_dimension_panics() {
        let _ = DependenceSet::new(vec![
            Dependence::uniform([1, 0], "x"),
            Dependence::uniform([1], "y"),
        ]);
    }
}
