//! Rectangular index sets (iteration spaces).
//!
//! The paper's algorithm model (2.1) iterates over a box
//! `J = { j̄ : lᵢ ≤ jᵢ ≤ uᵢ }`; every index set in the paper — `J_w` of the
//! word-level model (3.6), `J_as` of the add-shift multiplier (3.4), and the
//! compound bit-level set of Theorem 3.1 (3.11a) — is such a box, and the
//! compound set is precisely the Cartesian product `J_w × J_as`.

use bitlevel_linalg::IVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A box-shaped index set `{ j̄ ∈ Zⁿ : l̄ ≤ j̄ ≤ ū }` (componentwise).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BoxSet {
    lower: IVec,
    upper: IVec,
}

impl BoxSet {
    /// Creates the box `[l̄, ū]`.
    ///
    /// # Panics
    /// Panics if dimensions differ or any `lᵢ > uᵢ` (empty boxes are
    /// represented explicitly by [`BoxSet::empty`] semantics are not needed in
    /// this codebase — the paper's loops always have `lᵢ ≤ uᵢ`).
    pub fn new(lower: IVec, upper: IVec) -> Self {
        assert_eq!(lower.dim(), upper.dim(), "bound dimension mismatch");
        assert!(
            lower.le_componentwise(&upper),
            "empty box: lower {lower} exceeds upper {upper}"
        );
        BoxSet { lower, upper }
    }

    /// The cube `[lo, hi]ⁿ`.
    pub fn cube(n: usize, lo: i64, hi: i64) -> Self {
        BoxSet::new(IVec(vec![lo; n]), IVec(vec![hi; n]))
    }

    /// Dimension `n` of the index space.
    pub fn dim(&self) -> usize {
        self.lower.dim()
    }

    /// Lower bound vector `l̄`.
    pub fn lower(&self) -> &IVec {
        &self.lower
    }

    /// Upper bound vector `ū`.
    pub fn upper(&self) -> &IVec {
        &self.upper
    }

    /// Membership test `j̄ ∈ J`.
    pub fn contains(&self, j: &IVec) -> bool {
        j.dim() == self.dim() && self.lower.le_componentwise(j) && j.le_componentwise(&self.upper)
    }

    /// Cardinality `|J| = Π (uᵢ − lᵢ + 1)`.
    pub fn cardinality(&self) -> u128 {
        (0..self.dim())
            .map(|i| (self.upper[i] - self.lower[i] + 1) as u128)
            .product()
    }

    /// Cartesian product `self × other` — the compound index set of
    /// Theorem 3.1: `J = { [j̄ᵀ, īᵀ]ᵀ : j̄ ∈ J_w, ī ∈ J_as }`.
    pub fn product(&self, other: &BoxSet) -> BoxSet {
        BoxSet {
            lower: self.lower.concat(&other.lower),
            upper: self.upper.concat(&other.upper),
        }
    }

    /// The box of all differences `{ j̄₁ − j̄₂ : j̄₁, j̄₂ ∈ J }`, i.e.
    /// `[-(ū−l̄), ū−l̄]`. Used by the conflict checker (condition 3).
    pub fn difference_box(&self) -> BoxSet {
        let extent = &self.upper - &self.lower;
        BoxSet {
            lower: -&extent,
            upper: extent,
        }
    }

    /// Iterates over all points in lexicographic order (first axis slowest, as
    /// in the paper's nested DO loops where `j₁` is the outermost loop).
    pub fn iter_points(&self) -> BoxIter<'_> {
        BoxIter {
            bounds: self,
            next: Some(self.lower.clone()),
        }
    }

    /// Projects the box onto a subset of axes (in the given order).
    pub fn project(&self, axes: &[usize]) -> BoxSet {
        BoxSet {
            lower: IVec(axes.iter().map(|&a| self.lower[a]).collect()),
            upper: IVec(axes.iter().map(|&a| self.upper[a]).collect()),
        }
    }

    /// Extent `uᵢ − lᵢ` along axis `i`.
    pub fn extent(&self, i: usize) -> i64 {
        self.upper[i] - self.lower[i]
    }

    /// Closed-form lexicographic rank of `j̄ ∈ J`: the position of `j̄` in the
    /// [`BoxSet::iter_points`] enumeration (first axis slowest). This is the
    /// mixed-radix number whose digit along axis `i` is `jᵢ − lᵢ` with radix
    /// `uᵢ − lᵢ + 1`, so index points become dense array slots with no
    /// hashing — the basis of the compiled simulation backend.
    ///
    /// # Panics
    /// Panics if `j̄ ∉ J` or if `|J|` does not fit in `usize` — use
    /// [`BoxSet::try_rank`] where the caller wants to degrade instead.
    pub fn rank(&self, j: &IVec) -> usize {
        match self.try_rank(j) {
            Ok(r) => r,
            Err(e) => panic!("rank: {e}"),
        }
    }

    /// Checked variant of [`BoxSet::rank`]: callers such as the compiled
    /// simulation backend and long sweeps use this to fall back to the
    /// interpreted engines instead of aborting mid-run.
    pub fn try_rank(&self, j: &IVec) -> Result<usize, RankError> {
        if !self.contains(j) {
            return Err(RankError::PointOutside {
                point: j.to_string(),
                set: self.to_string(),
            });
        }
        let card = self.cardinality();
        if card > usize::MAX as u128 {
            return Err(RankError::Overflow { cardinality: card });
        }
        let mut r = 0usize;
        for i in 0..self.dim() {
            let size = (self.upper[i] - self.lower[i] + 1) as usize;
            r = r * size + (j[i] - self.lower[i]) as usize;
        }
        Ok(r)
    }

    /// Inverse of [`BoxSet::rank`]: the `r`-th point of the lexicographic
    /// enumeration, recovered digit-by-digit from the mixed-radix expansion
    /// (last axis fastest).
    ///
    /// # Panics
    /// Panics if `r ≥ |J|`.
    pub fn unrank(&self, r: usize) -> IVec {
        let card = self.cardinality();
        assert!(
            (r as u128) < card,
            "unrank: rank {r} out of range for |J| = {card}"
        );
        let mut coords = vec![0i64; self.dim()];
        let mut rem = r;
        for i in (0..self.dim()).rev() {
            let size = (self.upper[i] - self.lower[i] + 1) as usize;
            coords[i] = self.lower[i] + (rem % size) as i64;
            rem /= size;
        }
        let j = IVec(coords);
        debug_assert_eq!(self.rank(&j), r, "rank/unrank round-trip broken");
        j
    }
}

/// Why a point could not be ranked into a dense slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankError {
    /// The point is not a member of the index set.
    PointOutside {
        /// Rendered point.
        point: String,
        /// Rendered index set.
        set: String,
    },
    /// `|J|` exceeds the addressable slot space.
    Overflow {
        /// The offending cardinality.
        cardinality: u128,
    },
}

impl fmt::Display for RankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankError::PointOutside { point, set } => {
                write!(f, "point {point} outside {set}")
            }
            RankError::Overflow { cardinality } => {
                write!(f, "|J| = {cardinality} overflows usize")
            }
        }
    }
}

impl std::error::Error for RankError {}

impl fmt::Display for BoxSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ j : ")?;
        for i in 0..self.dim() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} <= j{} <= {}", self.lower[i], i + 1, self.upper[i])?;
        }
        write!(f, " }}")
    }
}

/// Lexicographic iterator over the points of a [`BoxSet`].
pub struct BoxIter<'a> {
    bounds: &'a BoxSet,
    next: Option<IVec>,
}

impl Iterator for BoxIter<'_> {
    type Item = IVec;

    fn next(&mut self) -> Option<IVec> {
        let current = self.next.take()?;
        // Compute successor: increment last axis, carrying leftwards.
        let mut succ = current.clone();
        let n = succ.dim();
        if n == 0 {
            // The 0-dimensional box has exactly one point.
            self.next = None;
            return Some(current);
        }
        let mut axis = n;
        loop {
            if axis == 0 {
                self.next = None;
                break;
            }
            axis -= 1;
            if succ[axis] < self.bounds.upper[axis] {
                succ[axis] += 1;
                for a in axis + 1..n {
                    succ[a] = self.bounds.lower[a];
                }
                self.next = Some(succ);
                break;
            }
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn membership_and_cardinality() {
        let j = BoxSet::cube(3, 1, 4); // the paper's J with u = 4
        assert_eq!(j.dim(), 3);
        assert_eq!(j.cardinality(), 64);
        assert!(j.contains(&IVec::from([1, 1, 1])));
        assert!(j.contains(&IVec::from([4, 4, 4])));
        assert!(!j.contains(&IVec::from([0, 1, 1])));
        assert!(!j.contains(&IVec::from([1, 5, 1])));
        assert!(!j.contains(&IVec::from([1, 1]))); // wrong dimension
    }

    #[test]
    fn product_builds_theorem_3_1_index_set() {
        // J = J_w × J_as per eq. (3.11a): matmul u=2, add-shift p=3.
        let jw = BoxSet::cube(3, 1, 2);
        let jas = BoxSet::cube(2, 1, 3);
        let j = jw.product(&jas);
        assert_eq!(j.dim(), 5);
        assert_eq!(j.cardinality(), 8 * 9);
        assert!(j.contains(&IVec::from([2, 1, 2, 3, 1])));
        assert!(!j.contains(&IVec::from([2, 1, 3, 3, 1])));
    }

    #[test]
    fn iteration_is_lexicographic_and_complete() {
        let b = BoxSet::new(IVec::from([0, 1]), IVec::from([1, 2]));
        let pts: Vec<IVec> = b.iter_points().collect();
        assert_eq!(
            pts,
            vec![
                IVec::from([0, 1]),
                IVec::from([0, 2]),
                IVec::from([1, 1]),
                IVec::from([1, 2]),
            ]
        );
    }

    #[test]
    fn zero_dimensional_box_has_one_point() {
        let b = BoxSet::new(IVec::zeros(0), IVec::zeros(0));
        assert_eq!(b.cardinality(), 1);
        assert_eq!(b.iter_points().count(), 1);
    }

    #[test]
    fn difference_box_is_symmetric() {
        let b = BoxSet::new(IVec::from([1, 2]), IVec::from([3, 2]));
        let d = b.difference_box();
        assert_eq!(d.lower(), &IVec::from([-2, 0]));
        assert_eq!(d.upper(), &IVec::from([2, 0]));
    }

    #[test]
    fn project_extracts_axes() {
        let b = BoxSet::new(IVec::from([1, 2, 3]), IVec::from([4, 5, 6]));
        let p = b.project(&[2, 0]);
        assert_eq!(p.lower(), &IVec::from([3, 1]));
        assert_eq!(p.upper(), &IVec::from([6, 4]));
    }

    #[test]
    #[should_panic(expected = "empty box")]
    fn inverted_bounds_panic() {
        let _ = BoxSet::new(IVec::from([2]), IVec::from([1]));
    }

    #[test]
    fn rank_matches_iteration_order() {
        let b = BoxSet::new(IVec::from([0, 1]), IVec::from([1, 2]));
        for (k, q) in b.iter_points().enumerate() {
            assert_eq!(b.rank(&q), k);
            assert_eq!(b.unrank(k), q);
        }
    }

    #[test]
    fn rank_of_zero_dimensional_box() {
        let b = BoxSet::new(IVec::zeros(0), IVec::zeros(0));
        assert_eq!(b.rank(&IVec::zeros(0)), 0);
        assert_eq!(b.unrank(0), IVec::zeros(0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rank_of_outside_point_panics() {
        let b = BoxSet::cube(2, 1, 3);
        let _ = b.rank(&IVec::from([0, 1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_beyond_cardinality_panics() {
        let b = BoxSet::cube(2, 1, 2);
        let _ = b.unrank(4);
    }

    #[test]
    fn try_rank_reports_outside_points_instead_of_panicking() {
        let b = BoxSet::cube(2, 1, 3);
        assert_eq!(b.try_rank(&IVec::from([2, 3])), Ok(5));
        let err = b.try_rank(&IVec::from([0, 1])).unwrap_err();
        assert!(matches!(err, RankError::PointOutside { .. }));
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn try_rank_reports_oversized_sets_instead_of_panicking() {
        // 2^64 points: exceeds usize on every supported target.
        let b = BoxSet::new(
            IVec::from([0, 0]),
            IVec::from([(1i64 << 32) - 1, (1i64 << 32) - 1]),
        );
        let err = b.try_rank(&IVec::from([1, 1])).unwrap_err();
        assert_eq!(
            err,
            RankError::Overflow {
                cardinality: 1u128 << 64
            }
        );
        assert!(err.to_string().contains("overflows usize"));
    }

    proptest! {
        #[test]
        fn prop_iteration_count_matches_cardinality(
            lo in proptest::collection::vec(-3i64..3, 1..4),
            ext in proptest::collection::vec(0i64..4, 1..4),
        ) {
            let n = lo.len().min(ext.len());
            let lower = IVec(lo[..n].to_vec());
            let upper = IVec((0..n).map(|i| lo[i] + ext[i]).collect());
            let b = BoxSet::new(lower, upper);
            prop_assert_eq!(b.iter_points().count() as u128, b.cardinality());
            // Every iterated point is a member; points are strictly increasing
            // lexicographically (no duplicates).
            let pts: Vec<IVec> = b.iter_points().collect();
            for w in pts.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for p in &pts {
                prop_assert!(b.contains(p));
            }
        }

        #[test]
        fn prop_rank_unrank_roundtrip_in_iteration_order(
            lo in proptest::collection::vec(-3i64..3, 1..4),
            // Extent 0 included: degenerate (single-value) axes must rank
            // correctly too.
            ext in proptest::collection::vec(0i64..4, 1..4),
        ) {
            let n = lo.len().min(ext.len());
            let lower = IVec(lo[..n].to_vec());
            let upper = IVec((0..n).map(|i| lo[i] + ext[i]).collect());
            let b = BoxSet::new(lower, upper);
            for (k, q) in b.iter_points().enumerate() {
                prop_assert_eq!(b.rank(&q), k);
                prop_assert_eq!(b.unrank(k), q);
            }
        }

        #[test]
        fn prop_difference_box_contains_all_differences(
            ext in proptest::collection::vec(0i64..3, 2..4),
        ) {
            let n = ext.len();
            let b = BoxSet::new(IVec::zeros(n), IVec(ext));
            let d = b.difference_box();
            for p in b.iter_points() {
                for q in b.iter_points() {
                    prop_assert!(d.contains(&(&p - &q)));
                }
            }
        }
    }
}
