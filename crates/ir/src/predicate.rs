//! Validity predicates for conditional dependence vectors.
//!
//! Most dependence vectors of an expanded bit-level algorithm are **not
//! uniform**: the paper annotates each column of `D_I`/`D_II` (eqs. 3.8–3.9,
//! 3.11) with the set of index points the vector is valid at — constraints
//! like `i₁ = 1`, `i₂ ≠ 1`, `jₙ = uₙ`, or the compound
//! `q̄₁ : (i₁ ≠ 1 or i₂ ∉ {1,2}) and jₙ = uₙ`. This module is a small predicate
//! algebra (disjunctive normal form over per-axis atoms) that can express all
//! of these, evaluate them at concrete points, and compare predicates
//! semantically over a given index set.

use crate::index_set::BoxSet;
use bitlevel_linalg::IVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The right-hand side an axis is compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rhs {
    /// A literal integer.
    Const(i64),
    /// The lower loop bound `l_axis` of the same axis.
    LowerBound,
    /// The upper loop bound `u_axis` of the same axis — the paper's `jₙ = uₙ`.
    UpperBound,
}

/// Comparison operator of an atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Cmp {
    /// `axis = rhs`
    Eq,
    /// `axis ≠ rhs`
    Ne,
}

/// One atomic constraint `j[axis] (= | ≠) rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Zero-based axis of the index space.
    pub axis: usize,
    /// Comparison.
    pub cmp: Cmp,
    /// Compared-against value.
    pub rhs: Rhs,
}

impl Atom {
    /// Evaluates the atom at point `j` inside index set `set` (needed to
    /// resolve [`Rhs::LowerBound`]/[`Rhs::UpperBound`]).
    pub fn eval(&self, j: &IVec, set: &BoxSet) -> bool {
        let rhs = match self.rhs {
            Rhs::Const(c) => c,
            Rhs::LowerBound => set.lower()[self.axis],
            Rhs::UpperBound => set.upper()[self.axis],
        };
        match self.cmp {
            Cmp::Eq => j[self.axis] == rhs,
            Cmp::Ne => j[self.axis] != rhs,
        }
    }

    /// The negated atom.
    pub fn negated(&self) -> Atom {
        Atom {
            cmp: match self.cmp {
                Cmp::Eq => Cmp::Ne,
                Cmp::Ne => Cmp::Eq,
            },
            ..*self
        }
    }
}

/// A predicate over index points in disjunctive normal form: an OR of ANDs of
/// [`Atom`]s. `Predicate::always()` is the empty conjunction (one empty
/// clause); `Predicate::never()` is the empty disjunction.
///
/// # Examples
///
/// The paper's `q̄₁ : (i₁ ≠ 1 or i₂ ∉ {1,2}) and j = u` (eq. (3.9)), over a
/// 3-axis space `(j, i₁, i₂)`:
///
/// ```
/// use bitlevel_ir::{BoxSet, Predicate};
/// use bitlevel_linalg::IVec;
///
/// let q1 = Predicate::ne_const(1, 1)
///     .or(&Predicate::not_in(2, &[1, 2]))
///     .and(&Predicate::eq_upper(0));
/// let set = BoxSet::new(IVec::from([1, 1, 1]), IVec::from([4, 3, 3]));
/// assert!(q1.eval(&IVec::from([4, 2, 1]), &set));  // i1 ≠ 1 at j = u
/// assert!(!q1.eval(&IVec::from([4, 1, 2]), &set)); // neither disjunct
/// assert!(!q1.eval(&IVec::from([3, 2, 3]), &set)); // j ≠ u
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    /// DNF clauses; each clause is a conjunction of atoms.
    clauses: Vec<Vec<Atom>>,
}

impl Predicate {
    /// The predicate that holds everywhere (a uniform dependence).
    pub fn always() -> Self {
        Predicate {
            clauses: vec![vec![]],
        }
    }

    /// The predicate that holds nowhere.
    pub fn never() -> Self {
        Predicate { clauses: vec![] }
    }

    /// A single atom.
    pub fn atom(axis: usize, cmp: Cmp, rhs: Rhs) -> Self {
        Predicate {
            clauses: vec![vec![Atom { axis, cmp, rhs }]],
        }
    }

    /// `axis = c` for a constant.
    pub fn eq_const(axis: usize, c: i64) -> Self {
        Self::atom(axis, Cmp::Eq, Rhs::Const(c))
    }

    /// `axis ≠ c` for a constant.
    pub fn ne_const(axis: usize, c: i64) -> Self {
        Self::atom(axis, Cmp::Ne, Rhs::Const(c))
    }

    /// `axis = u_axis` — the paper's "valid only on the last hyperplane".
    pub fn eq_upper(axis: usize) -> Self {
        Self::atom(axis, Cmp::Eq, Rhs::UpperBound)
    }

    /// `axis ≠ u_axis`.
    pub fn ne_upper(axis: usize) -> Self {
        Self::atom(axis, Cmp::Ne, Rhs::UpperBound)
    }

    /// `axis = l_axis`.
    pub fn eq_lower(axis: usize) -> Self {
        Self::atom(axis, Cmp::Eq, Rhs::LowerBound)
    }

    /// `axis ∉ {vals…}` as a conjunction of ≠ atoms.
    pub fn not_in(axis: usize, vals: &[i64]) -> Self {
        Predicate {
            clauses: vec![vals
                .iter()
                .map(|&c| Atom {
                    axis,
                    cmp: Cmp::Ne,
                    rhs: Rhs::Const(c),
                })
                .collect()],
        }
    }

    /// Conjunction (distributes over the DNF clauses).
    pub fn and(&self, other: &Predicate) -> Predicate {
        let mut clauses = Vec::with_capacity(self.clauses.len() * other.clauses.len());
        for a in &self.clauses {
            for b in &other.clauses {
                let mut clause = a.clone();
                clause.extend_from_slice(b);
                clause.sort();
                clause.dedup();
                clauses.push(clause);
            }
        }
        Predicate { clauses }.normalised()
    }

    /// Disjunction (concatenates clauses).
    pub fn or(&self, other: &Predicate) -> Predicate {
        let mut clauses = self.clauses.clone();
        clauses.extend_from_slice(&other.clauses);
        Predicate { clauses }.normalised()
    }

    /// Negation (De Morgan over the DNF; atoms flip Eq↔Ne).
    pub fn negate(&self) -> Predicate {
        // ¬(C₁ ∨ … ∨ Cₖ) = ¬C₁ ∧ … ∧ ¬Cₖ, and ¬(a₁ ∧ … ∧ aₘ) = ¬a₁ ∨ … ∨ ¬aₘ.
        let mut acc = Predicate::always();
        for clause in &self.clauses {
            let neg_clause = Predicate {
                clauses: clause.iter().map(|a| vec![a.negated()]).collect(),
            };
            acc = acc.and(&neg_clause);
        }
        acc
    }

    /// Evaluates the predicate at `j` within `set`.
    pub fn eval(&self, j: &IVec, set: &BoxSet) -> bool {
        self.clauses
            .iter()
            .any(|clause| clause.iter().all(|a| a.eval(j, set)))
    }

    /// True if this predicate holds at every point of `set` (i.e. the
    /// dependence is **uniform** over the set). Decided by exhaustive
    /// evaluation — index sets in this project are small.
    pub fn is_uniform_over(&self, set: &BoxSet) -> bool {
        set.iter_points().all(|j| self.eval(&j, set))
    }

    /// Semantic equality over a set, by exhaustive evaluation.
    pub fn equivalent_over(&self, other: &Predicate, set: &BoxSet) -> bool {
        set.iter_points()
            .all(|j| self.eval(&j, set) == other.eval(&j, set))
    }

    /// All points of `set` where the predicate holds.
    pub fn satisfying_points(&self, set: &BoxSet) -> Vec<IVec> {
        set.iter_points().filter(|j| self.eval(j, set)).collect()
    }

    /// Shifts every axis reference by `offset` — used when a predicate over
    /// the 2-D arithmetic index set `(i₁, i₂)` is embedded in the compound
    /// `n+2`-dimensional set of Theorem 3.1 (the arithmetic axes become
    /// axes `n`, `n+1`).
    pub fn shift_axes(&self, offset: usize) -> Predicate {
        Predicate {
            clauses: self
                .clauses
                .iter()
                .map(|clause| {
                    clause
                        .iter()
                        .map(|a| Atom {
                            axis: a.axis + offset,
                            ..*a
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// The DNF clauses (read-only view).
    pub fn clauses(&self) -> &[Vec<Atom>] {
        &self.clauses
    }

    fn normalised(mut self) -> Predicate {
        // Drop clauses containing contradictory atoms (x = c ∧ x ≠ c), absorb
        // duplicate clauses, and collapse to `always` if any clause is empty.
        self.clauses.retain(|clause| {
            !clause.iter().any(|a| {
                clause.contains(&Atom {
                    cmp: a.cmp.flip(),
                    ..*a
                })
            })
        });
        self.clauses.sort();
        self.clauses.dedup();
        if self.clauses.iter().any(|c| c.is_empty()) {
            return Predicate::always();
        }
        self
    }
}

impl Cmp {
    fn flip(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "never");
        }
        if self.clauses.len() == 1 && self.clauses[0].is_empty() {
            return write!(f, "always");
        }
        for (ci, clause) in self.clauses.iter().enumerate() {
            if ci > 0 {
                write!(f, " or ")?;
            }
            if self.clauses.len() > 1 && clause.len() > 1 {
                write!(f, "(")?;
            }
            for (ai, a) in clause.iter().enumerate() {
                if ai > 0 {
                    write!(f, " and ")?;
                }
                let op = match a.cmp {
                    Cmp::Eq => "=",
                    Cmp::Ne => "!=",
                };
                match a.rhs {
                    Rhs::Const(c) => write!(f, "j{}{}{}", a.axis + 1, op, c)?,
                    Rhs::LowerBound => write!(f, "j{}{}l{}", a.axis + 1, op, a.axis + 1)?,
                    Rhs::UpperBound => write!(f, "j{}{}u{}", a.axis + 1, op, a.axis + 1)?,
                }
            }
            if self.clauses.len() > 1 && clause.len() > 1 {
                write!(f, ")")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> BoxSet {
        BoxSet::cube(3, 1, 3)
    }

    #[test]
    fn always_and_never() {
        let s = cube();
        assert!(Predicate::always().is_uniform_over(&s));
        assert!(Predicate::never().satisfying_points(&s).is_empty());
        assert_eq!(Predicate::always().to_string(), "always");
        assert_eq!(Predicate::never().to_string(), "never");
    }

    #[test]
    fn atoms_evaluate() {
        let s = cube();
        let p = Predicate::eq_const(0, 2);
        assert!(p.eval(&IVec::from([2, 1, 1]), &s));
        assert!(!p.eval(&IVec::from([1, 1, 1]), &s));
        let p = Predicate::ne_const(1, 3);
        assert!(p.eval(&IVec::from([1, 1, 1]), &s));
        assert!(!p.eval(&IVec::from([1, 3, 1]), &s));
    }

    #[test]
    fn upper_bound_atom_tracks_the_set() {
        // The paper's "valid at jₙ = uₙ" (d̄₆ of Expansion I).
        let p = Predicate::eq_upper(2);
        let small = BoxSet::cube(3, 1, 2);
        let big = BoxSet::cube(3, 1, 5);
        assert!(p.eval(&IVec::from([1, 1, 2]), &small));
        assert!(!p.eval(&IVec::from([1, 1, 2]), &big));
        assert!(p.eval(&IVec::from([1, 1, 5]), &big));
    }

    #[test]
    fn q1_compound_predicate_of_eq_3_9() {
        // q̄₁ : (i₁ ≠ 1 or i₂ ∉ {1,2}) and j = u, axes (j, i1, i2) = (0, 1, 2)
        // over J = [l,u] × [1,p]².
        let q1 = Predicate::ne_const(1, 1)
            .or(&Predicate::not_in(2, &[1, 2]))
            .and(&Predicate::eq_upper(0));
        let set = BoxSet::new(IVec::from([1, 1, 1]), IVec::from([4, 3, 3]));
        // j=4, i1=2, i2=1: i1≠1 holds -> valid.
        assert!(q1.eval(&IVec::from([4, 2, 1]), &set));
        // j=4, i1=1, i2=3: i2 ∉ {1,2} holds -> valid.
        assert!(q1.eval(&IVec::from([4, 1, 3]), &set));
        // j=4, i1=1, i2=2: neither disjunct -> invalid.
        assert!(!q1.eval(&IVec::from([4, 1, 2]), &set));
        // j=3 (not u): invalid regardless.
        assert!(!q1.eval(&IVec::from([3, 2, 3]), &set));
    }

    #[test]
    fn and_or_negate_are_boolean_algebra() {
        let s = cube();
        let a = Predicate::eq_const(0, 1);
        let b = Predicate::ne_const(1, 2);
        let and = a.and(&b);
        let or = a.or(&b);
        let na = a.negate();
        for j in s.iter_points() {
            assert_eq!(and.eval(&j, &s), a.eval(&j, &s) && b.eval(&j, &s));
            assert_eq!(or.eval(&j, &s), a.eval(&j, &s) || b.eval(&j, &s));
            assert_eq!(na.eval(&j, &s), !a.eval(&j, &s));
        }
        // Double negation is semantically the identity.
        assert!(a.negate().negate().equivalent_over(&a, &s));
        // De Morgan.
        assert!(and.negate().equivalent_over(&na.or(&b.negate()), &s));
    }

    #[test]
    fn contradictory_clause_is_dropped() {
        let p = Predicate::eq_const(0, 1).and(&Predicate::ne_const(0, 1));
        let s = cube();
        assert!(p.equivalent_over(&Predicate::never(), &s));
    }

    #[test]
    fn shift_axes_embeds_arithmetic_predicates() {
        // i₂ ≠ 1 over (i1, i2) becomes axis 4 in the 5-D matmul set.
        let p = Predicate::ne_const(1, 1).shift_axes(3);
        let set = BoxSet::cube(5, 1, 3);
        assert!(p.eval(&IVec::from([1, 1, 1, 1, 2]), &set));
        assert!(!p.eval(&IVec::from([1, 1, 1, 1, 1]), &set));
    }

    #[test]
    fn uniformity_detection() {
        let s = cube();
        assert!(Predicate::always().is_uniform_over(&s));
        assert!(!Predicate::eq_const(0, 1).is_uniform_over(&s));
        // A predicate that happens to hold at all points of this box.
        let p = Predicate::ne_const(0, 99);
        assert!(p.is_uniform_over(&s));
    }

    #[test]
    fn display_round_trips_semantics_for_reading() {
        let q1 = Predicate::ne_const(1, 1).and(&Predicate::eq_upper(0));
        let s = q1.to_string();
        assert!(s.contains("j2!=1"), "{s}");
        assert!(s.contains("j1=u1"), "{s}");
    }
}
