//! Affine index functions.
//!
//! Array subscripts in the paper's algorithm model (2.1) are linear functions
//! of the index vector: an access `x(g(j̄))` with `g(j̄) = A·j̄ + b̄`. Affine
//! functions are what the general dependence tests reason about (two accesses
//! touch the same datum iff `A₁·j̄₁ + b̄₁ = A₂·j̄₂ + b̄₂` has integer solutions
//! inside the index set).

use bitlevel_linalg::{IMat, IVec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An affine map `g(j̄) = A·j̄ + b̄` from an `n`-dimensional index space to an
/// `m`-dimensional subscript space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AffineFn {
    /// Linear part `A` (m×n).
    pub matrix: IMat,
    /// Constant part `b̄` (m).
    pub offset: IVec,
}

impl AffineFn {
    /// Creates `g(j̄) = A·j̄ + b̄`.
    ///
    /// # Panics
    /// Panics if `offset.dim() != matrix.rows()`.
    pub fn new(matrix: IMat, offset: IVec) -> Self {
        assert_eq!(
            matrix.rows(),
            offset.dim(),
            "affine offset dimension mismatch"
        );
        AffineFn { matrix, offset }
    }

    /// The identity map on `Zⁿ` — the access `x(j̄)` itself.
    pub fn identity(n: usize) -> Self {
        AffineFn::new(IMat::identity(n), IVec::zeros(n))
    }

    /// The translation `g(j̄) = j̄ − d̄` (the pipelined access `x(j̄ − d̄)`).
    pub fn shift_back(d: &IVec) -> Self {
        AffineFn::new(IMat::identity(d.dim()), -d)
    }

    /// A pure axis-selection map: `g(j̄) = [j_{axes[0]}, …]ᵀ` — e.g. the
    /// access `x(j₁, j₃)` of program (2.2) selects axes 0 and 2.
    pub fn select_axes(n: usize, axes: &[usize]) -> Self {
        let mut m = IMat::zeros(axes.len(), n);
        for (r, &a) in axes.iter().enumerate() {
            assert!(a < n, "selected axis {a} out of dimension {n}");
            m[(r, a)] = 1;
        }
        AffineFn::new(m, IVec::zeros(axes.len()))
    }

    /// Applies the map to a point.
    pub fn apply(&self, j: &IVec) -> IVec {
        &self.matrix.matvec(j) + &self.offset
    }

    /// Input dimension `n`.
    pub fn input_dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Output dimension `m`.
    pub fn output_dim(&self) -> usize {
        self.matrix.rows()
    }

    /// True if this is the identity map.
    pub fn is_identity(&self) -> bool {
        self.offset.is_zero()
            && self.matrix.rows() == self.matrix.cols()
            && self.matrix == IMat::identity(self.matrix.rows())
    }

    /// Composition `self ∘ inner` : `j̄ ↦ A_self (A_inner j̄ + b_inner) + b_self`.
    pub fn compose(&self, inner: &AffineFn) -> AffineFn {
        AffineFn::new(
            self.matrix.matmul(&inner.matrix),
            &self.matrix.matvec(&inner.offset) + &self.offset,
        )
    }

    /// Embeds this map into a larger index space: the input gains `before`
    /// leading and `after` trailing axes that are ignored; the output is
    /// unchanged. Used when word-level accesses are re-read inside the
    /// compound bit-level index space of Theorem 3.1.
    pub fn embed_input(&self, before: usize, after: usize) -> AffineFn {
        let m = self.matrix.rows();
        let left = IMat::zeros(m, before);
        let right = IMat::zeros(m, after);
        AffineFn::new(
            left.hstack(&self.matrix).hstack(&right),
            self.offset.clone(),
        )
    }
}

impl fmt::Display for AffineFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render each output row as a linear expression of j1..jn.
        for r in 0..self.output_dim() {
            if r > 0 {
                write!(f, ", ")?;
            }
            let mut first = true;
            for c in 0..self.input_dim() {
                let k = self.matrix[(r, c)];
                if k == 0 {
                    continue;
                }
                if first {
                    if k == 1 {
                        write!(f, "j{}", c + 1)?;
                    } else if k == -1 {
                        write!(f, "-j{}", c + 1)?;
                    } else {
                        write!(f, "{}j{}", k, c + 1)?;
                    }
                    first = false;
                } else if k > 0 {
                    if k == 1 {
                        write!(f, "+j{}", c + 1)?;
                    } else {
                        write!(f, "+{}j{}", k, c + 1)?;
                    }
                } else if k == -1 {
                    write!(f, "-j{}", c + 1)?;
                } else {
                    write!(f, "{}j{}", k, c + 1)?;
                }
            }
            let b = self.offset[r];
            if first {
                write!(f, "{b}")?;
            } else if b > 0 {
                write!(f, "+{b}")?;
            } else if b < 0 {
                write!(f, "{b}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_shift() {
        let id = AffineFn::identity(3);
        let j = IVec::from([1, 2, 3]);
        assert_eq!(id.apply(&j), j);
        assert!(id.is_identity());
        // x(j̄ − [0,1,0]ᵀ) of program (2.3).
        let sh = AffineFn::shift_back(&IVec::from([0, 1, 0]));
        assert_eq!(sh.apply(&j), IVec::from([1, 1, 3]));
        assert!(!sh.is_identity());
    }

    #[test]
    fn select_axes_matches_program_2_2_accesses() {
        // x(j1, j3) in the 3-D matmul nest.
        let acc = AffineFn::select_axes(3, &[0, 2]);
        assert_eq!(acc.apply(&IVec::from([5, 7, 9])), IVec::from([5, 9]));
        // y(j3, j2).
        let acc = AffineFn::select_axes(3, &[2, 1]);
        assert_eq!(acc.apply(&IVec::from([5, 7, 9])), IVec::from([9, 7]));
    }

    #[test]
    fn composition() {
        let f = AffineFn::shift_back(&IVec::from([1, 0]));
        let g = AffineFn::shift_back(&IVec::from([0, 2]));
        let fg = f.compose(&g);
        assert_eq!(fg.apply(&IVec::from([5, 5])), IVec::from([4, 3]));
    }

    #[test]
    fn embed_input_ignores_new_axes() {
        // z(j1, j2, j3-1) read inside the 5-D bit-level space: axes (i1, i2)
        // appended after j̄.
        let acc = AffineFn::shift_back(&IVec::from([0, 0, 1]));
        let embedded = acc.embed_input(0, 2);
        assert_eq!(embedded.input_dim(), 5);
        assert_eq!(
            embedded.apply(&IVec::from([2, 3, 4, 9, 9])),
            IVec::from([2, 3, 3])
        );
    }

    #[test]
    fn display_renders_linear_expressions() {
        let f = AffineFn::new(
            IMat::from_rows(&[&[1, 0, -1], &[0, 2, 0]]),
            IVec::from([-1, 3]),
        );
        let s = f.to_string();
        assert!(s.contains("j1-j3-1"), "{s}");
        assert!(s.contains("2j2+3"), "{s}");
    }

    #[test]
    #[should_panic(expected = "selected axis")]
    fn select_axes_out_of_range_panics() {
        let _ = AffineFn::select_axes(2, &[2]);
    }
}
