//! Broadcast elimination (Fortes & Moldovan [2]).
//!
//! In program (2.2), the datum `x(j₁, j₃)` is needed by all `u` index points
//! `[j₁, 1, j₃]ᵀ … [j₁, u, j₃]ᵀ`: a **broadcast**, which "is not preferred in
//! VLSI implementations because it incurs additional area on a chip and longer
//! clock cycles". The fix (program (2.3)) pipelines the datum along a
//! direction in which its subscript function is constant — a vector of the
//! integer nullspace of the access matrix. This module performs that
//! transformation mechanically: it detects broadcast reads, picks a primitive
//! pipelining direction, rewrites the nest into single-assignment pipelined
//! form, and reports the new uniform dependence each pipeline introduces.

use crate::affine::AffineFn;
use crate::dependence::Dependence;
use crate::statement::{Access, LoopNest, Statement};
use bitlevel_linalg::{gcd_all, integer_nullspace, IVec};

/// Outcome of broadcast elimination on one loop nest.
#[derive(Debug, Clone)]
pub struct BroadcastElimination {
    /// The rewritten, broadcast-free nest (reads of pipelined arrays become
    /// `array(j̄ − d̄)` propagation chains).
    pub nest: LoopNest,
    /// One uniform dependence per eliminated broadcast, labelled by array.
    pub new_dependences: Vec<Dependence>,
}

/// Detects whether an access function broadcasts: the same datum is read at
/// more than one index point, i.e. the access matrix has a nontrivial integer
/// nullspace.
pub fn is_broadcast_access(access: &AffineFn) -> bool {
    !integer_nullspace(&access.matrix).is_empty()
}

/// Picks the pipelining direction for a broadcast access: a primitive
/// (content gcd 1) nullspace vector, sign-normalised so its first nonzero
/// component is positive — e.g. `[0,1,0]ᵀ` for `x(j₁,j₃)` in the matmul nest,
/// matching program (2.3).
pub fn pipelining_direction(access: &AffineFn) -> Option<IVec> {
    let basis = integer_nullspace(&access.matrix);
    let v = basis.into_iter().next()?;
    Some(normalise_direction(v))
}

fn normalise_direction(v: IVec) -> IVec {
    let g = gcd_all(v.as_slice());
    let mut v = if g > 1 {
        IVec(v.iter().map(|&x| x / g).collect())
    } else {
        v
    };
    if let Some(first) = v.iter().find(|&&x| x != 0) {
        if *first < 0 {
            v = -&v;
        }
    }
    v
}

/// Eliminates all broadcast reads of *input* arrays (arrays never written in
/// the nest). Each broadcast array `x` gains a propagation statement
/// `x(j̄) = x(j̄ − d̄)` at the top of the body, and every read of `x` becomes
/// the identity access `x(j̄)`; the original subscript function defines how
/// boundary values are fed (the simulators handle that).
///
/// This is exactly the (2.2) → (2.3) and (3.1) → (3.3) rewrite of the paper.
pub fn eliminate_broadcasts(nest: &LoopNest) -> BroadcastElimination {
    let n = nest.dim();
    let written: Vec<String> = nest
        .statements
        .iter()
        .map(|s| s.target.array.clone())
        .collect();

    // Find input arrays with broadcast reads and their directions.
    let mut pipelined: Vec<(String, IVec)> = Vec::new();
    for s in &nest.statements {
        for a in &s.inputs {
            if written.contains(&a.array) {
                continue; // computed arrays are already single-assignment chains
            }
            if pipelined.iter().any(|(name, _)| *name == a.array) {
                continue;
            }
            if is_broadcast_access(&a.func) {
                let d = pipelining_direction(&a.func)
                    .expect("broadcast access must have a nullspace direction");
                pipelined.push((a.array.clone(), d));
            }
        }
    }

    // Rewrite: propagation statements first (paper's program order in (2.3)),
    // then the original statements with broadcast reads replaced by identity
    // accesses.
    let mut statements: Vec<Statement> = pipelined
        .iter()
        .map(|(name, d)| Statement::pipeline(name, n, d))
        .collect();
    for s in &nest.statements {
        let inputs = s
            .inputs
            .iter()
            .map(|a| {
                if pipelined.iter().any(|(name, _)| *name == a.array) {
                    Access::new(&a.array, AffineFn::identity(n))
                } else {
                    a.clone()
                }
            })
            .collect();
        statements.push(Statement {
            target: s.target.clone(),
            inputs,
            op: s.op.clone(),
            guard: s.guard.clone(),
        });
    }

    let new_dependences = pipelined
        .iter()
        .map(|(name, d)| Dependence::uniform(d.clone(), name))
        .collect();

    BroadcastElimination {
        nest: LoopNest::new(nest.bounds.clone(), statements),
        new_dependences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_set::BoxSet;
    use crate::statement::OpKind;
    use bitlevel_linalg::IMat;

    /// Program (2.2): matmul with broadcasts.
    fn matmul_with_broadcasts(u: i64) -> LoopNest {
        let n = 3;
        LoopNest::new(
            BoxSet::cube(n, 1, u),
            vec![Statement::new(
                Access::new("z", AffineFn::identity(n)),
                vec![
                    Access::new("z", AffineFn::shift_back(&IVec::from([0, 0, 1]))),
                    Access::new("x", AffineFn::select_axes(n, &[0, 2])), // x(j1, j3)
                    Access::new("y", AffineFn::select_axes(n, &[2, 1])), // y(j3, j2)
                ],
                OpKind::MulAdd,
            )],
        )
    }

    #[test]
    fn detects_broadcast_accesses() {
        // x(j1, j3): 2x3 access matrix, nullspace along j2 -> broadcast.
        assert!(is_broadcast_access(&AffineFn::select_axes(3, &[0, 2])));
        // x(j1, j2, j3): identity, no broadcast.
        assert!(!is_broadcast_access(&AffineFn::identity(3)));
    }

    #[test]
    fn matmul_directions_match_program_2_3() {
        // x(j1, j3) is pipelined along the j2 axis.
        assert_eq!(
            pipelining_direction(&AffineFn::select_axes(3, &[0, 2])).unwrap(),
            IVec::from([0, 1, 0])
        );
        // y(j3, j2) is pipelined along the j1 axis.
        assert_eq!(
            pipelining_direction(&AffineFn::select_axes(3, &[2, 1])).unwrap(),
            IVec::from([1, 0, 0])
        );
    }

    #[test]
    fn direction_is_primitive_and_sign_normalised() {
        // Access matrix [2, 2] over 2-D space: nullspace dir ±[1,-1] (not
        // [2,-2]); first nonzero positive.
        let f = AffineFn::new(IMat::from_rows(&[&[2, 2]]), IVec::zeros(1));
        let d = pipelining_direction(&f).unwrap();
        assert_eq!(d, IVec::from([1, -1]));
    }

    #[test]
    fn eliminate_matmul_broadcasts_reproduces_2_3() {
        let be = eliminate_broadcasts(&matmul_with_broadcasts(3));
        // Two new pipelines: x along [0,1,0], y along [1,0,0].
        assert_eq!(be.new_dependences.len(), 2);
        let dirs: Vec<&IVec> = be.new_dependences.iter().map(|d| &d.vector).collect();
        assert!(dirs.contains(&&IVec::from([0, 1, 0])));
        assert!(dirs.contains(&&IVec::from([1, 0, 0])));
        // Rewritten nest: 2 propagation statements + original muladd with
        // identity reads.
        assert_eq!(be.nest.statements.len(), 3);
        let muladd = &be.nest.statements[2];
        assert!(muladd
            .inputs
            .iter()
            .all(|a| { a.array == "z" || a.func.is_identity() }));
    }

    #[test]
    fn no_broadcasts_is_a_noop() {
        // Program (2.3) itself is already broadcast-free.
        let n = 3;
        let nest = LoopNest::new(
            BoxSet::cube(n, 1, 3),
            vec![
                Statement::pipeline("x", n, &IVec::from([0, 1, 0])),
                Statement::pipeline("y", n, &IVec::from([1, 0, 0])),
            ],
        );
        let be = eliminate_broadcasts(&nest);
        assert!(be.new_dependences.is_empty());
        assert_eq!(be.nest, nest);
    }

    #[test]
    fn addshift_broadcasts_match_eq_3_3() {
        // Program (3.1): a(i2) needed at all i1 -> pipelined along i1 = δ̄₁;
        // b(i1) needed at all i2 -> pipelined along i2 = δ̄₂.
        let n = 2;
        let nest = LoopNest::new(
            BoxSet::cube(n, 1, 3),
            vec![Statement::new(
                Access::new("c", AffineFn::identity(n)),
                vec![
                    Access::new("a", AffineFn::select_axes(n, &[1])), // a(i2)
                    Access::new("b", AffineFn::select_axes(n, &[0])), // b(i1)
                ],
                OpKind::CarryBit,
            )],
        );
        let be = eliminate_broadcasts(&nest);
        assert_eq!(be.new_dependences.len(), 2);
        assert_eq!(be.new_dependences[0].vector, IVec::from([1, 0])); // δ̄₁
        assert_eq!(be.new_dependences[0].cause, "a");
        assert_eq!(be.new_dependences[1].vector, IVec::from([0, 1])); // δ̄₂
        assert_eq!(be.new_dependences[1].cause, "b");
    }
}
