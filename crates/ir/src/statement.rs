//! Guarded assignment statements and loop nests.
//!
//! This is the concrete program form of the paper's model (2.1): a nest of
//! `n` DO loops whose body is a sequence of single-assignment statements
//! `x_k(g(j̄)) = f(x₁(h₁(j̄)), …, x_t(h_t(j̄)))`. Bit-level *expanded* programs
//! additionally guard statements by boundary predicates (e.g. the add-shift
//! drain statements only execute at `jₙ = uₙ`), so each statement carries a
//! [`Predicate`] guard. The general dependence analyser in `bitlevel-depanal`
//! consumes exactly this representation.

use crate::affine::AffineFn;
use crate::index_set::BoxSet;
use crate::predicate::Predicate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The operation a statement performs. Dependence analysis only needs the
/// access pattern; the operation matters to the functional simulators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Pure data propagation `x(j̄) = x(j̄ − d̄)` (pipelining).
    Copy,
    /// Word-level multiply–accumulate `z = z′ + x·y` (model 3.5).
    MulAdd,
    /// Bit-level partial-sum: `s = f(x₁,x₂,x₃) = x₁ ⊕ x₂ ⊕ x₃` (eq. 3.2).
    SumBit,
    /// Bit-level carry: `c = g(x₁,x₂,x₃) = majority(x₁,x₂,x₃)` (eq. 3.2).
    CarryBit,
    /// Generalised (4–5 input) sum/carry used on the `i₁ = p` plane of
    /// Expansion II, producing sum plus two carries. The payload selects which
    /// output bit this statement produces (0 = sum, 1 = carry, 2 = second
    /// carry `c'`).
    WideAddOutput(u8),
    /// Anything else, described for humans.
    Other(String),
}

/// One array access `array(g(j̄))`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Array (variable) name.
    pub array: String,
    /// Subscript function `g`.
    pub func: AffineFn,
}

impl Access {
    /// Convenience constructor.
    pub fn new(array: &str, func: AffineFn) -> Self {
        Access {
            array: array.to_string(),
            func,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.array, self.func)
    }
}

/// A guarded single-assignment statement inside the loop nest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Statement {
    /// Left-hand side (written access).
    pub target: Access,
    /// Right-hand side (read accesses, in operand order).
    pub inputs: Vec<Access>,
    /// Operation performed.
    pub op: OpKind,
    /// Guard: the statement executes only where this predicate holds
    /// (`Predicate::always()` for unguarded statements).
    pub guard: Predicate,
}

impl Statement {
    /// An unguarded statement.
    pub fn new(target: Access, inputs: Vec<Access>, op: OpKind) -> Self {
        Statement {
            target,
            inputs,
            op,
            guard: Predicate::always(),
        }
    }

    /// A guarded statement.
    pub fn guarded(target: Access, inputs: Vec<Access>, op: OpKind, guard: Predicate) -> Self {
        Statement {
            target,
            inputs,
            op,
            guard,
        }
    }

    /// A propagation statement `array(j̄) = array(j̄ − d̄)`.
    pub fn pipeline(array: &str, n: usize, d: &bitlevel_linalg::IVec) -> Self {
        Statement::new(
            Access::new(array, AffineFn::identity(n)),
            vec![Access::new(array, AffineFn::shift_back(d))],
            OpKind::Copy,
        )
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = op[", self.target)?;
        match &self.op {
            OpKind::Copy => write!(f, "copy")?,
            OpKind::MulAdd => write!(f, "muladd")?,
            OpKind::SumBit => write!(f, "sum")?,
            OpKind::CarryBit => write!(f, "carry")?,
            OpKind::WideAddOutput(k) => write!(f, "wide{k}")?,
            OpKind::Other(s) => write!(f, "{s}")?,
        }
        write!(f, "](")?;
        for (i, a) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
        if self.guard != Predicate::always() {
            write!(f, "  if {}", self.guard)?;
        }
        Ok(())
    }
}

/// A whole nested-loop program: bounds plus ordered statements — the paper's
/// form (2.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopNest {
    /// Iteration space.
    pub bounds: BoxSet,
    /// Body statements in program order.
    pub statements: Vec<Statement>,
}

impl LoopNest {
    /// Creates a loop nest; validates that all accesses use the nest's
    /// dimension as their input dimension.
    ///
    /// # Panics
    /// Panics on dimension inconsistency.
    pub fn new(bounds: BoxSet, statements: Vec<Statement>) -> Self {
        let n = bounds.dim();
        for s in &statements {
            assert_eq!(
                s.target.func.input_dim(),
                n,
                "target access dimension mismatch"
            );
            for a in &s.inputs {
                assert_eq!(a.func.input_dim(), n, "input access dimension mismatch");
            }
        }
        LoopNest { bounds, statements }
    }

    /// Dimension of the nest (number of loops).
    pub fn dim(&self) -> usize {
        self.bounds.dim()
    }

    /// All distinct array names appearing in the nest.
    pub fn arrays(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .statements
            .iter()
            .flat_map(|s| {
                std::iter::once(s.target.array.clone())
                    .chain(s.inputs.iter().map(|a| a.array.clone()))
            })
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Program-order display of the loop nest.
    pub fn pretty(&self) -> String {
        let mut out = format!(
            "DO {}  [{} points]\n",
            self.bounds,
            self.bounds.cardinality()
        );
        for s in &self.statements {
            out.push_str(&format!("  {s}\n"));
        }
        out.push_str("END\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_linalg::IVec;

    /// Builds program (2.3): broadcast-free word-level matmul.
    fn matmul_nest(u: i64) -> LoopNest {
        let n = 3;
        LoopNest::new(
            BoxSet::cube(n, 1, u),
            vec![
                Statement::pipeline("x", n, &IVec::from([0, 1, 0])),
                Statement::pipeline("y", n, &IVec::from([1, 0, 0])),
                Statement::new(
                    Access::new("z", AffineFn::identity(n)),
                    vec![
                        Access::new("z", AffineFn::shift_back(&IVec::from([0, 0, 1]))),
                        Access::new("x", AffineFn::identity(n)),
                        Access::new("y", AffineFn::identity(n)),
                    ],
                    OpKind::MulAdd,
                ),
            ],
        )
    }

    #[test]
    fn matmul_nest_structure() {
        let nest = matmul_nest(3);
        assert_eq!(nest.dim(), 3);
        assert_eq!(nest.statements.len(), 3);
        assert_eq!(nest.arrays(), vec!["x".to_string(), "y".into(), "z".into()]);
    }

    #[test]
    fn pipeline_statement_shape() {
        let s = Statement::pipeline("x", 3, &IVec::from([0, 1, 0]));
        assert_eq!(s.op, OpKind::Copy);
        assert_eq!(s.inputs.len(), 1);
        assert_eq!(
            s.inputs[0].func.apply(&IVec::from([2, 2, 2])),
            IVec::from([2, 1, 2])
        );
        assert!(s
            .to_string()
            .contains("x(j1, j2, j3) = op[copy](x(j1, j2-1, j3))"));
    }

    #[test]
    fn guarded_statement_displays_guard() {
        let s = Statement::guarded(
            Access::new("s", AffineFn::identity(2)),
            vec![],
            OpKind::SumBit,
            Predicate::eq_const(0, 1),
        );
        assert!(s.to_string().contains("if j1=1"));
    }

    #[test]
    fn pretty_prints_whole_nest() {
        let p = matmul_nest(2).pretty();
        assert!(p.starts_with("DO"));
        assert!(p.contains("[8 points]"));
        assert!(p.trim_end().ends_with("END"));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = LoopNest::new(
            BoxSet::cube(2, 1, 3),
            vec![Statement::pipeline("x", 3, &IVec::from([0, 1, 0]))],
        );
    }
}
