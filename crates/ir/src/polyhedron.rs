//! General polyhedral index sets.
//!
//! The paper's algorithm model (2.1) has constant loop bounds — a box — but
//! its mapping framework (Definition 4.1 and the cited design method [5,6])
//! applies to any convex integer index set; the classic examples with
//! non-rectangular sets are triangular loop nests such as LU decomposition,
//! which the paper names as a target application. [`Polyhedron`] represents
//! `{ j̄ ∈ Zⁿ : A·j̄ ≤ b̄ }`, supports the queries the mapping layer needs
//! (membership, enumeration via a bounding box, difference search), and
//! converts losslessly from [`BoxSet`].

use crate::index_set::BoxSet;
use bitlevel_linalg::{IMat, IVec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An integer polyhedron `{ j̄ : A·j̄ ≤ b̄ }` with a known finite bounding box.
///
/// The bounding box is supplied by the constructor (loop nests always have
/// one — the paper's model requires finite bounds) and is used to enumerate
/// points; membership itself is exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Polyhedron {
    /// Constraint matrix `A` (rows are faces).
    pub a: IMat,
    /// Right-hand side `b̄`.
    pub b: IVec,
    /// A finite box containing every integer point of the polyhedron.
    pub bounding: BoxSet,
}

impl Polyhedron {
    /// Creates `{ j̄ : A·j̄ ≤ b̄ }` with the given bounding box.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn new(a: IMat, b: IVec, bounding: BoxSet) -> Self {
        assert_eq!(a.rows(), b.dim(), "constraint count mismatch");
        assert_eq!(a.cols(), bounding.dim(), "dimension mismatch");
        Polyhedron { a, b, bounding }
    }

    /// The box `[l̄, ū]` as a polyhedron (`2n` faces).
    pub fn from_box(set: &BoxSet) -> Self {
        let n = set.dim();
        let mut a = IMat::zeros(2 * n, n);
        let mut b = IVec::zeros(2 * n);
        for i in 0..n {
            a[(i, i)] = 1; // jᵢ ≤ uᵢ
            b[i] = set.upper()[i];
            a[(n + i, i)] = -1; // −jᵢ ≤ −lᵢ
            b[n + i] = -set.lower()[i];
        }
        Polyhedron::new(a, b, set.clone())
    }

    /// The lower-triangular wedge `{ l ≤ j₂ ≤ j₁ ≤ u }` in 2-D — the LU /
    /// triangular-solve iteration shape.
    pub fn lower_triangle(l: i64, u: i64) -> Self {
        let a = IMat::from_rows(&[
            &[1, 0],  // j1 ≤ u
            &[-1, 0], // −j1 ≤ −l
            &[0, 1],  // j2 ≤ u (redundant but harmless)
            &[0, -1], // −j2 ≤ −l
            &[-1, 1], // j2 − j1 ≤ 0
        ]);
        let b = IVec::from([u, -l, u, -l, 0]);
        Polyhedron::new(a, b, BoxSet::cube(2, l, u))
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.a.cols()
    }

    /// Exact membership test.
    pub fn contains(&self, j: &IVec) -> bool {
        if j.dim() != self.dim() {
            return false;
        }
        let v = self.a.matvec(j);
        (0..v.dim()).all(|i| v[i] <= self.b[i])
    }

    /// Iterates the integer points (bounding-box scan + membership filter).
    pub fn iter_points(&self) -> impl Iterator<Item = IVec> + '_ {
        self.bounding.iter_points().filter(|j| self.contains(j))
    }

    /// Number of integer points.
    pub fn cardinality(&self) -> u128 {
        self.iter_points().count() as u128
    }

    /// True if some pair `j̄, j̄ + v̄` both lie inside — i.e. `v̄` is a realised
    /// difference. Used by the polyhedral conflict check: a kernel vector of
    /// `T` causes a conflict iff it is a realised difference.
    pub fn realises_difference(&self, v: &IVec) -> bool {
        self.iter_points().any(|j| self.contains(&(&j + v)))
    }

    /// Intersects with a half-space `c̄·j̄ ≤ k` (returns a new polyhedron).
    pub fn with_constraint(&self, c: &IVec, k: i64) -> Polyhedron {
        assert_eq!(c.dim(), self.dim(), "constraint dimension mismatch");
        let row = IMat::from_flat(1, self.dim(), c.as_slice().to_vec());
        Polyhedron::new(
            self.a.vstack(&row),
            self.b.concat(&IVec::from([k])),
            self.bounding.clone(),
        )
    }
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{ j : A j <= b }} with A =")?;
        write!(f, "{}", self.a)?;
        write!(f, "b = {}", self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn box_roundtrip() {
        let b = BoxSet::new(IVec::from([1, 2]), IVec::from([3, 4]));
        let p = Polyhedron::from_box(&b);
        assert_eq!(p.cardinality(), b.cardinality());
        for j in b.iter_points() {
            assert!(p.contains(&j));
        }
        assert!(!p.contains(&IVec::from([0, 2])));
        assert!(!p.contains(&IVec::from([1, 5])));
    }

    #[test]
    fn lower_triangle_counts() {
        // { 1 ≤ j2 ≤ j1 ≤ 4 }: 4+3+2+1 = 10 points.
        let t = Polyhedron::lower_triangle(1, 4);
        assert_eq!(t.cardinality(), 10);
        assert!(t.contains(&IVec::from([4, 1])));
        assert!(t.contains(&IVec::from([3, 3])));
        assert!(!t.contains(&IVec::from([1, 3])));
    }

    #[test]
    fn realised_differences() {
        let t = Polyhedron::lower_triangle(1, 3);
        // Moving down the triangle by [1, 0] is realised…
        assert!(t.realises_difference(&IVec::from([1, 0])));
        // …as is the diagonal [1, 1]…
        assert!(t.realises_difference(&IVec::from([1, 1])));
        // …but [0, 3] would leave the wedge from every start.
        assert!(!t.realises_difference(&IVec::from([0, 3])));
    }

    #[test]
    fn with_constraint_shrinks() {
        let b = Polyhedron::from_box(&BoxSet::cube(2, 1, 4));
        let half = b.with_constraint(&IVec::from([1, 1]), 4); // j1 + j2 ≤ 4
        assert!(half.cardinality() < b.cardinality());
        assert_eq!(
            half.cardinality(),
            b.iter_points().filter(|j| j[0] + j[1] <= 4).count() as u128
        );
    }

    #[test]
    fn display_renders() {
        let t = Polyhedron::lower_triangle(1, 2);
        let s = t.to_string();
        assert!(s.contains("A j <= b"), "{s}");
    }

    proptest! {
        /// from_box membership is exactly box membership on random points.
        #[test]
        fn prop_box_membership_agrees(
            pt in proptest::collection::vec(-5i64..8, 3),
        ) {
            let b = BoxSet::new(IVec::from([0, 1, -1]), IVec::from([4, 5, 3]));
            let p = Polyhedron::from_box(&b);
            let v = IVec(pt);
            prop_assert_eq!(p.contains(&v), b.contains(&v));
        }
    }
}
