//! Algorithm triplets `(J, D, E)`.
//!
//! "For the purpose of this paper, an algorithm can be characterized by a
//! triplet (J, D, E) where J is the index set, D is the dependence matrix
//! containing all distinct dependence vectors as its columns, and E contains
//! all different computations in all iterations" (Section 2). We extend `D`
//! to carry per-column validity predicates so conditional (non-uniform)
//! structures like (3.11b)/(3.11c) are first-class.

use crate::dependence::DependenceSet;
use crate::index_set::BoxSet;
use bitlevel_linalg::IMat;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An algorithm triplet `(J, D, E)`. `E` is a human-readable description of
/// the per-point computation; functional semantics live in the simulators.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AlgorithmTriplet {
    /// The index set `J`.
    pub index_set: BoxSet,
    /// The (conditional) dependence structure `D`.
    pub deps: DependenceSet,
    /// Description of the computation set `E`.
    pub computation: String,
    /// Axis names for display, e.g. `["j1","j2","j3","i1","i2"]`.
    pub axis_names: Vec<String>,
}

impl AlgorithmTriplet {
    /// Creates a triplet; derives default axis names `j1..jn` when none given.
    ///
    /// # Panics
    /// Panics if the dependence vectors do not match the index-set dimension.
    pub fn new(index_set: BoxSet, deps: DependenceSet, computation: &str) -> Self {
        let n = index_set.dim();
        for d in deps.iter() {
            assert_eq!(d.vector.dim(), n, "dependence/index dimension mismatch");
        }
        let axis_names = (1..=n).map(|i| format!("j{i}")).collect();
        AlgorithmTriplet {
            index_set,
            deps,
            computation: computation.to_string(),
            axis_names,
        }
    }

    /// Replaces the axis names (for compound bit-level sets:
    /// `j1..jn, i1, i2`).
    pub fn with_axis_names(mut self, names: &[&str]) -> Self {
        assert_eq!(
            names.len(),
            self.index_set.dim(),
            "axis-name count mismatch"
        );
        self.axis_names = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Algorithm dimension `n`.
    pub fn dim(&self) -> usize {
        self.index_set.dim()
    }

    /// The dependence matrix `D`.
    pub fn dependence_matrix(&self) -> IMat {
        self.deps.matrix()
    }

    /// True if this is a *uniform dependence algorithm*.
    pub fn is_uniform(&self) -> bool {
        self.deps.all_uniform_over(&self.index_set)
    }

    /// Semantic equivalence of dependence structures over the shared index
    /// set (see [`DependenceSet::equivalent_over`]).
    pub fn same_dependence_behaviour(&self, other: &AlgorithmTriplet) -> bool {
        self.index_set == other.index_set && self.deps.equivalent_over(&other.deps, &self.index_set)
    }
}

impl fmt::Display for AlgorithmTriplet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "J = {}", self.index_set)?;
        writeln!(f, "E: {}", self.computation)?;
        write!(f, "{}", crate::display::annotated_dependence_table(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependence::Dependence;

    fn matmul_triplet() -> AlgorithmTriplet {
        AlgorithmTriplet::new(
            BoxSet::cube(3, 1, 3),
            DependenceSet::new(vec![
                Dependence::uniform([1, 0, 0], "y"),
                Dependence::uniform([0, 1, 0], "x"),
                Dependence::uniform([0, 0, 1], "z"),
            ]),
            "z(j) = z(j-d3) + x(j)y(j)",
        )
    }

    #[test]
    fn triplet_matches_eq_2_4() {
        let a = matmul_triplet();
        assert_eq!(a.dim(), 3);
        assert_eq!(a.dependence_matrix(), IMat::identity(3));
        assert!(a.is_uniform());
        assert_eq!(a.axis_names, vec!["j1", "j2", "j3"]);
    }

    #[test]
    fn with_axis_names() {
        let a = matmul_triplet().with_axis_names(&["j1", "j2", "j3"]);
        assert_eq!(a.axis_names[2], "j3");
    }

    #[test]
    #[should_panic(expected = "axis-name count")]
    fn wrong_axis_name_count_panics() {
        let _ = matmul_triplet().with_axis_names(&["a", "b"]);
    }

    #[test]
    fn same_dependence_behaviour_reflexive() {
        let a = matmul_triplet();
        assert!(a.same_dependence_behaviour(&a.clone()));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dependence_dimension_panics() {
        let _ = AlgorithmTriplet::new(
            BoxSet::cube(2, 1, 3),
            DependenceSet::new(vec![Dependence::uniform([1, 0, 0], "x")]),
            "",
        );
    }
}
