//! Enumerating lattice points inside a box.
//!
//! Both halves of the toolkit need the primitive "all points of an affine
//! lattice `x̄ = particular + L·t̄` that lie in a box":
//!
//! * the general dependence analyser intersects Diophantine solution lattices
//!   with `J × J` (the "verification" step of the classical method);
//! * the conflict checker of Definition 4.1 (condition 3) intersects the
//!   kernel lattice of the mapping matrix `T` with the difference box of `J`.
//!
//! The lattice basis is brought to column Hermite form first, which gives a
//! staircase: each parameter is bounded **exactly** by its pivot row once the
//! earlier parameters are fixed, so the DFS wastes no branches.

use crate::index_set::BoxSet;
use bitlevel_linalg::{column_hermite_form, IMat, IVec};

/// Enumerates all points `x̄ = particular + Σ tᵢ·lattice[i]` (tᵢ ∈ Z) inside
/// `box_`.
///
/// # Panics
/// Panics if the lattice vectors are not linearly independent (callers pass
/// bases produced by [`bitlevel_linalg::integer_nullspace`] or
/// [`bitlevel_linalg::solve_system`], which are).
pub fn enumerate_lattice_in_box(particular: &IVec, lattice: &[IVec], box_: &BoxSet) -> Vec<IVec> {
    if lattice.is_empty() {
        return if box_.contains(particular) {
            vec![particular.clone()]
        } else {
            vec![]
        };
    }
    let basis = IMat::from_columns(lattice);
    let hf = column_hermite_form(&basis);
    assert_eq!(
        hf.rank,
        lattice.len(),
        "lattice basis must be linearly independent"
    );
    let h = &hf.h;

    // Pivot row of each staircase column (strictly increasing).
    let pivots: Vec<usize> = (0..hf.rank)
        .map(|j| {
            (0..h.rows())
                .find(|&r| h[(r, j)] != 0)
                .expect("nonzero column")
        })
        .collect();

    let mut results = Vec::new();
    let mut current = particular.clone();
    dfs(h, &pivots, 0, &mut current, box_, &mut results);
    results
}

fn dfs(
    h: &IMat,
    pivots: &[usize],
    level: usize,
    current: &mut IVec,
    box_: &BoxSet,
    results: &mut Vec<IVec>,
) {
    if level == pivots.len() {
        if box_.contains(current) {
            results.push(current.clone());
        }
        return;
    }
    // Rows above this pivot are unaffected by columns ≥ level (staircase), so
    // the pivot row bounds t_level exactly.
    let pr = pivots[level];
    let coeff = h[(pr, level)];
    let lo = box_.lower()[pr] - current[pr];
    let hi = box_.upper()[pr] - current[pr];
    let (tmin, tmax) = if coeff > 0 {
        (div_ceil(lo, coeff), div_floor(hi, coeff))
    } else {
        (div_ceil(hi, coeff), div_floor(lo, coeff))
    };
    for t in tmin..=tmax {
        for r in 0..h.rows() {
            current[r] += h[(r, level)] * t;
        }
        // Rows before the next pivot are final; prune infeasible prefixes.
        let fixed_upto = if level + 1 < pivots.len() {
            pivots[level + 1]
        } else {
            h.rows()
        };
        let feasible =
            (0..fixed_upto).all(|r| current[r] >= box_.lower()[r] && current[r] <= box_.upper()[r]);
        if feasible {
            dfs(h, pivots, level + 1, current, box_, results);
        }
        for r in 0..h.rows() {
            current[r] -= h[(r, level)] * t;
        }
    }
}

fn div_floor(a: i64, b: i64) -> i64 {
    a.div_euclid(b)
}

fn div_ceil(a: i64, b: i64) -> i64 {
    -(-a).div_euclid(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_lattice_is_a_membership_test() {
        let b = BoxSet::cube(2, 0, 3);
        assert_eq!(
            enumerate_lattice_in_box(&IVec::from([1, 2]), &[], &b),
            vec![IVec::from([1, 2])]
        );
        assert!(enumerate_lattice_in_box(&IVec::from([9, 9]), &[], &b).is_empty());
    }

    #[test]
    fn one_dimensional_lattice() {
        let pts = enumerate_lattice_in_box(
            &IVec::from([0, 0]),
            &[IVec::from([1, 2])],
            &BoxSet::new(IVec::from([0, 0]), IVec::from([4, 4])),
        );
        assert_eq!(pts.len(), 3); // t = 0, 1, 2
        assert!(pts.contains(&IVec::from([2, 4])));
    }

    #[test]
    fn full_lattice_enumerates_whole_box() {
        let b = BoxSet::new(IVec::from([1, 1]), IVec::from([3, 2]));
        let pts = enumerate_lattice_in_box(
            &IVec::from([0, 0]),
            &[IVec::from([1, 0]), IVec::from([0, 1])],
            &b,
        );
        assert_eq!(pts.len() as u128, b.cardinality());
    }

    #[test]
    fn kernel_of_paper_mapping_matrix_misses_difference_box() {
        // Condition 3 for T of eq. (4.2) with p = 3, u = 3: the kernel lattice
        // of T must contain no nonzero vector of the difference box — this is
        // exactly how the conflict checker uses this module.
        let t = IMat::from_rows(&[&[3, 0, 0, 1, 0], &[0, 3, 0, 0, 1], &[1, 1, 1, 2, 1]]);
        let kernel = bitlevel_linalg::integer_nullspace(&t);
        let j = BoxSet::new(IVec::from([1, 1, 1, 1, 1]), IVec::from([3, 3, 3, 3, 3]));
        let hits = enumerate_lattice_in_box(&IVec::zeros(5), &kernel, &j.difference_box());
        assert_eq!(hits, vec![IVec::zeros(5)], "only the origin may survive");
    }

    proptest! {
        /// Brute-force cross-check on small instances: the enumeration equals
        /// filtering the box for membership in the lattice.
        #[test]
        fn prop_matches_bruteforce(
            base in proptest::collection::vec(-2i64..3, 3),
            dir in proptest::collection::vec(-3i64..4, 3),
        ) {
            let particular = IVec(base);
            let d = IVec(dir);
            prop_assume!(!d.is_zero());
            let b = BoxSet::new(IVec::from([-4, -4, -4]), IVec::from([4, 4, 4]));
            let mut expected: Vec<IVec> = (-20..=20)
                .map(|t| &particular + &d.scaled(t))
                .filter(|x| b.contains(x))
                .collect();
            expected.sort();
            expected.dedup();
            let mut got = enumerate_lattice_in_box(&particular, &[d], &b);
            got.sort();
            prop_assert_eq!(got, expected);
        }
    }
}
