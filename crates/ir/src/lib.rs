#![warn(missing_docs)]

//! # bitlevel-ir
//!
//! The intermediate representation shared by the whole reproduction of
//! Shang & Wah, *Dependence Analysis and Architecture Design for Bit-Level
//! Algorithms* (ICPP 1993):
//!
//! * [`index_set::BoxSet`] — rectangular iteration spaces (the paper's `J`),
//!   with the Cartesian product used by Theorem 3.1;
//! * [`affine::AffineFn`] — linear subscript functions of array accesses;
//! * [`predicate::Predicate`] — validity regions of conditional dependence
//!   vectors (`i₁ = 1`, `jₙ = uₙ`, `q̄₁`, …);
//! * [`dependence`] — (conditional) dependence vectors and dependence sets
//!   with semantic equivalence checking;
//! * [`statement`] — guarded single-assignment statements and loop nests,
//!   the program form consumed by the general dependence analyser;
//! * [`triplet::AlgorithmTriplet`] — the paper's `(J, D, E)` characterisation;
//! * [`broadcast`] — Fortes–Moldovan broadcast elimination (the (2.2)→(2.3)
//!   rewrite);
//! * [`wordlevel::WordLevelAlgorithm`] — the restricted model (3.5) with
//!   constructors for matmul, convolution, matvec, DCT, DFT;
//! * [`display`] — paper-style annotated dependence-matrix rendering.

pub mod affine;
pub mod broadcast;
pub mod dependence;
pub mod display;
pub mod index_set;
pub mod interpret;
pub mod lattice;
pub mod polyhedron;
pub mod predicate;
pub mod statement;
pub mod triplet;
pub mod wordlevel;

pub use affine::AffineFn;
pub use broadcast::{eliminate_broadcasts, is_broadcast_access, pipelining_direction};
pub use dependence::{DepKind, Dependence, DependenceSet};
pub use display::annotated_dependence_table;
pub use index_set::{BoxSet, RankError};
pub use interpret::{interpret, ValueStore};
pub use lattice::enumerate_lattice_in_box;
pub use polyhedron::Polyhedron;
pub use predicate::{Atom, Cmp, Predicate, Rhs};
pub use statement::{Access, LoopNest, OpKind, Statement};
pub use triplet::AlgorithmTriplet;
pub use wordlevel::WordLevelAlgorithm;
