//! A reference interpreter for single-assignment loop nests.
//!
//! Executes a [`LoopNest`] point by point (lexicographic order, statements in
//! program order), resolving reads either from earlier writes or from an
//! external-input function for accesses whose producer lies outside the nest
//! (boundary values and operand arrays). Its main job is semantic
//! ground-truthing: e.g. proving that Fortes–Moldovan broadcast elimination
//! ((2.2) → (2.3)) preserves the computed values, or that the expanded
//! bit-level code of `bitlevel-depanal` computes what the word-level code
//! does.
//!
//! ## Operation semantics
//!
//! Values are `i64`. The [`OpKind`]s are interpreted as the nests in this
//! workspace use them:
//!
//! * `Copy` — the single input;
//! * `MulAdd` — `in₀ + in₁·in₂` (accumulator first, then the two factors);
//! * `SumBit`/`CarryBit` with **3** inputs — plain 3-way bit addition
//!   (ripple-adder convention); with **4** inputs — `in₀∧in₁ + in₂ + in₃`
//!   (multiplier-cell convention: the first two operands form the partial
//!   product);
//! * `WideAddOutput(k)` — bit `k` of the same sum extended over all inputs;
//! * `Other` — not executable; the interpreter panics.

use crate::statement::{LoopNest, OpKind};
use bitlevel_linalg::IVec;
use std::collections::HashMap;

/// The value store produced by interpretation: `(array, subscript) → value`.
pub type ValueStore = HashMap<(String, IVec), i64>;

/// Interprets `nest`, pulling unwritten reads from `external`.
///
/// # Panics
/// Panics on a statement with [`OpKind::Other`], on a `Copy` without exactly
/// one input, or on single-assignment violations.
pub fn interpret(nest: &LoopNest, external: &dyn Fn(&str, &IVec) -> i64) -> ValueStore {
    let set = &nest.bounds;
    let mut store: ValueStore = HashMap::new();
    for q in set.iter_points() {
        for s in &nest.statements {
            if !s.guard.eval(&q, set) {
                continue;
            }
            let inputs: Vec<i64> = s
                .inputs
                .iter()
                .map(|a| {
                    let key = (a.array.clone(), a.func.apply(&q));
                    store
                        .get(&key)
                        .copied()
                        .unwrap_or_else(|| external(&key.0, &key.1))
                })
                .collect();
            let value = eval_op(&s.op, &inputs);
            let key = (s.target.array.clone(), s.target.func.apply(&q));
            let prev = store.insert(key.clone(), value);
            assert!(
                prev.is_none(),
                "single-assignment violated at {}({})",
                key.0,
                key.1
            );
        }
    }
    store
}

fn eval_op(op: &OpKind, inputs: &[i64]) -> i64 {
    match op {
        OpKind::Copy => {
            assert_eq!(inputs.len(), 1, "Copy expects one input");
            inputs[0]
        }
        OpKind::MulAdd => {
            assert_eq!(inputs.len(), 3, "MulAdd expects [acc, x, y]");
            inputs[0] + inputs[1] * inputs[2]
        }
        OpKind::SumBit => bit_sum(inputs) & 1,
        OpKind::CarryBit => (bit_sum(inputs) >> 1) & 1,
        OpKind::WideAddOutput(k) => (bit_sum(inputs) >> k) & 1,
        OpKind::Other(what) => panic!("cannot interpret opaque operation {what:?}"),
    }
}

/// The summed-bits convention (module docs): 3 inputs add directly, 4+ treat
/// the first two as a partial product.
fn bit_sum(inputs: &[i64]) -> i64 {
    for &b in inputs {
        assert!(b == 0 || b == 1, "bit operation on non-bit value {b}");
    }
    match inputs {
        [a, b, rest @ ..] if inputs.len() >= 4 => (a & b) + rest.iter().sum::<i64>(),
        _ => inputs.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineFn;
    use crate::broadcast::eliminate_broadcasts;
    use crate::index_set::BoxSet;
    use crate::statement::{Access, Statement};
    use crate::wordlevel::WordLevelAlgorithm;

    /// Program (2.2): matmul with broadcasts (reads x(j1,j3), y(j3,j2)).
    fn matmul_broadcast_nest(u: i64) -> LoopNest {
        LoopNest::new(
            BoxSet::cube(3, 1, u),
            vec![Statement::new(
                Access::new("z", AffineFn::identity(3)),
                vec![
                    Access::new("z", AffineFn::shift_back(&IVec::from([0, 0, 1]))),
                    Access::new("x", AffineFn::select_axes(3, &[0, 2])),
                    Access::new("y", AffineFn::select_axes(3, &[2, 1])),
                ],
                OpKind::MulAdd,
            )],
        )
    }

    fn xv(i: i64, k: i64) -> i64 {
        3 * i + k
    }
    fn yv(k: i64, j: i64) -> i64 {
        2 * k + 5 * j
    }

    #[test]
    fn broadcast_elimination_preserves_matmul_semantics() {
        let u = 3;
        let before = matmul_broadcast_nest(u);
        let after = eliminate_broadcasts(&before).nest;

        // (2.2) external inputs: x(j1, j3), y(j3, j2), z(·,·,0) = 0.
        let ext_before = |arr: &str, idx: &IVec| match arr {
            "x" => xv(idx[0], idx[1]),
            "y" => yv(idx[0], idx[1]),
            "z" => 0,
            _ => unreachable!(),
        };
        // (2.3) externals: the pipelined x enters at j2 = 0, y at j1 = 0.
        let ext_after = |arr: &str, idx: &IVec| match arr {
            "x" => {
                assert_eq!(idx[1], 0, "x must enter on the j2 = 0 face");
                xv(idx[0], idx[2])
            }
            "y" => {
                assert_eq!(idx[0], 0, "y must enter on the j1 = 0 face");
                yv(idx[2], idx[1])
            }
            "z" => 0,
            _ => unreachable!(),
        };

        let vb = interpret(&before, &ext_before);
        let va = interpret(&after, &ext_after);
        for j1 in 1..=u {
            for j2 in 1..=u {
                let want: i64 = (1..=u).map(|k| xv(j1, k) * yv(k, j2)).sum();
                let key = ("z".to_string(), IVec::from([j1, j2, u]));
                assert_eq!(vb[&key], want, "broadcast form");
                assert_eq!(va[&key], want, "pipelined form");
            }
        }
    }

    #[test]
    fn word_level_model_nest_computes_the_recurrence() {
        let word = WordLevelAlgorithm::matmul(2);
        let nest = word.nest();
        let ext = |arr: &str, idx: &IVec| match arr {
            "x" => xv(idx[0], idx[2]),
            "y" => yv(idx[2], idx[1]),
            "z" => 0,
            _ => unreachable!(),
        };
        let values = interpret(&nest, &ext);
        let key = ("z".to_string(), IVec::from([2, 1, 2]));
        let want: i64 = (1..=2).map(|k| xv(2, k) * yv(k, 1)).sum();
        assert_eq!(values[&key], want);
    }

    #[test]
    fn addshift_nest_interprets_to_the_literal_product() {
        // The broadcast-free add-shift nest (3.3) under the interpreter must
        // reproduce the paper-literal multiplier bit for bit (the nest has
        // no carry re-entry statement — that is the documented deviation).
        use bitlevel_arith_free::to_bits_free;
        let p = 3usize;
        let (a, b) = (5u128, 6u128);
        let nest = addshift_nest(p);
        let abits = to_bits_free(a, p);
        let bbits = to_bits_free(b, p);
        let ext = move |arr: &str, idx: &IVec| match arr {
            // a enters on the i1 = 0 face (bit index i2), b on i2 = 0.
            "a" => abits[(idx[1] - 1) as usize] as i64,
            "b" => bbits[(idx[0] - 1) as usize] as i64,
            "c" | "s" => 0,
            _ => unreachable!(),
        };
        let values = interpret(&nest, &ext);
        // Assemble s_i = s(i,1), s_{p+i} = s(p, i+1) per eq. (3.1).
        let mut result = 0u128;
        for i in 1..=p as i64 {
            result |= (values[&("s".to_string(), IVec::from([i, 1]))] as u128) << (i - 1);
        }
        for i in (p as i64 + 1)..=(2 * p as i64 - 1) {
            let v = values[&("s".to_string(), IVec::from([p as i64, i - p as i64 + 1]))];
            result |= (v as u128) << (i - 1);
        }
        // 5 × 6 = 30 generates no row-end carries, so even the literal
        // semantics are exact here.
        assert_eq!(result, 30);
    }

    /// Local copy of the add-shift nest builder (mirrors
    /// `bitlevel_arith::AddShift::nest`, which this crate cannot depend on).
    fn addshift_nest(p: usize) -> LoopNest {
        let n = 2;
        let inputs = || {
            vec![
                Access::new("a", AffineFn::identity(n)),
                Access::new("b", AffineFn::identity(n)),
                Access::new("c", AffineFn::shift_back(&IVec::from([0, 1]))),
                Access::new("s", AffineFn::shift_back(&IVec::from([1, -1]))),
            ]
        };
        LoopNest::new(
            BoxSet::cube(2, 1, p as i64),
            vec![
                Statement::pipeline("a", n, &IVec::from([1, 0])),
                Statement::pipeline("b", n, &IVec::from([0, 1])),
                Statement::new(
                    Access::new("c", AffineFn::identity(n)),
                    inputs(),
                    OpKind::CarryBit,
                ),
                Statement::new(
                    Access::new("s", AffineFn::identity(n)),
                    inputs(),
                    OpKind::SumBit,
                ),
            ],
        )
    }

    /// Tiny local bit helper (this crate does not depend on bitlevel-arith).
    mod bitlevel_arith_free {
        pub fn to_bits_free(x: u128, width: usize) -> Vec<bool> {
            (0..width).map(|k| (x >> k) & 1 == 1).collect()
        }
    }

    #[test]
    #[should_panic(expected = "cannot interpret opaque")]
    fn opaque_ops_refuse_interpretation() {
        let nest = LoopNest::new(
            BoxSet::cube(1, 1, 1),
            vec![Statement::new(
                Access::new("t", AffineFn::identity(1)),
                vec![],
                OpKind::Other("mystery".into()),
            )],
        );
        let _ = interpret(&nest, &|_, _| 0);
    }

    #[test]
    fn guarded_statements_only_run_where_guarded() {
        use crate::predicate::Predicate;
        let nest = LoopNest::new(
            BoxSet::cube(1, 1, 3),
            vec![Statement::guarded(
                Access::new("t", AffineFn::identity(1)),
                vec![Access::new("u", AffineFn::identity(1))],
                OpKind::Copy,
                Predicate::eq_upper(0),
            )],
        );
        let values = interpret(&nest, &|_, idx| 10 * idx[0]);
        assert_eq!(values.len(), 1);
        assert_eq!(values[&("t".to_string(), IVec::from([3]))], 30);
    }
}
