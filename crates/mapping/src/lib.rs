#![warn(missing_docs)]

//! # bitlevel-mapping
//!
//! The linear algorithm-transformation framework of Section 4 (Definition
//! 4.1, after Shang & Fortes [5,6] and Ganapathy & Wah [10]): mapping an
//! `n`-dimensional algorithm `(J, D, E)` onto a `(k−1)`-dimensional processor
//! array by `τ(j̄) = T·j̄`, `T = [S; Π]`.
//!
//! * [`transform::MappingMatrix`] — the space–time mapping itself;
//! * [`feasibility`] — the five conditions of Definition 4.1;
//! * [`interconnect`] — interconnection primitives `P`, the `SD = PK` routing
//!   solver under the timing budget (4.1), and buffer derivation;
//! * [`conflict`] — condition 3 via kernel-lattice enumeration;
//! * [`schedule`] — the execution-time formula (4.5), processor counting,
//!   and the rayon-parallel search for time-optimal schedules (Theorem 4.5);
//! * [`designs`] — the paper's two concrete matmul architectures (Figs. 4–5)
//!   and the Section 4.2 word-level comparator in closed form;
//! * [`explore`] — the Pareto design-space explorer over `(S, Π, machine)`
//!   with branch-and-bound pruning;
//! * [`error`] — typed errors for the `try_*` variants of the panicking
//!   entry points.

pub mod conflict;
pub mod designs;
pub mod error;
pub mod explore;
pub mod feasibility;
pub mod interconnect;
pub mod lowerdim;
pub mod polyhedral;
pub mod schedule;
pub mod transform;

pub use conflict::{check_conflicts, check_conflicts_bruteforce, ConflictResult};
pub use designs::{speedup, word_level_total_time, PaperDesign};
pub use error::MappingError;
pub use explore::{
    explore, generate_space_family, Exploration, ExploreConfig, ExploreStats, FrontierPoint,
    MachineOption,
};
pub use feasibility::{check_feasibility, FeasibilityReport, Violation};
pub use interconnect::{Interconnect, KSolution, Routing};
pub use lowerdim::{find_linear_array_mapping, linear_interconnect, LinearArrayDesign};
pub use polyhedral::{
    check_conflicts_polyhedral, find_optimal_schedule_polyhedral, processor_count_polyhedral,
    total_time_polyhedral,
};
pub use schedule::{
    dependence_only_bound, find_optimal_schedule, find_optimal_schedule_bestfirst, processor_count,
    total_time, try_dependence_only_bound, try_find_optimal_schedule,
    try_find_optimal_schedule_bestfirst, try_total_time, OptimalSchedule, MAX_SEARCH_CANDIDATES,
};
pub use transform::MappingMatrix;
