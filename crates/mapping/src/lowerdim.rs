//! Lower-dimensional array synthesis.
//!
//! The design method the paper builds on — Shang & Fortes [5,6] and
//! Ganapathy & Wah [10] — is explicitly about mapping `n`-dimensional
//! algorithms onto **lower-dimensional** processor arrays ("Conflict-Free
//! Scheduling of Nested Loop Algorithms on Lower Dimensional Processor
//! Arrays", "Synthesizing Optimal Lower Dimensional Processor Arrays").
//! Definition 4.1 already supports any `k`; this module adds the missing
//! search: jointly exploring space mappings `S ∈ Z^{1×n}` and schedules `Π`
//! to synthesise **linear (1-D) arrays** for a bit-level structure.
//!
//! The search enumerates sign-normalised primitive `S` candidates within an
//! entry bound, and for each runs the schedule search of
//! [`crate::schedule::find_optimal_schedule`]; candidates are screened
//! cheaply (nonzero, coprime, at least two distinct processor images) before
//! the full Definition 4.1 machinery runs. Work is rayon-parallel across
//! `S` candidates.

use crate::interconnect::Interconnect;
use crate::schedule::{find_optimal_schedule, processor_count};
use crate::transform::MappingMatrix;
use bitlevel_ir::AlgorithmTriplet;
use bitlevel_linalg::{gcd_all, IMat, IVec};
use rayon::prelude::*;

/// A synthesised lower-dimensional design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearArrayDesign {
    /// The full mapping `T = [S; Π]` (S is 1×n).
    pub mapping: MappingMatrix,
    /// Total execution time (4.5).
    pub time: i64,
    /// Number of processors in the linear array.
    pub processors: usize,
    /// Space-mapping candidates examined.
    pub candidates_examined: usize,
}

/// Searches for the fastest feasible **linear array** mapping of `alg` on
/// machine `ic` (a 1-D interconnect), with `|S| ≤ s_bound` entries and
/// `|Π| ≤ pi_bound`. Ties in time are broken by fewer processors, then
/// lexicographically smallest `S`.
///
/// Returns `None` if nothing within the bounds satisfies Definition 4.1.
pub fn find_linear_array_mapping(
    alg: &AlgorithmTriplet,
    ic: &Interconnect,
    s_bound: i64,
    pi_bound: i64,
) -> Option<LinearArrayDesign> {
    assert_eq!(
        ic.dim(),
        1,
        "linear-array synthesis needs a 1-D interconnect"
    );
    assert!(s_bound >= 1 && pi_bound >= 1, "bounds must be positive");
    let n = alg.dim();

    // Enumerate sign-normalised S candidates: first nonzero entry positive,
    // entries coprime, not all zero.
    let mut candidates: Vec<IVec> = Vec::new();
    let range: Vec<i64> = (-s_bound..=s_bound).collect();
    let total = crate::schedule::candidate_count(range.len(), n as u32);
    let mut idx = vec![0usize; n];
    for _ in 0..total {
        let s = IVec(idx.iter().map(|&i| range[i]).collect());
        let first_nonzero = s.iter().find(|&&x| x != 0);
        let normalised = matches!(first_nonzero, Some(&x) if x > 0);
        if normalised && gcd_all(s.as_slice()) == 1 {
            candidates.push(s);
        }
        for slot in (0..n).rev() {
            idx[slot] += 1;
            if idx[slot] < range.len() {
                break;
            }
            idx[slot] = 0;
        }
    }
    let examined = candidates.len();

    let best = candidates
        .into_par_iter()
        .filter_map(|s_row| {
            let space = IMat::from_flat(1, n, s_row.as_slice().to_vec());
            // Cheap screen: a useful array has more than one processor.
            let procs = processor_count(&space, &alg.index_set);
            if procs < 2 {
                return None;
            }
            let found = find_optimal_schedule(&space, alg, ic, pi_bound)?;
            Some(LinearArrayDesign {
                mapping: MappingMatrix::new(space, found.pi),
                time: found.time,
                processors: procs,
                candidates_examined: 0, // filled in below
            })
        })
        .min_by(|a, b| {
            (a.time, a.processors, a.mapping.space.row(0).to_vec()).cmp(&(
                b.time,
                b.processors,
                b.mapping.space.row(0).to_vec(),
            ))
        });

    best.map(|mut d| {
        d.candidates_examined = examined;
        d
    })
}

/// A 1-D machine: east/west unit links plus a static link (and optionally a
/// long wire of length `stride` in both directions).
pub fn linear_interconnect(stride: Option<i64>) -> Interconnect {
    match stride {
        None => Interconnect::new(IMat::from_rows(&[&[1, -1, 0]])),
        Some(k) => Interconnect::new(IMat::from_rows(&[&[1, -1, 0, k, -k]])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_ir::{BoxSet, Dependence, DependenceSet, Predicate};

    fn matmul_bitlevel(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul, Expansion II",
        )
    }

    #[test]
    fn known_linear_design_for_small_matmul_is_feasible() {
        // Found by find_linear_array_mapping with s_bound = 2, pi_bound = 3
        // (the full search runs in experiment E10; too slow for a debug-mode
        // unit test): S = [0,1,2,−2,−1], Π = [1,1,2,2,1] on the stride-2
        // linear machine — 8 cycles on 7 PEs for |J| = 32.
        let alg = matmul_bitlevel(2, 2);
        let ic = linear_interconnect(Some(2));
        let t = MappingMatrix::new(
            IMat::from_rows(&[&[0, 1, 2, -2, -1]]),
            IVec::from([1, 1, 2, 2, 1]),
        );
        let rep = crate::feasibility::check_feasibility(&t, &alg, &ic);
        assert!(rep.is_feasible(), "{:?}", rep.violations);
        assert_eq!(crate::schedule::total_time(&t.schedule, &alg.index_set), 8);
        assert_eq!(processor_count(&t.space, &alg.index_set), 7);
        // Work bound (time·PEs ≥ |J| = 32) and the dimension trade-off
        // (slower than the 7-cycle 2-D design) hold: 8·7 = 56 ≥ 32, 8 > 7.
    }

    #[test]
    fn tight_bounds_find_nothing_for_bitlevel_matmul() {
        // With |S| ≤ 1 no conflict-free + routable linear design exists for
        // the 5-D structure (the kernel of any such T hits the ±1 difference
        // cube); the search must report that honestly.
        let alg = matmul_bitlevel(2, 2);
        let ic = linear_interconnect(Some(2));
        assert!(find_linear_array_mapping(&alg, &ic, 1, 2).is_none());
    }

    #[test]
    fn no_design_within_tiny_bounds_reports_none() {
        let alg = matmul_bitlevel(2, 2);
        // Machine with only a static link: nothing can move; every nonzero
        // S·d̄ is unroutable, so no feasible design exists.
        let ic = Interconnect::new(IMat::from_rows(&[&[0]]));
        assert!(find_linear_array_mapping(&alg, &ic, 1, 2).is_none());
    }

    #[test]
    fn word_level_matmul_has_classic_linear_array() {
        // The 3-D word-level matmul maps onto a linear array (a classic
        // result of the mapping literature): verify one is found and legal.
        let alg = bitlevel_ir::WordLevelAlgorithm::matmul(3).triplet();
        let ic = linear_interconnect(None);
        let design = find_linear_array_mapping(&alg, &ic, 1, 2).expect("classic design");
        let rep = crate::feasibility::check_feasibility(&design.mapping, &alg, &ic);
        assert!(rep.is_feasible());
        // u³ = 27 computations: work bound again.
        assert!(design.time as usize * design.processors >= 27);
    }
}
