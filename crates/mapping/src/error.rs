//! Typed errors for the mapping crate's public API.
//!
//! Mirrors the systolic crate's `try_compile`/`CompileError` pattern: every
//! panicking entry point gains a `try_*` variant returning [`MappingError`],
//! and the original stays as a thin wrapper for callers that prefer to panic
//! on caller bugs.

use std::fmt;

/// Why a mapping-crate operation could not be carried out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// Two objects that must agree on a dimension do not. `what` names the
    /// pair in `left/right` order (e.g. `"space/schedule"`).
    DimensionMismatch {
        /// Which pair of objects disagrees.
        what: &'static str,
        /// Dimension of the first object.
        left: usize,
        /// Dimension of the second object.
        right: usize,
    },
    /// A search bound that must be at least 1 was zero or negative.
    NonPositiveBound {
        /// The offending bound.
        bound: i64,
    },
    /// The candidate space of a search exceeds
    /// [`crate::schedule::MAX_SEARCH_CANDIDATES`] and would never finish
    /// (this is also where `usize` counts used to overflow).
    SearchSpaceTooLarge {
        /// Exact candidate count (saturated at `u128::MAX`).
        candidates: u128,
        /// The enforced maximum.
        max: u128,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::DimensionMismatch { what, left, right } => {
                write!(f, "{what} dimension mismatch: {left} vs {right}")
            }
            MappingError::NonPositiveBound { bound } => {
                write!(f, "search bound must be positive, got {bound}")
            }
            MappingError::SearchSpaceTooLarge { candidates, max } => {
                write!(
                    f,
                    "search space of {candidates} candidates exceeds the supported maximum {max}"
                )
            }
        }
    }
}

impl std::error::Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_the_historic_assert_wording() {
        // Wrappers panic with these messages; existing `should_panic`
        // expectations match on the "dimension mismatch" fragment.
        let e = MappingError::DimensionMismatch {
            what: "space/schedule",
            left: 3,
            right: 2,
        };
        assert_eq!(e.to_string(), "space/schedule dimension mismatch: 3 vs 2");
        let e = MappingError::NonPositiveBound { bound: 0 };
        assert!(e.to_string().contains("must be positive"));
        let e = MappingError::SearchSpaceTooLarge {
            candidates: 1 << 100,
            max: 1 << 42,
        };
        assert!(e.to_string().contains("exceeds"));
    }
}
