//! Execution time, and the search for time-optimal linear schedules.
//!
//! The total execution time of a mapping (eq. (4.5)) is
//! `t = max{ Π(q̄₁ − q̄₂) : q̄₁, q̄₂ ∈ J } + 1`, which over a box index set is
//! `Σᵢ |πᵢ|·(uᵢ − lᵢ) + 1`. Theorem 4.5 asserts that `Π = [1,1,1,2,1]` is
//! **time optimal** for the bit-level matmul structure (3.12) with the space
//! mapping `S` of (4.2); [`find_optimal_schedule`] reproduces that claim by
//! exhaustive search over bounded schedule vectors (rayon-parallel — the
//! search space is `(2B+1)ⁿ`).
//!
//! All candidate counts are computed in `u128` (the `(2B+1)ⁿ` products
//! overflow `usize` long before a search becomes infeasible to *run*), and
//! searches whose candidate space exceeds [`MAX_SEARCH_CANDIDATES`] are
//! rejected up front with a typed error instead of spinning forever.

use crate::error::MappingError;
use crate::feasibility::check_feasibility;
use crate::interconnect::Interconnect;
use crate::transform::MappingMatrix;
use bitlevel_ir::{AlgorithmTriplet, BoxSet};
use bitlevel_linalg::{IMat, IVec};
use rayon::prelude::*;

/// Hard cap on enumerable schedule-search spaces. `(2B+1)ⁿ` candidates above
/// this would take years to walk; `try_find_optimal_schedule` returns
/// [`MappingError::SearchSpaceTooLarge`] instead of hanging (and instead of
/// the `usize::pow` overflow the count used to hit first).
pub const MAX_SEARCH_CANDIDATES: u128 = 1 << 42;

/// `per_axis^axes` in `u128`, saturating at `u128::MAX` — candidate counts
/// must never wrap, whatever the bound and dimension.
pub(crate) fn candidate_count(per_axis: usize, axes: u32) -> u128 {
    (per_axis as u128).checked_pow(axes).unwrap_or(u128::MAX)
}

/// Clamp a box cardinality to a sane hash preallocation: the `u128`
/// cardinality of a box can exceed `usize` on 32-bit targets, and even where
/// it fits, preallocating gigabytes for a set we may never fill is an OOM
/// footgun. The hash grows on demand past the cap.
pub(crate) fn clamped_capacity(cardinality: u128) -> usize {
    const CAP: usize = 1 << 16;
    cardinality.min(CAP as u128) as usize
}

/// Total execution time of schedule `pi` over box `j` (eq. (4.5)):
/// `Σ |πᵢ|·(uᵢ − lᵢ) + 1`.
///
/// # Panics
/// Panics if `pi` and `j` disagree on the dimension; [`try_total_time`] is
/// the non-panicking variant.
pub fn total_time(pi: &IVec, j: &BoxSet) -> i64 {
    try_total_time(pi, j).unwrap_or_else(|e| panic!("{e}"))
}

/// [`total_time`] with a typed error instead of a panic on dimension
/// mismatch.
pub fn try_total_time(pi: &IVec, j: &BoxSet) -> Result<i64, MappingError> {
    if pi.dim() != j.dim() {
        return Err(MappingError::DimensionMismatch {
            what: "schedule/index",
            left: pi.dim(),
            right: j.dim(),
        });
    }
    Ok((0..j.dim()).map(|i| pi[i].abs() * j.extent(i)).sum::<i64>() + 1)
}

/// Number of processors used: `|{S·q̄ : q̄ ∈ J}|`.
///
/// Enumerates the image (exact); the paper's closed forms (`u²p²` for both
/// Section 4 designs) are checked against this in tests.
pub fn processor_count(space: &IMat, j: &BoxSet) -> usize {
    let mut seen: std::collections::HashSet<IVec> =
        std::collections::HashSet::with_capacity(clamped_capacity(j.cardinality()));
    for q in j.iter_points() {
        seen.insert(space.matvec(&q));
    }
    seen.len()
}

/// Outcome of a schedule search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimalSchedule {
    /// The winning schedule vector.
    pub pi: IVec,
    /// Its total execution time (4.5).
    pub time: i64,
    /// How many candidate vectors were feasible.
    pub feasible_count: usize,
    /// How many candidate vectors were examined (`(2B+1)ⁿ` — counted in
    /// `u128` because the product overflows `usize` for large bounds).
    pub examined: u128,
}

/// Exhaustively searches `Π ∈ [−bound, bound]ⁿ` for the schedule minimising
/// [`total_time`] subject to **all five** conditions of Definition 4.1 with
/// the given fixed space mapping `S` and primitives `ic`.
///
/// Ties are broken toward the lexicographically smallest vector, making the
/// result deterministic. The outer axis is searched in parallel with rayon.
///
/// Returns `None` when no feasible schedule exists within the bound.
///
/// # Panics
/// Panics on a non-positive bound, a space/algorithm dimension mismatch, or
/// a candidate space above [`MAX_SEARCH_CANDIDATES`];
/// [`try_find_optimal_schedule`] reports those as typed errors instead.
pub fn find_optimal_schedule(
    space: &IMat,
    alg: &AlgorithmTriplet,
    ic: &Interconnect,
    bound: i64,
) -> Option<OptimalSchedule> {
    try_find_optimal_schedule(space, alg, ic, bound).unwrap_or_else(|e| panic!("{e}"))
}

/// [`find_optimal_schedule`] with typed errors: `Ok(None)` means the search
/// ran and found nothing feasible; `Err` means it could not run at all.
pub fn try_find_optimal_schedule(
    space: &IMat,
    alg: &AlgorithmTriplet,
    ic: &Interconnect,
    bound: i64,
) -> Result<Option<OptimalSchedule>, MappingError> {
    let n = alg.dim();
    let (range, examined) = search_range(space.cols(), n, bound)?;
    let per_axis = range.len();
    let inner: u128 = candidate_count(per_axis, (n - 1) as u32);
    let d = alg.dependence_matrix();

    let best = range
        .par_iter()
        .map(|&first| {
            let mut local_best: Option<(i64, IVec)> = None;
            let mut feasible = 0usize;
            // Odometer over the remaining n-1 axes.
            let mut idx = vec![0usize; n - 1];
            for _ in 0..inner {
                let mut pi = IVec::zeros(n);
                pi[0] = first;
                for (a, &ix) in idx.iter().enumerate() {
                    pi[a + 1] = range[ix];
                }
                // Cheap necessary screen first: Π·D > 0 before the full check.
                let ok1 = (0..d.cols()).all(|c| d.col(c).dot(&pi) > 0);
                if ok1 {
                    let t = MappingMatrix::new(space.clone(), pi.clone());
                    if check_feasibility(&t, alg, ic).is_feasible() {
                        feasible += 1;
                        let time = total_time(&pi, &alg.index_set);
                        let better = match &local_best {
                            None => true,
                            Some((bt, bpi)) => time < *bt || (time == *bt && pi < *bpi),
                        };
                        if better {
                            local_best = Some((time, pi));
                        }
                    }
                }
                // Advance odometer.
                for slot in (0..n - 1).rev() {
                    idx[slot] += 1;
                    if idx[slot] < per_axis {
                        break;
                    }
                    idx[slot] = 0;
                }
            }
            (local_best, feasible)
        })
        .reduce(
            || (None, 0),
            |(a, fa), (b, fb)| {
                let merged = match (a, b) {
                    (None, b) => b,
                    (a, None) => a,
                    (Some((ta, pa)), Some((tb, pb))) => {
                        if tb < ta || (tb == ta && pb < pa) {
                            Some((tb, pb))
                        } else {
                            Some((ta, pa))
                        }
                    }
                };
                (merged, fa + fb)
            },
        );

    Ok(best.0.map(|(time, pi)| OptimalSchedule {
        pi,
        time,
        feasible_count: best.1,
        examined,
    }))
}

/// Validates a schedule search's inputs and returns the per-axis range plus
/// the exact `u128` candidate count. Shared by both search strategies.
fn search_range(space_cols: usize, n: usize, bound: i64) -> Result<(Vec<i64>, u128), MappingError> {
    if bound < 1 {
        return Err(MappingError::NonPositiveBound { bound });
    }
    if space_cols != n {
        return Err(MappingError::DimensionMismatch {
            what: "space/algorithm",
            left: space_cols,
            right: n,
        });
    }
    let range: Vec<i64> = (-bound..=bound).collect();
    let candidates = candidate_count(range.len(), n as u32);
    if candidates > MAX_SEARCH_CANDIDATES {
        return Err(MappingError::SearchSpaceTooLarge {
            candidates,
            max: MAX_SEARCH_CANDIDATES,
        });
    }
    Ok((range, candidates))
}

/// Best-first variant of [`find_optimal_schedule`]: sorts all candidate
/// schedules by `(total_time, lexicographic)` and returns the **first** one
/// passing the full Definition 4.1 check — provably the same optimum, but
/// the expensive feasibility machinery only runs until the first hit instead
/// of over every candidate. Prefer this when feasible schedules are common;
/// prefer the exhaustive search when you also want the feasible count.
///
/// # Panics
/// Same contract as [`find_optimal_schedule`];
/// [`try_find_optimal_schedule_bestfirst`] is the typed-error variant.
pub fn find_optimal_schedule_bestfirst(
    space: &IMat,
    alg: &AlgorithmTriplet,
    ic: &Interconnect,
    bound: i64,
) -> Option<OptimalSchedule> {
    try_find_optimal_schedule_bestfirst(space, alg, ic, bound).unwrap_or_else(|e| panic!("{e}"))
}

/// [`find_optimal_schedule_bestfirst`] with typed errors.
pub fn try_find_optimal_schedule_bestfirst(
    space: &IMat,
    alg: &AlgorithmTriplet,
    ic: &Interconnect,
    bound: i64,
) -> Result<Option<OptimalSchedule>, MappingError> {
    let n = alg.dim();
    let (range, examined) = search_range(space.cols(), n, bound)?;
    let d = alg.dependence_matrix();

    // Enumerate candidates passing the cheap condition-1 screen, tagged with
    // their closed-form time.
    let mut candidates: Vec<(i64, IVec)> = Vec::new();
    let mut idx = vec![0usize; n];
    for _ in 0..examined {
        let pi = IVec(idx.iter().map(|&i| range[i]).collect());
        if (0..d.cols()).all(|c| d.col(c).dot(&pi) > 0) {
            candidates.push((total_time(&pi, &alg.index_set), pi));
        }
        for slot in (0..n).rev() {
            idx[slot] += 1;
            if idx[slot] < range.len() {
                break;
            }
            idx[slot] = 0;
        }
    }
    candidates.sort();

    for (checked, (time, pi)) in candidates.into_iter().enumerate() {
        let t = MappingMatrix::new(space.clone(), pi.clone());
        if check_feasibility(&t, alg, ic).is_feasible() {
            return Ok(Some(OptimalSchedule {
                pi,
                time,
                feasible_count: checked + 1, // full checks performed, not total feasible
                examined,
            }));
        }
    }
    Ok(None)
}

/// A faster lower bound: the best time over schedules satisfying only
/// condition 1 (`Π·D > 0`), ignoring routing and conflicts. Useful to show a
/// found schedule is truly optimal (matching lower bound) or to quantify the
/// cost of conditions 2–5.
///
/// # Panics
/// Panics when the candidate space exceeds [`MAX_SEARCH_CANDIDATES`];
/// [`try_dependence_only_bound`] reports that as a typed error.
pub fn dependence_only_bound(alg: &AlgorithmTriplet, bound: i64) -> Option<i64> {
    try_dependence_only_bound(alg, bound).unwrap_or_else(|e| panic!("{e}"))
}

/// [`dependence_only_bound`] with typed errors.
pub fn try_dependence_only_bound(
    alg: &AlgorithmTriplet,
    bound: i64,
) -> Result<Option<i64>, MappingError> {
    let n = alg.dim();
    let (range, total) = search_range(n, n, bound)?;
    let d = alg.dependence_matrix();
    let mut best: Option<i64> = None;
    let mut idx = vec![0usize; n];
    for _ in 0..total {
        let pi = IVec(idx.iter().map(|&ix| range[ix]).collect());
        if (0..d.cols()).all(|c| d.col(c).dot(&pi) > 0) {
            let t = total_time(&pi, &alg.index_set);
            best = Some(best.map_or(t, |b: i64| b.min(t)));
        }
        for slot in (0..n).rev() {
            idx[slot] += 1;
            if idx[slot] < range.len() {
                break;
            }
            idx[slot] = 0;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_ir::{Dependence, DependenceSet, Predicate};

    fn matmul_bitlevel(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul, Expansion II",
        )
    }

    #[test]
    fn total_time_matches_eq_4_5() {
        // Π = [1,1,1,2,1] over J = [1,u]³ × [1,p]²:
        // t = 3(u−1) + 2(p−1) + (p−1) + 1 = 3(u−1) + 3(p−1) + 1.
        for (u, p) in [(3i64, 3i64), (5, 4), (10, 8)] {
            let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
            let pi = IVec::from([1, 1, 1, 2, 1]);
            assert_eq!(total_time(&pi, &j), 3 * (u - 1) + 3 * (p - 1) + 1);
        }
    }

    #[test]
    fn try_total_time_reports_dimension_mismatch() {
        let j = BoxSet::cube(3, 1, 2);
        let pi = IVec::from([1, 1]);
        assert_eq!(
            try_total_time(&pi, &j),
            Err(MappingError::DimensionMismatch {
                what: "schedule/index",
                left: 2,
                right: 3
            })
        );
    }

    #[test]
    fn t_prime_time_formula() {
        // Π' = [p,p,1,2,1]: t' = (2p+1)(u−1) + 3(p−1) + 1. (The paper prints
        // (2p−1)(u−1)+3(p−1)+1 for eq. (4.8), inconsistent with its own
        // Π'·(ū−l̄) expansion — see EXPERIMENTS.md.)
        for (u, p) in [(3i64, 3i64), (5, 4)] {
            let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
            let pi = IVec::from([p, p, 1, 2, 1]);
            assert_eq!(total_time(&pi, &j), (2 * p + 1) * (u - 1) + 3 * (p - 1) + 1);
        }
    }

    #[test]
    fn processor_count_is_u2p2_for_paper_space_mapping() {
        for (u, p) in [(2i64, 2i64), (3, 3), (4, 2)] {
            let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
            let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
            assert_eq!(
                processor_count(&s, &j),
                (u * u * p * p) as usize,
                "u={u} p={p}"
            );
        }
    }

    #[test]
    fn processor_count_on_box_beyond_preallocation_cap() {
        // |J| = 101³ = 1_030_301 > 2¹⁶: the preallocation is clamped (the old
        // code asked the allocator for the full cardinality, a truncating
        // u128→usize cast on 32-bit) but the count stays exact.
        let j = BoxSet::cube(3, 1, 101);
        assert!(j.cardinality() > 1 << 16);
        // S = [1, 0, 0]: image is the first axis, 101 processors.
        let s = IMat::from_rows(&[&[1, 0, 0]]);
        assert_eq!(processor_count(&s, &j), 101);
    }

    #[test]
    fn theorem_4_5_schedule_is_found_optimal() {
        // Search Π ∈ [−2,2]⁵ for S of (4.2) with the paper's P: the optimum
        // must be Π = [1,1,1,2,1] with t = 3(u−1)+3(p−1)+1.
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
        let best = find_optimal_schedule(&s, &alg, &Interconnect::paper_p(p), 2)
            .expect("a feasible schedule exists (Theorem 4.5)");
        assert_eq!(best.pi, IVec::from([1, 1, 1, 2, 1]));
        assert_eq!(best.time, 3 * (u - 1) + 3 * (p - 1) + 1);
        assert!(best.feasible_count >= 1);
    }

    #[test]
    fn nearest_neighbour_machine_forces_slower_schedule() {
        // With P' (no long wires) the optimum within the bound must be slower
        // than with P, and must route x/y at speed p.
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
        let fast = find_optimal_schedule(&s, &alg, &Interconnect::paper_p(p), 2).unwrap();
        let slow = find_optimal_schedule(&s, &alg, &Interconnect::paper_p_prime(), 2).unwrap();
        assert!(slow.time > fast.time, "{} vs {}", slow.time, fast.time);
        // The paper's Π' = [p,p,1,2,1] must be among the feasible candidates:
        // its time is an upper bound for the found optimum.
        let j = &alg.index_set;
        assert!(slow.time <= total_time(&IVec::from([p, p, 1, 2, 1]), j));
    }

    #[test]
    fn bestfirst_agrees_with_exhaustive() {
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
        for ic in [Interconnect::paper_p(p), Interconnect::paper_p_prime()] {
            let a = find_optimal_schedule(&s, &alg, &ic, 2).expect("feasible");
            let b = find_optimal_schedule_bestfirst(&s, &alg, &ic, 2).expect("feasible");
            assert_eq!(a.pi, b.pi);
            assert_eq!(a.time, b.time);
            // Best-first must do no more full checks than there are
            // candidates, and typically far fewer than the feasible count
            // would suggest.
            assert!((b.feasible_count as u128) <= b.examined);
        }
    }

    #[test]
    fn bestfirst_reports_none_when_nothing_feasible() {
        let alg = matmul_bitlevel(2, 2);
        let s = IMat::from_rows(&[&[2, 0, 0, 1, 0], &[0, 2, 0, 0, 1]]);
        // Static-only machine: nothing can move.
        let ic = Interconnect::new(IMat::from_rows(&[&[0], &[0]]));
        assert!(find_optimal_schedule_bestfirst(&s, &alg, &ic, 2).is_none());
    }

    #[test]
    fn dependence_only_bound_is_a_lower_bound() {
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
        let lb = dependence_only_bound(&alg, 2).expect("some positive schedule");
        let opt = find_optimal_schedule(&s, &alg, &Interconnect::paper_p(p), 2).unwrap();
        assert!(lb <= opt.time);
    }

    #[test]
    fn infeasible_when_bound_too_small() {
        // Bound 1 cannot satisfy Π·d̄₇ = 2·π₅ > 0 together with routing d̄₄
        // within Π·d̄₄ … actually Π = [1,1,1,2,1] needs bound ≥ 2, so bound 1
        // must either find a different feasible schedule or nothing; assert
        // the search stays consistent (any result must be truly feasible).
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
        if let Some(found) = find_optimal_schedule(&s, &alg, &Interconnect::paper_p(p), 1) {
            let t = MappingMatrix::new(s.clone(), found.pi.clone());
            assert!(check_feasibility(&t, &alg, &Interconnect::paper_p(p)).is_feasible());
        }
    }

    #[test]
    fn candidate_counts_no_longer_overflow() {
        // bound = 6000 over n = 5 gives 12001⁵ ≈ 2.5·10²⁰ > usize::MAX on
        // 64-bit: the old `usize::pow` count panicked in debug builds before
        // the search even started. Now the exact count comes back in the
        // typed error, instantly.
        let alg = matmul_bitlevel(2, 2);
        let s = IMat::from_rows(&[&[2, 0, 0, 1, 0], &[0, 2, 0, 0, 1]]);
        let ic = Interconnect::paper_p(2);
        let bound = 6000i64;
        let expect = (2 * bound as u128 + 1).pow(5);
        assert!(
            expect > u64::MAX as u128,
            "chosen bound must exceed the old usize count"
        );
        for result in [
            try_find_optimal_schedule(&s, &alg, &ic, bound),
            try_find_optimal_schedule_bestfirst(&s, &alg, &ic, bound),
        ] {
            assert_eq!(
                result,
                Err(MappingError::SearchSpaceTooLarge {
                    candidates: expect,
                    max: MAX_SEARCH_CANDIDATES
                })
            );
        }
        assert_eq!(
            try_dependence_only_bound(&alg, bound),
            Err(MappingError::SearchSpaceTooLarge {
                candidates: expect,
                max: MAX_SEARCH_CANDIDATES
            })
        );
    }

    #[test]
    fn candidate_count_saturates_instead_of_wrapping() {
        // (2·10⁹+1)^5 overflows even u128's 340-undecillion range when the
        // dimension grows; the helper must saturate, never wrap.
        assert_eq!(candidate_count(usize::MAX, 3), u128::MAX);
        assert_eq!(candidate_count(5, 3), 125);
        assert_eq!(candidate_count(5, 0), 1);
    }

    #[test]
    fn try_variants_report_bad_inputs_as_typed_errors() {
        let alg = matmul_bitlevel(2, 2);
        let ic = Interconnect::paper_p(2);
        let s = IMat::from_rows(&[&[2, 0, 0, 1, 0], &[0, 2, 0, 0, 1]]);
        assert_eq!(
            try_find_optimal_schedule(&s, &alg, &ic, 0),
            Err(MappingError::NonPositiveBound { bound: 0 })
        );
        let narrow = IMat::from_rows(&[&[1, 0, 0]]);
        assert_eq!(
            try_find_optimal_schedule(&narrow, &alg, &ic, 2),
            Err(MappingError::DimensionMismatch {
                what: "space/algorithm",
                left: 3,
                right: 5
            })
        );
    }

    #[test]
    fn examined_count_is_exact_in_u128() {
        let alg = matmul_bitlevel(2, 2);
        let s = IMat::from_rows(&[&[2, 0, 0, 1, 0], &[0, 2, 0, 0, 1]]);
        let found = find_optimal_schedule(&s, &alg, &Interconnect::paper_p(2), 2).unwrap();
        assert_eq!(found.examined, 5u128.pow(5));
    }
}
