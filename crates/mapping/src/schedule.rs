//! Execution time, and the search for time-optimal linear schedules.
//!
//! The total execution time of a mapping (eq. (4.5)) is
//! `t = max{ Π(q̄₁ − q̄₂) : q̄₁, q̄₂ ∈ J } + 1`, which over a box index set is
//! `Σᵢ |πᵢ|·(uᵢ − lᵢ) + 1`. Theorem 4.5 asserts that `Π = [1,1,1,2,1]` is
//! **time optimal** for the bit-level matmul structure (3.12) with the space
//! mapping `S` of (4.2); [`find_optimal_schedule`] reproduces that claim by
//! exhaustive search over bounded schedule vectors (rayon-parallel — the
//! search space is `(2B+1)ⁿ`).

use crate::feasibility::check_feasibility;
use crate::interconnect::Interconnect;
use crate::transform::MappingMatrix;
use bitlevel_ir::{AlgorithmTriplet, BoxSet};
use bitlevel_linalg::{IMat, IVec};
use rayon::prelude::*;

/// Total execution time of schedule `pi` over box `j` (eq. (4.5)):
/// `Σ |πᵢ|·(uᵢ − lᵢ) + 1`.
pub fn total_time(pi: &IVec, j: &BoxSet) -> i64 {
    assert_eq!(pi.dim(), j.dim(), "schedule/index dimension mismatch");
    (0..j.dim()).map(|i| pi[i].abs() * j.extent(i)).sum::<i64>() + 1
}

/// Number of processors used: `|{S·q̄ : q̄ ∈ J}|`.
///
/// Enumerates the image (exact); the paper's closed forms (`u²p²` for both
/// Section 4 designs) are checked against this in tests.
pub fn processor_count(space: &IMat, j: &BoxSet) -> usize {
    let mut seen: std::collections::HashSet<IVec> =
        std::collections::HashSet::with_capacity(j.cardinality() as usize);
    for q in j.iter_points() {
        seen.insert(space.matvec(&q));
    }
    seen.len()
}

/// Outcome of a schedule search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimalSchedule {
    /// The winning schedule vector.
    pub pi: IVec,
    /// Its total execution time (4.5).
    pub time: i64,
    /// How many candidate vectors were feasible.
    pub feasible_count: usize,
    /// How many candidate vectors were examined.
    pub examined: usize,
}

/// Exhaustively searches `Π ∈ [−bound, bound]ⁿ` for the schedule minimising
/// [`total_time`] subject to **all five** conditions of Definition 4.1 with
/// the given fixed space mapping `S` and primitives `ic`.
///
/// Ties are broken toward the lexicographically smallest vector, making the
/// result deterministic. The outer axis is searched in parallel with rayon.
///
/// Returns `None` when no feasible schedule exists within the bound.
pub fn find_optimal_schedule(
    space: &IMat,
    alg: &AlgorithmTriplet,
    ic: &Interconnect,
    bound: i64,
) -> Option<OptimalSchedule> {
    assert!(bound >= 1, "search bound must be positive");
    let n = alg.dim();
    assert_eq!(space.cols(), n, "space/algorithm dimension mismatch");
    let range: Vec<i64> = (-bound..=bound).collect();
    let per_axis = range.len();
    let total: usize = per_axis.pow((n - 1) as u32);
    let d = alg.dependence_matrix();

    let best = range
        .par_iter()
        .map(|&first| {
            let mut local_best: Option<(i64, IVec)> = None;
            let mut feasible = 0usize;
            // Odometer over the remaining n-1 axes.
            let mut idx = vec![0usize; n - 1];
            for _ in 0..total {
                let mut pi = IVec::zeros(n);
                pi[0] = first;
                for (a, &ix) in idx.iter().enumerate() {
                    pi[a + 1] = range[ix];
                }
                // Cheap necessary screen first: Π·D > 0 before the full check.
                let ok1 = (0..d.cols()).all(|c| d.col(c).dot(&pi) > 0);
                if ok1 {
                    let t = MappingMatrix::new(space.clone(), pi.clone());
                    if check_feasibility(&t, alg, ic).is_feasible() {
                        feasible += 1;
                        let time = total_time(&pi, &alg.index_set);
                        let better = match &local_best {
                            None => true,
                            Some((bt, bpi)) => time < *bt || (time == *bt && pi < *bpi),
                        };
                        if better {
                            local_best = Some((time, pi));
                        }
                    }
                }
                // Advance odometer.
                for slot in (0..n - 1).rev() {
                    idx[slot] += 1;
                    if idx[slot] < per_axis {
                        break;
                    }
                    idx[slot] = 0;
                }
            }
            (local_best, feasible)
        })
        .reduce(
            || (None, 0),
            |(a, fa), (b, fb)| {
                let merged = match (a, b) {
                    (None, b) => b,
                    (a, None) => a,
                    (Some((ta, pa)), Some((tb, pb))) => {
                        if tb < ta || (tb == ta && pb < pa) {
                            Some((tb, pb))
                        } else {
                            Some((ta, pa))
                        }
                    }
                };
                (merged, fa + fb)
            },
        );

    let examined = per_axis.pow(n as u32);
    best.0.map(|(time, pi)| OptimalSchedule {
        pi,
        time,
        feasible_count: best.1,
        examined,
    })
}

/// Best-first variant of [`find_optimal_schedule`]: sorts all candidate
/// schedules by `(total_time, lexicographic)` and returns the **first** one
/// passing the full Definition 4.1 check — provably the same optimum, but
/// the expensive feasibility machinery only runs until the first hit instead
/// of over every candidate. Prefer this when feasible schedules are common;
/// prefer the exhaustive search when you also want the feasible count.
pub fn find_optimal_schedule_bestfirst(
    space: &IMat,
    alg: &AlgorithmTriplet,
    ic: &Interconnect,
    bound: i64,
) -> Option<OptimalSchedule> {
    assert!(bound >= 1, "search bound must be positive");
    let n = alg.dim();
    assert_eq!(space.cols(), n, "space/algorithm dimension mismatch");
    let d = alg.dependence_matrix();
    let range: Vec<i64> = (-bound..=bound).collect();
    let total: usize = range.len().pow(n as u32);

    // Enumerate candidates passing the cheap condition-1 screen, tagged with
    // their closed-form time.
    let mut candidates: Vec<(i64, IVec)> = Vec::new();
    let mut idx = vec![0usize; n];
    for _ in 0..total {
        let pi = IVec(idx.iter().map(|&i| range[i]).collect());
        if (0..d.cols()).all(|c| d.col(c).dot(&pi) > 0) {
            candidates.push((total_time(&pi, &alg.index_set), pi));
        }
        for slot in (0..n).rev() {
            idx[slot] += 1;
            if idx[slot] < range.len() {
                break;
            }
            idx[slot] = 0;
        }
    }
    candidates.sort();

    let examined = total;
    for (checked, (time, pi)) in candidates.into_iter().enumerate() {
        let t = MappingMatrix::new(space.clone(), pi.clone());
        if check_feasibility(&t, alg, ic).is_feasible() {
            return Some(OptimalSchedule {
                pi,
                time,
                feasible_count: checked + 1, // full checks performed, not total feasible
                examined,
            });
        }
    }
    None
}

/// A faster lower bound: the best time over schedules satisfying only
/// condition 1 (`Π·D > 0`), ignoring routing and conflicts. Useful to show a
/// found schedule is truly optimal (matching lower bound) or to quantify the
/// cost of conditions 2–5.
pub fn dependence_only_bound(alg: &AlgorithmTriplet, bound: i64) -> Option<i64> {
    let n = alg.dim();
    let d = alg.dependence_matrix();
    let range: Vec<i64> = (-bound..=bound).collect();
    let total: usize = range.len().pow(n as u32);
    let mut best: Option<i64> = None;
    let mut idx = vec![0usize; n];
    for _ in 0..total {
        let pi = IVec(idx.iter().map(|&ix| range[ix]).collect());
        if (0..d.cols()).all(|c| d.col(c).dot(&pi) > 0) {
            let t = total_time(&pi, &alg.index_set);
            best = Some(best.map_or(t, |b: i64| b.min(t)));
        }
        for slot in (0..n).rev() {
            idx[slot] += 1;
            if idx[slot] < range.len() {
                break;
            }
            idx[slot] = 0;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_ir::{Dependence, DependenceSet, Predicate};

    fn matmul_bitlevel(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul, Expansion II",
        )
    }

    #[test]
    fn total_time_matches_eq_4_5() {
        // Π = [1,1,1,2,1] over J = [1,u]³ × [1,p]²:
        // t = 3(u−1) + 2(p−1) + (p−1) + 1 = 3(u−1) + 3(p−1) + 1.
        for (u, p) in [(3i64, 3i64), (5, 4), (10, 8)] {
            let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
            let pi = IVec::from([1, 1, 1, 2, 1]);
            assert_eq!(total_time(&pi, &j), 3 * (u - 1) + 3 * (p - 1) + 1);
        }
    }

    #[test]
    fn t_prime_time_formula() {
        // Π' = [p,p,1,2,1]: t' = (2p+1)(u−1) + 3(p−1) + 1. (The paper prints
        // (2p−1)(u−1)+3(p−1)+1 for eq. (4.8), inconsistent with its own
        // Π'·(ū−l̄) expansion — see EXPERIMENTS.md.)
        for (u, p) in [(3i64, 3i64), (5, 4)] {
            let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
            let pi = IVec::from([p, p, 1, 2, 1]);
            assert_eq!(total_time(&pi, &j), (2 * p + 1) * (u - 1) + 3 * (p - 1) + 1);
        }
    }

    #[test]
    fn processor_count_is_u2p2_for_paper_space_mapping() {
        for (u, p) in [(2i64, 2i64), (3, 3), (4, 2)] {
            let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
            let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
            assert_eq!(processor_count(&s, &j), (u * u * p * p) as usize, "u={u} p={p}");
        }
    }

    #[test]
    fn theorem_4_5_schedule_is_found_optimal() {
        // Search Π ∈ [−2,2]⁵ for S of (4.2) with the paper's P: the optimum
        // must be Π = [1,1,1,2,1] with t = 3(u−1)+3(p−1)+1.
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
        let best = find_optimal_schedule(&s, &alg, &Interconnect::paper_p(p), 2)
            .expect("a feasible schedule exists (Theorem 4.5)");
        assert_eq!(best.pi, IVec::from([1, 1, 1, 2, 1]));
        assert_eq!(best.time, 3 * (u - 1) + 3 * (p - 1) + 1);
        assert!(best.feasible_count >= 1);
    }

    #[test]
    fn nearest_neighbour_machine_forces_slower_schedule() {
        // With P' (no long wires) the optimum within the bound must be slower
        // than with P, and must route x/y at speed p.
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
        let fast = find_optimal_schedule(&s, &alg, &Interconnect::paper_p(p), 2).unwrap();
        let slow = find_optimal_schedule(&s, &alg, &Interconnect::paper_p_prime(), 2).unwrap();
        assert!(slow.time > fast.time, "{} vs {}", slow.time, fast.time);
        // The paper's Π' = [p,p,1,2,1] must be among the feasible candidates:
        // its time is an upper bound for the found optimum.
        let j = &alg.index_set;
        assert!(slow.time <= total_time(&IVec::from([p, p, 1, 2, 1]), j));
    }

    #[test]
    fn bestfirst_agrees_with_exhaustive() {
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
        for ic in [Interconnect::paper_p(p), Interconnect::paper_p_prime()] {
            let a = find_optimal_schedule(&s, &alg, &ic, 2).expect("feasible");
            let b = find_optimal_schedule_bestfirst(&s, &alg, &ic, 2).expect("feasible");
            assert_eq!(a.pi, b.pi);
            assert_eq!(a.time, b.time);
            // Best-first must do no more full checks than there are
            // candidates, and typically far fewer than the feasible count
            // would suggest.
            assert!(b.feasible_count <= b.examined);
        }
    }

    #[test]
    fn bestfirst_reports_none_when_nothing_feasible() {
        let alg = matmul_bitlevel(2, 2);
        let s = IMat::from_rows(&[&[2, 0, 0, 1, 0], &[0, 2, 0, 0, 1]]);
        // Static-only machine: nothing can move.
        let ic = Interconnect::new(IMat::from_rows(&[&[0], &[0]]));
        assert!(find_optimal_schedule_bestfirst(&s, &alg, &ic, 2).is_none());
    }

    #[test]
    fn dependence_only_bound_is_a_lower_bound() {
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
        let lb = dependence_only_bound(&alg, 2).expect("some positive schedule");
        let opt = find_optimal_schedule(&s, &alg, &Interconnect::paper_p(p), 2).unwrap();
        assert!(lb <= opt.time);
    }

    #[test]
    fn infeasible_when_bound_too_small() {
        // Bound 1 cannot satisfy Π·d̄₇ = 2·π₅ > 0 together with routing d̄₄
        // within Π·d̄₄ … actually Π = [1,1,1,2,1] needs bound ≥ 2, so bound 1
        // must either find a different feasible schedule or nothing; assert
        // the search stays consistent (any result must be truly feasible).
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let s = IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]);
        if let Some(found) = find_optimal_schedule(&s, &alg, &Interconnect::paper_p(p), 1) {
            let t = MappingMatrix::new(s.clone(), found.pi.clone());
            assert!(check_feasibility(&t, &alg, &Interconnect::paper_p(p)).is_feasible());
        }
    }
}
