//! The paper's two concrete bit-level matmul architectures (Section 4.2).
//!
//! Both share the space mapping `S = [[p,0,0,1,0],[0,p,0,0,1]]` — a `up × up`
//! grid of bit-level processors arranged as `u × u` blocks of `p × p` cells —
//! and differ in schedule and machine:
//!
//! * **Design 1** (Fig. 4): `Π = [1,1,1,2,1]` on the machine `P` of (4.3)
//!   with length-`p` long wires; time-optimal,
//!   `t = 3(u−1) + 3(p−1) + 1` (4.5), with one buffer on the `[1,0]ᵀ` link.
//! * **Design 2** (Fig. 5): `Π′ = [p,p,1,2,1]` on the nearest-neighbour
//!   machine `P′` of (4.7); no long wires, but
//!   `t′ = (2p+1)(u−1) + 3(p−1) + 1`. (The paper's printed `(2p−1)(u−1)+…`
//!   in (4.8) contradicts its own `Π′(ū − l̄)` expansion; we use the value the
//!   formula actually yields — the qualitative conclusion, `t′ > t`, holds
//!   either way.)
//!
//! The word-level comparator of Section 4.2 — the best word-level matmul
//! array [4] with total time `(3(u−1)+1)·t_b` — is also provided here in
//! closed form; its simulation lives in `bitlevel-systolic`.

use crate::interconnect::Interconnect;
use crate::transform::MappingMatrix;
use bitlevel_linalg::{IMat, IVec};
use serde::Serialize;

/// Which of the paper's two bit-level designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PaperDesign {
    /// Fig. 4: time-optimal, long wires (eq. (4.2)/(4.3)).
    TimeOptimal,
    /// Fig. 5: nearest-neighbour only (eq. (4.6)/(4.7)).
    NearestNeighbour,
}

impl PaperDesign {
    /// The shared space mapping `S` of (4.2)/(4.6).
    pub fn space(p: i64) -> IMat {
        IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]])
    }

    /// The design's mapping matrix `T = [S; Π]`.
    pub fn mapping(self, p: i64) -> MappingMatrix {
        let pi = match self {
            PaperDesign::TimeOptimal => IVec::from([1, 1, 1, 2, 1]),
            PaperDesign::NearestNeighbour => IVec::from([p, p, 1, 2, 1]),
        };
        MappingMatrix::new(Self::space(p), pi)
    }

    /// The design's interconnection primitives.
    pub fn interconnect(self, p: i64) -> Interconnect {
        match self {
            PaperDesign::TimeOptimal => Interconnect::paper_p(p),
            PaperDesign::NearestNeighbour => Interconnect::paper_p_prime(),
        }
    }

    /// Closed-form total execution time.
    pub fn total_time(self, u: i64, p: i64) -> i64 {
        match self {
            // Eq. (4.5).
            PaperDesign::TimeOptimal => 3 * (u - 1) + 3 * (p - 1) + 1,
            // Π′·(ū − l̄) + 1; see module docs re the paper's (4.8).
            PaperDesign::NearestNeighbour => (2 * p + 1) * (u - 1) + 3 * (p - 1) + 1,
        }
    }

    /// Processor count `u²p²` (both designs share `S`).
    pub fn processors(u: i64, p: i64) -> i64 {
        u * u * p * p
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PaperDesign::TimeOptimal => "Fig. 4 (time-optimal, long wires)",
            PaperDesign::NearestNeighbour => "Fig. 5 (nearest-neighbour)",
        }
    }
}

/// Total time of the best **word-level** matmul array (Section 4.2, citing
/// [4]): `(3(u−1)+1)·t_b`, where `t_b` is the word-PE latency of one
/// multiply-and-accumulate (`p²` for add-shift, `2p` for carry-save).
pub fn word_level_total_time(u: i64, t_b: i64) -> i64 {
    (3 * (u - 1) + 1) * t_b
}

/// The bit-level speedup over the word-level array — `O(p²)` against the
/// add-shift word PE and `O(p)` against carry-save, for `u > p`.
pub fn speedup(u: i64, p: i64, t_b: i64) -> f64 {
    word_level_total_time(u, t_b) as f64 / PaperDesign::TimeOptimal.total_time(u, p) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_matrices_match_the_paper() {
        let p = 3;
        let t = PaperDesign::TimeOptimal.mapping(p);
        assert_eq!(
            t.t_matrix(),
            IMat::from_rows(&[&[3, 0, 0, 1, 0], &[0, 3, 0, 0, 1], &[1, 1, 1, 2, 1]])
        );
        let t2 = PaperDesign::NearestNeighbour.mapping(p);
        assert_eq!(t2.t_matrix().row(2), &[3, 3, 1, 2, 1]);
        assert_eq!(t.space, t2.space);
    }

    #[test]
    fn closed_form_times() {
        assert_eq!(PaperDesign::TimeOptimal.total_time(3, 3), 13); // 3·2+3·2+1
        assert_eq!(
            PaperDesign::NearestNeighbour.total_time(3, 3),
            7 * 2 + 6 + 1
        );
        // Design 2 is never faster.
        for u in 2..8 {
            for p in 2..8 {
                assert!(
                    PaperDesign::NearestNeighbour.total_time(u, p)
                        >= PaperDesign::TimeOptimal.total_time(u, p)
                );
            }
        }
    }

    #[test]
    fn closed_forms_equal_measured_total_time_on_the_grid() {
        // Pins the coefficient choice: both closed forms must equal the
        // measured `total_time(Π, J)` of eq. (4.5) on every grid point —
        // and the paper's printed (4.8) coefficient `(2p−1)(u−1)` must NOT
        // (it contradicts the paper's own `Π′·(ū − l̄) + 1` expansion;
        // DESIGN.md documents the discrepancy).
        use bitlevel_ir::BoxSet;
        for u in 2i64..=6 {
            for p in 2i64..=6 {
                let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
                for d in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
                    let measured = crate::schedule::total_time(&d.mapping(p).schedule, &j);
                    assert_eq!(d.total_time(u, p), measured, "{d:?} u={u} p={p}");
                }
                let printed_4_8 = (2 * p - 1) * (u - 1) + 3 * (p - 1) + 1;
                let measured = crate::schedule::total_time(
                    &PaperDesign::NearestNeighbour.mapping(p).schedule,
                    &j,
                );
                assert_ne!(printed_4_8, measured, "the printed (4.8) is 2(u−1) short");
                assert_eq!(measured - printed_4_8, 2 * (u - 1));
            }
        }
    }

    #[test]
    fn processors_closed_form() {
        assert_eq!(PaperDesign::processors(3, 3), 81);
        assert_eq!(PaperDesign::processors(2, 4), 64);
    }

    #[test]
    fn word_level_comparison_of_section_4_2() {
        let (u, p) = (16i64, 8i64);
        // Add-shift word PE: speedup grows like p² (u > p).
        let s_addshift = speedup(u, p, p * p);
        // Carry-save word PE: speedup grows like p.
        let s_carrysave = speedup(u, p, 2 * p);
        assert!(s_addshift > s_carrysave);
        assert!(s_carrysave > 1.0, "bit-level must win: {s_carrysave}");
        // Asymptotic shape: doubling p roughly quadruples the add-shift
        // speedup and roughly doubles the carry-save speedup (u scaled too so
        // u > p stays true).
        let s2 = speedup(4 * u, 2 * p, (2 * p) * (2 * p));
        assert!(
            s2 / s_addshift > 2.5,
            "expected ~4x, got {}",
            s2 / s_addshift
        );
        let c2 = speedup(4 * u, 2 * p, 2 * (2 * p));
        assert!(c2 / s_carrysave > 1.5 && c2 / s_carrysave < 2.5);
    }

    #[test]
    fn interconnects_differ_in_wire_length() {
        assert_eq!(
            PaperDesign::TimeOptimal.interconnect(5).max_wire_length(),
            5
        );
        assert_eq!(
            PaperDesign::NearestNeighbour
                .interconnect(5)
                .max_wire_length(),
            1
        );
    }
}
