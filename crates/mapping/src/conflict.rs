//! Computational-conflict detection (condition 3 of Definition 4.1).
//!
//! Two distinct index points `j̄₁ ≠ j̄₂ ∈ J` conflict under `T` iff
//! `T·j̄₁ = T·j̄₂` — the same processor would have to perform both
//! computations at the same time. Equivalently, a conflict exists iff some
//! **nonzero** vector of the integer kernel lattice of `T` equals a
//! difference of two points of `J`; for box index sets the differences are
//! exactly the difference box, so the check reduces to enumerating kernel
//! lattice points in a box ([`bitlevel_ir::enumerate_lattice_in_box`]).
//!
//! A brute-force checker (hashing `T·j̄` over all of `J`) cross-validates the
//! lattice method in tests and serves tiny index sets.

use crate::transform::MappingMatrix;
use bitlevel_ir::{enumerate_lattice_in_box, BoxSet};
use bitlevel_linalg::{integer_nullspace, IVec};
use std::collections::HashMap;

/// Result of conflict detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictResult {
    /// No two distinct points collide: condition 3 holds.
    ConflictFree,
    /// A witness pair `(j̄₁, j̄₂)` with `T·j̄₁ = T·j̄₂`.
    Conflict(IVec, IVec),
}

impl ConflictResult {
    /// True when condition 3 holds.
    pub fn is_free(&self) -> bool {
        matches!(self, ConflictResult::ConflictFree)
    }
}

/// Kernel-lattice conflict check: exact and usually far cheaper than brute
/// force (`|kernel ∩ diff-box|` vs `|J|`).
pub fn check_conflicts(t: &MappingMatrix, j: &BoxSet) -> ConflictResult {
    assert_eq!(t.n(), j.dim(), "mapping/index dimension mismatch");
    let kernel = integer_nullspace(&t.t_matrix());
    if kernel.is_empty() {
        return ConflictResult::ConflictFree; // T injective on all of Zⁿ
    }
    let diff = j.difference_box();
    for v in enumerate_lattice_in_box(&IVec::zeros(t.n()), &kernel, &diff) {
        if v.is_zero() {
            continue;
        }
        // v = j̄₁ − j̄₂ for points of J: construct a concrete witness by
        // clamping each coordinate pair into the box.
        let mut j1 = IVec::zeros(t.n());
        let mut j2 = IVec::zeros(t.n());
        for i in 0..t.n() {
            if v[i] >= 0 {
                j2[i] = j.lower()[i];
                j1[i] = j.lower()[i] + v[i];
            } else {
                j2[i] = j.lower()[i] - v[i];
                j1[i] = j.lower()[i];
            }
        }
        debug_assert!(j.contains(&j1) && j.contains(&j2));
        return ConflictResult::Conflict(j1, j2);
    }
    ConflictResult::ConflictFree
}

/// Brute-force conflict check: hash `T·j̄` over every point of `J`.
pub fn check_conflicts_bruteforce(t: &MappingMatrix, j: &BoxSet) -> ConflictResult {
    let mut seen: HashMap<IVec, IVec> =
        HashMap::with_capacity(crate::schedule::clamped_capacity(j.cardinality()));
    for q in j.iter_points() {
        let img = t.apply(&q);
        if let Some(prev) = seen.insert(img, q.clone()) {
            return ConflictResult::Conflict(q, prev);
        }
    }
    ConflictResult::ConflictFree
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_linalg::IMat;
    use proptest::prelude::*;

    fn paper_t(p: i64) -> MappingMatrix {
        MappingMatrix::new(
            IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]),
            IVec::from([1, 1, 1, 2, 1]),
        )
    }

    fn paper_t_prime(p: i64) -> MappingMatrix {
        MappingMatrix::new(
            IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]),
            IVec::from([p, p, 1, 2, 1]),
        )
    }

    #[test]
    fn paper_mappings_are_conflict_free() {
        for (u, p) in [(2, 2), (3, 3), (4, 3), (3, 4)] {
            let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
            assert!(check_conflicts(&paper_t(p), &j).is_free(), "T u={u} p={p}");
            assert!(
                check_conflicts(&paper_t_prime(p), &j).is_free(),
                "T' u={u} p={p}"
            );
        }
    }

    #[test]
    fn projection_onto_time_only_conflicts() {
        // S = 0 row, Π = [1,1]: all anti-diagonal points collide.
        let t = MappingMatrix::new(IMat::from_rows(&[&[0, 0]]), IVec::from([1, 1]));
        let j = BoxSet::cube(2, 1, 3);
        let res = check_conflicts(&t, &j);
        let ConflictResult::Conflict(a, b) = res else {
            panic!("expected a conflict");
        };
        assert_eq!(t.apply(&a), t.apply(&b));
        assert_ne!(a, b);
        assert!(j.contains(&a) && j.contains(&b));
    }

    #[test]
    fn kernel_outside_difference_box_is_fine() {
        // T = [2, 1; 1, 1] is unimodular-ish (det = 1): injective everywhere.
        let t = MappingMatrix::new(IMat::from_rows(&[&[2, 1]]), IVec::from([1, 1]));
        let j = BoxSet::cube(2, 1, 4);
        assert!(check_conflicts(&t, &j).is_free());
    }

    #[test]
    fn kernel_vector_longer_than_box_is_no_conflict() {
        // Kernel direction [5,-1] of T = [1,5; 0,... ] — pick T = [[1,5],[1,5]]?
        // Use Π = [1, 5], S = [1, 5]: kernel = span([5,-1]).
        let t = MappingMatrix::new(IMat::from_rows(&[&[1, 5]]), IVec::from([1, 5]));
        // Box of extent 4 along axis 0: difference box is [-4,4]×[-2,2];
        // [5,-1] does not fit -> conflict-free despite nontrivial kernel.
        let j = BoxSet::new(IVec::from([1, 1]), IVec::from([5, 3]));
        assert!(check_conflicts(&t, &j).is_free());
        // Enlarge the box along axis 0 so [5,-1] fits: now a conflict.
        let j2 = BoxSet::new(IVec::from([1, 1]), IVec::from([6, 3]));
        assert!(!check_conflicts(&t, &j2).is_free());
    }

    proptest! {
        /// The lattice method must agree with brute force on random small
        /// mappings.
        #[test]
        fn prop_lattice_matches_bruteforce(
            entries in proptest::collection::vec(-2i64..3, 6),
            ext in proptest::collection::vec(1i64..4, 3),
        ) {
            let t = MappingMatrix::new(
                IMat::from_flat(1, 3, entries[..3].to_vec()),
                IVec(entries[3..].to_vec()),
            );
            let j = BoxSet::new(IVec::from([1, 1, 1]), IVec(ext.iter().map(|e| 1 + e).collect()));
            let lattice = check_conflicts(&t, &j).is_free();
            let brute = check_conflicts_bruteforce(&t, &j).is_free();
            prop_assert_eq!(lattice, brute);
        }
    }
}
