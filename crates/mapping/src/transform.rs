//! Linear algorithm transformations `τ(j̄) = T·j̄` (Definition 4.1).
//!
//! A mapping matrix `T = [S; Π] ∈ Z^{k×n}` sends the computation at index
//! point `j̄ ∈ J` to **processor** `S·j̄ ∈ Z^{k−1}` at **time** `Π·j̄ ∈ Z`.
//! This module holds the matrix type and its basic queries; the five
//! feasibility conditions live in [`crate::feasibility`].

use crate::error::MappingError;
use bitlevel_linalg::{IMat, IVec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A space–time mapping `T = [S; Π]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MappingMatrix {
    /// Space mapping `S ∈ Z^{(k−1)×n}`: rows are processor coordinates.
    pub space: IMat,
    /// Linear schedule `Π ∈ Z^{1×n}` as a vector.
    pub schedule: IVec,
}

impl MappingMatrix {
    /// Creates `T = [S; Π]`.
    ///
    /// # Panics
    /// Panics if `S` and `Π` disagree on the algorithm dimension;
    /// [`MappingMatrix::try_new`] is the non-panicking variant.
    pub fn new(space: IMat, schedule: IVec) -> Self {
        Self::try_new(space, schedule).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`MappingMatrix::new`] with a typed error instead of a panic when `S`
    /// and `Π` disagree on the algorithm dimension.
    pub fn try_new(space: IMat, schedule: IVec) -> Result<Self, MappingError> {
        if space.cols() != schedule.dim() {
            return Err(MappingError::DimensionMismatch {
                what: "space/schedule",
                left: space.cols(),
                right: schedule.dim(),
            });
        }
        Ok(MappingMatrix { space, schedule })
    }

    /// Algorithm dimension `n` (columns of `T`).
    pub fn n(&self) -> usize {
        self.schedule.dim()
    }

    /// Target dimension `k` (rows of `T`): a `(k−1)`-dimensional array.
    pub fn k(&self) -> usize {
        self.space.rows() + 1
    }

    /// The full matrix `T` with `Π` as the last row.
    pub fn t_matrix(&self) -> IMat {
        self.space.vstack(&IMat::from_flat(
            1,
            self.n(),
            self.schedule.as_slice().to_vec(),
        ))
    }

    /// Execution time of the computation at `j̄`: `Π·j̄`.
    pub fn time(&self, j: &IVec) -> i64 {
        j.dot(&self.schedule)
    }

    /// Processor executing the computation at `j̄`: `S·j̄`.
    pub fn place(&self, j: &IVec) -> IVec {
        self.space.matvec(j)
    }

    /// The full image `τ(j̄) = T·j̄` (processor coordinates then time).
    pub fn apply(&self, j: &IVec) -> IVec {
        self.place(j).concat(&IVec::from([self.time(j)]))
    }

    /// `T·D` — the space–time displacement of every dependence column, the
    /// paper's eq. (4.4).
    pub fn td(&self, d: &IMat) -> IMat {
        self.t_matrix().matmul(d)
    }
}

impl fmt::Display for MappingMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "T = [S; Pi] =")?;
        write!(f, "{}", self.t_matrix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's T of eq. (4.2) for word length p.
    fn paper_t(p: i64) -> MappingMatrix {
        MappingMatrix::new(
            IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]),
            IVec::from([1, 1, 1, 2, 1]),
        )
    }

    #[test]
    fn dimensions() {
        let t = paper_t(3);
        assert_eq!(t.n(), 5);
        assert_eq!(t.k(), 3); // 2-D processor array
        assert_eq!(t.t_matrix().rows(), 3);
        assert_eq!(t.t_matrix().row(2), &[1, 1, 1, 2, 1]);
    }

    #[test]
    fn time_and_place() {
        let t = paper_t(3);
        let q = IVec::from([2, 1, 3, 2, 1]);
        // Π·q = 2 + 1 + 3 + 4 + 1 = 11.
        assert_eq!(t.time(&q), 11);
        // S·q = (3·2 + 2, 3·1 + 1) = (8, 4).
        assert_eq!(t.place(&q), IVec::from([8, 4]));
        assert_eq!(t.apply(&q), IVec::from([8, 4, 11]));
    }

    #[test]
    fn td_matches_eq_4_4() {
        // D of (3.12) in the paper's column order y, x, z, d4, d5, d6, d7.
        let d = IMat::from_rows(&[
            &[1, 0, 0, 0, 0, 0, 0],
            &[0, 1, 0, 0, 0, 0, 0],
            &[0, 0, 1, 0, 0, 0, 0],
            &[0, 0, 0, 1, 0, 1, 0],
            &[0, 0, 0, 0, 1, -1, 2],
        ]);
        let p = 3;
        let td = paper_t(p).td(&d);
        let expected = IMat::from_rows(&[
            &[p, 0, 0, 1, 0, 1, 0],
            &[0, p, 0, 0, 1, -1, 2],
            &[1, 1, 1, 2, 1, 1, 2],
        ]);
        assert_eq!(td, expected);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let _ = MappingMatrix::new(IMat::identity(3), IVec::from([1, 1]));
    }

    #[test]
    fn try_new_reports_mismatch_as_typed_error() {
        assert_eq!(
            MappingMatrix::try_new(IMat::identity(3), IVec::from([1, 1])),
            Err(MappingError::DimensionMismatch {
                what: "space/schedule",
                left: 3,
                right: 2
            })
        );
        assert!(MappingMatrix::try_new(IMat::identity(3), IVec::from([1, 1, 1])).is_ok());
    }
}
