//! The five feasibility conditions of Definition 4.1.
//!
//! A mapping `τ(j̄) = T·j̄`, `T = [S; Π]`, maps an `n`-dimensional algorithm
//! `(J, D, E)` onto a `(k−1)`-dimensional processor array iff:
//!
//! 1. `Π·D > 0̄` — dependences are respected in time;
//! 2. `S·D = P·K` with `Σⱼ kⱼᵢ ≤ Π·d̄ᵢ` (4.1) — every dependence is routable
//!    through the interconnection primitives within its time budget;
//! 3. `τ` is injective on `J` — no computational conflicts;
//! 4. `rank(T) = k` — the array really is `(k−1)`-dimensional;
//! 5. the entries of `T` are relatively prime — no globally idle cycles.

use crate::conflict::{check_conflicts, ConflictResult};
use crate::interconnect::{Interconnect, KSolution};
use crate::transform::MappingMatrix;
use bitlevel_ir::AlgorithmTriplet;
use bitlevel_linalg::{gcd_all, rank, IMat};
use serde::Serialize;

/// Why a mapping is infeasible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Violation {
    /// Condition 1: `Π·d̄ᵢ ≤ 0` for the named dependence column.
    NonPositiveSchedule {
        /// Offending column index.
        column: usize,
        /// The value `Π·d̄ᵢ`.
        value: i64,
    },
    /// Condition 2: column `i` of `S·D` cannot be routed within `Π·d̄ᵢ` hops.
    Unroutable {
        /// Offending column index.
        column: usize,
    },
    /// Condition 3: two index points share processor and time.
    Conflict {
        /// Rendered witness points.
        witness: String,
    },
    /// Condition 4: `rank(T) < k`.
    RankDeficient {
        /// Actual rank found.
        rank: usize,
        /// Required rank `k`.
        k: usize,
    },
    /// Condition 5: `gcd(entries of T) > 1`.
    NotCoprime {
        /// The common divisor.
        gcd: i64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NonPositiveSchedule { column, value } => {
                write!(f, "condition 1: Pi*d{} = {value} <= 0", column + 1)
            }
            Violation::Unroutable { column } => {
                write!(
                    f,
                    "condition 2: S*d{} not routable within its time budget",
                    column + 1
                )
            }
            Violation::Conflict { witness } => write!(f, "condition 3: conflict {witness}"),
            Violation::RankDeficient { rank, k } => {
                write!(f, "condition 4: rank(T) = {rank} < k = {k}")
            }
            Violation::NotCoprime { gcd } => write!(f, "condition 5: gcd(T) = {gcd} > 1"),
        }
    }
}

/// Full feasibility verdict for one mapping.
#[derive(Debug, Clone)]
pub struct FeasibilityReport {
    /// All violations found (empty = feasible).
    pub violations: Vec<Violation>,
    /// The routing solution when condition 2 holds.
    pub routing: Option<KSolution>,
    /// `T·D` (the paper's eq. (4.4) summary of timing and connections).
    pub td: IMat,
}

impl FeasibilityReport {
    /// True iff every condition holds.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks all five conditions of Definition 4.1 for mapping `t` applied to
/// algorithm `alg` on a machine with primitives `ic`.
///
/// # Examples
///
/// Theorem 4.5: the paper's `T` of eq. (4.2) is feasible on the machine of
/// eq. (4.3):
///
/// ```
/// use bitlevel_mapping::{check_feasibility, Interconnect, PaperDesign};
/// use bitlevel_ir::{AlgorithmTriplet, BoxSet, Dependence, DependenceSet, Predicate};
///
/// let p = 3;
/// let j = BoxSet::cube(3, 1, 3).product(&BoxSet::cube(2, 1, p));
/// let alg = AlgorithmTriplet::new(
///     j,
///     DependenceSet::new(vec![
///         Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
///         Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
///         Dependence::conditional([0, 0, 1, 0, 0], "z",
///             Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1))),
///         Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
///         Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
///         Dependence::uniform([0, 0, 0, 1, -1], "z"),
///         Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
///     ]),
///     "bit-level matmul (3.12)",
/// );
/// let report = check_feasibility(
///     &PaperDesign::TimeOptimal.mapping(p),
///     &alg,
///     &Interconnect::paper_p(p),
/// );
/// assert!(report.is_feasible());
/// ```
pub fn check_feasibility(
    t: &MappingMatrix,
    alg: &AlgorithmTriplet,
    ic: &Interconnect,
) -> FeasibilityReport {
    assert_eq!(t.n(), alg.dim(), "mapping/algorithm dimension mismatch");
    assert_eq!(ic.dim(), t.k() - 1, "interconnect/space dimension mismatch");
    let d = alg.dependence_matrix();
    let mut violations = Vec::new();

    // Condition 1: Π·D > 0.
    let mut budgets = Vec::with_capacity(d.cols());
    for i in 0..d.cols() {
        let v = d.col(i).dot(&t.schedule);
        budgets.push(v);
        if v <= 0 {
            violations.push(Violation::NonPositiveSchedule {
                column: i,
                value: v,
            });
        }
    }

    // Condition 2: SD = PK under (4.1). Only meaningful if condition 1 holds
    // for the column (budget > 0); we still try with the clamped budget.
    let sd = t.space.matmul(&d);
    let routing = match ic.solve_k(&sd, &budgets.iter().map(|&b| b.max(0)).collect::<Vec<_>>()) {
        Ok(sol) => Some(sol),
        Err(col) => {
            violations.push(Violation::Unroutable { column: col });
            None
        }
    };

    // Condition 3: no computational conflicts.
    if let ConflictResult::Conflict(a, b) = check_conflicts(t, &alg.index_set) {
        violations.push(Violation::Conflict {
            witness: format!("{a} and {b}"),
        });
    }

    // Condition 4: rank(T) = k.
    let tm = t.t_matrix();
    let r = rank(&tm);
    if r < t.k() {
        violations.push(Violation::RankDeficient { rank: r, k: t.k() });
    }

    // Condition 5: entries relatively prime.
    let entries: Vec<i64> = tm.entries().copied().collect();
    let g = gcd_all(&entries);
    if g > 1 {
        violations.push(Violation::NotCoprime { gcd: g });
    }

    FeasibilityReport {
        violations,
        routing,
        td: t.td(&d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_depanal_testsupport::*;

    /// Minimal local construction of the bit-level matmul structure (3.12)
    /// without depending on `bitlevel-depanal` (which sits above this crate).
    mod bitlevel_depanal_testsupport {
        use bitlevel_ir::{AlgorithmTriplet, BoxSet, Dependence, DependenceSet, Predicate};
        use bitlevel_linalg::IVec;

        pub fn matmul_bitlevel(u: i64, p: i64) -> AlgorithmTriplet {
            let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
            AlgorithmTriplet::new(
                j,
                DependenceSet::new(vec![
                    Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                    Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                    Dependence::conditional(
                        [0, 0, 1, 0, 0],
                        "z",
                        Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                    ),
                    Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                    Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                    Dependence::uniform([0, 0, 0, 1, -1], "z"),
                    Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
                ]),
                "bit-level matmul, Expansion II",
            )
        }

        pub fn t_of_4_2(p: i64) -> crate::transform::MappingMatrix {
            crate::transform::MappingMatrix::new(
                bitlevel_linalg::IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]),
                IVec::from([1, 1, 1, 2, 1]),
            )
        }

        pub fn t_prime_of_4_6(p: i64) -> crate::transform::MappingMatrix {
            crate::transform::MappingMatrix::new(
                bitlevel_linalg::IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]]),
                IVec::from([p, p, 1, 2, 1]),
            )
        }
    }

    #[test]
    fn paper_t_is_feasible_theorem_4_5() {
        let p = 3;
        let alg = matmul_bitlevel(3, p);
        let rep = check_feasibility(&t_of_4_2(p), &alg, &Interconnect::paper_p(p));
        assert!(rep.is_feasible(), "violations: {:?}", rep.violations);
        // Buffer on d̄₄'s link, per Fig. 4.
        let routing = rep.routing.expect("routed");
        // Column order here: y,x,z,d4,d5,d6,d7 (test-support order).
        assert_eq!(routing.buffers[3], 1);
    }

    #[test]
    fn paper_t_prime_is_feasible() {
        let p = 3;
        let alg = matmul_bitlevel(3, p);
        let rep = check_feasibility(&t_prime_of_4_6(p), &alg, &Interconnect::paper_p_prime());
        assert!(rep.is_feasible(), "violations: {:?}", rep.violations);
    }

    #[test]
    fn t_prime_with_long_wire_schedule_fails_condition_2() {
        // Π = [1,1,1,2,1] cannot route [p,0] through unit primitives in one
        // hop: the nearest-neighbour machine rejects the fast schedule.
        let p = 3;
        let alg = matmul_bitlevel(2, p);
        let rep = check_feasibility(&t_of_4_2(p), &alg, &Interconnect::paper_p_prime());
        assert!(!rep.is_feasible());
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Unroutable { .. })));
    }

    #[test]
    fn reversed_schedule_fails_condition_1() {
        let p = 2;
        let alg = matmul_bitlevel(2, p);
        let mut t = t_of_4_2(p);
        t.schedule = bitlevel_linalg::IVec::from([-1, 1, 1, 2, 1]);
        let rep = check_feasibility(&t, &alg, &Interconnect::paper_p(p));
        assert!(rep.violations.iter().any(|v| matches!(
            v,
            Violation::NonPositiveSchedule {
                column: 0,
                value: -1
            }
        )));
    }

    #[test]
    fn collapsed_space_fails_rank_and_conflicts() {
        let p = 2;
        let alg = matmul_bitlevel(2, p);
        // S with two identical rows: rank(T) = 2 < 3 and massive conflicts.
        let t = MappingMatrix::new(
            bitlevel_linalg::IMat::from_rows(&[&[p, 0, 0, 1, 0], &[p, 0, 0, 1, 0]]),
            bitlevel_linalg::IVec::from([1, 1, 1, 2, 1]),
        );
        let rep = check_feasibility(&t, &alg, &Interconnect::paper_p(p));
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, Violation::RankDeficient { .. })));
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Conflict { .. })));
    }

    #[test]
    fn scaled_mapping_fails_condition_5() {
        let p = 2;
        let alg = matmul_bitlevel(2, p);
        let t = MappingMatrix::new(
            bitlevel_linalg::IMat::from_rows(&[&[2 * p, 0, 0, 2, 0], &[0, 2 * p, 0, 0, 2]]),
            bitlevel_linalg::IVec::from([2, 2, 2, 4, 2]),
        );
        let rep = check_feasibility(&t, &alg, &Interconnect::paper_p(2 * p));
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NotCoprime { gcd: 2 })));
    }

    #[test]
    fn td_matrix_reported() {
        let p = 3;
        let alg = matmul_bitlevel(3, p);
        let rep = check_feasibility(&t_of_4_2(p), &alg, &Interconnect::paper_p(p));
        // Last row of TD is Π·D = [1,1,1,2,1,1,2] (paper order here).
        assert_eq!(rep.td.row(2), &[1, 1, 1, 2, 1, 1, 2]);
    }
}
