//! Definition 4.1 over general polyhedral index sets.
//!
//! The box-set machinery covers the paper's model (2.1); this module extends
//! conditions 1/3 and the execution-time formula (4.5) to arbitrary
//! [`Polyhedron`] index sets (triangular nests à la LU decomposition, which
//! the paper names as a target application of the method):
//!
//! * conflicts: a nonzero kernel-lattice vector of `T` conflicts iff it is a
//!   *realised difference* of the polyhedron (for boxes every
//!   difference-box vector is realised; for general polyhedra it must be
//!   checked);
//! * total time: `max Π(q̄₁ − q̄₂) + 1` no longer separates per axis — it is
//!   computed over the exact point set.

use crate::conflict::ConflictResult;
use crate::transform::MappingMatrix;
use bitlevel_ir::{enumerate_lattice_in_box, Polyhedron};
use bitlevel_linalg::{integer_nullspace, IVec};

/// Conflict check (condition 3) over a polyhedron.
pub fn check_conflicts_polyhedral(t: &MappingMatrix, p: &Polyhedron) -> ConflictResult {
    assert_eq!(t.n(), p.dim(), "mapping/index dimension mismatch");
    let kernel = integer_nullspace(&t.t_matrix());
    if kernel.is_empty() {
        return ConflictResult::ConflictFree;
    }
    let diff = p.bounding.difference_box();
    for v in enumerate_lattice_in_box(&IVec::zeros(t.n()), &kernel, &diff) {
        if v.is_zero() {
            continue;
        }
        // The kernel vector conflicts only if both endpoints can lie inside
        // the polyhedron.
        if let Some(j) = p.iter_points().find(|j| p.contains(&(j + &v))) {
            return ConflictResult::Conflict(&j + &v, j);
        }
    }
    ConflictResult::ConflictFree
}

/// Total execution time (4.5) over a polyhedron: `max Π(q̄₁ − q̄₂) + 1`,
/// computed from the exact extremes of `Π·q̄` over the point set. Returns
/// `None` for an empty polyhedron.
pub fn total_time_polyhedral(pi: &IVec, p: &Polyhedron) -> Option<i64> {
    assert_eq!(pi.dim(), p.dim(), "schedule/index dimension mismatch");
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    let mut any = false;
    for q in p.iter_points() {
        let v = q.dot(pi);
        min = min.min(v);
        max = max.max(v);
        any = true;
    }
    any.then(|| max - min + 1)
}

/// Processor count over a polyhedron: `|{S·q̄ : q̄ ∈ P}|`.
pub fn processor_count_polyhedral(space: &bitlevel_linalg::IMat, p: &Polyhedron) -> usize {
    let mut seen = std::collections::HashSet::new();
    for q in p.iter_points() {
        seen.insert(space.matvec(&q));
    }
    seen.len()
}

/// Time-optimal schedule search over a polyhedral index set: like
/// [`crate::schedule::find_optimal_schedule`], but condition 3 uses
/// realised-difference conflict checking and the objective is the exact
/// polyhedral makespan. Conditions 1, 2, 4 and 5 are index-set independent.
///
/// Returns `(Π, time)` of the optimum within `|Π| ≤ bound`, or `None`.
pub fn find_optimal_schedule_polyhedral(
    space: &bitlevel_linalg::IMat,
    deps: &bitlevel_ir::DependenceSet,
    set: &Polyhedron,
    ic: &crate::interconnect::Interconnect,
    bound: i64,
) -> Option<(IVec, i64)> {
    assert!(bound >= 1, "search bound must be positive");
    let n = set.dim();
    assert_eq!(space.cols(), n, "space/index dimension mismatch");
    let d = deps.matrix();
    let range: Vec<i64> = (-bound..=bound).collect();
    let total = crate::schedule::candidate_count(range.len(), n as u32);
    let mut best: Option<(i64, IVec)> = None;
    let mut idx = vec![0usize; n];
    for _ in 0..total {
        let pi = IVec(idx.iter().map(|&i| range[i]).collect());
        // Advance the odometer up front so `continue` is safe.
        for slot in (0..n).rev() {
            idx[slot] += 1;
            if idx[slot] < range.len() {
                break;
            }
            idx[slot] = 0;
        }
        // Condition 1.
        if !(0..d.cols()).all(|c| d.col(c).dot(&pi) > 0) {
            continue;
        }
        // Objective (exact over the polyhedron); prune before expensive
        // checks.
        let Some(time) = total_time_polyhedral(&pi, set) else {
            continue;
        };
        if let Some((bt, ref bpi)) = best {
            if time > bt || (time == bt && pi >= *bpi) {
                continue;
            }
        }
        // Condition 2 (routing within the budget).
        let routable = (0..d.cols()).all(|c| {
            let budget = d.col(c).dot(&pi);
            ic.route(&space.matvec(&d.col(c)), budget).is_some()
        });
        if !routable {
            continue;
        }
        // Conditions 4 and 5.
        let t = MappingMatrix::new(space.clone(), pi.clone());
        let tm = t.t_matrix();
        if bitlevel_linalg::rank(&tm) < t.k() {
            continue;
        }
        let entries: Vec<i64> = tm.entries().copied().collect();
        if bitlevel_linalg::gcd_all(&entries) > 1 {
            continue;
        }
        // Condition 3 over the polyhedron.
        if !check_conflicts_polyhedral(&t, set).is_free() {
            continue;
        }
        best = Some((time, pi));
    }
    best.map(|(time, pi)| (pi, time))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_ir::BoxSet;
    use bitlevel_linalg::IMat;

    #[test]
    fn box_polyhedron_agrees_with_box_checker() {
        let b = BoxSet::cube(3, 1, 3);
        let p = Polyhedron::from_box(&b);
        let t = MappingMatrix::new(
            IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]),
            IVec::from([1, 1, 1]),
        );
        assert_eq!(
            check_conflicts_polyhedral(&t, &p).is_free(),
            crate::conflict::check_conflicts(&t, &b).is_free()
        );
        assert_eq!(
            total_time_polyhedral(&t.schedule, &p),
            Some(crate::schedule::total_time(&t.schedule, &b))
        );
        assert_eq!(
            processor_count_polyhedral(&t.space, &p),
            crate::schedule::processor_count(&t.space, &b)
        );
    }

    #[test]
    fn triangle_admits_mappings_the_box_rejects() {
        // Kernel direction [1, -1] of T = [[1,1],[1,1]]: in the full box the
        // vector is realised (conflict), but in the *upper* wedge
        // { j1 ≤ j2 }… it still is. Use a thin wedge where it is not:
        // { j2 = j1 } diagonal strip via two constraints.
        let strip = Polyhedron::new(
            IMat::from_rows(&[&[1, -1], &[-1, 1], &[1, 0], &[-1, 0]]),
            IVec::from([0, 0, 4, -1]),
            BoxSet::cube(2, 1, 4),
        ); // exactly the diagonal j1 = j2, 1..4
        assert_eq!(strip.cardinality(), 4);
        let t = MappingMatrix::new(IMat::from_rows(&[&[1, 1]]), IVec::from([1, 1]));
        // Kernel of T = span([1,-1]); on the diagonal strip, j + [1,-1] never
        // stays inside -> conflict-free…
        assert!(check_conflicts_polyhedral(&t, &strip).is_free());
        // …while on the full box the same mapping conflicts.
        let b = Polyhedron::from_box(&BoxSet::cube(2, 1, 4));
        assert!(!check_conflicts_polyhedral(&t, &b).is_free());
    }

    #[test]
    fn triangular_nest_time_is_tighter_than_box_time() {
        // Π = [1, 1] over the lower triangle {1 ≤ j2 ≤ j1 ≤ 5}: the extreme
        // difference is (5,5)−(1,1) -> 9; over the box it is the same here,
        // but with Π = [1, -1] the triangle is strictly tighter: max j1−j2 is
        // 4 (box: 8... box extremes (5,1),(1,5) give 4−(−4)=8).
        let tri = Polyhedron::lower_triangle(1, 5);
        let pi = IVec::from([1, -1]);
        assert_eq!(total_time_polyhedral(&pi, &tri), Some(5));
        let b = Polyhedron::from_box(&BoxSet::cube(2, 1, 5));
        assert_eq!(total_time_polyhedral(&pi, &b), Some(9));
    }

    #[test]
    fn empty_polyhedron_yields_none() {
        let empty = Polyhedron::new(
            IMat::from_rows(&[&[1, 0], &[-1, 0]]),
            IVec::from([0, -1]), // j1 ≤ 0 and j1 ≥ 1
            BoxSet::cube(2, 0, 2),
        );
        assert_eq!(empty.cardinality(), 0);
        assert_eq!(total_time_polyhedral(&IVec::from([1, 1]), &empty), None);
        // And a conflict check on it is trivially free.
        let t = MappingMatrix::new(IMat::from_rows(&[&[0, 0]]), IVec::from([0, 0]));
        assert!(check_conflicts_polyhedral(&t, &empty).is_free());
    }

    #[test]
    fn processor_count_on_triangle() {
        // S = [1, 0]: processors = number of distinct j1 values = 4.
        let tri = Polyhedron::lower_triangle(1, 4);
        assert_eq!(
            processor_count_polyhedral(&IMat::from_rows(&[&[1, 0]]), &tri),
            4
        );
    }

    #[test]
    fn polyhedral_schedule_search_on_lu_wedge() {
        use bitlevel_ir::{Dependence, DependenceSet};
        // The classic uniformised LU structure (D = I₃) over the wedge
        // { k ≤ i, j }, projected along k. The optimum under unit links +
        // static must be Π = [1,1,1] (all three columns need π > 0, and any
        // larger entry only lengthens the makespan).
        let n = 3i64;
        let wedge = Polyhedron::new(
            IMat::from_rows(&[
                &[1, 0, 0],
                &[-1, 0, 0],
                &[0, 1, 0],
                &[1, -1, 0],
                &[0, 0, 1],
                &[1, 0, -1],
            ]),
            IVec::from([n, -1, n, 0, n, 0]),
            bitlevel_ir::BoxSet::cube(3, 1, n),
        );
        let deps = DependenceSet::new(vec![
            Dependence::uniform([1, 0, 0], "pivot"),
            Dependence::uniform([0, 1, 0], "row"),
            Dependence::uniform([0, 0, 1], "col"),
        ]);
        let s = IMat::from_rows(&[&[0, 1, 0], &[0, 0, 1]]);
        let ic = crate::interconnect::Interconnect::new(IMat::from_rows(&[
            &[0, 0, 1, -1, 0],
            &[1, -1, 0, 0, 0],
        ]));
        let (pi, time) =
            find_optimal_schedule_polyhedral(&s, &deps, &wedge, &ic, 2).expect("feasible");
        assert_eq!(pi, IVec::from([1, 1, 1]));
        assert_eq!(time, 3 * (n - 1) + 1);
    }

    #[test]
    fn polyhedral_search_exploits_the_wedge() {
        use bitlevel_ir::{Dependence, DependenceSet};
        // On the diagonal strip {j1 = j2} the mapping S = [1,1] with kernel
        // [1,-1] is conflict-free (no realised difference), so schedules the
        // box would reject become optimal. Dependence along the diagonal.
        let strip = Polyhedron::new(
            IMat::from_rows(&[&[1, -1], &[-1, 1], &[1, 0], &[-1, 0]]),
            IVec::from([0, 0, 4, -1]),
            bitlevel_ir::BoxSet::cube(2, 1, 4),
        );
        let deps = DependenceSet::new(vec![Dependence::uniform([1, 1], "t")]);
        let s = IMat::from_rows(&[&[1, 1]]);
        let ic = crate::interconnect::Interconnect::new(IMat::from_rows(&[&[2, -2, 0]]));
        let found = find_optimal_schedule_polyhedral(&s, &deps, &strip, &ic, 1);
        // Π = [1, 0] or [0, 1] gives makespan 4 over the 4-point strip.
        let (pi, time) = found.expect("feasible on the strip");
        assert_eq!(time, 4);
        assert!(pi == IVec::from([0, 1]) || pi == IVec::from([1, 0]), "{pi}");
        // The wedge-specific win: even the degenerate schedule Π = [1, 1]
        // (T rank 1, kernel [1,−1] persists) is conflict-free on the strip —
        // on the box the same T conflicts. (The search itself would reject
        // this T on condition 4; the conflict checker is what distinguishes
        // the sets.)
        let t_degenerate = MappingMatrix::new(s.clone(), IVec::from([1, 1]));
        assert!(check_conflicts_polyhedral(&t_degenerate, &strip).is_free());
        let b = Polyhedron::from_box(&bitlevel_ir::BoxSet::cube(2, 1, 4));
        assert!(!check_conflicts_polyhedral(&t_degenerate, &b).is_free());
    }
}
