//! Pareto design-space exploration over Definition 4.1.
//!
//! Section 4 derives its two bit-level arrays (eqs. (4.2) and (4.6)) by hand
//! for one fixed space mapping `S`; Theorem 4.5 certifies time-optimality for
//! that slice only. This module searches the **joint** design space — space
//! mappings `S`, schedule vectors `Π`, and interconnection primitives `P` —
//! and returns the deterministic Pareto frontier over
//! `(total_time, processor_count, max_wire_length)` instead of a single
//! optimum, in the spirit of the lower-dimensional synthesis literature the
//! paper builds on (Shang & Fortes [5,6], Ganapathy & Wah [10]).
//!
//! The search is branch-and-bound in structure:
//!
//! 1. one shared candidate list of schedule vectors passing the cheap
//!    condition-1 screen `Π·D > 0`, sorted by `(total_time, lexicographic)` —
//!    the head of the list *is* [`crate::schedule::dependence_only_bound`];
//! 2. per space mapping, memoised sub-results reused across machines:
//!    `rank(S)` (condition 4 can never hold when `S` is row-deficient),
//!    the processor count, and `S·D`;
//! 3. per `(S, machine)` pair, memoised per-column **minimum hop counts**
//!    (a routing lower bound independent of `Π`): a pair whose `S·d̄ᵢ` is
//!    unreachable within the maximal budget is pruned without touching any
//!    schedule, and a candidate with `Π·d̄ᵢ` below the hop bound is skipped
//!    without the full check;
//! 4. the work bound `total_time · processors ≥ |J|` (necessary for
//!    injectivity) screens candidates before the full Definition 4.1 check;
//! 5. the first candidate in the shared order passing the full check is the
//!    pair's time-minimal design — identical tie-breaking to
//!    [`crate::schedule::find_optimal_schedule`].
//!
//! Pairs are explored rayon-parallel; the frontier itself is assembled
//! sequentially, so results are deterministic.

use crate::error::MappingError;
use crate::feasibility::check_feasibility;
use crate::interconnect::Interconnect;
use crate::schedule::{candidate_count, processor_count, total_time, MAX_SEARCH_CANDIDATES};
use crate::transform::MappingMatrix;
use bitlevel_ir::AlgorithmTriplet;
use bitlevel_linalg::{gcd_all, rank, IMat, IVec};
use rayon::prelude::*;
use serde::Serialize;

/// A named interconnect the explorer may assign to a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineOption {
    /// Human-readable name (appears in reports and CSV exports).
    pub label: String,
    /// The interconnection primitives.
    pub interconnect: Interconnect,
}

impl MachineOption {
    /// Labels an interconnect.
    pub fn new(label: impl Into<String>, interconnect: Interconnect) -> Self {
        MachineOption {
            label: label.into(),
            interconnect,
        }
    }
}

/// Explorer configuration: the schedule bound, the machine menu and an
/// optional physical-PE budget.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Schedule entries range over `[−pi_bound, pi_bound]`.
    pub pi_bound: i64,
    /// Interconnect options; every `(S, machine)` pair is explored.
    pub machines: Vec<MachineOption>,
    /// Physical worker budget: when `Some(k)` with `k` below a design's
    /// virtual PE count, the design is costed as LSGP-folded onto `k`
    /// workers — each firing cycle expands to `⌈fires/k⌉` slices — and the
    /// Pareto axes become *physical* time and *physical* PEs. `None` keeps
    /// the paper's unbounded virtual array (physical ≡ virtual).
    pub max_physical_pes: Option<usize>,
}

/// One non-dominated design on the `(physical time, physical PEs, wire)`
/// frontier. Without a [`ExploreConfig::max_physical_pes`] budget the
/// physical axes coincide with the virtual ones, so the frontier is the
/// paper's `(time, processors, wire)` frontier unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FrontierPoint {
    /// The full mapping `T = [S; Π]`.
    pub mapping: MappingMatrix,
    /// Label of the machine realising the design.
    pub machine: String,
    /// Its interconnection primitives.
    pub interconnect: Interconnect,
    /// Total execution time (4.5) on the unbounded virtual array.
    pub time: i64,
    /// Exact processor count `|S·J|` of the virtual array.
    pub processors: usize,
    /// Longest wire of the machine (L∞).
    pub max_wire_length: i64,
    /// PEs of the physical pool realising the design: the budget when one
    /// binds, the virtual count otherwise.
    pub physical_pes: usize,
    /// Execution time on the physical pool: `time` plus the extra cycle
    /// slices LSGP folding introduces (equal to `time` when the budget
    /// covers the peak wavefront).
    pub physical_time: i64,
}

/// Where the search effort went — the evidence that pruning worked.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ExploreStats {
    /// Space mappings considered.
    pub spaces: usize,
    /// Machines considered.
    pub machines: usize,
    /// Schedule candidates per `(S, machine)` pair (`(2B+1)ⁿ`).
    pub schedule_candidates: u128,
    /// The exhaustive joint space: `schedule_candidates · spaces · machines`.
    pub exhaustive: u128,
    /// Candidates surviving the `Π·D > 0` screen (shared across pairs).
    pub screened: u128,
    /// Full Definition 4.1 checks actually run — the "examined" count to
    /// compare against `exhaustive`.
    pub full_checks: u128,
    /// `(S, machine)` pairs eliminated before any full check (rank-deficient
    /// `S` or a dependence unroutable at the maximal budget).
    pub pruned_pairs: usize,
    /// Pairs that produced a feasible design.
    pub feasible_pairs: usize,
    /// Best time over condition-1-passing schedules — the machine- and
    /// `S`-independent lower bound of `dependence_only_bound`.
    pub lower_bound: Option<i64>,
}

/// Result of [`explore`]: the Pareto frontier plus search statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Exploration {
    /// Non-dominated designs, sorted by `(time, processors, wire)`; ties on
    /// the objective triple keep the lexicographically smallest `(S, Π,
    /// machine)` witness.
    pub frontier: Vec<FrontierPoint>,
    /// Search statistics.
    pub stats: ExploreStats,
}

impl Exploration {
    /// The time-minimal frontier design, if any design was feasible.
    pub fn time_minimal(&self) -> Option<&FrontierPoint> {
        self.frontier.first()
    }

    /// Frontier designs whose longest wire does not exceed `wire` — e.g.
    /// `nearest_neighbour_frontier(1)` for the Fig. 5 regime.
    pub fn within_wire_length(&self, wire: i64) -> Vec<&FrontierPoint> {
        self.frontier
            .iter()
            .filter(|f| f.max_wire_length <= wire)
            .collect()
    }
}

/// Generates the explorer's family of space mappings: every `rows`-row
/// matrix whose rows come from a pool of sign-normalised **primitive**
/// vectors with at most two nonzero entries bounded by `entry_bound`
/// (unit-row selections `ēᵢ` and two-axis combinations `a·ēᵢ + b·ēⱼ`,
/// `gcd(a,b) = 1`), taken as unordered combinations of distinct rows with
/// full row rank. The paper's own `S` of (4.2) — rows `p·ē₁ + ē₄` and
/// `p·ē₂ + ē₅` — is a member whenever `entry_bound ≥ p`.
pub fn generate_space_family(n: usize, rows: usize, entry_bound: i64) -> Vec<IMat> {
    let pool = row_pool(n, entry_bound);
    let mut picked: Vec<usize> = Vec::with_capacity(rows);
    let mut out = Vec::new();
    combinations(&pool, rows, 0, &mut picked, &mut out);
    out
}

/// Sign-normalised primitive rows with at most two nonzero entries.
fn row_pool(n: usize, entry_bound: i64) -> Vec<IVec> {
    let mut pool: Vec<IVec> = (0..n).map(|i| IVec::unit(n, i)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            for a in 1..=entry_bound {
                for b in -entry_bound..=entry_bound {
                    if b == 0 || gcd_all(&[a, b]) != 1 || (a, b) == (1, 0) {
                        continue;
                    }
                    let mut v = IVec::zeros(n);
                    v[i] = a;
                    v[j] = b;
                    pool.push(v);
                }
            }
        }
    }
    pool
}

fn combinations(
    pool: &[IVec],
    rows: usize,
    from: usize,
    picked: &mut Vec<usize>,
    out: &mut Vec<IMat>,
) {
    if picked.len() == rows {
        let m = IMat::from_rows(
            &picked
                .iter()
                .map(|&i| pool[i].as_slice())
                .collect::<Vec<_>>(),
        );
        if rank(&m) == rows {
            out.push(m);
        }
        return;
    }
    for i in from..pool.len() {
        picked.push(i);
        combinations(pool, rows, i + 1, picked, out);
        picked.pop();
    }
}

/// Searches `spaces × machines × Π ∈ [−B, B]ⁿ` and returns the Pareto
/// frontier over `(total_time, processor_count, max_wire_length)` together
/// with pruning statistics. See the module docs for the pruning structure.
///
/// Every reported design has passed the **full** five-condition check of
/// Definition 4.1. With a single space and machine this degenerates to
/// [`crate::schedule::find_optimal_schedule`] (same optimum, same
/// tie-breaking); that equivalence is property-tested.
pub fn explore(
    alg: &AlgorithmTriplet,
    spaces: &[IMat],
    config: &ExploreConfig,
) -> Result<Exploration, MappingError> {
    let n = alg.dim();
    if config.pi_bound < 1 {
        return Err(MappingError::NonPositiveBound {
            bound: config.pi_bound,
        });
    }
    for s in spaces {
        if s.cols() != n {
            return Err(MappingError::DimensionMismatch {
                what: "space/algorithm",
                left: s.cols(),
                right: n,
            });
        }
    }
    for m in &config.machines {
        if let Some(s) = spaces.first() {
            if m.interconnect.dim() != s.rows() {
                return Err(MappingError::DimensionMismatch {
                    what: "interconnect/space",
                    left: m.interconnect.dim(),
                    right: s.rows(),
                });
            }
        }
    }

    // Shared sorted candidate list: the Π·D > 0 screen and the closed-form
    // time are independent of S and the machine, so they are computed once.
    let range: Vec<i64> = (-config.pi_bound..=config.pi_bound).collect();
    let schedule_candidates = candidate_count(range.len(), n as u32);
    if schedule_candidates > MAX_SEARCH_CANDIDATES {
        return Err(MappingError::SearchSpaceTooLarge {
            candidates: schedule_candidates,
            max: MAX_SEARCH_CANDIDATES,
        });
    }
    let d = alg.dependence_matrix();
    let mut screened: Vec<(i64, IVec)> = Vec::new();
    let mut idx = vec![0usize; n];
    for _ in 0..schedule_candidates {
        let pi = IVec(idx.iter().map(|&i| range[i]).collect());
        if (0..d.cols()).all(|c| d.col(c).dot(&pi) > 0) {
            screened.push((total_time(&pi, &alg.index_set), pi));
        }
        for slot in (0..n).rev() {
            idx[slot] += 1;
            if idx[slot] < range.len() {
                break;
            }
            idx[slot] = 0;
        }
    }
    screened.sort();
    let lower_bound = screened.first().map(|(t, _)| *t);

    // Maximal per-column routing budget any in-bound schedule can grant:
    // Π·d̄ᵢ ≤ B·‖d̄ᵢ‖₁.
    let max_budgets: Vec<i64> = (0..d.cols())
        .map(|c| config.pi_bound * d.col(c).l1_norm())
        .collect();
    let cardinality = alg.index_set.cardinality();

    // One task per space: machines share the per-S memo (rank, |S·J|, S·D).
    let per_space: Vec<(Vec<FrontierPoint>, u128, usize)> = spaces
        .par_iter()
        .map(|space| {
            let mut points = Vec::new();
            let mut full_checks = 0u128;
            let mut pruned = 0usize;
            if rank(space) != space.rows() {
                // Condition 4 needs rank(T) = k, impossible for any Π.
                pruned += config.machines.len();
                return (points, full_checks, pruned);
            }
            let procs = processor_count(space, &alg.index_set);
            let sd = space.matmul(&d);
            for machine in &config.machines {
                let ic = &machine.interconnect;
                // Per-column minimum hops at the maximal budget: a routing
                // lower bound valid for every candidate schedule.
                let mut min_hops = Vec::with_capacity(sd.cols());
                let mut routable = true;
                for (c, &budget) in max_budgets.iter().enumerate().take(sd.cols()) {
                    match ic.route(&sd.col(c), budget) {
                        Some(rt) => min_hops.push(rt.hops),
                        None => {
                            routable = false;
                            break;
                        }
                    }
                }
                if !routable {
                    pruned += 1;
                    continue;
                }
                let mut winner = None;
                for (time, pi) in &screened {
                    // Work bound: |J| computations fit in procs·time slots.
                    if (procs as u128) * (*time as u128) < cardinality {
                        continue;
                    }
                    // Routing bound: Π·d̄ᵢ hops must cover the minimum.
                    if (0..sd.cols()).any(|c| d.col(c).dot(pi) < min_hops[c]) {
                        continue;
                    }
                    let t = MappingMatrix::new(space.clone(), pi.clone());
                    full_checks += 1;
                    if check_feasibility(&t, alg, ic).is_feasible() {
                        let (physical_pes, physical_time) = match config.max_physical_pes {
                            Some(k) if k > 0 && k < procs => {
                                (k, lsgp_time(&alg.index_set, pi, *time, k))
                            }
                            _ => (procs, *time),
                        };
                        winner = Some(FrontierPoint {
                            mapping: t,
                            machine: machine.label.clone(),
                            interconnect: ic.clone(),
                            time: *time,
                            processors: procs,
                            max_wire_length: ic.max_wire_length(),
                            physical_pes,
                            physical_time,
                        });
                        break;
                    }
                }
                if let Some(w) = winner {
                    points.push(w);
                }
            }
            (points, full_checks, pruned)
        })
        .collect();

    let mut candidates = Vec::new();
    let mut full_checks = 0u128;
    let mut pruned_pairs = 0usize;
    for (pts, fc, pr) in per_space {
        candidates.extend(pts);
        full_checks += fc;
        pruned_pairs += pr;
    }
    let feasible_pairs = candidates.len();
    let frontier = pareto_frontier(candidates);

    let pairs = (spaces.len() as u128) * (config.machines.len() as u128);
    Ok(Exploration {
        frontier,
        stats: ExploreStats {
            spaces: spaces.len(),
            machines: config.machines.len(),
            schedule_candidates,
            exhaustive: schedule_candidates.saturating_mul(pairs),
            screened: screened.len() as u128,
            full_checks,
            pruned_pairs,
            feasible_pairs,
            lower_bound,
        },
    })
}

/// LSGP execution time of schedule `pi` on a `k`-worker physical pool: every
/// firing cycle expands to `⌈fires/k⌉` barrier slices, idle cycles elapse
/// unchanged — so this is `time` plus the extra slices, and collapses to
/// `time` exactly when `k` covers the peak wavefront.
fn lsgp_time(set: &bitlevel_ir::BoxSet, pi: &IVec, time: i64, k: usize) -> i64 {
    let mut fires: std::collections::HashMap<i64, u64> = std::collections::HashMap::new();
    for q in set.iter_points() {
        *fires.entry(q.dot(pi)).or_insert(0) += 1;
    }
    let extra: i64 = fires
        .values()
        .map(|&f| f.div_ceil(k as u64) as i64 - 1)
        .sum();
    time + extra
}

/// Deterministic non-dominated filter over
/// `(physical time, physical PEs, wire)`.
///
/// Points are sorted by objectives then witness `(S, Π, machine)`; a point is
/// kept iff no already-kept point is ≤ on all three objectives (which also
/// collapses exact objective ties onto their lexicographically smallest
/// witness). Without a physical budget the axes equal the virtual
/// `(time, processors, wire)`, the paper's frontier.
fn pareto_frontier(mut points: Vec<FrontierPoint>) -> Vec<FrontierPoint> {
    points.sort_by_key(point_key);
    let mut out: Vec<FrontierPoint> = Vec::new();
    for p in points {
        let dominated = out.iter().any(|q| {
            q.physical_time <= p.physical_time
                && q.physical_pes <= p.physical_pes
                && q.max_wire_length <= p.max_wire_length
        });
        if !dominated {
            out.push(p);
        }
    }
    out
}

#[allow(clippy::type_complexity)] // a sort key, used once just above
fn point_key(p: &FrontierPoint) -> (i64, usize, i64, Vec<i64>, Vec<i64>, String) {
    (
        p.physical_time,
        p.physical_pes,
        p.max_wire_length,
        p.mapping.space.entries().copied().collect(),
        p.mapping.schedule.as_slice().to_vec(),
        p.machine.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::PaperDesign;
    use crate::schedule::find_optimal_schedule;
    use bitlevel_ir::{BoxSet, Dependence, DependenceSet, Predicate};

    fn matmul_bitlevel(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul, Expansion II",
        )
    }

    fn paper_machines(p: i64) -> Vec<MachineOption> {
        vec![
            MachineOption::new("P (long wires)", Interconnect::paper_p(p)),
            MachineOption::new("P' (nearest neighbour)", Interconnect::paper_p_prime()),
        ]
    }

    #[test]
    fn family_contains_the_paper_space_mapping() {
        let p = 2i64;
        let family = generate_space_family(5, 2, p);
        assert!(
            family.contains(&PaperDesign::space(p)),
            "family of {} must include S of (4.2)",
            family.len()
        );
        // Every member: full rank, primitive sign-normalised rows.
        for s in &family {
            assert_eq!(rank(s), 2);
            for r in 0..s.rows() {
                let row = s.row(r);
                assert_eq!(gcd_all(row), 1);
                assert!(row.iter().find(|&&x| x != 0).copied().unwrap_or(0) > 0);
            }
        }
    }

    #[test]
    fn explorer_restricted_to_paper_s_matches_schedule_search() {
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let s = PaperDesign::space(p);
        for machine in paper_machines(p) {
            let direct =
                find_optimal_schedule(&s, &alg, &machine.interconnect, 2).expect("feasible");
            let ex = explore(
                &alg,
                &[s.clone()],
                &ExploreConfig {
                    pi_bound: 2,
                    machines: vec![machine.clone()],
                    max_physical_pes: None,
                },
            )
            .expect("well-formed");
            assert_eq!(ex.frontier.len(), 1, "single pair → single point");
            let f = &ex.frontier[0];
            assert_eq!(f.mapping.schedule, direct.pi, "machine {}", machine.label);
            assert_eq!(f.time, direct.time);
            assert!(ex.stats.full_checks <= ex.stats.screened);
        }
    }

    #[test]
    fn frontier_rediscovers_both_paper_designs() {
        // u = 3, p = 2: large enough that the degenerate small-size designs
        // (see `joint_search_beats_fixed_s_at_tiny_sizes`) no longer displace
        // the paper's schedules from the frontier.
        let (u, p) = (3i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let family = generate_space_family(5, 2, p);
        let ex = explore(
            &alg,
            &family,
            &ExploreConfig {
                pi_bound: p,
                machines: paper_machines(p),
                max_physical_pes: None,
            },
        )
        .expect("well-formed");

        // Time-minimal end: Theorem 4.5's schedule and time, exactly.
        let tm = ex.time_minimal().expect("nonempty frontier");
        assert_eq!(tm.time, 3 * (u - 1) + 3 * (p - 1) + 1);
        assert_eq!(tm.time, PaperDesign::TimeOptimal.total_time(u, p));
        assert_eq!(tm.mapping.schedule, IVec::from([1, 1, 1, 2, 1]));
        assert_eq!(
            tm.time,
            ex.stats.lower_bound.unwrap(),
            "optimum meets the lower bound"
        );

        // Nearest-neighbour end: Π' = [p, p, 1, 2, 1] of (4.6) at the
        // closed-form time — the best wire-length-1 design.
        let nn = ex.within_wire_length(1);
        let nn_best = nn.first().expect("a nearest-neighbour design exists");
        assert_eq!(nn_best.mapping.schedule, IVec::from([p, p, 1, 2, 1]));
        assert_eq!(nn_best.time, PaperDesign::NearestNeighbour.total_time(u, p));

        // Every frontier design re-passes the full Definition 4.1 check.
        for f in &ex.frontier {
            assert!(
                check_feasibility(&f.mapping, &alg, &f.interconnect).is_feasible(),
                "frontier design must be feasible: {:?}",
                f.mapping
            );
        }

        // Pruning is real: ≥10× fewer full checks than the exhaustive space.
        assert!(ex.stats.full_checks * 10 <= ex.stats.exhaustive);
        assert!(ex.stats.full_checks >= 1);
    }

    #[test]
    fn joint_search_beats_fixed_s_at_tiny_sizes() {
        // At u = p = 2 the joint (S, Π) search finds a *better*
        // nearest-neighbour design than the paper's T' of (4.6): Theorem 4.5
        // and (4.6) optimise Π for the fixed S of (4.2) only, and the tiny
        // index set leaves room for serialising mappings with fewer
        // processors. The explorer must surface that honestly rather than
        // echo the hand-derived design.
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let family = generate_space_family(5, 2, p);
        let ex = explore(
            &alg,
            &family,
            &ExploreConfig {
                pi_bound: p,
                machines: paper_machines(p),
                max_physical_pes: None,
            },
        )
        .unwrap();
        let nn_best = ex.within_wire_length(1)[0];
        let paper = PaperDesign::NearestNeighbour;
        assert!(
            nn_best.time < paper.total_time(u, p),
            "strictly faster than T'"
        );
        assert!(
            (nn_best.processors as i64) < PaperDesign::processors(u, p),
            "and on fewer processors"
        );
        assert!(check_feasibility(&nn_best.mapping, &alg, &nn_best.interconnect).is_feasible());
    }

    #[test]
    fn frontier_is_non_dominated_and_sorted() {
        let (u, p) = (2i64, 2i64);
        let alg = matmul_bitlevel(u, p);
        let family = generate_space_family(5, 2, p);
        let ex = explore(
            &alg,
            &family,
            &ExploreConfig {
                pi_bound: 2,
                machines: paper_machines(p),
                max_physical_pes: None,
            },
        )
        .unwrap();
        let fr = &ex.frontier;
        for (i, a) in fr.iter().enumerate() {
            for (j, b) in fr.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dominates = a.time <= b.time
                    && a.processors <= b.processors
                    && a.max_wire_length <= b.max_wire_length;
                assert!(!dominates, "{i} dominates {j}: frontier not minimal");
            }
        }
        for w in fr.windows(2) {
            assert!(
                point_key(&w[0]) < point_key(&w[1]),
                "frontier must be sorted"
            );
        }
    }

    #[test]
    fn explore_rejects_bad_inputs_with_typed_errors() {
        let alg = matmul_bitlevel(2, 2);
        let s = PaperDesign::space(2);
        let cfg = ExploreConfig {
            pi_bound: 0,
            machines: paper_machines(2),
            max_physical_pes: None,
        };
        assert_eq!(
            explore(&alg, &[s.clone()], &cfg),
            Err(MappingError::NonPositiveBound { bound: 0 })
        );
        let narrow = IMat::from_rows(&[&[1, 0, 0]]);
        let cfg = ExploreConfig {
            pi_bound: 2,
            machines: paper_machines(2),
            max_physical_pes: None,
        };
        assert_eq!(
            explore(&alg, &[narrow], &cfg),
            Err(MappingError::DimensionMismatch {
                what: "space/algorithm",
                left: 3,
                right: 5
            })
        );
    }

    #[test]
    fn empty_inputs_give_empty_frontier() {
        let alg = matmul_bitlevel(2, 2);
        let cfg = ExploreConfig {
            pi_bound: 2,
            machines: paper_machines(2),
            max_physical_pes: None,
        };
        let ex = explore(&alg, &[], &cfg).unwrap();
        assert!(ex.frontier.is_empty());
        assert_eq!(ex.stats.full_checks, 0);
    }
}
