//! Interconnection primitives and the `SD = PK` condition (condition 2).
//!
//! "The matrix of interconnection primitives P describes the connection links
//! of processors in the processor array." Condition 2 of Definition 4.1
//! requires `S·D = P·K` where column `k̄ᵢ ≥ 0` of `K` counts how many times
//! each primitive is traversed to route the datum of dependence `d̄ᵢ`, subject
//! to the timing budget (4.1): `Σⱼ kⱼᵢ ≤ Π·d̄ᵢ` (one time unit per hop). A
//! strict surplus `Π·d̄ᵢ − Σⱼ kⱼᵢ > 0` is absorbed by **buffers** (registers)
//! on the path — exactly the paper's "buffer on the interconnection primitive
//! `[1,0]ᵀ`" in Fig. 4.

use bitlevel_linalg::{IMat, IVec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A set of interconnection primitives: the columns of `P`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interconnect {
    /// The primitive matrix `P ∈ Z^{(k−1)×r}`.
    pub p: IMat,
}

impl Interconnect {
    /// Wraps a primitive matrix.
    pub fn new(p: IMat) -> Self {
        Interconnect { p }
    }

    /// The standard 4-neighbour mesh of the paper's Section 4.1:
    /// `P = [[0,0,1,-1],[1,-1,0,0]]`.
    pub fn mesh4() -> Self {
        Interconnect::new(IMat::from_rows(&[&[0, 0, 1, -1], &[1, -1, 0, 0]]))
    }

    /// The paper's `P` of eq. (4.3) for the Fig. 4 architecture: long wires
    /// of length `p` in both directions, a static (zero) link, unit east and
    /// south links, and the diagonal `[1,−1]ᵀ`.
    pub fn paper_p(p: i64) -> Self {
        Interconnect::new(IMat::from_rows(&[
            &[p, 0, 0, 1, 0, 1],
            &[0, p, 0, 0, 1, -1],
        ]))
    }

    /// The paper's `P'` of eq. (4.7) for the Fig. 5 architecture: unit east,
    /// unit south, the diagonal, and a static link — **no long wires**.
    pub fn paper_p_prime() -> Self {
        Interconnect::new(IMat::from_rows(&[&[1, 0, 1, 0], &[0, 1, -1, 0]]))
    }

    /// Number of primitives `r`.
    pub fn count(&self) -> usize {
        self.p.cols()
    }

    /// Processor-space dimension `k − 1`.
    pub fn dim(&self) -> usize {
        self.p.rows()
    }

    /// Longest wire (L∞ length) among the primitives — Fig. 4 needs length
    /// `p`, Fig. 5 only length 1 ("long wires are not needed in Fig. 5").
    pub fn max_wire_length(&self) -> i64 {
        (0..self.count())
            .map(|j| self.p.col(j).linf_norm())
            .max()
            .unwrap_or(0)
    }

    /// Solves one column of condition 2: finds `k̄ ≥ 0` with `P·k̄ = target`
    /// and `Σ k̄ ≤ budget`, minimising the hop count `Σ k̄` (so the buffer
    /// count `budget − Σ k̄` is maximal, i.e. the routing is tightest).
    ///
    /// Breadth-first search over reachable processor offsets: each layer adds
    /// one primitive hop, so the first time `target` is reached gives the
    /// minimum hop count. Returns `None` if `target` is unreachable within
    /// `budget` hops.
    pub fn route(&self, target: &IVec, budget: i64) -> Option<Routing> {
        assert_eq!(
            target.dim(),
            self.dim(),
            "routing target dimension mismatch"
        );
        if budget < 0 {
            return None;
        }
        let r = self.count();
        let origin = IVec::zeros(self.dim());
        // visited: offset → (hops, usage vector)
        let mut visited: HashMap<IVec, IVec> = HashMap::new();
        visited.insert(origin.clone(), IVec::zeros(r));
        let mut frontier = vec![origin];
        for hops in 0..=budget {
            if let Some(usage) = visited.get(target) {
                // Found at a previous layer; hops used = Σ usage.
                let used: i64 = usage.iter().sum();
                return Some(Routing {
                    usage: usage.clone(),
                    hops: used,
                    buffers: budget - used,
                });
            }
            if hops == budget {
                break;
            }
            let mut next = Vec::new();
            for offset in frontier.drain(..) {
                let base_usage = visited[&offset].clone();
                for j in 0..r {
                    let prim = self.p.col(j);
                    if prim.is_zero() {
                        continue; // the static link never moves data
                    }
                    let reached = &offset + &prim;
                    if visited.contains_key(&reached) {
                        continue;
                    }
                    let mut usage = base_usage.clone();
                    usage[j] += 1;
                    visited.insert(reached.clone(), usage);
                    next.push(reached);
                }
            }
            frontier = next;
        }
        visited.get(target).map(|usage| {
            let used: i64 = usage.iter().sum();
            Routing {
                usage: usage.clone(),
                hops: used,
                buffers: budget - used,
            }
        })
    }

    /// Solves condition 2 for a whole dependence matrix: `SD = PK` with the
    /// per-column budget `Π·d̄ᵢ`. Returns the `K` matrix and per-column buffer
    /// counts, or the index of the first unroutable column.
    pub fn solve_k(&self, sd: &IMat, budgets: &[i64]) -> Result<KSolution, usize> {
        assert_eq!(
            sd.cols(),
            budgets.len(),
            "budget per dependence column required"
        );
        let mut cols = Vec::with_capacity(sd.cols());
        let mut buffers = Vec::with_capacity(sd.cols());
        #[allow(clippy::needless_range_loop)] // i indexes sd columns and budgets together
        for i in 0..sd.cols() {
            match self.route(&sd.col(i), budgets[i]) {
                Some(rt) => {
                    cols.push(rt.usage);
                    buffers.push(rt.buffers);
                }
                None => return Err(i),
            }
        }
        Ok(KSolution {
            k: IMat::from_columns(&cols),
            buffers,
        })
    }
}

/// A routing of one dependence column through the primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routing {
    /// Usage counts per primitive (`k̄ᵢ`).
    pub usage: IVec,
    /// Total hops `Σ k̄ᵢ`.
    pub hops: i64,
    /// Slack `Π·d̄ᵢ − Σ k̄ᵢ` to be realised as buffers.
    pub buffers: i64,
}

/// A complete `K` matrix for condition 2 with per-column buffer counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KSolution {
    /// `K ∈ Z^{r×m}`, `K ≥ 0`, `P·K = S·D`.
    pub k: IMat,
    /// `buffers[i] = Π·d̄ᵢ − Σⱼ K[j][i]`.
    pub buffers: Vec<i64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh4_shape() {
        let m = Interconnect::mesh4();
        assert_eq!(m.count(), 4);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.max_wire_length(), 1);
    }

    #[test]
    fn paper_p_has_long_wires_p_prime_does_not() {
        assert_eq!(Interconnect::paper_p(3).max_wire_length(), 3);
        assert_eq!(Interconnect::paper_p_prime().max_wire_length(), 1);
    }

    #[test]
    fn route_direct_primitive() {
        let ic = Interconnect::paper_p(3);
        // S·d̄₁ = [3,0] routes over the long wire in one hop.
        let rt = ic.route(&IVec::from([3, 0]), 1).expect("routable");
        assert_eq!(rt.hops, 1);
        assert_eq!(rt.buffers, 0);
        // Usage vector selects exactly the first primitive.
        assert_eq!(rt.usage, IVec::from([1, 0, 0, 0, 0, 0]));
    }

    #[test]
    fn route_detects_buffer_of_fig_4() {
        // The paper: "There is a buffer on the interconnection primitive
        // [1,0]ᵀ because S·d̄₄ = [1,0]ᵀ and Σ k = 1 < Π·d̄₄ = 2."
        let ic = Interconnect::paper_p(3);
        let rt = ic.route(&IVec::from([1, 0]), 2).expect("routable");
        assert_eq!(rt.hops, 1);
        assert_eq!(rt.buffers, 1);
    }

    #[test]
    fn route_static_link() {
        // Zero displacement: zero hops, all budget becomes buffering
        // (stationary data, like z in Fig. 4).
        let ic = Interconnect::paper_p(3);
        let rt = ic.route(&IVec::from([0, 0]), 1).expect("routable");
        assert_eq!(rt.hops, 0);
        assert_eq!(rt.buffers, 1);
    }

    #[test]
    fn route_multi_hop() {
        // [0,2] over P': two south hops.
        let ic = Interconnect::paper_p_prime();
        let rt = ic.route(&IVec::from([0, 2]), 2).expect("routable");
        assert_eq!(rt.hops, 2);
        assert_eq!(rt.usage, IVec::from([0, 2, 0, 0]));
        // Budget 1 is insufficient.
        assert!(ic.route(&IVec::from([0, 2]), 1).is_none());
    }

    #[test]
    fn route_unreachable_direction() {
        // P' has no westward link: [-1, 0] is unreachable at any budget the
        // BFS explores.
        let ic = Interconnect::paper_p_prime();
        assert!(ic.route(&IVec::from([-1, 0]), 5).is_none());
    }

    #[test]
    fn solve_k_reproduces_paper_fig4_routing() {
        // SD for T of (4.2), D of (3.12) (paper column order y,x,z,d4,d5,d6,d7):
        // SD = [[3,0,0,1,0,1,0],[0,3,0,0,1,-1,2]] for p=3.
        let sd = IMat::from_rows(&[&[3, 0, 0, 1, 0, 1, 0], &[0, 3, 0, 0, 1, -1, 2]]);
        let budgets = [1, 1, 1, 2, 1, 1, 2]; // Π·d̄ᵢ from eq. (4.4)
        let ic = Interconnect::paper_p(3);
        let sol = ic.solve_k(&sd, &budgets).expect("all columns routable");
        // PK = SD.
        assert_eq!(ic.p.matmul(&sol.k), sd);
        // K ≥ 0 and column sums within budget.
        #[allow(clippy::needless_range_loop)] // i indexes K columns and budgets together
        for i in 0..sol.k.cols() {
            let col = sol.k.col(i);
            assert!(col.iter().all(|&x| x >= 0));
            let total: i64 = col.iter().sum();
            assert!(total <= budgets[i]);
        }
        // Exactly one buffered link: d̄₄'s east hop (paper's Fig. 4 buffer).
        assert_eq!(sol.buffers, vec![0, 0, 1, 1, 0, 0, 0]);
        // (z is stationary with Π·d̄₃ = 1: one cycle of local storage.)
    }

    #[test]
    fn solve_k_reports_unroutable_column() {
        let ic = Interconnect::paper_p_prime();
        let sd = IMat::from_rows(&[&[-1], &[0]]);
        assert_eq!(ic.solve_k(&sd, &[3]), Err(0));
    }

    #[test]
    fn solve_k_for_fig5_uses_unit_hops_for_long_moves() {
        // T' of (4.6): same S, so SD unchanged, but P' must route [p,0] as p
        // unit hops, forcing Π'·d̄₁ ≥ p — the cost of avoiding long wires.
        let sd = IMat::from_rows(&[&[3, 0, 0, 1, 0, 1, 0], &[0, 3, 0, 0, 1, -1, 2]]);
        let budgets = [3, 3, 1, 2, 1, 1, 2]; // Π' = [p,p,1,2,1] applied to D
        let ic = Interconnect::paper_p_prime();
        let sol = ic.solve_k(&sd, &budgets).expect("routable with P'");
        assert_eq!(ic.p.matmul(&sol.k), sd);
        // d̄₁ (y) needs all 3 hops: no buffers.
        assert_eq!(sol.buffers[0], 0);
    }
}
