//! Bench E3: Theorem 3.1's compositional derivation vs the general
//! dependence-analysis methods it replaces (Section 1's headline claim).
//!
//! Series: derivation wall-time as a function of word length `p` (and one `u`
//! sweep), for (a) the compositional closed form, (b) exhaustive enumeration
//! over the expanded code, (c) the Diophantine-solve-plus-verify route.

use bitlevel_depanal::{
    compose, diophantine_dependences, enumerate_dependences, expand, Expansion,
};
use bitlevel_ir::WordLevelAlgorithm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_composition_vs_general(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependence_analysis");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Compositional: independent of index-set size; bench across sizes to
    // demonstrate the flatness.
    for &(u, p) in &[(2i64, 2usize), (2, 3), (3, 3), (8, 8), (64, 32)] {
        let word = WordLevelAlgorithm::matmul(u);
        group.bench_with_input(
            BenchmarkId::new("compose_theorem_3_1", format!("u{u}_p{p}")),
            &(u, p),
            |b, _| b.iter(|| black_box(compose(&word, p, Expansion::II))),
        );
    }

    // General methods: only feasible at small sizes (that is the point).
    for &(u, p) in &[(2i64, 2usize), (2, 3), (3, 3)] {
        let word = WordLevelAlgorithm::matmul(u);
        let nest = expand(&word, p, Expansion::II);
        group.bench_with_input(
            BenchmarkId::new("exhaustive_enumeration", format!("u{u}_p{p}")),
            &(u, p),
            |b, _| b.iter(|| black_box(enumerate_dependences(&nest))),
        );
        group.bench_with_input(
            BenchmarkId::new("diophantine_verify", format!("u{u}_p{p}")),
            &(u, p),
            |b, _| b.iter(|| black_box(diophantine_dependences(&nest))),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_composition_vs_general);
criterion_main!(benches);
