//! Bench E4: the time-optimal schedule search of Theorem 4.5.
//!
//! Series: wall-time of the exhaustive (rayon-parallel) feasibility-checked
//! search over `Π ∈ [−B, B]⁵` for the bit-level matmul structure, and of its
//! building blocks (the conflict check and the full Definition 4.1 check).

use bitlevel_depanal::{compose, Expansion};
use bitlevel_ir::WordLevelAlgorithm;
use bitlevel_mapping::{
    check_conflicts, check_feasibility, find_optimal_schedule, Interconnect, PaperDesign,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_schedule_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_search");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    let p = 2i64;
    let alg = compose(&WordLevelAlgorithm::matmul(2), p as usize, Expansion::II);
    let s = PaperDesign::space(p);
    let ic = Interconnect::paper_p(p);

    group.bench_function("find_optimal_schedule_bound2", |b| {
        b.iter(|| black_box(find_optimal_schedule(&s, &alg, &ic, 2)))
    });

    for &(u, pp) in &[(2i64, 2i64), (3, 3), (4, 4)] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), pp as usize, Expansion::II);
        let t = PaperDesign::TimeOptimal.mapping(pp);
        group.bench_with_input(
            BenchmarkId::new("check_feasibility", format!("u{u}_p{pp}")),
            &(u, pp),
            |b, _| b.iter(|| black_box(check_feasibility(&t, &alg, &Interconnect::paper_p(pp)))),
        );
        group.bench_with_input(
            BenchmarkId::new("conflict_check", format!("u{u}_p{pp}")),
            &(u, pp),
            |b, _| b.iter(|| black_box(check_conflicts(&t, &alg.index_set))),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_schedule_search);
criterion_main!(benches);
