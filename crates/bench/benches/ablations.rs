//! Ablation benches: alternative algorithms for the same jobs.
//!
//! * exhaustive vs best-first time-optimal schedule search (same optimum,
//!   different work profile);
//! * sequential vs rayon-parallel mapped simulation;
//! * kernel-lattice vs brute-force conflict checking (the asymptotic gap
//!   behind condition 3).

use bitlevel_depanal::{compose, Expansion};
use bitlevel_ir::WordLevelAlgorithm;
use bitlevel_mapping::{
    check_conflicts, check_conflicts_bruteforce, find_optimal_schedule,
    find_optimal_schedule_bestfirst, Interconnect, PaperDesign,
};
use bitlevel_systolic::{simulate_mapped, simulate_mapped_parallel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_search_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_schedule_search");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let p = 2i64;
    let alg = compose(&WordLevelAlgorithm::matmul(2), p as usize, Expansion::II);
    let s = PaperDesign::space(p);
    let ic = Interconnect::paper_p(p);
    group.bench_function("exhaustive", |b| {
        b.iter(|| black_box(find_optimal_schedule(&s, &alg, &ic, 2)))
    });
    group.bench_function("best_first", |b| {
        b.iter(|| black_box(find_optimal_schedule_bestfirst(&s, &alg, &ic, 2)))
    });
    group.finish();
}

fn bench_simulation_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_simulation");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &(u, p) in &[(4i64, 4i64), (6, 6), (8, 8)] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
        let design = PaperDesign::TimeOptimal;
        let t = design.mapping(p);
        let ic = design.interconnect(p);
        group.bench_with_input(
            BenchmarkId::new("sequential", format!("u{u}_p{p}")),
            &(),
            |b, _| b.iter(|| black_box(simulate_mapped(&alg, &t, &ic))),
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", format!("u{u}_p{p}")),
            &(),
            |b, _| b.iter(|| black_box(simulate_mapped_parallel(&alg, &t, &ic))),
        );
    }
    group.finish();
}

fn bench_conflict_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_conflict_check");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(u, p) in &[(3i64, 3i64), (5, 5), (8, 8)] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
        let t = PaperDesign::TimeOptimal.mapping(p);
        group.bench_with_input(
            BenchmarkId::new("kernel_lattice", format!("u{u}_p{p}")),
            &(),
            |b, _| b.iter(|| black_box(check_conflicts(&t, &alg.index_set))),
        );
        group.bench_with_input(
            BenchmarkId::new("brute_force", format!("u{u}_p{p}")),
            &(),
            |b, _| b.iter(|| black_box(check_conflicts_bruteforce(&t, &alg.index_set))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_search_strategies,
    bench_simulation_parallelism,
    bench_conflict_checkers
);
criterion_main!(benches);
