//! Bench E8: word-level vs bit-level execution (Section 4.2's comparison).
//!
//! Series: functional word-level array runs with both word-PE multipliers
//! (their real bit-level models), so the `t_b = O(p²)` vs `O(p)` gap is
//! visible in wall-time too, alongside the closed-form cycle comparison the
//! experiment harness prints.

use bitlevel_arith::{AddShift, CarrySave};
use bitlevel_systolic::WordLevelArray;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_word_vs_bit(c: &mut Criterion) {
    let mut group = c.benchmark_group("word_vs_bit");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for &(u, p) in &[(4usize, 4usize), (4, 8), (8, 8)] {
        let mask = (1u128 << p) - 1;
        let x: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((7 * i + 3 * j + 1) as u128) & mask)
                    .collect()
            })
            .collect();
        let y: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((2 * i + 5 * j + 2) as u128) & mask)
                    .collect()
            })
            .collect();

        let addshift = AddShift::new(p);
        group.bench_with_input(
            BenchmarkId::new("word_array_addshift_pe", format!("u{u}_p{p}")),
            &(u, p),
            |b, _| {
                let arr = WordLevelArray::new(u, &addshift);
                b.iter(|| black_box(arr.run(&x, &y)))
            },
        );
        let carrysave = CarrySave::new(p);
        group.bench_with_input(
            BenchmarkId::new("word_array_carrysave_pe", format!("u{u}_p{p}")),
            &(u, p),
            |b, _| {
                let arr = WordLevelArray::new(u, &carrysave);
                b.iter(|| black_box(arr.run(&x, &y)))
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_word_vs_bit);
criterion_main!(benches);
