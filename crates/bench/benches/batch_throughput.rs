//! Lane-packed batch engine throughput (DESIGN.md, batch layer; E18).
//!
//! One `CompiledSchedule` walk normally simulates one problem instance;
//! `execute_batch` packs up to 64 independent instances into the bit-lanes
//! of a `u64` and walks the schedule once for all of them. This bench
//! measures the whole batch path (lane packing + walks + per-lane product
//! extraction) for a fixed 64-instance batch at increasing lane widths, on
//! both paper designs:
//!
//! * `scalar` — the true scalar compiled engine: 64 plain
//!   [`CompiledSchedule::execute`] walks, no lane machinery at all;
//! * `width 1` — the batch engine degenerated to one lane per walk: 64
//!   walks, which must cost about the same as `scalar` (the
//!   `CompiledBatch { width: 1 }` ≈ `Compiled` parity bar);
//! * `width 8/16/32/64` — 8/4/2/1 walks, the per-walk slot/CSR bookkeeping
//!   amortised over ever more lanes.
//!
//! Before timing anything the bench asserts that the width-1 batch products
//! are bit-identical to the scalar compiled products on both designs, so a
//! lane-packing bug can never masquerade as a speedup.

use bitlevel_depanal::{compose, Expansion};
use bitlevel_ir::WordLevelAlgorithm;
use bitlevel_mapping::PaperDesign;
use bitlevel_systolic::{
    BitMatmulArray, CompiledSchedule, MatmulExpansionIICells, MatmulLaneCells,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const INSTANCES: usize = 64;

fn batch_operands(u: usize, p: usize) -> (Vec<Vec<Vec<u128>>>, Vec<Vec<Vec<u128>>>) {
    let cap = BitMatmulArray::new(u, p).max_safe_entry();
    let mut state = 0x1CC7_1993u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as u128) % (cap + 1)
    };
    let mut mat =
        move || -> Vec<Vec<u128>> { (0..u).map(|_| (0..u).map(|_| next()).collect()).collect() };
    (
        (0..INSTANCES).map(|_| mat()).collect(),
        (0..INSTANCES).map(|_| mat()).collect(),
    )
}

fn bench_batch_widths(c: &mut Criterion) {
    let (u, p) = (3usize, 4usize);
    let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
    let (xs, ys) = batch_operands(u, p);
    let mut group = c.benchmark_group("batch_throughput");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.throughput(Throughput::Elements(INSTANCES as u64));
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let sched = CompiledSchedule::compile(
            &alg,
            &design.mapping(p as i64),
            &design.interconnect(p as i64),
        );

        // Parity bar: the width-1 batch path must reproduce the scalar
        // compiled engine bit for bit before its cost is compared to it.
        let scalar_products: Vec<Vec<Vec<u128>>> = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| {
                let cells = MatmulExpansionIICells::new(u, p, x, y);
                cells.extract_product(&sched.execute(&cells))
            })
            .collect();
        let width1_products: Vec<Vec<Vec<u128>>> = xs
            .iter()
            .zip(&ys)
            .flat_map(|(x, y)| {
                let cells =
                    MatmulLaneCells::new(u, p, std::slice::from_ref(x), std::slice::from_ref(y));
                cells.extract_products(&sched.execute_batch(&cells))
            })
            .collect();
        assert_eq!(
            scalar_products, width1_products,
            "width-1 batch diverged from the scalar compiled engine"
        );

        group.bench_with_input(
            BenchmarkId::new(design.name().to_string(), "scalar"),
            &(),
            |b, _| {
                b.iter(|| {
                    let products: Vec<Vec<Vec<u128>>> = xs
                        .iter()
                        .zip(&ys)
                        .map(|(x, y)| {
                            let cells = MatmulExpansionIICells::new(u, p, x, y);
                            cells.extract_product(&sched.execute(&cells))
                        })
                        .collect();
                    black_box(products)
                })
            },
        );

        for &width in &[1usize, 8, 16, 32, 64] {
            let id = BenchmarkId::new(design.name().to_string(), format!("width{width}"));
            group.bench_with_input(id, &width, |b, &w| {
                b.iter(|| {
                    let chunks: Vec<MatmulLaneCells> = xs
                        .chunks(w)
                        .zip(ys.chunks(w))
                        .map(|(xc, yc)| MatmulLaneCells::new(u, p, xc, yc))
                        .collect();
                    let products: Vec<_> = chunks
                        .iter()
                        .map(|cells| cells.extract_products(&sched.execute_batch(cells)))
                        .collect();
                    black_box(products)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_widths);
criterion_main!(benches);
