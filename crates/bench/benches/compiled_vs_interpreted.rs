//! Compiled vs interpreted simulation engines (DESIGN.md, compiled backend).
//!
//! Three ways to run the same clocked Expansion II matmul architecture:
//!
//! * `interpreted` — the HashMap-keyed reference engine (`run_clocked`);
//! * `compile_and_execute` — `run_clocked_compiled`, i.e. schedule compilation
//!   plus one execution (what a one-shot caller pays);
//! * `execute_precompiled` — `CompiledSchedule::execute` alone (what each
//!   additional workload on the same architecture pays).
//!
//! Plus the timing-only pair `simulate_mapped` vs `simulate_mapped_compiled`.

use bitlevel_depanal::{compose, Expansion};
use bitlevel_ir::WordLevelAlgorithm;
use bitlevel_mapping::PaperDesign;
use bitlevel_systolic::{
    run_clocked, run_clocked_compiled, simulate_mapped, simulate_mapped_compiled, BitMatmulArray,
    CompiledSchedule, MatmulExpansionIICells,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn operands(u: usize, p: usize) -> (Vec<Vec<u128>>, Vec<Vec<u128>>) {
    let cap = BitMatmulArray::new(u, p).max_safe_entry();
    let x = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| ((3 * i + 5 * j + 1) as u128) % (cap + 1))
                .collect()
        })
        .collect();
    let y = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| ((7 * i + j + 2) as u128) % (cap + 1))
                .collect()
        })
        .collect();
    (x, y)
}

fn bench_clocked_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("clocked_engine");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &(u, p) in &[(2i64, 2i64), (3, 3), (4, 4), (4, 6), (4, 8)] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
        let design = PaperDesign::TimeOptimal;
        let t = design.mapping(p);
        let ic = design.interconnect(p);
        let (x, y) = operands(u as usize, p as usize);
        let mut cells = MatmulExpansionIICells::new(u as usize, p as usize, &x, &y);
        let sched = CompiledSchedule::compile(&alg, &t, &ic);
        let id = format!("u{u}_p{p}");
        group.bench_with_input(BenchmarkId::new("interpreted", &id), &(), |b, _| {
            b.iter(|| black_box(run_clocked(&alg, &t, &ic, &mut cells)))
        });
        group.bench_with_input(BenchmarkId::new("compile_and_execute", &id), &(), |b, _| {
            b.iter(|| black_box(run_clocked_compiled(&alg, &t, &ic, &cells)))
        });
        group.bench_with_input(BenchmarkId::new("execute_precompiled", &id), &(), |b, _| {
            b.iter(|| black_box(sched.execute(&cells)))
        });
    }
    group.finish();
}

fn bench_mapped_simulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapped_sim_backend");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &(u, p) in &[(3i64, 3i64), (4, 6), (6, 8)] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
        let design = PaperDesign::TimeOptimal;
        let t = design.mapping(p);
        let ic = design.interconnect(p);
        let id = format!("u{u}_p{p}");
        group.bench_with_input(BenchmarkId::new("interpreted", &id), &(), |b, _| {
            b.iter(|| black_box(simulate_mapped(&alg, &t, &ic)))
        });
        group.bench_with_input(BenchmarkId::new("compiled", &id), &(), |b, _| {
            b.iter(|| black_box(simulate_mapped_compiled(&alg, &t, &ic)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clocked_engines, bench_mapped_simulators);
criterion_main!(benches);
