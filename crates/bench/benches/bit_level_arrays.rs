//! Bench E6/E7: simulating the Fig. 4 and Fig. 5 bit-level architectures.
//!
//! Series: cycle-accurate mapped-simulation cost and functional array
//! throughput across `(u, p)`; the measured cycle counts themselves are the
//! experiment (`experiments --exp e6/e7`), this bench tracks simulator
//! performance.

use bitlevel_depanal::{compose, Expansion};
use bitlevel_ir::WordLevelAlgorithm;
use bitlevel_mapping::PaperDesign;
use bitlevel_systolic::{simulate_mapped, BitMatmulArray};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_arrays(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_level_arrays");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for &(u, p) in &[(2i64, 2i64), (3, 3), (4, 4)] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let t = design.mapping(p);
            let ic = design.interconnect(p);
            let label = match design {
                PaperDesign::TimeOptimal => "fig4_mapped_sim",
                PaperDesign::NearestNeighbour => "fig5_mapped_sim",
            };
            group.bench_with_input(
                BenchmarkId::new(label, format!("u{u}_p{p}")),
                &(u, p),
                |b, _| b.iter(|| black_box(simulate_mapped(&alg, &t, &ic))),
            );
        }

        // Functional array: full bit-exact multiplication.
        let arr = BitMatmulArray::new(u as usize, p as usize);
        let m = arr.max_safe_entry();
        let x: Vec<Vec<u128>> = (0..u as usize)
            .map(|i| {
                (0..u as usize)
                    .map(|j| ((3 * i + j + 1) as u128) % (m + 1))
                    .collect()
            })
            .collect();
        let y: Vec<Vec<u128>> = (0..u as usize)
            .map(|i| {
                (0..u as usize)
                    .map(|j| ((i + 5 * j + 2) as u128) % (m + 1))
                    .collect()
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("functional_array", format!("u{u}_p{p}")),
            &(u, p),
            |b, _| b.iter(|| black_box(arr.multiply(&x, &y))),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_arrays);
criterion_main!(benches);
