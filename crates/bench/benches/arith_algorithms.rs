//! Bench E1: the arithmetic algorithms of Section 3.1 (Fig. 1).
//!
//! Series: bit-level multiplication cost of the add-shift grid (`p²` cells)
//! vs the carry-save array (`p²` cells + `p` merge), and the ripple adder,
//! as functions of the word length `p`.

use bitlevel_arith::{AddShift, CarrySave, RippleAdder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_multipliers(c: &mut Criterion) {
    let mut group = c.benchmark_group("arith_algorithms");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &p in &[4usize, 8, 16, 32] {
        let mask = (1u128 << p) - 1;
        let a = 0x9e3779b97f4a7c15u128 & mask;
        let b = 0xc2b2ae3d27d4eb4fu128 & mask;
        let addshift = AddShift::new(p);
        group.bench_with_input(BenchmarkId::new("addshift_multiply", p), &p, |bch, _| {
            bch.iter(|| black_box(addshift.multiply(black_box(a), black_box(b))))
        });
        let carrysave = CarrySave::new(p);
        group.bench_with_input(BenchmarkId::new("carrysave_multiply", p), &p, |bch, _| {
            bch.iter(|| black_box(carrysave.multiply(black_box(a), black_box(b))))
        });
        let ripple = RippleAdder::new(p);
        group.bench_with_input(BenchmarkId::new("ripple_add", p), &p, |bch, _| {
            bch.iter(|| black_box(ripple.add(black_box(a), black_box(b))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multipliers);
criterion_main!(benches);
