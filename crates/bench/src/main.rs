//! `experiments` — regenerate every figure/equation-level result of the paper.
//!
//! ```text
//! cargo run -p bitlevel-bench --bin experiments [--release] [-- OPTIONS]
//!
//! OPTIONS:
//!   --exp <id>       run one experiment (e1 … e14); default: all
//!   --markdown       emit markdown tables (for EXPERIMENTS.md)
//!   --json           emit the record tables as JSON
//!   --sweep <name>   emit a CSV data series instead:
//!                    speedup | analysis | utilization | engine
//! ```

use bitlevel_bench::{run_all, run_experiment, sweeps};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut markdown = false;
    let mut json = false;
    let mut sweep: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                which = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--exp requires an id (e1..e14)");
                    std::process::exit(2);
                }));
            }
            "--markdown" => markdown = true,
            "--json" => json = true,
            "--sweep" => {
                i += 1;
                sweep = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--sweep requires a name (speedup|analysis|utilization|engine)");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(name) = sweep {
        let csv = match name.as_str() {
            "speedup" => sweeps::speedup_csv(&sweeps::speedup_sweep(&sweeps::default_speedup_sizes())),
            "analysis" => {
                sweeps::analysis_time_csv(&sweeps::analysis_time_sweep(&sweeps::default_analysis_sizes()))
            }
            "utilization" => {
                sweeps::utilization_csv(&sweeps::utilization_sweep(&sweeps::default_speedup_sizes()))
            }
            "engine" => sweeps::engine_csv(&sweeps::engine_sweep(&sweeps::default_engine_sizes())),
            other => {
                eprintln!("unknown sweep {other} (speedup|analysis|utilization|engine)");
                std::process::exit(2);
            }
        };
        print!("{csv}");
        return;
    }

    let outcomes = match which {
        Some(id) => match run_experiment(&id) {
            Some(o) => vec![o],
            None => {
                eprintln!("unknown experiment id {id} (use e1..e14)");
                std::process::exit(2);
            }
        },
        None => run_all(),
    };

    let mut all_ok = true;
    for o in &outcomes {
        all_ok &= o.passed();
        if json {
            println!("{}", serde_json::to_string_pretty(&o.table).expect("serializable"));
        } else if markdown {
            println!("{}", o.table.render_markdown());
        } else {
            println!("{}", o.table.render_text());
        }
    }
    if !json {
        println!(
            "{} experiment(s), {}",
            outcomes.len(),
            if all_ok { "all rows confirm the paper (modulo documented typos)" } else { "SOME ROWS FAILED" }
        );
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
