//! `experiments` — regenerate every figure/equation-level result of the paper.
//!
//! ```text
//! cargo run -p bitlevel-bench --bin experiments [--release] [-- OPTIONS]
//!
//! OPTIONS:
//!   --exp <id>       run one experiment (e1 … e22); default: all
//!   --seed <u64>     seed for every randomized path (E17/E20's fault
//!                    campaigns and the faults/faultbatch sweeps); default:
//!                    the fixed reproducibility seed baked into the crate
//!   --trace <path>   capture the simulated runs of a traceable experiment
//!                    (e6, e7, e14, e15) to <path>: Chrome-trace JSON, or
//!                    CSV when the path ends in .csv; requires --exp
//!   --markdown       emit markdown tables (for EXPERIMENTS.md)
//!   --json           emit the record tables as JSON
//!   --sweep <name>   emit a CSV data series instead:
//!                    speedup | analysis | utilization | engine | wavefront |
//!                    frontier | faults | batch | cache | faultbatch |
//!                    partition | serve
//!                    (frontier, faults, batch, cache, faultbatch,
//!                    partition and serve also honour --json for a JSON
//!                    export; CI stores `--sweep batch --json` as
//!                    BENCH_batch.json, `--sweep cache --json` as
//!                    BENCH_cache.json, `--sweep faultbatch --json` as
//!                    BENCH_faultbatch.json, `--sweep partition --json` as
//!                    BENCH_partition.json and `--sweep serve --json` as
//!                    BENCH_serve.json)
//! ```

use bitlevel_bench::{
    run_all_seeded, run_experiment_seeded, run_experiment_traced, sweeps, DEFAULT_SEED,
    TRACEABLE_IDS,
};
use bitlevel_systolic::RecordingSink;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut markdown = false;
    let mut json = false;
    let mut sweep: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut seed = DEFAULT_SEED;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                which = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--exp requires an id (e1..e22)");
                    std::process::exit(2);
                }));
            }
            "--markdown" => markdown = true,
            "--json" => json = true,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed requires an unsigned 64-bit integer");
                        std::process::exit(2);
                    });
            }
            "--sweep" => {
                i += 1;
                sweep = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!(
                        "--sweep requires a name (speedup|analysis|utilization|engine|wavefront|frontier|faults|batch|cache|faultbatch|partition|serve)"
                    );
                    std::process::exit(2);
                }));
            }
            "--trace" => {
                i += 1;
                trace = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--trace requires an output path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(name) = sweep {
        let csv = match name.as_str() {
            "speedup" => {
                sweeps::speedup_csv(&sweeps::speedup_sweep(&sweeps::default_speedup_sizes()))
            }
            "analysis" => sweeps::analysis_time_csv(&sweeps::analysis_time_sweep(
                &sweeps::default_analysis_sizes(),
            )),
            "utilization" => sweeps::utilization_csv(&sweeps::utilization_sweep(
                &sweeps::default_speedup_sizes(),
            )),
            "engine" => sweeps::engine_csv(&sweeps::engine_sweep(&sweeps::default_engine_sizes())),
            "wavefront" => sweeps::wavefront_csv(&sweeps::wavefront_sweep(3, 3)),
            "frontier" => {
                let rows = sweeps::frontier_sweep(&sweeps::default_frontier_sizes());
                if json {
                    sweeps::frontier_json(&rows)
                } else {
                    sweeps::frontier_csv(&rows)
                }
            }
            "faults" => {
                let rows = sweeps::faults_sweep(&sweeps::default_fault_sizes(), seed);
                if json {
                    sweeps::faults_json(&rows)
                } else {
                    sweeps::faults_csv(&rows)
                }
            }
            "batch" => {
                let rows = sweeps::batch_sweep(
                    &sweeps::default_batch_widths(),
                    sweeps::default_batch_instances(),
                    seed,
                );
                if json {
                    sweeps::batch_json(&rows)
                } else {
                    sweeps::batch_csv(&rows)
                }
            }
            "cache" => {
                let rows = sweeps::cache_sweep(&sweeps::default_cache_sizes());
                if json {
                    sweeps::cache_json(&rows)
                } else {
                    sweeps::cache_csv(&rows)
                }
            }
            "faultbatch" => {
                let rows = sweeps::faultbatch_sweep(&sweeps::default_faultbatch_widths(), seed);
                if json {
                    sweeps::faultbatch_json(&rows)
                } else {
                    sweeps::faultbatch_csv(&rows)
                }
            }
            "partition" => {
                let rows = sweeps::partition_sweep(
                    &sweeps::default_partition_workers(),
                    sweeps::default_partition_instances(),
                    seed,
                );
                if json {
                    sweeps::partition_json(&rows)
                } else {
                    sweeps::partition_csv(&rows)
                }
            }
            "serve" => {
                let rows = sweeps::serve_sweep(&sweeps::default_serve_sizes());
                if json {
                    sweeps::serve_json(&rows)
                } else {
                    sweeps::serve_csv(&rows)
                }
            }
            other => {
                eprintln!(
                    "unknown sweep {other} (speedup|analysis|utilization|engine|wavefront|frontier|faults|batch|cache|faultbatch|partition|serve)"
                );
                std::process::exit(2);
            }
        };
        print!("{csv}");
        return;
    }

    let outcomes = match (which, &trace) {
        (Some(id), Some(path)) => {
            let id_lower = id.to_ascii_lowercase();
            if !TRACEABLE_IDS.contains(&id_lower.as_str()) {
                eprintln!(
                    "--trace only applies to the traceable experiments ({})",
                    TRACEABLE_IDS.join(", ")
                );
                std::process::exit(2);
            }
            let mut sink = RecordingSink::new();
            match run_experiment_traced(&id_lower, &mut sink) {
                Some(o) => {
                    let rendered = if path.ends_with(".csv") {
                        sink.to_csv()
                    } else {
                        sink.to_chrome_trace()
                    };
                    if let Err(e) = std::fs::write(path, rendered) {
                        eprintln!("cannot write trace to {path}: {e}");
                        std::process::exit(2);
                    }
                    eprintln!("trace: {} events -> {path}", sink.events().len());
                    vec![o]
                }
                None => {
                    eprintln!("unknown experiment id {id} (use e1..e22)");
                    std::process::exit(2);
                }
            }
        }
        (None, Some(_)) => {
            eprintln!(
                "--trace requires --exp with a traceable id ({})",
                TRACEABLE_IDS.join(", ")
            );
            std::process::exit(2);
        }
        (Some(id), None) => match run_experiment_seeded(&id, seed) {
            Some(o) => vec![o],
            None => {
                eprintln!("unknown experiment id {id} (use e1..e22)");
                std::process::exit(2);
            }
        },
        (None, None) => run_all_seeded(seed),
    };

    let mut all_ok = true;
    for o in &outcomes {
        all_ok &= o.passed();
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&o.table).expect("serializable")
            );
        } else if markdown {
            println!("{}", o.table.render_markdown());
        } else {
            println!("{}", o.table.render_text());
        }
    }
    if !json {
        println!(
            "{} experiment(s), {}",
            outcomes.len(),
            if all_ok {
                "all rows confirm the paper (modulo documented typos)"
            } else {
                "SOME ROWS FAILED"
            }
        );
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
