//! The experiment suite: every figure/equation-level result of the paper,
//! regenerated and compared against the paper's claim (index E1–E22 in
//! DESIGN.md).
//!
//! The traceable experiments (E6, E7, E14, E15) also come in `_impl` forms
//! taking a [`TraceSink`]; [`run_experiment_traced`] dispatches to them so
//! `--trace <path>` can capture the simulated runs as they happen. The
//! randomized experiments (E17's and E20's fault campaigns) come in
//! `_seeded` forms;
//! [`run_experiment_seeded`] threads one global seed (the binary's
//! `--seed <u64>`) through every randomized path, with [`DEFAULT_SEED`]
//! keeping the unseeded entry points reproducible.

use crate::record::{Record, RecordTable};
use bitlevel_arith::{AddShift, CarrySave};
use bitlevel_core::DesignFlow;
use bitlevel_depanal::{
    compare_analyses, compose, enumerate_dependences, expand, instances_of_triplet, Expansion,
};
use bitlevel_fault::{monte_carlo_campaign, single_fault_campaign};
use bitlevel_ir::{BoxSet, WordLevelAlgorithm};
use bitlevel_linalg::{IMat, IVec};
use bitlevel_mapping::{find_optimal_schedule, word_level_total_time, Interconnect, PaperDesign};
use bitlevel_systolic::{
    critical_path, fanin_histogram, mean_producer_depth, run_clocked, simulate_mapped,
    simulate_mapped_compiled, CompiledSchedule, MatmulExpansionIICells, NullSink,
    PartitionedSchedule, SimBackend, TraceSink, WordLevelArray,
};

/// Result of one experiment: the record table plus pass/fail.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Experiment id, lowercase ("e1" … "e14").
    pub id: String,
    /// The paper-vs-measured table.
    pub table: RecordTable,
}

impl ExperimentOutcome {
    /// True iff every row confirms the paper.
    pub fn passed(&self) -> bool {
        self.table.all_ok()
    }
}

/// The 1-D recurrence of program (3.7) with `h₁ = h₂ = h₃ = 1`.
fn one_d_recurrence(u: i64) -> WordLevelAlgorithm {
    WordLevelAlgorithm::new(
        "1-D recurrence (3.7)",
        BoxSet::cube(1, 1, u),
        Some(IVec::from([1])),
        Some(IVec::from([1])),
        IVec::from([1]),
    )
}

/// E1 — Fig. 1c / eqs. (3.1)–(3.4): the add-shift arithmetic algorithm.
pub fn e1() -> ExperimentOutcome {
    let mut t = RecordTable::new("E1: add-shift multiplier — Fig. 1c, eqs. (3.1)-(3.4)");
    let p = 3;
    let alg = AddShift::new(p);

    // Dependence matrix D_as of (3.4).
    let expected = IMat::from_rows(&[&[1, 0, 1], &[0, 1, -1]]);
    t.push(Record::eq(
        "D_as (p=3)",
        format!("{expected}"),
        format!("{}", alg.dependences().matrix()),
    ));
    t.push(Record::eq(
        "|J_as| (p=3, Fig. 1c)",
        9u128,
        alg.index_set().cardinality(),
    ));
    t.push(Record::check(
        "uniform dependence algorithm",
        "all δ̄ uniform over J_as",
        alg.dependences().all_uniform_over(&alg.index_set()),
    ));

    // Broadcast elimination of (3.1) reproduces δ̄₁, δ̄₂ (the (3.1)→(3.3)
    // rewrite).
    let be = bitlevel_ir::eliminate_broadcasts(&broadcast_form_nest(p));
    let dirs: Vec<IVec> = be
        .new_dependences
        .iter()
        .map(|d| d.vector.clone())
        .collect();
    t.push(Record::check(
        "broadcast elimination (3.1)->(3.3)",
        "pipelines a along δ̄₁=[1,0], b along δ̄₂=[0,1]",
        dirs == vec![IVec::from([1, 0]), IVec::from([0, 1])],
    ));

    // Functional: all 64 products for p = 3 (the Fig. 1 example size).
    let mut ok = true;
    for a in 0..8u128 {
        for b in 0..8u128 {
            ok &= alg.multiply(a, b) == a * b;
        }
    }
    t.push(Record::check(
        "bit-level products, p=3 (exhaustive)",
        "s = a x b",
        ok,
    ));

    // The documented deviation: the literal boundary values lose row-end
    // carries (7 x 3 = 5 under the text as written).
    t.push(Record::eq(
        "paper-literal boundary: 7 x 3 (p=3)",
        5u128,
        AddShift::paper_literal(3).multiply(7, 3),
    ));

    ExperimentOutcome {
        id: "e1".into(),
        table: t,
    }
}

/// The broadcast form of program (3.1) used by E1.
fn broadcast_form_nest(p: usize) -> bitlevel_ir::LoopNest {
    use bitlevel_ir::{Access, AffineFn, OpKind, Statement};
    let n = 2;
    bitlevel_ir::LoopNest::new(
        BoxSet::cube(2, 1, p as i64),
        vec![Statement::new(
            Access::new("c", AffineFn::identity(n)),
            vec![
                Access::new("a", AffineFn::select_axes(n, &[1])),
                Access::new("b", AffineFn::select_axes(n, &[0])),
            ],
            OpKind::CarryBit,
        )],
    )
}

/// E2 — Fig. 3 / eqs. (3.8)–(3.9): the 1-D expansions.
pub fn e2() -> ExperimentOutcome {
    let mut t = RecordTable::new("E2: 1-D expansions — Fig. 3, eqs. (3.8)-(3.9)");
    let (u, p) = (4i64, 3usize);
    let word = one_d_recurrence(u);

    let expected_d = IMat::from_rows(&[
        &[1, 1, 1, 0, 0, 0, 0],
        &[0, 0, 0, 1, 0, 1, 0],
        &[0, 0, 0, 0, 1, -1, 2],
    ]);
    for (expn, label) in [(Expansion::I, "D_I (3.8)"), (Expansion::II, "D_II (3.9)")] {
        let alg = compose(&word, p, expn);
        t.push(Record::eq(
            &format!("{label} vectors"),
            format!("{expected_d}"),
            format!("{}", alg.dependence_matrix()),
        ));
        // Cross-check against ground truth on the expanded code.
        let inst = instances_of_triplet(&alg);
        let truth = enumerate_dependences(&expand(&word, p, expn));
        t.push(Record::check(
            &format!("{label} == exact analysis"),
            "Theorem 3.1 equals ground truth",
            inst == truth,
        ));
    }
    // Uniformity flips between expansions exactly as the paper states:
    // "Vector d̄₃ is uniform in Expansion I and d̄₆ is uniform in Expansion II."
    let a_i = compose(&word, p, Expansion::I);
    let a_ii = compose(&word, p, Expansion::II);
    t.push(Record::check(
        "d̄₃ uniform in I, not in II",
        "per text below (3.9)",
        a_i.deps.get(2).is_uniform_over(&a_i.index_set)
            && !a_ii.deps.get(2).is_uniform_over(&a_ii.index_set),
    ));
    t.push(Record::check(
        "d̄₆ uniform in II, not in I",
        "per text below (3.9)",
        a_ii.deps.get(5).is_uniform_over(&a_ii.index_set)
            && !a_i.deps.get(5).is_uniform_over(&a_i.index_set),
    ));

    ExperimentOutcome {
        id: "e2".into(),
        table: t,
    }
}

/// E3 — Example 3.1 / eqs. (3.12)–(3.13): bit-level matmul structure, and the
/// headline "no time-consuming general analysis needed" timing comparison.
pub fn e3() -> ExperimentOutcome {
    let mut t = RecordTable::new("E3: bit-level matmul — Example 3.1, eqs. (3.12)-(3.13)");
    let (u, p) = (3i64, 3usize);
    let word = WordLevelAlgorithm::matmul(u);
    let alg = compose(&word, p, Expansion::II);

    // Eq. (3.13): the 5-D index set.
    t.push(Record::eq(
        "|J| (3.13), u=p=3",
        (u as u128).pow(3) * (p as u128).pow(2),
        alg.index_set.cardinality(),
    ));
    // Eq. (3.12): the dependence matrix (as a column set; the paper orders
    // y,x,…, we emit x,y,…).
    let expected = IMat::from_rows(&[
        &[0, 1, 0, 0, 0, 0, 0],
        &[1, 0, 0, 0, 0, 0, 0],
        &[0, 0, 1, 0, 0, 0, 0],
        &[0, 0, 0, 1, 0, 1, 0],
        &[0, 0, 0, 0, 1, -1, 2],
    ]);
    t.push(Record::eq(
        "D (3.12)",
        format!("{expected}"),
        format!("{}", alg.dependence_matrix()),
    ));

    // Agreement and timing: compositional vs exhaustive vs Diophantine on a
    // size the baselines can finish (u=2, p=2 and u=2, p=3).
    for (uu, pp) in [(2i64, 2usize), (2, 3)] {
        let rep = compare_analyses(&WordLevelAlgorithm::matmul(uu), pp, Expansion::II);
        t.push(Record::check(
            &format!("agreement u={uu} p={pp}"),
            "Theorem 3.1 == enumeration == Diophantine",
            rep.matches_enumeration && rep.diophantine_matches,
        ));
        t.push(Record::info(
            &format!("derivation time u={uu} p={pp}"),
            "compositional << general",
            format!(
                "compose {:.1?} vs enumerate {:.1?} ({:.0}x) vs diophantine {:.1?} ({:.0}x)",
                rep.compose_time,
                rep.enumerate_time,
                rep.speedup_vs_enumeration(),
                rep.diophantine_time,
                rep.speedup_vs_diophantine()
            ),
            rep.speedup_vs_enumeration() > 1.0 && rep.speedup_vs_diophantine() > 1.0,
        ));
    }

    // Scaling: composition time is independent of |J| (structure for a huge
    // instance comes out without touching the index set).
    let t0 = std::time::Instant::now();
    let big = compose(&WordLevelAlgorithm::matmul(500), 64, Expansion::II);
    let dt = t0.elapsed();
    t.push(Record::info(
        "compose(u=500, p=64)",
        "O(n), independent of |J|",
        format!("{dt:.1?} for |J| = {}", big.index_set.cardinality()),
        dt.as_millis() < 100,
    ));

    ExperimentOutcome {
        id: "e3".into(),
        table: t,
    }
}

/// E4 — Theorem 4.5 / eq. (4.2): the time-optimal schedule.
pub fn e4() -> ExperimentOutcome {
    let mut t = RecordTable::new("E4: time-optimal schedule — Theorem 4.5, eq. (4.2)");
    let (u, p) = (2i64, 2i64);
    let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
    let s = PaperDesign::space(p);
    let best = find_optimal_schedule(&s, &alg, &Interconnect::paper_p(p), 2);
    match best {
        Some(found) => {
            t.push(Record::eq(
                "optimal Π (search over [-2,2]^5)",
                format!("{}", IVec::from([1, 1, 1, 2, 1])),
                format!("{}", found.pi),
            ));
            t.push(Record::eq(
                "optimal time",
                3 * (u - 1) + 3 * (p - 1) + 1,
                found.time,
            ));
            t.push(Record::info(
                "search space",
                "exhaustive over bounded schedules",
                format!(
                    "{} candidates, {} feasible",
                    found.examined, found.feasible_count
                ),
                found.feasible_count >= 1,
            ));
        }
        None => t.push(Record::check("search", "a feasible schedule exists", false)),
    }

    // The five conditions of Definition 4.1 for T of (4.2) at the paper's
    // size (u = p = 3).
    let alg3 = compose(&WordLevelAlgorithm::matmul(3), 3, Expansion::II);
    let rep = bitlevel_mapping::check_feasibility(
        &PaperDesign::TimeOptimal.mapping(3),
        &alg3,
        &Interconnect::paper_p(3),
    );
    t.push(Record::check(
        "Definition 4.1 conditions 1-5, u=p=3",
        "T of (4.2) is feasible",
        rep.is_feasible(),
    ));

    ExperimentOutcome {
        id: "e4".into(),
        table: t,
    }
}

/// E5 — eqs. (4.3)–(4.4): routing (`SD = PK`), `TD`, and the Fig. 4 buffer.
pub fn e5() -> ExperimentOutcome {
    let mut t = RecordTable::new("E5: interconnection and timing matrices — eqs. (4.3)-(4.4)");
    let p = 3i64;
    let alg = compose(&WordLevelAlgorithm::matmul(3), p as usize, Expansion::II);
    let d = alg.dependence_matrix();
    let tm = PaperDesign::TimeOptimal.mapping(p);

    // TD of (4.4) (our column order x,y,… = paper's with first two swapped).
    let expected_td = IMat::from_rows(&[
        &[0, p, 0, 1, 0, 1, 0],
        &[p, 0, 0, 0, 1, -1, 2],
        &[1, 1, 1, 2, 1, 1, 2],
    ]);
    t.push(Record::eq(
        "TD (4.4)",
        format!("{expected_td}"),
        format!("{}", tm.td(&d)),
    ));

    // SD = PK with the paper's P (4.3); Σk per column within Π·d̄.
    let ic = Interconnect::paper_p(p);
    let sd = tm.space.matmul(&d);
    let budgets: Vec<i64> = (0..d.cols()).map(|i| d.col(i).dot(&tm.schedule)).collect();
    match ic.solve_k(&sd, &budgets) {
        Ok(sol) => {
            t.push(Record::check(
                "SD = PK",
                "eq. (4.3) routable",
                ic.p.matmul(&sol.k) == sd,
            ));
            t.push(Record::check(
                "inequality (4.1)",
                "Σk ≤ Π·d̄ per column",
                (0..sol.k.cols()).all(|i| sol.k.col(i).iter().sum::<i64>() <= budgets[i]),
            ));
            // The buffer of Fig. 4 sits on d̄₄ (our column 3): Σk = 1 < Π·d̄₄ = 2.
            t.push(Record::eq(
                "buffer on d̄₄ link (Fig. 4)",
                1i64,
                sol.buffers[3],
            ));
        }
        Err(col) => t.push(Record::check(
            &format!("SD = PK (column {col} unroutable)"),
            "routable",
            false,
        )),
    }

    ExperimentOutcome {
        id: "e5".into(),
        table: t,
    }
}

/// E6 — Fig. 4 / eq. (4.5): the time-optimal architecture, measured.
pub fn e6() -> ExperimentOutcome {
    e6_impl(&mut NullSink)
}

/// [`e6`] with observability: the paper-size (u = p = 3) run is traced into
/// `sink` (larger sizes run untraced so the capture stays figure-sized).
pub fn e6_impl<K: TraceSink>(sink: &mut K) -> ExperimentOutcome {
    let mut t = RecordTable::new("E6: Fig. 4 architecture — eq. (4.5), measured");
    for (u, p) in [(2i64, 2i64), (3, 3), (4, 3), (3, 4), (5, 2)] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
        let design = PaperDesign::TimeOptimal;
        let run = if u == 3 && p == 3 {
            CompiledSchedule::try_compile(&alg, &design.mapping(p), &design.interconnect(p))
                .expect("the 7-column matmul structure compiles")
                .mapped_report_traced(sink)
        } else {
            simulate_mapped_compiled(&alg, &design.mapping(p), &design.interconnect(p))
        };
        t.push(Record::eq(
            &format!("cycles u={u} p={p}"),
            3 * (u - 1) + 3 * (p - 1) + 1,
            run.cycles,
        ));
        t.push(Record::eq(
            &format!("PEs u={u} p={p}"),
            u * u * p * p,
            run.processors as i64,
        ));
        t.push(Record::check(
            &format!("legal u={u} p={p}"),
            "conflict-free + causal",
            run.conflict_free && run.causality_ok,
        ));
    }
    // Functional: the array really multiplies matrices (bit-exact).
    let flow = DesignFlow::matmul(4, 4);
    flow.verify_matmul_functionally();
    t.push(Record::check(
        "functional, u=p=4",
        "Z = X·Y through full-adder cells",
        true,
    ));

    ExperimentOutcome {
        id: "e6".into(),
        table: t,
    }
}

/// E7 — Fig. 5 / eqs. (4.6)–(4.8): the nearest-neighbour architecture.
pub fn e7() -> ExperimentOutcome {
    e7_impl(&mut NullSink)
}

/// [`e7`] with observability: the paper-size (u = p = 3) run is traced into
/// `sink`.
pub fn e7_impl<K: TraceSink>(sink: &mut K) -> ExperimentOutcome {
    let mut t = RecordTable::new("E7: Fig. 5 architecture — eqs. (4.6)-(4.8), measured");
    for (u, p) in [(2i64, 2i64), (3, 3), (4, 3)] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
        let design = PaperDesign::NearestNeighbour;
        let run = if u == 3 && p == 3 {
            CompiledSchedule::try_compile(&alg, &design.mapping(p), &design.interconnect(p))
                .expect("the 7-column matmul structure compiles")
                .mapped_report_traced(sink)
        } else {
            simulate_mapped_compiled(&alg, &design.mapping(p), &design.interconnect(p))
        };
        // NOTE: the paper prints t' = (2p-1)(u-1)+3(p-1)+1 in (4.8), but its
        // own Π'(ū−l̄)+1 expansion gives (2p+1)(u-1)+3(p-1)+1; we measure the
        // latter (see EXPERIMENTS.md).
        t.push(Record::eq(
            &format!("cycles u={u} p={p} (Π'-consistent)"),
            (2 * p + 1) * (u - 1) + 3 * (p - 1) + 1,
            run.cycles,
        ));
        t.push(Record::eq(
            &format!("PEs u={u} p={p}"),
            u * u * p * p,
            run.processors as i64,
        ));
        t.push(Record::check(
            &format!("legal u={u} p={p}"),
            "conflict-free + causal",
            run.conflict_free && run.causality_ok,
        ));
    }
    t.push(Record::eq(
        "longest wire (Fig. 5)",
        1i64,
        Interconnect::paper_p_prime().max_wire_length(),
    ));
    t.push(Record::check(
        "t' > t (cost of avoiding long wires)",
        "Fig. 5 slower than Fig. 4",
        (2..6).all(|p: i64| {
            (2..6).all(|u: i64| {
                PaperDesign::NearestNeighbour.total_time(u, p)
                    > PaperDesign::TimeOptimal.total_time(u, p)
            })
        }),
    ));

    ExperimentOutcome {
        id: "e7".into(),
        table: t,
    }
}

/// E8 — Section 4.2: bit-level vs word-level speedup (`O(p²)` / `O(p)`).
pub fn e8() -> ExperimentOutcome {
    let mut t = RecordTable::new("E8: bit-level vs word-level speedup — Section 4.2");
    // Measured speedups over a p sweep with u > p.
    let mut last_addshift = 0.0f64;
    let mut last_carrysave = 0.0f64;
    for p in [2i64, 4, 8, 16] {
        let u = 2 * p; // keep u > p as the paper assumes
        let bit = PaperDesign::TimeOptimal.total_time(u, p);
        let addshift = AddShift::new(p as usize);
        let carrysave = CarrySave::new(p as usize);
        let w_as = word_level_total_time(u, addshift.word_latency() as i64);
        let w_cs = word_level_total_time(u, carrysave.word_latency() as i64);
        let s_as = w_as as f64 / bit as f64;
        let s_cs = w_cs as f64 / bit as f64;
        t.push(Record::check(
            &format!("bit-level wins, p={p} u={u}"),
            "speedup > 1 for both word PEs",
            s_as > 1.0 && s_cs > 1.0,
        ));
        if last_addshift > 0.0 {
            // Doubling p: add-shift speedup should grow ~4x (Θ(p²)),
            // carry-save ~2x (Θ(p)); allow generous slack for the +1 terms.
            t.push(Record::info(
                &format!("speedup growth p={}→{p}", p / 2),
                "≈4x (add-shift), ≈2x (carry-save)",
                format!(
                    "{:.2}x, {:.2}x",
                    s_as / last_addshift,
                    s_cs / last_carrysave
                ),
                (2.5..6.0).contains(&(s_as / last_addshift))
                    && (1.4..3.0).contains(&(s_cs / last_carrysave)),
            ));
        }
        last_addshift = s_as;
        last_carrysave = s_cs;
    }
    // A fully simulated (not closed-form) instance: word-level array run
    // functionally and the bit-level array measured by the mapped simulator.
    let (u, p) = (4i64, 3i64);
    let addshift = AddShift::new(p as usize);
    let word = WordLevelArray::new(u as usize, &addshift);
    let x: Vec<Vec<u128>> = (0..u)
        .map(|i| (0..u).map(|j| ((i + j) % 4) as u128).collect())
        .collect();
    let y: Vec<Vec<u128>> = (0..u)
        .map(|i| (0..u).map(|j| ((2 * i + j) % 4) as u128).collect())
        .collect();
    let wr = word.run(&x, &y);
    let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
    let br = simulate_mapped_compiled(
        &alg,
        &PaperDesign::TimeOptimal.mapping(p),
        &PaperDesign::TimeOptimal.interconnect(p),
    );
    t.push(Record::info(
        &format!("measured cycles u={u} p={p}"),
        "bit-level << word-level (add-shift PE)",
        format!("bit {} vs word {}", br.cycles, wr.bit_cycles),
        br.cycles < wr.bit_cycles,
    ));

    ExperimentOutcome {
        id: "e8".into(),
        table: t,
    }
}

/// E9 — Section 3.2 discussion: Expansion I vs Expansion II.
pub fn e9() -> ExperimentOutcome {
    let mut t = RecordTable::new("E9: Expansion I vs II — Section 3.2 discussion");
    let (u, p) = (3i64, 3usize);
    let word = one_d_recurrence(u);
    let a_i = compose(&word, p, Expansion::I);
    let a_ii = compose(&word, p, Expansion::II);

    // "Expansion II is slower than Expansion I because the computation at j̄
    // has to wait for the final results at j̄−h̄₃. In Expansion I, partial sum
    // bits in j̄−h̄₃ are sent to j̄ and takes less time."
    //
    // Measured two ways: (a) DAG critical path (I never longer — at small
    // sizes the tile-u drain dominates both and they can tie); (b) the mean
    // ASAP depth of the data carried by d̄₃, which is the paper's actual
    // argument: partial sums (I) are produced far shallower than final
    // results (II).
    let cp_i = critical_path(&a_i);
    let cp_ii = critical_path(&a_ii);
    t.push(Record::info(
        "critical path (1-D, u=3, p=3)",
        "Expansion I never longer",
        format!("I: {cp_i}, II: {cp_ii}"),
        cp_i <= cp_ii,
    ));
    let depth_i = mean_producer_depth(&a_i, 2).expect("d̄₃ active somewhere");
    let depth_ii = mean_producer_depth(&a_ii, 2).expect("d̄₃ active somewhere");
    t.push(Record::info(
        "mean ASAP depth of d̄₃ producers",
        "partial sums (I) ready earlier than final bits (II)",
        format!("I: {depth_i:.2}, II: {depth_ii:.2}"),
        depth_i < depth_ii,
    ));

    // "Expansion I is more computationally uniform because at all points,
    // except when j = u, at most three bits are to be summed; in contrast, in
    // Expansion II, four or five bits have to be summed on the hyperplane
    // i₁ = p."
    let h_i = fanin_histogram(&a_i);
    let h_ii = fanin_histogram(&a_ii);
    let wide = |h: &[u64]| h.iter().skip(4).sum::<u64>();
    t.push(Record::info(
        "points with ≥4 summed inputs",
        "fewer in Expansion I",
        format!(
            "I: {}, II: {} (histograms I {:?}, II {:?})",
            wide(&h_i),
            wide(&h_ii),
            h_i,
            h_ii
        ),
        wide(&h_i) < wide(&h_ii),
    ));

    // Wide points of Expansion I are confined to the jₙ = uₙ hyperplane.
    let set = &a_i.index_set;
    let confined = set.iter_points().all(|q| {
        let k = a_i.deps.active_at(&q, set).count();
        k < 4 || q[0] == set.upper()[0]
    });
    t.push(Record::check(
        "Expansion I wide points",
        "only on jₙ = uₙ",
        confined,
    ));

    // And for the matmul structure too (the paper's general claim).
    let m_i = compose(&WordLevelAlgorithm::matmul(2), 3, Expansion::I);
    let m_ii = compose(&WordLevelAlgorithm::matmul(2), 3, Expansion::II);
    t.push(Record::info(
        "critical path (matmul u=2, p=3)",
        "Expansion I never longer",
        format!("I: {}, II: {}", critical_path(&m_i), critical_path(&m_ii)),
        critical_path(&m_i) <= critical_path(&m_ii),
    ));
    let md_i = mean_producer_depth(&m_i, 2).expect("d̄₃ active");
    let md_ii = mean_producer_depth(&m_ii, 2).expect("d̄₃ active");
    t.push(Record::info(
        "mean d̄₃ producer depth (matmul)",
        "I shallower than II",
        format!("I: {md_i:.2}, II: {md_ii:.2}"),
        md_i < md_ii,
    ));

    ExperimentOutcome {
        id: "e9".into(),
        table: t,
    }
}

/// E10 — extension: lower-dimensional (linear) array synthesis, per the
/// design method the paper builds on ([5,6,10] map onto *lower dimensional*
/// arrays; Definition 4.1 already supports any `k`).
pub fn e10() -> ExperimentOutcome {
    use bitlevel_mapping::{
        check_feasibility, find_linear_array_mapping, linear_interconnect, processor_count,
        total_time, MappingMatrix,
    };
    let mut t = RecordTable::new("E10 (extension): linear bit-level array synthesis");
    let (u, p) = (2i64, 2usize);
    let alg = compose(&WordLevelAlgorithm::matmul(u), p, Expansion::II);
    let ic = linear_interconnect(Some(2));

    // The joint (S, Π) search is release-speed work; under debug builds the
    // known optimum is verified instead (same assertions, no search).
    let (s_row, pi, searched) = if cfg!(debug_assertions) {
        (
            IVec::from([0, 1, 2, -2, -1]),
            IVec::from([1, 1, 2, 2, 1]),
            false,
        )
    } else {
        match find_linear_array_mapping(&alg, &ic, 2, 3) {
            Some(d) => (
                IVec(d.mapping.space.row(0).to_vec()),
                d.mapping.schedule,
                true,
            ),
            None => {
                t.push(Record::check(
                    "search",
                    "a feasible linear design exists",
                    false,
                ));
                return ExperimentOutcome {
                    id: "e10".into(),
                    table: t,
                };
            }
        }
    };
    let tmap = MappingMatrix::new(IMat::from_flat(1, 5, s_row.as_slice().to_vec()), pi.clone());
    let rep = check_feasibility(&tmap, &alg, &ic);
    t.push(Record::check(
        "Definition 4.1 on the linear design",
        "feasible on a 1-D machine",
        rep.is_feasible(),
    ));
    let time = total_time(&pi, &alg.index_set);
    let pes = processor_count(&tmap.space, &alg.index_set);
    t.push(Record::info(
        "linear design (u=p=2)",
        "time 8, 7 PEs (S=[0,1,2,-2,-1], Pi=[1,1,2,2,1])",
        format!("time {time}, {pes} PEs, searched={searched}"),
        time == 8 && pes == 7,
    ));
    // Fundamental work bound and the dimension trade-off.
    t.push(Record::check(
        "work bound",
        "time x PEs >= |J| = 32",
        time as usize * pes >= 32,
    ));
    t.push(Record::check(
        "dimension trade-off",
        "1-D array slower than the 2-D time-optimal design (7 cycles)",
        time > 3 * (u - 1) + 3 * (p as i64 - 1) + 1,
    ));
    // Within |S| <= 1 nothing is feasible: the search must be honest.
    t.push(Record::check(
        "tight bound honesty",
        "no design with |S| <= 1",
        find_linear_array_mapping(&alg, &ic, 1, 2).is_none(),
    ));

    ExperimentOutcome {
        id: "e10".into(),
        table: t,
    }
}

/// E11 — ablation: which machine features the Fig. 4 design actually needs.
pub fn e11() -> ExperimentOutcome {
    use bitlevel_mapping::{dependence_only_bound, find_optimal_schedule};
    let mut t = RecordTable::new("E11 (ablation): machine features vs optimal schedule");
    let (u, p) = (2i64, 2i64);
    let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
    let s = PaperDesign::space(p);

    // The dependence-only lower bound: no machine can schedule faster.
    let lb = dependence_only_bound(&alg, 2).expect("positive schedules exist");
    t.push(Record::eq("dependence-only lower bound", 7i64, lb));

    let machines: [(&str, Interconnect, Option<i64>); 4] = [
        (
            "full P (long wires + diagonal)",
            Interconnect::paper_p(p),
            Some(7),
        ),
        (
            "P' (units + diagonal, no long wires)",
            Interconnect::paper_p_prime(),
            Some(9),
        ),
        (
            // No diagonal: d̄₆ = [1,−1] costs two mesh hops, pushing π₄ to 3.
            "4-mesh + static (no diagonal)",
            Interconnect::new(IMat::from_rows(&[&[0, 0, 1, -1, 0], &[1, -1, 0, 0, 0]])),
            Some(10),
        ),
        (
            // The paper's P has no negative unit links: without the diagonal
            // the drain d̄₆ = [1,−1] becomes unroutable entirely.
            "paper P minus the diagonal",
            Interconnect::new(IMat::from_rows(&[&[p, 0, 0, 1, 0], &[0, p, 0, 0, 1]])),
            None,
        ),
    ];
    for (name, ic, expect) in machines {
        let found = find_optimal_schedule(&s, &alg, &ic, 3);
        match expect {
            Some(time) => match found {
                Some(best) => t.push(Record::eq(
                    &format!("optimal time: {name}"),
                    time,
                    best.time,
                )),
                None => t.push(Record::check(
                    &format!("optimal time: {name}"),
                    "feasible",
                    false,
                )),
            },
            None => t.push(Record::check(
                name,
                "infeasible (d̄₆ unroutable)",
                found.is_none(),
            )),
        }
    }
    // The full machine achieves the dependence-only bound: Theorem 4.5's
    // "time optimal" is optimal among all linear schedules, not merely all
    // schedules this machine admits.
    t.push(Record::check(
        "Fig. 4 meets the schedule lower bound",
        "machine features cost nothing",
        lb == 7,
    ));

    ExperimentOutcome {
        id: "e11".into(),
        table: t,
    }
}

/// E12 — extension: exact carry accounting for the literal Expansion I
/// structure (the quantitative counterpart of the eq. (3.1) boundary note).
pub fn e12() -> ExperimentOutcome {
    use bitlevel_systolic::ExpansionIMatmul;
    let mut t =
        RecordTable::new("E12 (extension): Expansion I literal semantics, carry accounting");
    let (u, p) = (3usize, 3usize);
    let sim = ExpansionIMatmul::new(u, p);

    // Sparse operands chosen so every accumulation adds disjoint bits
    // (x(i,k) = 2^k, y = 1): no carries arise anywhere, the literal
    // structure is exact.
    let x_sparse: Vec<Vec<u128>> = (0..u)
        .map(|_| (0..u).map(|k| 1u128 << (k % p)).collect())
        .collect();
    let y_sparse: Vec<Vec<u128>> = (0..u).map(|_| (0..u).map(|_| 1u128).collect()).collect();
    let run = sim.run(&x_sparse, &y_sparse);
    t.push(Record::check(
        "sparse operands",
        "literal structure exact (no dropped carries)",
        run.is_exact() && sim.accounting_holds(&x_sparse, &y_sparse, &run),
    ));

    // Dense operands: carries drop, but every lost bit is accounted for
    // exactly: result + Σ 2^weight == true product (mod 2^{2p−1}).
    let x_dense: Vec<Vec<u128>> = (0..u)
        .map(|i| (0..u).map(|j| ((3 * i + 2 * j + 5) % 8) as u128).collect())
        .collect();
    let y_dense: Vec<Vec<u128>> = (0..u)
        .map(|i| (0..u).map(|j| ((5 * i + j + 3) % 8) as u128).collect())
        .collect();
    let run = sim.run(&x_dense, &y_dense);
    t.push(Record::info(
        "dense operands",
        "drops occur; accounting identity exact",
        format!(
            "{} carries dropped, identity holds = {}",
            run.dropped.len(),
            sim.accounting_holds(&x_dense, &y_dense, &run)
        ),
        !run.dropped.is_empty() && sim.accounting_holds(&x_dense, &y_dense, &run),
    ));

    // Uniformity (the Section 3.2 claim, counted): wide cells only on the
    // drain plane j₃ = u.
    t.push(Record::eq(
        "wide cells (only the drain plane)",
        (u * u * p * p) as u64,
        run.wide_cells,
    ));
    t.push(Record::eq(
        "narrow (3-input) cells",
        (u * u * (u - 1) * p * p) as u64,
        run.narrow_cells,
    ));

    ExperimentOutcome {
        id: "e12".into(),
        table: t,
    }
}

/// E13 — extension: the generic model-(3.5) architecture flow — convolution
/// and matrix–vector product run clocked (RTL) on searched schedules.
pub fn e13() -> ExperimentOutcome {
    use bitlevel_mapping::{check_feasibility, MappingMatrix};
    use bitlevel_systolic::{run_clocked, Model35Cells};
    let mut t = RecordTable::new("E13 (extension): generic model-(3.5) architectures, clocked");

    // Convolution.
    {
        let (outputs, taps, p) = (4i64, 3i64, 3usize);
        let word = WordLevelAlgorithm::convolution(outputs, taps);
        let alg = compose(&word, p, Expansion::II);
        let xs: Vec<u128> = (0..(outputs + taps - 1))
            .map(|k| (k as u128 % 3) + 1)
            .collect();
        let ws: Vec<u128> = (0..taps).map(|k| (k as u128 % 2) + 1).collect();
        let s = IMat::from_rows(&[&[p as i64, 0, 1, 0], &[0, 0, 0, 1]]);
        let ic = Interconnect::new(IMat::from_rows(&[
            &[p as i64, 0, 1, 0, 1],
            &[0, 0, 0, 1, -1],
        ]));
        let found = find_optimal_schedule(&s, &alg, &ic, 3);
        match found {
            Some(best) => {
                let tmap = MappingMatrix::new(s, best.pi.clone());
                let feas = check_feasibility(&tmap, &alg, &ic).is_feasible();
                let (xs2, ws2) = (xs.clone(), ws.clone());
                let mut cells = Model35Cells::new(
                    &word,
                    p,
                    &alg,
                    move |j| xs2[(j[0] + j[1] - 2) as usize],
                    move |j| ws2[(j[1] - 1) as usize],
                );
                let run = run_clocked(&alg, &tmap, &ic, &mut cells);
                let results = cells.extract_results(&run);
                let all_correct = results.iter().all(|(tail, &value)| {
                    let j1 = tail[0];
                    let want: u128 = (1..=taps)
                        .map(|j2| xs[(j1 + j2 - 2) as usize] * ws[(j2 - 1) as usize])
                        .sum();
                    value == want
                });
                t.push(Record::info(
                    "convolution (4 outputs, 3 taps, p=3)",
                    "searched schedule, legal run, correct samples",
                    format!(
                        "Pi = {}, {} cycles, legal = {}, correct = {all_correct}",
                        best.pi,
                        run.cycles,
                        run.is_legal()
                    ),
                    feas && run.is_legal() && all_correct,
                ));
            }
            None => t.push(Record::check(
                "convolution",
                "feasible schedule exists",
                false,
            )),
        }
    }

    // Matrix–vector product (no word-level reuse of the matrix operand).
    {
        let (m, k, p) = (3i64, 3i64, 3usize);
        let word = WordLevelAlgorithm::matvec(m, k);
        let alg = compose(&word, p, Expansion::II);
        t.push(Record::eq(
            "matvec structure columns (no d̄₂)",
            6usize,
            alg.deps.len(),
        ));
        let a: Vec<Vec<u128>> = (0..m)
            .map(|i| (0..k).map(|j| ((i + 2 * j) % 4) as u128).collect())
            .collect();
        let v: Vec<u128> = (0..k).map(|kk| ((kk % 3) + 1) as u128).collect();
        let s = IMat::from_rows(&[&[p as i64, 0, 1, 0], &[0, 0, 0, 1]]);
        let ic = Interconnect::new(IMat::from_rows(&[
            &[p as i64, 0, 1, 0, 1],
            &[0, 0, 0, 1, -1],
        ]));
        match find_optimal_schedule(&s, &alg, &ic, 3) {
            Some(best) => {
                let tmap = MappingMatrix::new(s, best.pi);
                let (a2, v2) = (a.clone(), v.clone());
                let mut cells = Model35Cells::new(
                    &word,
                    p,
                    &alg,
                    move |j| v2[(j[1] - 1) as usize],
                    move |j| a2[(j[0] - 1) as usize][(j[1] - 1) as usize],
                );
                let run = run_clocked(&alg, &tmap, &ic, &mut cells);
                let all_correct = cells.extract_results(&run).iter().all(|(tail, &value)| {
                    let i = (tail[0] - 1) as usize;
                    let want: u128 = (0..k as usize).map(|kk| a[i][kk] * v[kk]).sum();
                    value == want
                });
                t.push(Record::check(
                    "matvec (3x3, p=3) clocked run",
                    "legal and bit-correct",
                    run.is_legal() && all_correct,
                ));
            }
            None => t.push(Record::check("matvec", "feasible schedule exists", false)),
        }
    }

    ExperimentOutcome {
        id: "e13".into(),
        table: t,
    }
}

/// E14 — extension: the compiled static-schedule simulation backend — dense
/// point slots, CSR fire list, arena token store — bit-identical to the
/// interpreted engines and faster per executed run.
pub fn e14() -> ExperimentOutcome {
    e14_impl(&mut NullSink)
}

/// [`e14`] with observability: the (u = p = 3) Fig. 4 compiled clocked run
/// is traced into `sink` while its bit-identity against the interpreted
/// engine is being checked.
pub fn e14_impl<K: TraceSink>(sink: &mut K) -> ExperimentOutcome {
    use bitlevel_systolic::{run_clocked, BitMatmulArray, MatmulExpansionIICells, SimBackend};
    let mut t = RecordTable::new("E14 (extension): compiled simulation backend");

    t.push(Record::check(
        "default backend",
        "DesignFlow simulates compiled, interpreted kept as oracle",
        SimBackend::default() == SimBackend::Compiled,
    ));

    let operands = |u: i64, p: i64| {
        let cap = BitMatmulArray::new(u as usize, p as usize).max_safe_entry();
        let x: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((3 * i + 5 * j + 1) as u128) % (cap + 1))
                    .collect()
            })
            .collect();
        let y: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((7 * i + j + 2) as u128) % (cap + 1))
                    .collect()
            })
            .collect();
        (x, y)
    };

    // Bit-identity on both paper designs: the full clocked run (outputs,
    // violations, in-flight peaks) and the mapped timing report.
    for (u, p) in [(2i64, 2i64), (3, 3)] {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
        let (x, y) = operands(u, p);
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let tm = design.mapping(p);
            let ic = design.interconnect(p);
            let mut cells = MatmulExpansionIICells::new(u as usize, p as usize, &x, &y);
            let interp = run_clocked(&alg, &tm, &ic, &mut cells);
            let sched = CompiledSchedule::try_compile(&alg, &tm, &ic)
                .expect("the 7-column matmul structure compiles");
            let comp = if u == 3 && p == 3 && matches!(design, PaperDesign::TimeOptimal) {
                sched.execute_traced(&cells, sink)
            } else {
                sched.execute(&cells)
            };
            t.push(Record::check(
                &format!("clocked run identical, u={u} p={p}, {}", design.name()),
                "outputs + violations + peaks bit-equal",
                comp.cycles == interp.cycles
                    && comp.outputs == interp.outputs
                    && comp.violations == interp.violations
                    && comp.peak_in_flight == interp.peak_in_flight,
            ));
            let a = simulate_mapped(&alg, &tm, &ic);
            let b = sched.mapped_report();
            t.push(Record::check(
                &format!("mapped report identical, u={u} p={p}, {}", design.name()),
                "same report from the dense slots",
                a.cycles == b.cycles
                    && a.processors == b.processors
                    && a.computations == b.computations
                    && a.conflict_free == b.conflict_free
                    && a.causality_ok == b.causality_ok
                    && a.peak_parallelism == b.peak_parallelism
                    && a.link_traffic == b.link_traffic
                    && a.buffer_cycles == b.buffer_cycles,
            ));
        }
    }

    // Compile once, execute many: best-of-3 wall clock of the interpreted
    // engine vs the precompiled executor on the Fig. 4 design.
    let (u, p) = (4i64, 6i64);
    let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
    let design = PaperDesign::TimeOptimal;
    let (tm, ic) = (design.mapping(p), design.interconnect(p));
    let (x, y) = operands(u, p);
    let mut cells = MatmulExpansionIICells::new(u as usize, p as usize, &x, &y);
    let mut interp_ns = u128::MAX;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        std::hint::black_box(run_clocked(&alg, &tm, &ic, &mut cells));
        interp_ns = interp_ns.min(t0.elapsed().as_nanos());
    }
    let sched = CompiledSchedule::try_compile(&alg, &tm, &ic)
        .expect("the 7-column matmul structure compiles");
    let mut exec_ns = u128::MAX;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        std::hint::black_box(sched.execute(&cells));
        exec_ns = exec_ns.min(t0.elapsed().as_nanos());
    }
    let speedup = interp_ns as f64 / exec_ns.max(1) as f64;
    t.push(Record::info(
        &format!(
            "run_clocked wall time, u={u} p={p} (Fig. 4, |J|={})",
            sched.n_points()
        ),
        "compiled execute() faster than interpreted",
        format!(
            "interpreted {:.1}ms vs compiled {:.1}ms ({speedup:.1}x)",
            interp_ns as f64 / 1e6,
            exec_ns as f64 / 1e6
        ),
        speedup > 1.0,
    ));

    ExperimentOutcome {
        id: "e14".into(),
        table: t,
    }
}

/// E15 — extension: measured utilisation and wavefront profiles of the two
/// paper designs, captured through the trace layer from real clocked runs —
/// the observability counterpart of the Figs. 4/5 comparison.
pub fn e15() -> ExperimentOutcome {
    e15_impl(&mut NullSink)
}

/// [`e15`] with observability: both paper-design runs are recorded into
/// local sinks for profiling, and (when `outer` is enabled) their full event
/// streams are replayed into it.
pub fn e15_impl<K: TraceSink>(outer: &mut K) -> ExperimentOutcome {
    use bitlevel_systolic::{BitMatmulArray, MatmulExpansionIICells, RecordingSink};
    let mut t =
        RecordTable::new("E15 (extension): traced wavefront/utilisation profiles — Fig. 4 vs 5");
    let (u, p) = (3i64, 3i64);
    let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
    let cap = BitMatmulArray::new(u as usize, p as usize).max_safe_entry();
    let x: Vec<Vec<u128>> = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| ((3 * i + 5 * j + 1) as u128) % (cap + 1))
                .collect()
        })
        .collect();
    let y: Vec<Vec<u128>> = (0..u)
        .map(|i| {
            (0..u)
                .map(|j| ((7 * i + j + 2) as u128) % (cap + 1))
                .collect()
        })
        .collect();
    let cells = MatmulExpansionIICells::new(u as usize, p as usize, &x, &y);

    let mut profiles = Vec::new();
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let sched =
            CompiledSchedule::try_compile(&alg, &design.mapping(p), &design.interconnect(p))
                .expect("the 7-column matmul structure compiles");
        let mut rec = RecordingSink::new();
        let run = sched.execute_traced(&cells, &mut rec);
        t.push(Record::eq(
            &format!("traced firings, {}", design.name()),
            (u as u64).pow(3) * (p as u64).pow(2),
            rec.rollup().fire_total(),
        ));
        t.push(Record::eq(
            &format!("traced busy span, {}", design.name()),
            design.total_time(u, p),
            rec.rollup().cycle_span(),
        ));
        t.push(Record::check(
            &format!("traced run legal, {}", design.name()),
            "no violation events",
            rec.rollup().violations == 0 && run.is_legal(),
        ));
        t.push(Record::check(
            &format!("in-flight peaks agree, {}", design.name()),
            "rollup high-water marks == engine's peak_in_flight",
            rec.rollup().in_flight_peak == run.peak_in_flight,
        ));
        if K::ENABLED {
            for ev in rec.events() {
                outer.record(ev.clone());
            }
        }
        profiles.push(rec);
    }

    let (fig4, fig5) = (&profiles[0], &profiles[1]);
    t.push(Record::info(
        "measured utilisation",
        "Fig. 4 denser than Fig. 5 (same work, shorter span)",
        format!(
            "Fig. 4 {:.3} vs Fig. 5 {:.3}",
            fig4.rollup().utilization(),
            fig5.rollup().utilization()
        ),
        fig4.rollup().utilization() > fig5.rollup().utilization(),
    ));
    t.push(Record::info(
        "peak wavefront",
        "Fig. 4 at least as wide (same work in fewer cycles)",
        format!(
            "Fig. 4 {} vs Fig. 5 {}",
            fig4.rollup().peak_wavefront(),
            fig5.rollup().peak_wavefront()
        ),
        fig4.rollup().peak_wavefront() >= fig5.rollup().peak_wavefront(),
    ));
    let traversals = |r: &RecordingSink| r.rollup().link_occupancy.iter().sum::<u64>();
    t.push(Record::info(
        "total link traversals",
        "Fig. 5 pays more hops for unit-length wires",
        format!("Fig. 4 {} vs Fig. 5 {}", traversals(fig4), traversals(fig5)),
        traversals(fig5) >= traversals(fig4),
    ));

    ExperimentOutcome {
        id: "e15".into(),
        table: t,
    }
}

/// E16 — extension: Pareto design-space exploration over Definition 4.1,
/// searching space mappings `S`, schedules `Π` and both Section 4 machines
/// jointly. Rediscovers Theorem 4.5's `Π = [1,1,1,2,1]` at the time-minimal
/// end and the (4.6) schedule `Π' = [p,p,1,2,1]` as the best
/// nearest-neighbour design, verifies every frontier design bit-exactly on
/// the compiled backend against the interpreted engine, and measures the
/// branch-and-bound pruning against the exhaustive joint space.
pub fn e16() -> ExperimentOutcome {
    let mut t = RecordTable::new(
        "E16 (extension): Pareto (S, Pi, machine) design-space exploration — Def. 4.1 joint search",
    );
    let (u, p) = (3i64, 2i64);
    let flow = DesignFlow::matmul(u, p as usize);
    let (family, config) = flow.default_exploration();
    let ex = flow
        .explore(&family, &config)
        .expect("well-formed exploration inputs");

    t.push(Record::info(
        &format!("design space, u={u} p={p}"),
        "explorer covers the full joint space",
        format!(
            "{} spaces x {} machines x {} schedules = {} designs; frontier: {}",
            ex.stats.spaces,
            ex.stats.machines,
            ex.stats.schedule_candidates,
            ex.stats.exhaustive,
            ex.designs.len()
        ),
        !ex.designs.is_empty(),
    ));

    let tm = &ex.designs[0];
    t.push(Record::eq(
        "time-minimal schedule (Theorem 4.5)",
        format!("{:?}", [1, 1, 1, 2, 1]),
        format!("{:?}", tm.point.mapping.schedule.as_slice()),
    ));
    t.push(Record::eq(
        "time-minimal t == eq. (4.5) closed form",
        PaperDesign::TimeOptimal.total_time(u, p),
        tm.point.time,
    ));
    t.push(Record::eq(
        "optimum meets the dependence-only lower bound",
        ex.stats.lower_bound.expect("screened candidates exist"),
        tm.point.time,
    ));

    let nn = ex
        .designs
        .iter()
        .find(|d| d.point.max_wire_length <= 1)
        .expect("a nearest-neighbour design is on the frontier");
    t.push(Record::eq(
        "best nearest-neighbour schedule (eq. (4.6))",
        format!("{:?}", [p, p, 1, 2, 1]),
        format!("{:?}", nn.point.mapping.schedule.as_slice()),
    ));
    t.push(Record::eq(
        "nearest-neighbour t == (2p+1)(u-1)+3(p-1)+1",
        PaperDesign::NearestNeighbour.total_time(u, p),
        nn.point.time,
    ));

    t.push(Record::check(
        "frontier verification",
        "every design passes Def. 4.1 and is bit-exact compiled vs interpreted",
        ex.all_verified()
            && ex.designs.iter().all(|d| {
                d.report.backend_used == "compiled" && d.report.run.cycles == d.point.time
            }),
    ));

    let reduction = ex
        .stats
        .exhaustive
        .checked_div(ex.stats.full_checks)
        .unwrap_or(ex.stats.exhaustive);
    t.push(Record::info(
        "branch-and-bound pruning",
        ">=10x fewer full Def. 4.1 checks than exhaustive",
        format!(
            "{} examined vs {} exhaustive ({reduction}x; {} pairs pruned outright)",
            ex.stats.full_checks, ex.stats.exhaustive, ex.stats.pruned_pairs
        ),
        reduction >= 10,
    ));

    ExperimentOutcome {
        id: "e16".into(),
        table: t,
    }
}

/// E17 (extension) — fault injection & ABFT: the exhaustive single-fault
/// sweep (every index point × every signal bit, both engines, ABFT
/// classification) plus a seeded Monte Carlo multi-fault campaign, on both
/// paper designs. The resilience bar: under checksum protection no single
/// transient flip may escape as silent data corruption, and the interpreted
/// and compiled engines must classify every case identically.
pub fn e17_seeded(seed: u64) -> ExperimentOutcome {
    let mut t = RecordTable::new(
        "E17 (extension): fault injection & ABFT — exhaustive single-fault sweep + Monte Carlo",
    );
    let (u, p) = (2usize, 2usize);
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let r = single_fault_campaign(design, u, p, seed);
        t.push(Record::eq(
            &format!("{design:?}: exhaustive cases = |J| x signal bits"),
            32 * 5,
            r.total,
        ));
        t.push(Record::check(
            &format!("{design:?}: classifications partition the injected set"),
            "masked + detected + sdc == total",
            r.classifications_partition(),
        ));
        t.push(Record::eq(
            &format!("{design:?}: silent data corruption"),
            0,
            r.sdc,
        ));
        t.push(Record::eq(
            &format!("{design:?}: engine classification mismatches"),
            0,
            r.engine_mismatches,
        ));
        t.push(Record::info(
            &format!("{design:?}: ABFT detection coverage"),
            "every non-masked single fault detected",
            format!(
                "{} masked + {} detected of {} ({:.1}% of corrupting faults caught)",
                r.masked,
                r.detected,
                r.total,
                100.0 * r.detected as f64 / (r.detected + r.sdc).max(1) as f64
            ),
            r.masked + r.detected == r.total,
        ));
        let mc = monte_carlo_campaign(design, u, p, seed, 40, 0.01);
        t.push(Record::info(
            &format!("{design:?}: Monte Carlo, 40 trials at rate 0.01"),
            "multi-fault SDC measured (not asserted); engines agree",
            format!(
                "{} masked, {} detected, {} sdc; mean {:.1} faults/trial",
                mc.masked, mc.detected, mc.sdc, mc.mean_injected
            ),
            mc.engine_mismatches == 0 && mc.masked + mc.detected + mc.sdc == mc.trials,
        ));
    }
    ExperimentOutcome {
        id: "e17".into(),
        table: t,
    }
}

/// [`e17_seeded`] at [`DEFAULT_SEED`].
pub fn e17() -> ExperimentOutcome {
    e17_seeded(DEFAULT_SEED)
}

/// E18 (extension): the lane-packed batch engine — up to 64 independent
/// problem instances in the bit-lanes of a `u64`, one compiled schedule walk
/// per word. Measures instances/sec against lane width on both paper designs
/// (the `BENCH_batch.json` series) and holds the two bars the batch engine
/// exists for: every lane bit-exact against native arithmetic at every
/// width, and width 64 at least 8× the throughput of width 1 (one walk's
/// bookkeeping amortised over a full word of lanes).
pub fn e18_seeded(seed: u64) -> ExperimentOutcome {
    let mut t =
        RecordTable::new("E18 (extension): bit-sliced batch engine — instances/sec vs lane width");
    let rows = crate::sweeps::batch_sweep(
        &crate::sweeps::default_batch_widths(),
        crate::sweeps::default_batch_instances(),
        seed,
    );
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let d: Vec<_> = rows.iter().filter(|r| r.design == design.name()).collect();
        t.push(Record::check(
            &format!("{design:?}: every lane bit-exact at every width"),
            "extracted products == native arithmetic, all walks legal",
            !d.is_empty() && d.iter().all(|r| r.identical),
        ));
        let base = d.iter().find(|r| r.width == 1).expect("width-1 baseline");
        let top = d.iter().find(|r| r.width == 64).expect("width-64 row");
        t.push(Record::eq(
            &format!("{design:?}: walks at width 64 for 64 instances"),
            1,
            top.walks as i64,
        ));
        let gain = top.instances_per_sec / base.instances_per_sec.max(f64::MIN_POSITIVE);
        t.push(Record::info(
            &format!("{design:?}: width-64 throughput vs width-1"),
            ">= 8x (per-walk bookkeeping amortised over 64 lanes)",
            format!(
                "{gain:.1}x ({:.0} -> {:.0} instances/sec over {} cycles/walk)",
                base.instances_per_sec, top.instances_per_sec, top.cycles
            ),
            gain >= 8.0,
        ));
    }
    ExperimentOutcome {
        id: "e18".into(),
        table: t,
    }
}

/// [`e18_seeded`] at [`DEFAULT_SEED`].
pub fn e18() -> ExperimentOutcome {
    e18_seeded(DEFAULT_SEED)
}

/// E19 (extension): the content-hashed compile cache — the cold/warm
/// trajectory of schedule acquisition (the `BENCH_cache.json` series) plus
/// the pipeline-level bars the cache exists for: a warm `DesignFlow`
/// evaluation is bit-identical to the cold one with **zero** recompiles
/// (counter-asserted), and re-verifying every explorer frontier design is
/// compile-free. Timing rows are informational (wall-clock), correctness
/// rows are hard bars.
pub fn e19() -> ExperimentOutcome {
    let mut t =
        RecordTable::new("E19 (extension): content-hashed compile cache — cold vs warm trajectory");
    let rows = crate::sweeps::cache_sweep(&crate::sweeps::default_cache_sizes());
    t.push(Record::check(
        "acquisition trajectory at every size and design",
        "miss -> memory-hit -> disk-hit, one compile, artifacts bit-identical",
        !rows.is_empty() && rows.iter().all(|r| r.identical && r.compiles == 1),
    ));
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let d: Vec<_> = rows.iter().filter(|r| r.design == design.name()).collect();
        let worst_mem = d
            .iter()
            .map(|r| r.mem_speedup)
            .fold(f64::INFINITY, f64::min);
        let worst_disk = d
            .iter()
            .map(|r| r.disk_speedup)
            .fold(f64::INFINITY, f64::min);
        t.push(Record::info(
            &format!("{design:?}: warm memory hit vs cold compile"),
            "warm beats cold at every size (a hit skips compile + persist)",
            format!("min {worst_mem:.0}x in-memory, min {worst_disk:.1}x from disk"),
            worst_mem > 1.0,
        ));
    }

    // Pipeline-level: warm evaluation is recompile-free and bit-identical.
    let flow = DesignFlow::matmul(3, 3);
    let cold = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
    let warm = flow.evaluate_paper_design(PaperDesign::TimeOptimal);
    let stats = flow.cache().stats();
    t.push(Record::eq(
        "compiles across a cold + a warm Fig. 4 evaluation",
        1,
        stats.compiles() as i64,
    ));
    t.push(Record::check(
        "warm report bit-identical to cold",
        "zero field divergences, same backend, same feasibility",
        warm.run.divergences_from(&cold.run).is_empty()
            && warm.backend_used == cold.backend_used
            && warm.feasible == cold.feasible,
    ));

    // Explorer: re-verifying the whole frontier must not compile anything.
    let flow = DesignFlow::matmul(2, 2);
    let (family, config) = flow.default_exploration();
    let ex = flow.explore(&family, &config).expect("well-formed inputs");
    let after_explore = flow.cache().stats().compiles();
    let alg = flow.bit_level_structure();
    for d in &ex.designs {
        flow.evaluate_structure(
            "re-verify",
            &alg,
            &d.point.mapping,
            &d.point.interconnect,
            Some(d.point.time),
        );
    }
    t.push(Record::eq(
        "recompiles while re-verifying the whole explorer frontier",
        0,
        (flow.cache().stats().compiles() - after_explore) as i64,
    ));
    ExperimentOutcome {
        id: "e19".into(),
        table: t,
    }
}

/// E20 (extension): lane-packed fault campaigns — the exhaustive
/// single-fault sweep of E17 packed up to 64 distinct fault cases into the
/// lanes of one word-wide walk (the `BENCH_faultbatch.json` series). The
/// hard bars are correctness: at every width the batched campaign's
/// classifications are identical, case for case, to the scalar dual-engine
/// campaign, and the ABFT zero-SDC result survives the packing. The
/// throughput row is the point of the exercise: width 64 must beat width 1
/// by at least 8x on fault-cases/sec.
pub fn e20_seeded(seed: u64) -> ExperimentOutcome {
    let mut t = RecordTable::new(
        "E20 (extension): lane-packed fault campaigns — fault-cases/sec vs lane width",
    );
    let rows = crate::sweeps::faultbatch_sweep(&crate::sweeps::default_faultbatch_widths(), seed);
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let d: Vec<_> = rows
            .iter()
            .filter(|r| r.design == format!("{design:?}"))
            .collect();
        t.push(Record::check(
            &format!("{design:?}: batched == scalar, case for case, at every width"),
            "every lane's classification equals both scalar engines' verdict",
            !d.is_empty() && d.iter().all(|r| r.identical),
        ));
        t.push(Record::check(
            &format!("{design:?}: zero SDC preserved at every width"),
            "masked + detected == cases, sdc == 0",
            d.iter()
                .all(|r| r.sdc == 0 && r.masked + r.detected == r.cases),
        ));
        let base = d
            .iter()
            .find(|r| r.width == 1)
            .expect("width-1 baseline row");
        let top = d.iter().find(|r| r.width == 64).expect("width-64 row");
        t.push(Record::eq(
            &format!("{design:?}: walks at width 64"),
            top.cases.div_ceil(64) as i64,
            top.walks as i64,
        ));
        let gain = top.cases_per_sec / base.cases_per_sec.max(f64::MIN_POSITIVE);
        t.push(Record::info(
            &format!("{design:?}: width-64 fault throughput vs width-1"),
            ">= 8x (one walk carries 64 fault cases)",
            format!(
                "{gain:.1}x ({:.0} -> {:.0} cases/sec; scalar dual-engine baseline {:.0})",
                base.cases_per_sec, top.cases_per_sec, top.scalar_cases_per_sec
            ),
            gain >= 8.0,
        ));
    }
    ExperimentOutcome {
        id: "e20".into(),
        table: t,
    }
}

/// [`e20_seeded`] at [`DEFAULT_SEED`].
pub fn e20() -> ExperimentOutcome {
    e20_seeded(DEFAULT_SEED)
}

/// E21 (extension): LSGP partitioned execution — the unbounded virtual PE
/// array folded onto a fixed pool of physical workers (the
/// `BENCH_partition.json` series). The hard bars are correctness and the
/// cost model: at every pool size the partitioned engine is bit-identical
/// to the compiled engine, the balanced makespan `Σ_c ⌈f_c/k⌉` is
/// non-increasing in workers, a (u, p) = (8, 4) design — 1024 virtual PEs —
/// executes bit-identically to the interpreted oracle on a pool of 8, and
/// the budgeted explorer emits a frontier respecting the physical budget.
pub fn e21_seeded(seed: u64) -> ExperimentOutcome {
    let mut t = RecordTable::new(
        "E21 (extension): LSGP partitioned execution — instances/sec vs physical workers",
    );
    let rows = crate::sweeps::partition_sweep(
        &crate::sweeps::default_partition_workers(),
        crate::sweeps::default_partition_instances(),
        seed,
    );
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let d: Vec<_> = rows
            .iter()
            .filter(|r| r.design == format!("{design:?}"))
            .collect();
        t.push(Record::check(
            &format!("{design:?}: partitioned == compiled at every pool size"),
            "legal runs, identical outputs/violations/cycles, products native-exact",
            !d.is_empty() && d.iter().all(|r| r.identical),
        ));
        t.push(Record::check(
            &format!("{design:?}: balanced makespan non-increasing in workers"),
            "sum_c ceil(f_c/k) weakly improves as the pool grows",
            d.windows(2)
                .all(|w| w[1].balanced_makespan <= w[0].balanced_makespan),
        ));
        let base = d
            .iter()
            .find(|r| r.workers == 1)
            .expect("workers-1 baseline row");
        let top = d.iter().max_by_key(|r| r.workers).expect("widest pool row");
        let gain = top.instances_per_sec / base.instances_per_sec.max(f64::MIN_POSITIVE);
        t.push(Record::info(
            &format!("{design:?}: throughput at {} workers vs 1", top.workers),
            "positive throughput at every pool size",
            format!(
                "{gain:.2}x ({:.0} -> {:.0} instances/sec)",
                base.instances_per_sec, top.instances_per_sec
            ),
            base.instances_per_sec > 0.0 && top.instances_per_sec > 0.0,
        ));
    }

    // The acceptance bar: a (u, p) = (8, 4) Fig. 4 design — 1024 virtual
    // PEs — executes bit-identically to the interpreted oracle on a pool of
    // 8 physical workers, strictly smaller than the virtual array.
    let (u, p) = (8usize, 4usize);
    let word = WordLevelAlgorithm::matmul(u as i64);
    let alg = compose(&word, p, Expansion::II);
    let design = PaperDesign::TimeOptimal;
    let tm = design.mapping(p as i64);
    let ic = design.interconnect(p as i64);
    let (x, y) = bitlevel_fault::operand_matrices(u, p, seed);
    let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
    let oracle = run_clocked(&alg, &tm, &ic, &mut cells);
    let sched = CompiledSchedule::try_compile(&alg, &tm, &ic)
        .expect("the 7-column matmul structure compiles");
    let part = PartitionedSchedule::try_new(std::sync::Arc::new(sched), 8)
        .expect("paper schedules are causal");
    let prun = part.execute(&cells);
    let stats = part.stats();
    t.push(Record::eq(
        "virtual PEs of the (8, 4) Fig. 4 array",
        1024,
        stats.virtual_pes as i64,
    ));
    t.push(Record::check(
        "physical pool strictly smaller than the virtual array",
        "8 workers < 1024 virtual PEs, every PE owned by exactly one shard",
        stats.workers == 8 && stats.workers < stats.virtual_pes,
    ));
    t.push(Record::check(
        "(8, 4) partitioned run bit-identical to the interpreted oracle",
        "outputs, violations, cycles and in-flight peak all equal",
        prun.outputs == oracle.outputs
            && prun.violations == oracle.violations
            && prun.cycles == oracle.cycles
            && prun.peak_in_flight == oracle.peak_in_flight,
    ));

    // The budgeted explorer: under the partitioned backend the worker count
    // bounds the physical axis, and every frontier point must respect it.
    let flow = DesignFlow::matmul(2, 2).with_backend(SimBackend::Partitioned { workers: 8 });
    let (family, config) = flow.default_exploration();
    let ex = flow.explore(&family, &config).expect("well-formed inputs");
    t.push(Record::check(
        "budgeted explorer frontier respects max_physical_pes",
        "at least one verified point, every point's physical_pes <= 8",
        !ex.designs.is_empty()
            && ex.all_verified()
            && ex.designs.iter().all(|d| d.point.physical_pes <= 8),
    ));
    ExperimentOutcome {
        id: "e21".into(),
        table: t,
    }
}

/// [`e21_seeded`] at [`DEFAULT_SEED`].
pub fn e21() -> ExperimentOutcome {
    e21_seeded(DEFAULT_SEED)
}

/// E22 (extension): the long-running NDJSON evaluation service
/// (`bitlevel-serve`) sharing one compile cache across concurrent requests
/// (the `BENCH_serve.json` series). The hard bars: eight concurrent
/// identical `Evaluate` requests cost exactly one compile (counter-asserted
/// through the cache-stats snapshot) and return byte-identical terminal
/// frames; a zero deadline comes back as a typed `timeout` error frame on a
/// still-usable connection; and on every sweep row the warm (cache-shared)
/// path sustains positive throughput with one compile per server session.
pub fn e22_seeded(_seed: u64) -> ExperimentOutcome {
    use bitlevel_serve::{
        serve, DesignSpec, ErrorKind, Frame, Request, RequestEnvelope, ServeClient, ServeConfig,
    };

    let mut t = RecordTable::new(
        "E22 (extension): NDJSON evaluation service — concurrent requests over one compile cache",
    );

    // Direct scenario: one server, eight concurrent identical Evaluate
    // requests racing the cold cache. Single-flight compilation must
    // collapse them to one compile, and every terminal frame must be
    // byte-identical.
    let handle = serve(ServeConfig {
        workers: 8,
        poll_interval_ms: 10,
        ..ServeConfig::default()
    })
    .expect("ephemeral-port server starts");
    let addr = handle.local_addr();
    let envelope = RequestEnvelope {
        id: 22,
        deadline_ms: None,
        request: Request::Evaluate {
            u: 3,
            p: 3,
            design: DesignSpec::TimeOptimal,
            backend: SimBackend::Compiled,
        },
    };
    const CLIENTS: usize = 8;
    let lines: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let env = envelope.clone();
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let tx = client.request_collect(&env).expect("transaction completes");
                    tx.terminal_line().expect("terminal frame").to_string()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let stats = handle.cache().snapshot();
    t.push(Record::eq(
        "compiles for 8 concurrent identical Evaluate requests",
        1,
        stats.misses as i64,
    ));
    t.push(Record::check(
        "all 8 terminal result frames byte-identical",
        "same request -> same bytes, regardless of which worker/cache path served it",
        lines.len() == CLIENTS && lines.iter().all(|l| *l == lines[0]),
    ));
    t.push(Record::check(
        "the raced result is a Result frame echoing the request id",
        "frame parses, id == 22, payload present",
        matches!(Frame::parse(&lines[0]), Ok(Frame::Result { id: 22, .. })),
    ));

    // A zero deadline expires before any work starts: the server must answer
    // with a typed timeout error frame and keep the connection usable.
    let mut client = ServeClient::connect(addr).expect("connect");
    let timed_out = client
        .request_collect(&RequestEnvelope {
            id: 23,
            deadline_ms: Some(0),
            request: envelope.request.clone(),
        })
        .expect("transaction completes");
    t.push(Record::check(
        "deadline_ms = 0 yields a typed timeout frame",
        "Error frame, kind == timeout, id echoed",
        timed_out.error().map(|e| e.kind) == Some(ErrorKind::Timeout)
            && matches!(
                Frame::parse(timed_out.terminal_line().unwrap_or("")),
                Ok(Frame::Error { id: Some(23), .. })
            ),
    ));
    let after_timeout = client
        .request_collect(&envelope)
        .expect("connection survives the timeout");
    t.push(Record::check(
        "connection survives the timeout and serves the next request",
        "the follow-up Evaluate returns the same bytes as the raced requests",
        after_timeout.terminal_line() == Some(lines[0].as_str()),
    ));
    drop(client);
    handle.shutdown();
    handle.join();

    // The sweep series: per (design, u, p), one compile per server session
    // and byte-identical warm responses, with the warm multi-client path
    // out-throughputting the cold first request.
    let rows = crate::sweeps::serve_sweep(&crate::sweeps::default_serve_sizes());
    t.push(Record::check(
        "sweep: one compile per server session on every row",
        "cache misses == 1 for each (design, u, p) server",
        !rows.is_empty() && rows.iter().all(|r| r.compiles == 1),
    ));
    t.push(Record::check(
        "sweep: warm responses byte-identical to the cold response",
        "every warm terminal line equals the cold line, on every row",
        rows.iter().all(|r| r.identical),
    ));
    let worst = rows
        .iter()
        .map(|r| r.throughput_gain)
        .fold(f64::INFINITY, f64::min);
    let best = rows.iter().map(|r| r.throughput_gain).fold(0.0, f64::max);
    t.push(Record::info(
        "sweep: warm requests/sec vs the cold first request",
        "> 1x on every row (the compile is paid once, then amortised)",
        format!("gain {worst:.1}x .. {best:.1}x across {} rows", rows.len()),
        worst > 1.0,
    ));
    ExperimentOutcome {
        id: "e22".into(),
        table: t,
    }
}

/// [`e22_seeded`] at [`DEFAULT_SEED`].
pub fn e22() -> ExperimentOutcome {
    e22_seeded(DEFAULT_SEED)
}

const ALL_IDS: [&str; 22] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22",
];

/// The experiments that accept a trace sink (see [`run_experiment_traced`]).
pub const TRACEABLE_IDS: [&str; 4] = ["e6", "e7", "e14", "e15"];

/// The seed every randomized path uses when none is given, so unseeded runs
/// stay reproducible.
pub const DEFAULT_SEED: u64 = 0x1CC7_1993;

/// Runs one experiment by id ("e1" … "e22") at [`DEFAULT_SEED`].
pub fn run_experiment(id: &str) -> Option<ExperimentOutcome> {
    run_experiment_seeded(id, DEFAULT_SEED)
}

/// Runs one experiment by id with an explicit seed for every randomized
/// path (E17/E18/E20 draw seeded operands; the other experiments are
/// deterministic and ignore the seed).
pub fn run_experiment_seeded(id: &str, seed: u64) -> Option<ExperimentOutcome> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => Some(e1()),
        "e2" => Some(e2()),
        "e3" => Some(e3()),
        "e4" => Some(e4()),
        "e5" => Some(e5()),
        "e6" => Some(e6()),
        "e7" => Some(e7()),
        "e8" => Some(e8()),
        "e9" => Some(e9()),
        "e10" => Some(e10()),
        "e11" => Some(e11()),
        "e12" => Some(e12()),
        "e13" => Some(e13()),
        "e14" => Some(e14()),
        "e15" => Some(e15()),
        "e16" => Some(e16()),
        "e17" => Some(e17_seeded(seed)),
        "e18" => Some(e18_seeded(seed)),
        "e19" => Some(e19()),
        "e20" => Some(e20_seeded(seed)),
        "e21" => Some(e21_seeded(seed)),
        "e22" => Some(e22_seeded(seed)),
        _ => None,
    }
}

/// Runs one experiment with a trace sink attached. For the ids in
/// [`TRACEABLE_IDS`] the simulated runs emit their event streams into
/// `sink`; every other id runs exactly as [`run_experiment`] (nothing is
/// recorded).
pub fn run_experiment_traced<K: TraceSink>(id: &str, sink: &mut K) -> Option<ExperimentOutcome> {
    match id.to_ascii_lowercase().as_str() {
        "e6" => Some(e6_impl(sink)),
        "e7" => Some(e7_impl(sink)),
        "e14" => Some(e14_impl(sink)),
        "e15" => Some(e15_impl(sink)),
        other => run_experiment(other),
    }
}

/// Runs the whole suite in order at [`DEFAULT_SEED`].
pub fn run_all() -> Vec<ExperimentOutcome> {
    run_all_seeded(DEFAULT_SEED)
}

/// Runs the whole suite in order with an explicit seed for the randomized
/// experiments.
pub fn run_all_seeded(seed: u64) -> Vec<ExperimentOutcome> {
    ALL_IDS
        .iter()
        .map(|id| run_experiment_seeded(id, seed).expect("known id"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_confirms_the_paper() {
        for outcome in run_all() {
            assert!(
                outcome.passed(),
                "experiment {} failed:\n{}",
                outcome.id,
                outcome.table.render_text()
            );
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("e42").is_none());
        assert!(run_experiment_traced("e42", &mut NullSink).is_none());
    }

    #[test]
    fn traceable_ids_are_known() {
        for id in TRACEABLE_IDS {
            assert!(ALL_IDS.contains(&id), "{id} missing from ALL_IDS");
        }
    }

    #[test]
    fn e17_is_seed_deterministic_and_holds_at_any_seed() {
        let a = run_experiment_seeded("e17", 1).expect("known id");
        let b = run_experiment_seeded("e17", 1).expect("known id");
        assert!(a.passed(), "{}", a.table.render_text());
        assert_eq!(a.table.render_text(), b.table.render_text());
        // The zero-SDC and engine-agreement bars are seed-independent.
        let c = run_experiment_seeded("e17", 0xDEAD_BEEF).expect("known id");
        assert!(c.passed(), "{}", c.table.render_text());
    }

    #[test]
    fn traced_e6_emits_a_valid_chrome_trace_of_the_fig4_run() {
        use bitlevel_systolic::RecordingSink;
        let mut sink = RecordingSink::new();
        let outcome = run_experiment_traced("e6", &mut sink).expect("known id");
        assert!(outcome.passed(), "{}", outcome.table.render_text());
        // The traced size is u = p = 3: |J| = u³p² = 243 firings over the
        // 13 cycles of eq. (4.5).
        assert_eq!(sink.rollup().fire_total(), 243);
        assert_eq!(sink.rollup().cycle_span(), 13);
        if serde_json::to_string(&1i64)
            .map(|s| s.is_empty())
            .unwrap_or(true)
        {
            return; // offline serde_json stub: no real JSON to validate
        }
        let json: serde_json::Value =
            serde_json::from_str(&sink.to_chrome_trace()).expect("valid JSON");
        let events = json["traceEvents"].as_array().expect("traceEvents array");
        let fires = events.iter().filter(|e| e["ph"] == "X").count();
        assert_eq!(fires, 243, "one complete event per fired point");
    }

    #[test]
    fn traced_and_untraced_experiments_agree() {
        use bitlevel_systolic::RecordingSink;
        for id in ["e6", "e7"] {
            let mut sink = RecordingSink::new();
            let traced = run_experiment_traced(id, &mut sink).expect("known id");
            let plain = run_experiment(id).expect("known id");
            assert_eq!(traced.passed(), plain.passed(), "{id}");
            assert!(!sink.events().is_empty(), "{id} must record events");
        }
    }

    #[test]
    fn e15_replays_both_design_profiles_into_the_outer_sink() {
        use bitlevel_systolic::{RecordingSink, TraceEvent};
        let mut sink = RecordingSink::new();
        let outcome = run_experiment_traced("e15", &mut sink).expect("known id");
        assert!(outcome.passed(), "{}", outcome.table.render_text());
        // Both designs' runs land in the outer sink: 2 × |J| firings.
        assert_eq!(sink.rollup().fire_total(), 2 * 243);
        assert!(sink
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::TokenConsumed { .. })));
    }
}
