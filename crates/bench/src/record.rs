//! Paper-vs-measured record tables.
//!
//! Every experiment produces rows of the form *(quantity, paper value,
//! measured value, verdict)*; this module renders them as aligned text (for
//! the terminal) and as markdown (for EXPERIMENTS.md).

use serde::Serialize;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct Record {
    /// What is being compared (e.g. "cycles, u=3 p=3").
    pub quantity: String,
    /// The paper's value/claim, rendered.
    pub paper: String,
    /// Our measured value, rendered.
    pub measured: String,
    /// Whether the measurement confirms the claim.
    pub ok: bool,
}

impl Record {
    /// A row comparing two displayable values for equality.
    pub fn eq<A: std::fmt::Display, B: std::fmt::Display + PartialEq<A>>(
        quantity: &str,
        paper: A,
        measured: B,
    ) -> Self {
        let ok = measured == paper;
        Record {
            quantity: quantity.to_string(),
            paper: paper.to_string(),
            measured: measured.to_string(),
            ok,
        }
    }

    /// A row recording a boolean check.
    pub fn check(quantity: &str, claim: &str, ok: bool) -> Self {
        Record {
            quantity: quantity.to_string(),
            paper: claim.to_string(),
            measured: if ok {
                "confirmed".into()
            } else {
                "REFUTED".into()
            },
            ok,
        }
    }

    /// A row with free-form measured text judged by `ok`.
    pub fn info(quantity: &str, paper: &str, measured: String, ok: bool) -> Self {
        Record {
            quantity: quantity.to_string(),
            paper: paper.to_string(),
            measured,
            ok,
        }
    }
}

/// A titled collection of records.
#[derive(Debug, Clone, Serialize)]
pub struct RecordTable {
    /// Experiment id and title, e.g. "E6: Fig. 4 architecture".
    pub title: String,
    /// The rows.
    pub rows: Vec<Record>,
}

impl RecordTable {
    /// Creates an empty table.
    pub fn new(title: &str) -> Self {
        RecordTable {
            title: title.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, r: Record) {
        self.rows.push(r);
    }

    /// True iff every row confirms.
    pub fn all_ok(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }

    /// Aligned plain-text rendering.
    pub fn render_text(&self) -> String {
        let mut w = [8usize, 5, 8, 2];
        for r in &self.rows {
            w[0] = w[0].max(r.quantity.len());
            w[1] = w[1].max(r.paper.len());
            w[2] = w[2].max(r.measured.len());
        }
        let mut out = format!("=== {} ===\n", self.title);
        out.push_str(&format!(
            "{:<q$}  {:<p$}  {:<m$}  ok\n",
            "quantity",
            "paper",
            "measured",
            q = w[0],
            p = w[1],
            m = w[2]
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<q$}  {:<p$}  {:<m$}  {}\n",
                r.quantity,
                r.paper,
                r.measured,
                if r.ok { "yes" } else { "NO" },
                q = w[0],
                p = w[1],
                m = w[2]
            ));
        }
        out
    }

    /// Markdown rendering for EXPERIMENTS.md.
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str("| quantity | paper | measured | ok |\n|---|---|---|---|\n");
        for r in &self.rows {
            let cell = |s: &str| s.trim_end().replace('|', "\\|").replace('\n', "<br>");
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                cell(&r.quantity),
                cell(&r.paper),
                cell(&r.measured),
                if r.ok { "yes" } else { "**NO**" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_row_judges_equality() {
        assert!(Record::eq("cycles", 13, 13).ok);
        assert!(!Record::eq("cycles", 13, 14).ok);
    }

    #[test]
    fn table_rendering() {
        let mut t = RecordTable::new("E0: smoke");
        t.push(Record::eq("cycles", 13, 13));
        t.push(Record::check("shape", "bit-level wins", true));
        assert!(t.all_ok());
        let text = t.render_text();
        assert!(text.contains("E0: smoke"));
        assert!(text.contains("yes"));
        let md = t.render_markdown();
        assert!(md.contains("| cycles | 13 | 13 | yes |"), "{md}");
    }

    #[test]
    fn failed_rows_are_loud() {
        let mut t = RecordTable::new("E0");
        t.push(Record::eq("x", 1, 2));
        assert!(!t.all_ok());
        assert!(t.render_text().contains("NO"));
        assert!(t.render_markdown().contains("**NO**"));
    }
}
