#![warn(missing_docs)]

//! # bitlevel-bench
//!
//! Experiment harness and benchmark support for the reproduction. The
//! `experiments` binary regenerates every figure/equation-level result of the
//! paper (see DESIGN.md's experiment index E1–E21); criterion benches live in
//! `benches/`. The traceable experiments (E6, E7, E14, E15) can capture
//! their simulated runs through [`run_experiment_traced`] and the binary's
//! `--trace <path>` flag; the randomized experiments (E17's fault campaigns)
//! take an explicit seed through [`run_experiment_seeded`] and the binary's
//! global `--seed <u64>` flag.

pub mod experiments;
pub mod record;
pub mod sweeps;

pub use experiments::{
    run_all, run_all_seeded, run_experiment, run_experiment_seeded, run_experiment_traced,
    ExperimentOutcome, DEFAULT_SEED, TRACEABLE_IDS,
};
pub use record::{Record, RecordTable};
pub use sweeps::{
    analysis_time_sweep, batch_sweep, engine_sweep, faults_sweep, frontier_sweep, partition_sweep,
    speedup_sweep, utilization_sweep, wavefront_sweep,
};
