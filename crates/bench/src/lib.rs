#![warn(missing_docs)]

//! # bitlevel-bench
//!
//! Experiment harness and benchmark support for the reproduction. The
//! `experiments` binary regenerates every figure/equation-level result of the
//! paper (see DESIGN.md's experiment index E1–E14); criterion benches live in
//! `benches/`.

pub mod experiments;
pub mod record;
pub mod sweeps;

pub use experiments::{run_all, run_experiment, ExperimentOutcome};
pub use record::{Record, RecordTable};
pub use sweeps::{analysis_time_sweep, engine_sweep, speedup_sweep, utilization_sweep};
