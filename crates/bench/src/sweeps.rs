//! Parameter sweeps: the figure-style data series behind the experiments.
//!
//! Each sweep emits a CSV table (to stdout via the `experiments --sweep`
//! flag) so the paper's comparison curves can be re-plotted:
//!
//! * [`speedup_sweep`] — measured bit-level cycles (both designs) vs the
//!   word-level baselines across `(u, p)`: the Section 4.2 speedup curves;
//! * [`analysis_time_sweep`] — derivation wall-time of the compositional vs
//!   general analyses as the expanded size grows: the Section 1 claim;
//! * [`utilization_sweep`] — PE counts, utilisation and peak parallelism of
//!   the two designs across sizes (the cost side of the time optimality);
//! * [`engine_sweep`] — wall-clock of the interpreted vs the compiled clocked
//!   engine across sizes, with a full bit-identity check per row;
//! * [`wavefront_sweep`] — measured firing width per cycle of the two paper
//!   designs, captured through the trace layer (the Fig. 4 vs Fig. 5
//!   pipeline-shape comparison);
//! * [`faults_sweep`] — exhaustive single-fault injection campaigns on both
//!   paper designs with ABFT classification per row (the E17 export; the CI
//!   smoke step checks the partition and the zero-SDC bar on this output);
//! * [`batch_sweep`] — throughput of the lane-packed batch engine vs lane
//!   width on both paper designs, every product verified against native
//!   arithmetic (the E18 export; CI stores it as `BENCH_batch.json`);
//! * [`cache_sweep`] — cold-vs-warm schedule acquisition through the
//!   content-hashed compile cache: a cold miss (compile + disk write-through)
//!   against a memory hit and a fresh-process disk hit, artifacts checked
//!   identical (the E19 export; CI stores it as `BENCH_cache.json` and gates
//!   warm < cold per row);
//! * [`faultbatch_sweep`] — fault-cases-per-second of the lane-packed
//!   exhaustive campaign vs lane width and vs the scalar dual-engine
//!   baseline, every width checked case-for-case identical to the scalar
//!   sweep (the E20 export; CI stores it as `BENCH_faultbatch.json` and
//!   gates the width-64/width-1 gain);
//! * [`partition_sweep`] — instances-per-second of the LSGP-partitioned
//!   engine vs physical worker-pool size on both paper designs, every pool
//!   size verified bit-identical to the compiled engine and the balanced
//!   makespan checked non-increasing in workers (the E21 export; CI stores
//!   it as `BENCH_partition.json`);
//! * [`serve_sweep`] — warm-vs-cold request throughput of the NDJSON
//!   evaluation service: one cold `Evaluate` on a fresh server (pays the
//!   compile) against a concurrent batch of identical requests answered
//!   from the shared cache, every terminal line byte-identical and the
//!   compile counter held at one (the E22 export; CI stores it as
//!   `BENCH_serve.json` and gates `warm_rps > cold_rps` per row).
//!
//! Sweep rows are computed in parallel with rayon (except the timing sweeps,
//! which run sequentially so rows don't contend).

use bitlevel_arith::{AddShift, CarrySave};
use bitlevel_cache::{CacheOutcome, CompileCache};
use bitlevel_depanal::{compare_analyses, compose, Expansion};
use bitlevel_fault::{
    batched_single_fault_campaign, single_fault_campaign, single_fault_campaign_with_cache,
};
use bitlevel_ir::WordLevelAlgorithm;
use bitlevel_mapping::{word_level_total_time, PaperDesign};
use bitlevel_systolic::{
    run_clocked, simulate_mapped_compiled, BitMatmulArray, CompiledSchedule,
    MatmulExpansionIICells, MatmulLaneCells, PartitionedSchedule, RecordingSink, MAX_LANES,
};
use rayon::prelude::*;
use serde::Serialize;
use std::time::Instant;

/// One row of the speedup sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupRow {
    /// Matrix dimension.
    pub u: i64,
    /// Word length.
    pub p: i64,
    /// Measured cycles of the Fig. 4 design.
    pub fig4_cycles: i64,
    /// Measured cycles of the Fig. 5 design.
    pub fig5_cycles: i64,
    /// Word-level baseline with add-shift PEs (`t_b = p²`).
    pub word_addshift: i64,
    /// Word-level baseline with carry-save PEs (`t_b = 2p`).
    pub word_carrysave: i64,
    /// Speedup of Fig. 4 over the add-shift word baseline.
    pub speedup_addshift: f64,
    /// Speedup of Fig. 4 over the carry-save word baseline.
    pub speedup_carrysave: f64,
}

/// Measures the Section 4.2 comparison across a `(u, p)` grid.
pub fn speedup_sweep(sizes: &[(i64, i64)]) -> Vec<SpeedupRow> {
    sizes
        .par_iter()
        .map(|&(u, p)| {
            let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
            let fig4 = simulate_mapped_compiled(
                &alg,
                &PaperDesign::TimeOptimal.mapping(p),
                &PaperDesign::TimeOptimal.interconnect(p),
            );
            let fig5 = simulate_mapped_compiled(
                &alg,
                &PaperDesign::NearestNeighbour.mapping(p),
                &PaperDesign::NearestNeighbour.interconnect(p),
            );
            assert!(fig4.conflict_free && fig4.causality_ok);
            assert!(fig5.conflict_free && fig5.causality_ok);
            let word_addshift =
                word_level_total_time(u, AddShift::new(p as usize).word_latency() as i64);
            let word_carrysave =
                word_level_total_time(u, CarrySave::new(p as usize).word_latency() as i64);
            SpeedupRow {
                u,
                p,
                fig4_cycles: fig4.cycles,
                fig5_cycles: fig5.cycles,
                word_addshift,
                word_carrysave,
                speedup_addshift: word_addshift as f64 / fig4.cycles as f64,
                speedup_carrysave: word_carrysave as f64 / fig4.cycles as f64,
            }
        })
        .collect()
}

/// CSV rendering of the speedup sweep.
pub fn speedup_csv(rows: &[SpeedupRow]) -> String {
    let mut out = String::from(
        "u,p,fig4_cycles,fig5_cycles,word_addshift,word_carrysave,speedup_addshift,speedup_carrysave\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.3},{:.3}\n",
            r.u,
            r.p,
            r.fig4_cycles,
            r.fig5_cycles,
            r.word_addshift,
            r.word_carrysave,
            r.speedup_addshift,
            r.speedup_carrysave
        ));
    }
    out
}

/// One row of the analysis-time sweep.
#[derive(Debug, Clone, Serialize)]
pub struct AnalysisTimeRow {
    /// Matrix dimension.
    pub u: i64,
    /// Word length.
    pub p: usize,
    /// Compound index points `|J|`.
    pub index_points: u128,
    /// Theorem 3.1 derivation time (ns).
    pub compose_ns: u128,
    /// Exhaustive enumeration time (ns).
    pub enumerate_ns: u128,
    /// Diophantine-plus-verify time (ns).
    pub diophantine_ns: u128,
    /// Whether all three agreed.
    pub agree: bool,
}

/// Times the three derivation routes as the expanded size grows.
pub fn analysis_time_sweep(sizes: &[(i64, usize)]) -> Vec<AnalysisTimeRow> {
    // Sequential on purpose: wall-clock timing rows should not contend.
    sizes
        .iter()
        .map(|&(u, p)| {
            let rep = compare_analyses(&WordLevelAlgorithm::matmul(u), p, Expansion::II);
            AnalysisTimeRow {
                u,
                p,
                index_points: rep.index_points,
                compose_ns: rep.compose_time.as_nanos(),
                enumerate_ns: rep.enumerate_time.as_nanos(),
                diophantine_ns: rep.diophantine_time.as_nanos(),
                agree: rep.matches_enumeration && rep.diophantine_matches,
            }
        })
        .collect()
}

/// CSV rendering of the analysis-time sweep.
pub fn analysis_time_csv(rows: &[AnalysisTimeRow]) -> String {
    let mut out = String::from("u,p,index_points,compose_ns,enumerate_ns,diophantine_ns,agree\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            r.u, r.p, r.index_points, r.compose_ns, r.enumerate_ns, r.diophantine_ns, r.agree
        ));
    }
    out
}

/// One row of the utilisation sweep.
#[derive(Debug, Clone, Serialize)]
pub struct UtilizationRow {
    /// Matrix dimension.
    pub u: i64,
    /// Word length.
    pub p: i64,
    /// Design label.
    pub design: String,
    /// Cycles.
    pub cycles: i64,
    /// Processors.
    pub processors: usize,
    /// Busy fraction.
    pub utilization: f64,
    /// Peak simultaneously-busy PEs.
    pub peak_parallelism: usize,
    /// Buffer-cycles consumed.
    pub buffer_cycles: u64,
}

/// Measures the resource side of both designs across sizes.
pub fn utilization_sweep(sizes: &[(i64, i64)]) -> Vec<UtilizationRow> {
    sizes
        .par_iter()
        .flat_map(|&(u, p)| {
            let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
            [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour]
                .into_iter()
                .map(|design| {
                    let run =
                        simulate_mapped_compiled(&alg, &design.mapping(p), &design.interconnect(p));
                    UtilizationRow {
                        u,
                        p,
                        design: design.name().to_string(),
                        cycles: run.cycles,
                        processors: run.processors,
                        utilization: run.utilization,
                        peak_parallelism: run.peak_parallelism,
                        buffer_cycles: run.buffer_cycles,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// CSV rendering of the utilisation sweep.
pub fn utilization_csv(rows: &[UtilizationRow]) -> String {
    let mut out =
        String::from("u,p,design,cycles,processors,utilization,peak_parallelism,buffer_cycles\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},\"{}\",{},{},{:.4},{},{}\n",
            r.u,
            r.p,
            r.design,
            r.cycles,
            r.processors,
            r.utilization,
            r.peak_parallelism,
            r.buffer_cycles
        ));
    }
    out
}

/// One row of the engine sweep (interpreted vs compiled clocked execution).
#[derive(Debug, Clone, Serialize)]
pub struct EngineRow {
    /// Matrix dimension.
    pub u: i64,
    /// Word length.
    pub p: i64,
    /// Design label.
    pub design: String,
    /// Index points `|J|` (= dense slots).
    pub points: usize,
    /// Wall time of the interpreted `run_clocked` (ns).
    pub interpreted_ns: u128,
    /// Wall time of `CompiledSchedule::compile` (ns, paid once per design).
    pub compile_ns: u128,
    /// Wall time of `CompiledSchedule::execute` (ns, paid per workload).
    pub execute_ns: u128,
    /// `interpreted_ns / execute_ns`.
    pub speedup: f64,
    /// Whether the two runs were bit-identical (outputs, violations, peaks).
    pub identical: bool,
}

/// Times the interpreted clocked engine against the compiled backend on the
/// Expansion II matmul across a `(u, p)` grid, checking bit-identity per row.
pub fn engine_sweep(sizes: &[(i64, i64)]) -> Vec<EngineRow> {
    // Sequential on purpose: timing rows should not contend (the compiled
    // executor is itself rayon-parallel inside).
    sizes
        .iter()
        .flat_map(|&(u, p)| {
            let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
            let cap = BitMatmulArray::new(u as usize, p as usize).max_safe_entry();
            let x: Vec<Vec<u128>> = (0..u)
                .map(|i| {
                    (0..u)
                        .map(|j| ((3 * i + 5 * j + 1) as u128) % (cap + 1))
                        .collect()
                })
                .collect();
            let y: Vec<Vec<u128>> = (0..u)
                .map(|i| {
                    (0..u)
                        .map(|j| ((7 * i + j + 2) as u128) % (cap + 1))
                        .collect()
                })
                .collect();
            [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour]
                .into_iter()
                .map(|design| {
                    let tm = design.mapping(p);
                    let ic = design.interconnect(p);
                    let mut cells = MatmulExpansionIICells::new(u as usize, p as usize, &x, &y);
                    let t0 = Instant::now();
                    let interpreted = run_clocked(&alg, &tm, &ic, &mut cells);
                    let interpreted_ns = t0.elapsed().as_nanos();
                    let t0 = Instant::now();
                    let sched = CompiledSchedule::try_compile(&alg, &tm, &ic)
                        .expect("the 7-column matmul structure compiles");
                    let compile_ns = t0.elapsed().as_nanos();
                    let t0 = Instant::now();
                    let compiled = sched.execute(&cells);
                    let execute_ns = t0.elapsed().as_nanos();
                    let identical = compiled.cycles == interpreted.cycles
                        && compiled.violations == interpreted.violations
                        && compiled.peak_in_flight == interpreted.peak_in_flight
                        && compiled.outputs == interpreted.outputs;
                    EngineRow {
                        u,
                        p,
                        design: design.name().to_string(),
                        points: sched.n_points(),
                        interpreted_ns,
                        compile_ns,
                        execute_ns,
                        speedup: interpreted_ns as f64 / execute_ns.max(1) as f64,
                        identical,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// CSV rendering of the engine sweep.
pub fn engine_csv(rows: &[EngineRow]) -> String {
    let mut out =
        String::from("u,p,design,points,interpreted_ns,compile_ns,execute_ns,speedup,identical\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},\"{}\",{},{},{},{},{:.3},{}\n",
            r.u,
            r.p,
            r.design,
            r.points,
            r.interpreted_ns,
            r.compile_ns,
            r.execute_ns,
            r.speedup,
            r.identical
        ));
    }
    out
}

/// One row of the wavefront sweep: how many index points each paper design
/// fires in one (rebased) cycle, measured through the trace layer.
#[derive(Debug, Clone, Serialize)]
pub struct WavefrontRow {
    /// Cycle, rebased so each design's first firing lands on 0.
    pub cycle: i64,
    /// Points fired by the Fig. 4 (time-optimal) design in this cycle.
    pub fig4_width: u64,
    /// Points fired by the Fig. 5 (nearest-neighbour) design in this cycle.
    pub fig5_width: u64,
}

/// Captures the measured firing profile of the two paper designs at one
/// `(u, p)` size: both runs are traced through a [`RecordingSink`] and their
/// per-cycle wavefront widths are laid side by side over the union of the
/// two busy spans (Fig. 5's span dominates — eq. (4.6) vs eq. (4.5)).
pub fn wavefront_sweep(u: i64, p: i64) -> Vec<WavefrontRow> {
    let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
    let profile = |design: PaperDesign| {
        let mut sink = RecordingSink::new();
        CompiledSchedule::try_compile(&alg, &design.mapping(p), &design.interconnect(p))
            .expect("the 7-column matmul structure compiles")
            .mapped_report_traced(&mut sink);
        let lo = sink.rollup().wavefront.keys().next().copied().unwrap_or(0);
        sink.rollup()
            .wavefront
            .iter()
            .map(|(cyc, n)| (cyc - lo, *n))
            .collect::<std::collections::BTreeMap<i64, u64>>()
    };
    let fig4 = profile(PaperDesign::TimeOptimal);
    let fig5 = profile(PaperDesign::NearestNeighbour);
    let span = fig4
        .keys()
        .next_back()
        .copied()
        .unwrap_or(0)
        .max(fig5.keys().next_back().copied().unwrap_or(0));
    (0..=span)
        .map(|cycle| WavefrontRow {
            cycle,
            fig4_width: fig4.get(&cycle).copied().unwrap_or(0),
            fig5_width: fig5.get(&cycle).copied().unwrap_or(0),
        })
        .collect()
}

/// CSV rendering of the wavefront sweep.
pub fn wavefront_csv(rows: &[WavefrontRow]) -> String {
    let mut out = String::from("cycle,fig4_width,fig5_width\n");
    for r in rows {
        out.push_str(&format!("{},{},{}\n", r.cycle, r.fig4_width, r.fig5_width));
    }
    out
}

/// One row of the faults sweep: one exhaustive single-fault campaign (every
/// index point × every faultable bundle bit, as a transient flip) on one
/// paper design at one `(u, p)` size.
#[derive(Debug, Clone, Serialize)]
pub struct FaultSweepRow {
    /// Matrix dimension.
    pub u: usize,
    /// Word length.
    pub p: usize,
    /// Design label.
    pub design: String,
    /// Injected fault cases (`|J| ×` faultable bits).
    pub total: usize,
    /// Cases absorbed with a bit-identical result.
    pub masked: usize,
    /// Cases caught by the ABFT syndromes.
    pub detected: usize,
    /// Silent data corruptions (the acceptance bar is zero).
    pub sdc: usize,
    /// Cases where interpreted and compiled engines classified differently.
    pub engine_mismatches: usize,
    /// `detected / (total - masked)`: fraction of effective faults caught.
    pub detection_coverage: f64,
}

/// Runs the exhaustive single-fault campaign of E17 on both paper designs at
/// each `(u, p)` and flattens the reports into rows (the export behind
/// `--sweep faults`). Campaigns run in parallel across sizes.
pub fn faults_sweep(sizes: &[(usize, usize)], seed: u64) -> Vec<FaultSweepRow> {
    sizes
        .par_iter()
        .flat_map(|&(u, p)| {
            [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour]
                .into_iter()
                .map(|design| {
                    let r = single_fault_campaign(design, u, p, seed);
                    assert!(
                        r.classifications_partition(),
                        "campaign classes must partition"
                    );
                    let effective = r.total - r.masked;
                    FaultSweepRow {
                        u,
                        p,
                        design: r.design,
                        total: r.total,
                        masked: r.masked,
                        detected: r.detected,
                        sdc: r.sdc,
                        engine_mismatches: r.engine_mismatches,
                        detection_coverage: if effective == 0 {
                            1.0
                        } else {
                            r.detected as f64 / effective as f64
                        },
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// CSV rendering of the faults sweep.
pub fn faults_csv(rows: &[FaultSweepRow]) -> String {
    let mut out =
        String::from("u,p,design,total,masked,detected,sdc,engine_mismatches,detection_coverage\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},\"{}\",{},{},{},{},{},{:.4}\n",
            r.u,
            r.p,
            r.design,
            r.total,
            r.masked,
            r.detected,
            r.sdc,
            r.engine_mismatches,
            r.detection_coverage
        ));
    }
    out
}

/// JSON rendering of the faults sweep (the `--sweep faults --json` export;
/// the CI smoke step validates the partition and zero-SDC bar on it).
pub fn faults_json(rows: &[FaultSweepRow]) -> String {
    serde_json::to_string_pretty(rows).expect("fault rows serialize")
}

/// Default sizes for the faults sweep: the paper's running example size. The
/// exhaustive campaign is quadratic in `|J|` (each case replays the array on
/// both engines), so debug runs stay at the smallest size.
pub fn default_fault_sizes() -> Vec<(usize, usize)> {
    vec![(2, 2)]
}

/// One row of the frontier sweep: one Pareto-optimal design of the joint
/// `(S, Π, machine)` exploration at one `(u, p)` size, with its verification
/// evidence.
#[derive(Debug, Clone, Serialize)]
pub struct FrontierRow {
    /// Matrix dimension.
    pub u: i64,
    /// Word length.
    pub p: i64,
    /// Total execution time (4.5).
    pub time: i64,
    /// Exact processor count `|S·J|`.
    pub processors: usize,
    /// Longest wire of the machine.
    pub max_wire_length: i64,
    /// Machine label.
    pub machine: String,
    /// Space-mapping rows of the witness `S`.
    pub space: String,
    /// Schedule vector `Π`.
    pub schedule: String,
    /// Which engine verified the design (`backend_used` of the report).
    pub backend: String,
    /// Def. 4.1 feasible **and** bit-exact across engines.
    pub verified: bool,
}

/// Runs the full design-space exploration at each `(u, p)` and flattens the
/// verified Pareto frontiers into rows (the export behind `--sweep
/// frontier`). Sizes run in parallel; the explorer is itself rayon-parallel
/// across spaces.
pub fn frontier_sweep(sizes: &[(i64, i64)]) -> Vec<FrontierRow> {
    sizes
        .par_iter()
        .flat_map(|&(u, p)| {
            let flow = bitlevel_core::DesignFlow::matmul(u, p as usize);
            let (family, config) = flow.default_exploration();
            let ex = flow
                .explore(&family, &config)
                .expect("well-formed exploration");
            ex.designs
                .iter()
                .map(|d| {
                    let t = &d.point.mapping;
                    let space = (0..t.space.rows())
                        .map(|r| format!("{:?}", t.space.row(r)))
                        .collect::<Vec<_>>()
                        .join(";");
                    FrontierRow {
                        u,
                        p,
                        time: d.point.time,
                        processors: d.point.processors,
                        max_wire_length: d.point.max_wire_length,
                        machine: d.point.machine.clone(),
                        space,
                        schedule: format!("{:?}", t.schedule.as_slice()),
                        backend: d.report.backend_used.to_string(),
                        verified: d.verified(),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// CSV rendering of the frontier sweep.
pub fn frontier_csv(rows: &[FrontierRow]) -> String {
    let mut out = String::from(
        "u,p,time,processors,max_wire_length,machine,space,schedule,backend,verified\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},\"{}\",\"{}\",\"{}\",\"{}\",{}\n",
            r.u,
            r.p,
            r.time,
            r.processors,
            r.max_wire_length,
            r.machine,
            r.space,
            r.schedule,
            r.backend,
            r.verified
        ));
    }
    out
}

/// JSON rendering of the frontier sweep (the `--sweep frontier --json`
/// export; validated for JSON well-formedness by the CI smoke step).
pub fn frontier_json(rows: &[FrontierRow]) -> String {
    serde_json::to_string_pretty(rows).expect("frontier rows serialize")
}

/// Default sizes for the frontier sweep: the smallest size (where the joint
/// search strictly beats the paper's fixed-`S` nearest-neighbour design) and
/// the u > p size where both paper schedules head their frontier ends.
pub fn default_frontier_sizes() -> Vec<(i64, i64)> {
    vec![(2, 2), (3, 2)]
}

/// Default sweep grids (kept modest so debug runs stay fast; release runs
/// can pass larger grids).
pub fn default_speedup_sizes() -> Vec<(i64, i64)> {
    vec![
        (2, 2),
        (3, 3),
        (4, 3),
        (4, 4),
        (6, 4),
        (8, 4),
        (8, 6),
        (10, 8),
    ]
}

/// Default sizes for the analysis-time sweep (the general methods are
/// exponential — that is the result being shown).
pub fn default_analysis_sizes() -> Vec<(i64, usize)> {
    vec![(2, 2), (2, 3), (3, 2), (3, 3)]
}

/// Default sizes for the engine sweep: up through the release-sized grids
/// the acceptance speedup is quoted at.
pub fn default_engine_sizes() -> Vec<(i64, i64)> {
    vec![(2, 2), (3, 3), (4, 4), (4, 6), (4, 8), (6, 8)]
}

/// One row of the batch-throughput sweep: one paper design executed over a
/// fixed batch of matmul instances at one lane width (the E18 series behind
/// `--sweep batch`; the CI smoke step checks that throughput is monotone
/// nondecreasing in width and uploads the JSON as a `BENCH_*.json` perf
/// snapshot).
#[derive(Debug, Clone, Serialize)]
pub struct BatchRow {
    /// Design label.
    pub design: String,
    /// Matrix dimension.
    pub u: i64,
    /// Word length.
    pub p: i64,
    /// Lanes packed per schedule walk.
    pub width: usize,
    /// Instances in the batch.
    pub instances: usize,
    /// Schedule walks performed (`⌈instances/width⌉`).
    pub walks: usize,
    /// Cycle count of one walk (schedule-determined, identical across walks).
    pub cycles: i64,
    /// Wall time for the whole batch: lane packing + every walk + product
    /// extraction (ns).
    pub wall_ns: u128,
    /// Batch throughput: `instances / wall seconds`.
    pub instances_per_sec: f64,
    /// Seed the operands were drawn from.
    pub seed: u64,
    /// Whether every walk was legal and every extracted product matched
    /// native arithmetic.
    pub identical: bool,
}

/// Times the lane-packed batch engine at each width over the same batch of
/// `instances` seeded random matmul instances per paper design, verifying
/// every product of every width against native arithmetic.
///
/// The walks of one row run **sequentially** so the row isolates what the
/// batch engine claims: per-walk overhead amortised over lanes. (The
/// chunk-parallel rayon path is exercised by `execute_batch_chunks`'s own
/// tests and the `DesignFlow::evaluate_batch` facade.) Timing rows also run
/// sequentially so they don't contend with each other.
pub fn batch_sweep(widths: &[usize], instances: usize, seed: u64) -> Vec<BatchRow> {
    let (u, p) = (3usize, 4usize);
    let cap = BitMatmulArray::new(u, p).max_safe_entry();
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as u128) % (cap + 1)
    };
    let mut mat =
        move || -> Vec<Vec<u128>> { (0..u).map(|_| (0..u).map(|_| next()).collect()).collect() };
    let xs: Vec<Vec<Vec<u128>>> = (0..instances).map(|_| mat()).collect();
    let ys: Vec<Vec<Vec<u128>>> = (0..instances).map(|_| mat()).collect();
    let want: Vec<Vec<Vec<u128>>> = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| {
            (0..u)
                .map(|i| {
                    (0..u)
                        .map(|j| (0..u).map(|k| x[i][k] * y[k][j]).sum())
                        .collect()
                })
                .collect()
        })
        .collect();

    let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
    let mut rows = Vec::new();
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let tm = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);
        let sched = CompiledSchedule::try_compile(&alg, &tm, &ic)
            .expect("the 7-column matmul structure compiles");
        for &width in widths {
            let width = width.clamp(1, MAX_LANES);
            let t0 = Instant::now();
            let chunks: Vec<MatmulLaneCells> = xs
                .chunks(width)
                .zip(ys.chunks(width))
                .map(|(xc, yc)| MatmulLaneCells::new(u, p, xc, yc))
                .collect();
            let runs: Vec<_> = chunks.iter().map(|c| sched.execute_batch(c)).collect();
            let mut products = Vec::with_capacity(instances);
            for (cells, run) in chunks.iter().zip(&runs) {
                products.extend(cells.extract_products(run));
            }
            let wall_ns = t0.elapsed().as_nanos();
            rows.push(BatchRow {
                design: design.name().to_string(),
                u: u as i64,
                p: p as i64,
                width,
                instances,
                walks: chunks.len(),
                cycles: runs[0].cycles,
                wall_ns,
                instances_per_sec: instances as f64 / (wall_ns.max(1) as f64 / 1e9),
                seed,
                identical: runs.iter().all(|r| r.is_legal()) && products == want,
            });
        }
    }
    rows
}

/// CSV rendering of the batch sweep.
pub fn batch_csv(rows: &[BatchRow]) -> String {
    let mut out = String::from(
        "design,u,p,width,instances,walks,cycles,wall_ns,instances_per_sec,seed,identical\n",
    );
    for r in rows {
        out.push_str(&format!(
            "\"{}\",{},{},{},{},{},{},{},{:.1},{},{}\n",
            r.design,
            r.u,
            r.p,
            r.width,
            r.instances,
            r.walks,
            r.cycles,
            r.wall_ns,
            r.instances_per_sec,
            r.seed,
            r.identical
        ));
    }
    out
}

/// JSON rendering of the batch sweep (the `--sweep batch --json` export CI
/// stores as `BENCH_batch.json`).
pub fn batch_json(rows: &[BatchRow]) -> String {
    serde_json::to_string_pretty(rows).expect("batch rows serialize")
}

/// Default widths for the batch sweep: one lane (the scalar baseline) up to
/// a full word.
pub fn default_batch_widths() -> Vec<usize> {
    vec![1, 8, 16, 32, 64]
}

/// Default batch size for the batch sweep: one full word of instances.
pub fn default_batch_instances() -> usize {
    64
}

/// One row of the cache sweep: the cold/warm trajectory of acquiring one
/// design's compiled schedule through the content-hashed compile cache.
#[derive(Debug, Clone, Serialize)]
pub struct CacheSweepRow {
    /// Design label.
    pub design: String,
    /// Matrix dimension.
    pub u: i64,
    /// Word length.
    pub p: i64,
    /// Index points `|J|` of the compiled schedule.
    pub points: usize,
    /// Cold acquisition: cache miss — full compile plus the atomic disk
    /// write-through (ns).
    pub cold_ns: u128,
    /// Warm acquisition in the same process: memory hit (ns).
    pub warm_mem_ns: u128,
    /// Warm acquisition in a "fresh process" (new cache over the same
    /// directory): disk read + checksum + decode, no compile (ns).
    pub warm_disk_ns: u128,
    /// `cold_ns / warm_mem_ns`.
    pub mem_speedup: f64,
    /// `cold_ns / warm_disk_ns`.
    pub disk_speedup: f64,
    /// Compiles performed across all three acquisitions (must be 1).
    pub compiles: u64,
    /// Whether the lookups hit the expected layers
    /// (miss → memory-hit → disk-hit) and all three artifacts were
    /// bit-identical.
    pub identical: bool,
}

/// Measures cold vs warm schedule acquisition on both paper designs across
/// a `(u, p)` grid: one miss (compile + persist), one memory hit, and one
/// disk hit from a brand-new cache over the same directory, with the decoded
/// artifact checked bit-identical against the compiled one.
///
/// Timing rows run sequentially so they don't contend. The persistent
/// directory lives under the system temp dir and is removed afterwards.
pub fn cache_sweep(sizes: &[(i64, i64)]) -> Vec<CacheSweepRow> {
    let dir = std::env::temp_dir().join(format!("bitlevel-cache-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rows = Vec::new();
    for &(u, p) in sizes {
        let alg = compose(&WordLevelAlgorithm::matmul(u), p as usize, Expansion::II);
        for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
            let tm = design.mapping(p);
            let ic = design.interconnect(p);

            let cache = CompileCache::with_disk_dir(&dir);
            let t0 = Instant::now();
            let (cold, o_cold) = cache
                .get_or_compile(&alg, &tm, &ic)
                .expect("the 7-column matmul structure compiles");
            let cold_ns = t0.elapsed().as_nanos();

            let t0 = Instant::now();
            let (mem, o_mem) = cache
                .get_or_compile(&alg, &tm, &ic)
                .expect("warm lookup cannot fail");
            let warm_mem_ns = t0.elapsed().as_nanos();

            // A brand-new cache over the same directory models a process
            // restart: memory is cold, the persisted entry is not.
            let restarted = CompileCache::with_disk_dir(&dir);
            let t0 = Instant::now();
            let (disk, o_disk) = restarted
                .get_or_compile(&alg, &tm, &ic)
                .expect("disk lookup cannot fail");
            let warm_disk_ns = t0.elapsed().as_nanos();

            let compiles = cache.stats().compiles() + restarted.stats().compiles();
            let identical = o_cold == CacheOutcome::Miss
                && o_mem == CacheOutcome::MemoryHit
                && o_disk == CacheOutcome::DiskHit
                && *mem == *cold
                && *disk == *cold;
            rows.push(CacheSweepRow {
                design: design.name().to_string(),
                u,
                p,
                points: cold.n_points(),
                cold_ns,
                warm_mem_ns,
                warm_disk_ns,
                mem_speedup: cold_ns as f64 / warm_mem_ns.max(1) as f64,
                disk_speedup: cold_ns as f64 / warm_disk_ns.max(1) as f64,
                compiles,
                identical,
            });
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

/// CSV rendering of the cache sweep.
pub fn cache_csv(rows: &[CacheSweepRow]) -> String {
    let mut out = String::from(
        "design,u,p,points,cold_ns,warm_mem_ns,warm_disk_ns,mem_speedup,disk_speedup,compiles,identical\n",
    );
    for r in rows {
        out.push_str(&format!(
            "\"{}\",{},{},{},{},{},{},{:.3},{:.3},{},{}\n",
            r.design,
            r.u,
            r.p,
            r.points,
            r.cold_ns,
            r.warm_mem_ns,
            r.warm_disk_ns,
            r.mem_speedup,
            r.disk_speedup,
            r.compiles,
            r.identical
        ));
    }
    out
}

/// JSON rendering of the cache sweep (the `--sweep cache --json` export CI
/// stores as `BENCH_cache.json`).
pub fn cache_json(rows: &[CacheSweepRow]) -> String {
    serde_json::to_string_pretty(rows).expect("cache rows serialize")
}

/// Default sizes for the cache sweep: the paper's running example plus two
/// larger grids where the compile cost is unambiguous.
pub fn default_cache_sizes() -> Vec<(i64, i64)> {
    vec![(2, 2), (3, 3), (3, 4)]
}

/// One row of the fault-batch sweep: the exhaustive single-fault campaign
/// at one lane width vs the scalar dual-engine baseline (the E20 series
/// behind `--sweep faultbatch`; CI checks every row classifies identically
/// to the scalar sweep, gates the width-64/width-1 gain, and stores the
/// JSON as `BENCH_faultbatch.json`).
#[derive(Debug, Clone, Serialize)]
pub struct FaultBatchRow {
    /// Design label.
    pub design: String,
    /// Matrix dimension.
    pub u: usize,
    /// Word length.
    pub p: usize,
    /// Operand seed.
    pub seed: u64,
    /// Fault cases packed per word-wide walk.
    pub width: usize,
    /// Total fault cases (`|J| ·` signal bits).
    pub cases: usize,
    /// Word-wide walks performed (`⌈cases/width⌉`).
    pub walks: usize,
    /// Wall time of the batched campaign (ns).
    pub wall_ns: u128,
    /// Batched campaign throughput: `cases / wall seconds`.
    pub cases_per_sec: f64,
    /// Wall time of the scalar dual-engine campaign over the same cases (ns;
    /// measured once per design, repeated on every row).
    pub scalar_wall_ns: u128,
    /// Scalar campaign throughput.
    pub scalar_cases_per_sec: f64,
    /// Masked cases.
    pub masked: usize,
    /// Detected cases.
    pub detected: usize,
    /// Silent-data-corruption cases (the zero-SDC bar).
    pub sdc: usize,
    /// True iff the batched sweep was case-for-case identical to the scalar
    /// dual-engine sweep.
    pub identical: bool,
}

/// Times the lane-packed exhaustive fault campaign at each width against
/// the scalar dual-engine baseline, on both paper designs, checking every
/// width's classifications case-for-case against the scalar sweep.
///
/// All campaigns of one design share one [`CompileCache`], so the schedule
/// compiles once per design and the rows time fault replay, not
/// compilation. Timing rows run sequentially so they don't contend, and
/// each batched width is timed five times keeping the best run — a whole
/// width-64 campaign takes well under a millisecond, where one scheduler
/// hiccup would otherwise invert the monotone-throughput series CI gates.
pub fn faultbatch_sweep(widths: &[usize], seed: u64) -> Vec<FaultBatchRow> {
    let (u, p) = (2usize, 3usize);
    const REPS: u32 = 5;
    let mut rows = Vec::new();
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let cache = CompileCache::new();
        let t0 = Instant::now();
        let scalar = single_fault_campaign_with_cache(design, u, p, seed, &cache);
        let scalar_wall_ns = t0.elapsed().as_nanos();
        for &width in widths {
            let width = width.clamp(1, MAX_LANES);
            let mut batched = batched_single_fault_campaign(design, u, p, seed, width, &cache);
            let mut wall_ns = u128::MAX;
            for _ in 0..REPS {
                let t0 = Instant::now();
                batched = batched_single_fault_campaign(design, u, p, seed, width, &cache);
                wall_ns = wall_ns.min(t0.elapsed().as_nanos());
            }
            rows.push(FaultBatchRow {
                design: format!("{design:?}"),
                u,
                p,
                seed,
                width,
                cases: batched.total,
                walks: batched.walks,
                wall_ns,
                cases_per_sec: batched.total as f64 / (wall_ns.max(1) as f64 / 1e9),
                scalar_wall_ns,
                scalar_cases_per_sec: scalar.total as f64 / (scalar_wall_ns.max(1) as f64 / 1e9),
                masked: batched.masked,
                detected: batched.detected,
                sdc: batched.sdc,
                identical: batched.matches_scalar(&scalar),
            });
        }
    }
    rows
}

/// CSV rendering of the fault-batch sweep.
pub fn faultbatch_csv(rows: &[FaultBatchRow]) -> String {
    let mut out = String::from(
        "design,u,p,seed,width,cases,walks,wall_ns,cases_per_sec,scalar_wall_ns,\
         scalar_cases_per_sec,masked,detected,sdc,identical\n",
    );
    for r in rows {
        out.push_str(&format!(
            "\"{}\",{},{},{},{},{},{},{},{:.1},{},{:.1},{},{},{},{}\n",
            r.design,
            r.u,
            r.p,
            r.seed,
            r.width,
            r.cases,
            r.walks,
            r.wall_ns,
            r.cases_per_sec,
            r.scalar_wall_ns,
            r.scalar_cases_per_sec,
            r.masked,
            r.detected,
            r.sdc,
            r.identical
        ));
    }
    out
}

/// JSON rendering of the fault-batch sweep (the `--sweep faultbatch --json`
/// export CI stores as `BENCH_faultbatch.json`).
pub fn faultbatch_json(rows: &[FaultBatchRow]) -> String {
    serde_json::to_string_pretty(rows).expect("fault-batch rows serialize")
}

/// Default widths for the fault-batch sweep: one case per walk (the old
/// one-walk-per-case campaign cost) up to a full word of cases.
pub fn default_faultbatch_widths() -> Vec<usize> {
    vec![1, 8, 16, 32, 64]
}

/// One row of the partition sweep: one paper design executed on the
/// LSGP-partitioned engine at one physical worker-pool size (the E21 series
/// behind `--sweep partition`; CI checks every row stays bit-identical to
/// the compiled engine, gates the balanced makespan non-increasing in
/// workers, and stores the JSON as `BENCH_partition.json`).
#[derive(Debug, Clone, Serialize)]
pub struct PartitionRow {
    /// Design label.
    pub design: String,
    /// Matrix dimension.
    pub u: usize,
    /// Word length.
    pub p: usize,
    /// Operand seed.
    pub seed: u64,
    /// Physical workers requested for the pool.
    pub workers: usize,
    /// Virtual PEs of the unbounded array the pool folds.
    pub virtual_pes: usize,
    /// Largest shard (virtual PEs owned by one worker).
    pub max_shard_pes: usize,
    /// Tokens crossing shard boundaries during one walk.
    pub cross_shard_tokens: u64,
    /// Σ_c max_w fires(c, w): cycle-sliced makespan of the partition.
    pub makespan: u64,
    /// Σ_c ⌈fires(c)/workers⌉: the load-balance bound (non-increasing in
    /// workers — the deterministic scaling series CI gates).
    pub balanced_makespan: u64,
    /// Instances executed per timed batch.
    pub instances: usize,
    /// Cycle count of one walk.
    pub cycles: i64,
    /// Wall time for the whole batch on the partitioned engine (ns,
    /// best-of-5).
    pub wall_ns: u128,
    /// Partitioned throughput: `instances / wall seconds`.
    pub instances_per_sec: f64,
    /// Whether every run was legal and bit-identical to the compiled
    /// engine's walk over the same lanes, and every product matched native
    /// arithmetic.
    pub identical: bool,
}

/// Times the LSGP-partitioned engine at each worker-pool size over the same
/// lane-packed batch of seeded random matmul instances per paper design,
/// verifying every pool size bit-identical against the compiled engine and
/// every product against native arithmetic.
///
/// All pool sizes of one design share one [`CompileCache`] schedule, so the
/// rows time partitioned execution, not compilation. Timing rows run
/// sequentially so they don't contend, and each pool size is timed five
/// times keeping the best run.
pub fn partition_sweep(workers_list: &[usize], instances: usize, seed: u64) -> Vec<PartitionRow> {
    let (u, p) = (4usize, 3usize);
    const REPS: u32 = 5;
    let cap = BitMatmulArray::new(u, p).max_safe_entry();
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as u128) % (cap + 1)
    };
    let mut mat =
        move || -> Vec<Vec<u128>> { (0..u).map(|_| (0..u).map(|_| next()).collect()).collect() };
    let instances = instances.clamp(1, MAX_LANES);
    let xs: Vec<Vec<Vec<u128>>> = (0..instances).map(|_| mat()).collect();
    let ys: Vec<Vec<Vec<u128>>> = (0..instances).map(|_| mat()).collect();
    let want: Vec<Vec<Vec<u128>>> = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| {
            (0..u)
                .map(|i| {
                    (0..u)
                        .map(|j| (0..u).map(|k| x[i][k] * y[k][j]).sum())
                        .collect()
                })
                .collect()
        })
        .collect();

    let alg = compose(&WordLevelAlgorithm::matmul(u as i64), p, Expansion::II);
    let cache = CompileCache::new();
    let mut rows = Vec::new();
    for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
        let tm = design.mapping(p as i64);
        let ic = design.interconnect(p as i64);
        let (sched, _) = cache
            .get_or_compile(&alg, &tm, &ic)
            .expect("the 7-column matmul structure compiles");
        let cells = MatmulLaneCells::new(u, p, &xs, &ys);
        let reference = sched.execute_batch(&cells);
        for &workers in workers_list {
            let workers = workers.max(1);
            let part = PartitionedSchedule::try_new(std::sync::Arc::clone(&sched), workers)
                .expect("paper schedules are causal");
            let mut run = part.execute_batch(&cells);
            let mut wall_ns = u128::MAX;
            for _ in 0..REPS {
                let t0 = Instant::now();
                run = part.execute_batch(&cells);
                wall_ns = wall_ns.min(t0.elapsed().as_nanos());
            }
            let products = cells.extract_products(&run);
            let stats = part.stats();
            rows.push(PartitionRow {
                design: format!("{design:?}"),
                u,
                p,
                seed,
                workers,
                virtual_pes: stats.virtual_pes,
                max_shard_pes: stats.max_shard_pes,
                cross_shard_tokens: stats.cross_shard_tokens,
                makespan: stats.makespan,
                balanced_makespan: stats.balanced_makespan,
                instances,
                cycles: run.cycles,
                wall_ns,
                instances_per_sec: instances as f64 / (wall_ns.max(1) as f64 / 1e9),
                identical: run.is_legal()
                    && run.outputs == reference.outputs
                    && run.violations == reference.violations
                    && run.cycles == reference.cycles
                    && products == want,
            });
        }
    }
    rows
}

/// CSV rendering of the partition sweep.
pub fn partition_csv(rows: &[PartitionRow]) -> String {
    let mut out = String::from(
        "design,u,p,seed,workers,virtual_pes,max_shard_pes,cross_shard_tokens,makespan,\
         balanced_makespan,instances,cycles,wall_ns,instances_per_sec,identical\n",
    );
    for r in rows {
        out.push_str(&format!(
            "\"{}\",{},{},{},{},{},{},{},{},{},{},{},{},{:.1},{}\n",
            r.design,
            r.u,
            r.p,
            r.seed,
            r.workers,
            r.virtual_pes,
            r.max_shard_pes,
            r.cross_shard_tokens,
            r.makespan,
            r.balanced_makespan,
            r.instances,
            r.cycles,
            r.wall_ns,
            r.instances_per_sec,
            r.identical
        ));
    }
    out
}

/// JSON rendering of the partition sweep (the `--sweep partition --json`
/// export CI stores as `BENCH_partition.json`).
pub fn partition_json(rows: &[PartitionRow]) -> String {
    serde_json::to_string_pretty(rows).expect("partition rows serialize")
}

/// Default worker-pool sizes for the partition sweep: one worker (the
/// sequential baseline) up to a typical host core count.
pub fn default_partition_workers() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Default batch size for the partition sweep: one full word of instances.
pub fn default_partition_instances() -> usize {
    64
}

/// One row of the serve sweep: warm-vs-cold request throughput of the
/// NDJSON evaluation service on one `(design, u, p)` (the E22 series behind
/// `--sweep serve`; CI stores the JSON as `BENCH_serve.json` and gates
/// `warm_rps > cold_rps` per row).
#[derive(Debug, Clone, Serialize)]
pub struct ServeSweepRow {
    /// Design label.
    pub design: String,
    /// Matrix dimension.
    pub u: i64,
    /// Word length.
    pub p: i64,
    /// Concurrent client connections in the warm phase.
    pub clients: usize,
    /// Warm requests timed (across all clients).
    pub requests: usize,
    /// Wall time of the first request on a cold server (pays the compile).
    pub cold_ns: u128,
    /// Wall time of the whole warm batch.
    pub warm_ns: u128,
    /// Cold request throughput, requests/second (`1e9 / cold_ns`).
    pub cold_rps: f64,
    /// Warm request throughput, requests/second.
    pub warm_rps: f64,
    /// `warm_rps / cold_rps` — the value a persistent warm-cache process
    /// buys over per-request cold starts.
    pub throughput_gain: f64,
    /// Compiles observed by the server's cache across the whole session
    /// (must be 1: the cold request compiles, every warm request hits).
    pub compiles: u64,
    /// True iff every terminal result line — cold and warm, across all
    /// clients — was byte-identical.
    pub identical: bool,
}

/// Measures warm-vs-cold request throughput through a real server on a
/// loopback ephemeral port: one cold `Evaluate` (the compile), then a batch
/// of identical requests from concurrent client connections, all answered
/// from the shared cache. Every terminal line is checked byte-identical and
/// the server's compile counter is checked to stay at one.
pub fn serve_sweep(sizes: &[(i64, i64)]) -> Vec<ServeSweepRow> {
    use bitlevel_serve::{serve, DesignSpec, Request, RequestEnvelope, ServeClient, ServeConfig};
    use bitlevel_systolic::SimBackend;
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 8;
    let mut rows = Vec::new();
    for &(u, p) in sizes {
        for design in [DesignSpec::TimeOptimal, DesignSpec::NearestNeighbour] {
            let server = serve(ServeConfig {
                workers: CLIENTS,
                poll_interval_ms: 10,
                ..ServeConfig::default()
            })
            .expect("bind a loopback ephemeral port");
            let addr = server.local_addr();
            // Every request is identical (same id included) so terminal
            // lines must be byte-identical regardless of cache temperature.
            let req = RequestEnvelope {
                id: 1,
                deadline_ms: None,
                request: Request::Evaluate {
                    u,
                    p: p as usize,
                    design,
                    backend: SimBackend::Compiled,
                },
            };

            let mut cold_client = ServeClient::connect(addr).expect("connect cold client");
            let t0 = Instant::now();
            let cold = cold_client.request_collect(&req).expect("cold evaluate");
            let cold_ns = t0.elapsed().as_nanos();
            let cold_line = cold
                .terminal_line()
                .expect("cold terminal frame")
                .to_string();

            let t0 = Instant::now();
            let warm_lines: Vec<String> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..CLIENTS)
                    .map(|_| {
                        let req = &req;
                        s.spawn(move || {
                            let mut client =
                                ServeClient::connect(addr).expect("connect warm client");
                            (0..PER_CLIENT)
                                .map(|_| {
                                    client
                                        .request_collect(req)
                                        .expect("warm evaluate")
                                        .terminal_line()
                                        .expect("warm terminal frame")
                                        .to_string()
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("warm client thread"))
                    .collect()
            });
            let warm_ns = t0.elapsed().as_nanos();

            let requests = CLIENTS * PER_CLIENT;
            let stats = server.cache().snapshot();
            let identical = warm_lines.iter().all(|l| *l == cold_line);
            server.shutdown();
            server.join();

            let cold_rps = 1e9 / cold_ns.max(1) as f64;
            let warm_rps = requests as f64 * 1e9 / warm_ns.max(1) as f64;
            rows.push(ServeSweepRow {
                design: design.wire_name().to_string(),
                u,
                p,
                clients: CLIENTS,
                requests,
                cold_ns,
                warm_ns,
                cold_rps,
                warm_rps,
                throughput_gain: warm_rps / cold_rps.max(f64::MIN_POSITIVE),
                compiles: stats.misses,
                identical,
            });
        }
    }
    rows
}

/// CSV rendering of the serve sweep.
pub fn serve_csv(rows: &[ServeSweepRow]) -> String {
    let mut out = String::from(
        "design,u,p,clients,requests,cold_ns,warm_ns,cold_rps,warm_rps,throughput_gain,compiles,identical\n",
    );
    for r in rows {
        out.push_str(&format!(
            "\"{}\",{},{},{},{},{},{},{:.3},{:.3},{:.3},{},{}\n",
            r.design,
            r.u,
            r.p,
            r.clients,
            r.requests,
            r.cold_ns,
            r.warm_ns,
            r.cold_rps,
            r.warm_rps,
            r.throughput_gain,
            r.compiles,
            r.identical
        ));
    }
    out
}

/// JSON rendering of the serve sweep (the `--sweep serve --json` export CI
/// stores as `BENCH_serve.json`).
pub fn serve_json(rows: &[ServeSweepRow]) -> String {
    serde_json::to_string_pretty(rows).expect("serve rows serialize")
}

/// Default sizes for the serve sweep: the paper's running example plus a
/// larger grid where the compile cost is unambiguous.
pub fn default_serve_sizes() -> Vec<(i64, i64)> {
    vec![(2, 2), (3, 3), (3, 4)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_rows_have_paper_shape() {
        let rows = speedup_sweep(&[(2, 2), (3, 3), (4, 4)]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.fig4_cycles, 3 * (r.u - 1) + 3 * (r.p - 1) + 1);
            assert!(r.fig5_cycles >= r.fig4_cycles);
            assert!(r.speedup_addshift >= r.speedup_carrysave);
        }
        // Speedups grow with p.
        assert!(rows[2].speedup_addshift > rows[0].speedup_addshift);
        let csv = speedup_csv(&rows);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("u,p,"));
    }

    #[test]
    fn analysis_rows_agree_and_diverge_in_time() {
        let rows = analysis_time_sweep(&[(2, 2), (2, 3)]);
        for r in &rows {
            assert!(r.agree);
            assert!(r.enumerate_ns > r.compose_ns);
        }
        let csv = analysis_time_csv(&rows);
        assert!(csv.contains("true"));
    }

    #[test]
    fn utilization_rows_cover_both_designs() {
        let rows = utilization_sweep(&[(2, 2)]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.design.contains("Fig. 4")));
        assert!(rows.iter().any(|r| r.design.contains("Fig. 5")));
        for r in &rows {
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
            assert_eq!(r.processors, 16);
        }
        let csv = utilization_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn wavefront_rows_cover_both_spans_and_conserve_points() {
        let rows = wavefront_sweep(2, 2);
        // The union span is Fig. 5's: (2p+1)(u-1) + 3(p-1) + 1 = 9 cycles.
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].cycle, 0);
        // Both designs fire every index point exactly once: |J| = u^3 p^2.
        assert_eq!(rows.iter().map(|r| r.fig4_width).sum::<u64>(), 32);
        assert_eq!(rows.iter().map(|r| r.fig5_width).sum::<u64>(), 32);
        // Fig. 4 finishes inside its own 7-cycle span (eq. (4.5)).
        assert!(rows.iter().skip(7).all(|r| r.fig4_width == 0));
        let csv = wavefront_csv(&rows);
        assert_eq!(csv.lines().count(), 10);
        assert!(csv.starts_with("cycle,fig4_width,fig5_width"));
    }

    #[test]
    fn frontier_rows_are_verified_pareto_designs() {
        let rows = frontier_sweep(&[(2, 2)]);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.verified,
                "unverified frontier design at u={} p={}",
                r.u, r.p
            );
            assert_eq!(r.backend, "compiled");
            assert!(r.time > 0 && r.processors > 0 && r.max_wire_length >= 1);
        }
        // Theorem 4.5's schedule heads the u=p=2 frontier at t=7.
        assert_eq!(rows[0].time, 7);
        assert_eq!(rows[0].schedule, "[1, 1, 1, 2, 1]");
        let csv = frontier_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(csv.starts_with("u,p,time,processors,max_wire_length,"));
        // CSV fields with internal commas are quoted.
        assert!(csv.contains("\"[1, 1, 1, 2, 1]\""));
    }

    #[test]
    fn fault_rows_partition_with_zero_sdc() {
        let rows = faults_sweep(&default_fault_sizes(), 7);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.design.contains("TimeOptimal")));
        assert!(rows.iter().any(|r| r.design.contains("NearestNeighbour")));
        for r in &rows {
            assert_eq!(r.total, 32 * 5);
            assert_eq!(r.masked + r.detected + r.sdc, r.total);
            assert_eq!(r.sdc, 0, "silent corruption in {}", r.design);
            assert_eq!(r.engine_mismatches, 0);
            assert!((r.detection_coverage - 1.0).abs() < 1e-12);
        }
        let csv = faults_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("u,p,design,total,masked,detected,sdc,"));
    }

    #[test]
    fn engine_rows_are_bit_identical() {
        let rows = engine_sweep(&[(2, 2), (3, 2)]);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.identical,
                "engines diverged at u={} p={} {}",
                r.u, r.p, r.design
            );
            assert_eq!(r.points, (r.u * r.u * r.u * r.p * r.p) as usize);
            assert!(r.execute_ns > 0 && r.speedup > 0.0);
        }
        let csv = engine_csv(&rows);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("u,p,design,points,"));
    }

    #[test]
    fn batch_rows_are_bit_exact_at_every_width() {
        let rows = batch_sweep(&[1, 3, 64], 7, 0x1CC7_1993);
        assert_eq!(rows.len(), 6, "two designs x three widths");
        for r in &rows {
            assert!(r.identical, "{} at width {} diverged", r.design, r.width);
            assert_eq!(r.instances, 7);
            assert_eq!(r.walks, r.instances.div_ceil(r.width));
            assert!(r.instances_per_sec > 0.0);
            assert_eq!(r.seed, 0x1CC7_1993);
        }
        // Fig. 4 rows measure the closed-form (4.5) makespan: u = 3, p = 4.
        assert!(rows[..3]
            .iter()
            .all(|r| r.cycles == 3 * (3 - 1) + 3 * (4 - 1) + 1));
        let csv = batch_csv(&rows);
        assert_eq!(csv.lines().count(), 7);
        assert!(csv.starts_with("design,u,p,width,"));
    }

    #[test]
    fn faultbatch_rows_are_identical_to_scalar_at_every_width() {
        let rows = faultbatch_sweep(&[1, 5, 64], 0x1CC7_1993);
        assert_eq!(rows.len(), 6, "two designs x three widths");
        for r in &rows {
            assert!(r.identical, "{} at width {} diverged", r.design, r.width);
            assert_eq!(r.cases, 2 * 2 * 2 * 3 * 3 * 5, "|J| x 5 signal bits");
            assert_eq!(r.walks, r.cases.div_ceil(r.width));
            assert_eq!(r.sdc, 0);
            assert_eq!(r.masked + r.detected, r.cases);
            assert!(r.cases_per_sec > 0.0 && r.scalar_cases_per_sec > 0.0);
        }
        let csv = faultbatch_csv(&rows);
        assert_eq!(csv.lines().count(), 7);
        assert!(csv.starts_with("design,u,p,seed,width,"));
    }

    #[test]
    fn partition_rows_are_bit_identical_with_non_increasing_balanced_makespan() {
        let rows = partition_sweep(&[1, 2, 8], 5, 0x1CC7_1993);
        assert_eq!(rows.len(), 6, "two designs x three pool sizes");
        for r in &rows {
            assert!(
                r.identical,
                "{} at {} workers diverged",
                r.design, r.workers
            );
            assert_eq!(r.instances, 5);
            assert_eq!(r.virtual_pes, 4 * 4 * 3 * 3, "u^2 p^2 processors");
            assert!(r.max_shard_pes >= r.virtual_pes.div_ceil(r.workers));
            assert!(r.instances_per_sec > 0.0);
            assert!(r.balanced_makespan <= r.makespan.max(r.balanced_makespan));
        }
        for d in rows.chunks(3) {
            assert!(
                d.windows(2)
                    .all(|w| w[1].balanced_makespan <= w[0].balanced_makespan),
                "balanced makespan must not grow with the pool"
            );
            assert_eq!(
                d.iter()
                    .find(|r| r.workers == 1)
                    .unwrap()
                    .cross_shard_tokens,
                0,
                "one shard has no cross-shard traffic"
            );
        }
        let csv = partition_csv(&rows);
        assert_eq!(csv.lines().count(), 7);
        assert!(csv.starts_with("design,u,p,seed,workers,"));
    }

    #[test]
    fn serve_rows_show_one_compile_and_identical_lines() {
        let rows = serve_sweep(&[(2, 2)]);
        assert_eq!(rows.len(), 2, "two designs x one size");
        for r in &rows {
            assert_eq!(
                r.compiles, 1,
                "{}: exactly one compile per session",
                r.design
            );
            assert!(r.identical, "{}: warm lines diverged from cold", r.design);
            assert_eq!(r.requests, r.clients * 8);
            assert!(r.warm_rps > 0.0 && r.cold_rps > 0.0);
        }
        let csv = serve_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("design,u,p,clients,requests,cold_ns,"));
    }

    #[test]
    fn cache_rows_show_warm_beating_cold_with_identical_artifacts() {
        let rows = cache_sweep(&[(2, 2), (3, 3)]);
        assert_eq!(rows.len(), 4, "two designs x two sizes");
        for r in &rows {
            assert!(
                r.identical,
                "{} u={} p={} trajectory broke",
                r.design, r.u, r.p
            );
            assert_eq!(r.compiles, 1, "exactly one compile per row");
            assert!(
                r.warm_mem_ns < r.cold_ns,
                "{} u={} p={}: memory hit ({} ns) must beat the cold compile ({} ns)",
                r.design,
                r.u,
                r.p,
                r.warm_mem_ns,
                r.cold_ns
            );
            assert!(r.mem_speedup > 1.0 && r.disk_speedup > 0.0);
            assert_eq!(r.points, (r.u * r.u * r.u * r.p * r.p) as usize);
        }
        let csv = cache_csv(&rows);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("design,u,p,points,cold_ns,"));
    }
}
