#![warn(missing_docs)]

//! # bitlevel-cache
//!
//! A content-hashed compile cache for [`CompiledSchedule`] artifacts.
//!
//! Every `DesignFlow` evaluation used to recompile its schedule from
//! scratch — the explorer's frontier re-verification compiled each design a
//! second time, and repeated interactive evaluations paid the full
//! `try_compile` cost every call. This crate removes that redundancy:
//!
//! * **Cache key** — [`CacheKey::of_schedule`] digests the *content* of the
//!   (expanded structure, mapping/schedule, machine description) triple with
//!   a platform-stable FNV-1a-128 ([`digest::StableHasher`]), salted with
//!   [`CACHE_KEY_VERSION`] and the schedule wire-format version. Anything
//!   that changes compiled output changes the key; renaming or re-deriving
//!   an identical structure does not.
//! * **Memory layer** — an `Arc`-shared LRU map; all clones of a
//!   [`CompileCache`] (and therefore all clones of a `DesignFlow`) share one
//!   store, so the explorer's search and its re-verification hit the same
//!   entries.
//! * **Disk layer** — optional (`--cache-dir`): entries persist as
//!   checksummed `*.blsc` images (see `bitlevel_systolic::persist`), written
//!   atomically (temp file + rename). Corrupted, truncated, or
//!   version-skewed files are detected on load, counted in
//!   [`CacheStats::corrupt_entries`], and degrade to a recorded miss +
//!   recompile — never a panic, never a wrong schedule.
//! * **Counters** — [`CacheStats`] snapshots hits/misses/evictions for
//!   reports, trace events, and the zero-redundant-compile assertions in
//!   the test suite.

use bitlevel_ir::AlgorithmTriplet;
use bitlevel_mapping::{Interconnect, MappingMatrix};
use bitlevel_systolic::{CompileError, CompiledSchedule, SCHEDULE_FORMAT_VERSION};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

pub mod digest;

pub use digest::{CacheKey, StableHasher};

/// Version of the *key derivation* itself (what is hashed, in which order).
/// Bumping it orphans every existing entry instead of colliding with it.
pub const CACHE_KEY_VERSION: u32 = 1;

/// Default capacity of the in-memory layer (entries). Schedules for the
/// paper-scale designs are a few hundred KB; 256 of them stay well under a
/// hundred MB while covering any realistic explorer frontier.
pub const DEFAULT_MEMORY_CAPACITY: usize = 256;

/// File extension of persisted schedule images.
pub const DISK_ENTRY_EXT: &str = "blsc";

/// Digest of a (structure, mapping, machine) triple under the current key
/// and wire-format versions: the canonical cache key of one compiled
/// schedule. A change to either version constant orphans all old keys.
pub fn schedule_key(alg: &AlgorithmTriplet, t: &MappingMatrix, ic: &Interconnect) -> CacheKey {
    CacheKey::of_parts(
        CACHE_KEY_VERSION.wrapping_add(SCHEDULE_FORMAT_VERSION << 16),
        &(alg, t, ic),
    )
}

/// Where a cache lookup was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory layer.
    MemoryHit,
    /// Served from a persisted disk entry (and promoted to memory).
    DiskHit,
    /// Not cached (or the disk entry was unusable): freshly compiled.
    Miss,
}

impl CacheOutcome {
    /// True for both hit flavours.
    pub fn is_hit(&self) -> bool {
        !matches!(self, CacheOutcome::Miss)
    }
}

impl fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheOutcome::MemoryHit => write!(f, "memory-hit"),
            CacheOutcome::DiskHit => write!(f, "disk-hit"),
            CacheOutcome::Miss => write!(f, "miss-compiled"),
        }
    }
}

/// A monotonic snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups answered from disk.
    pub disk_hits: u64,
    /// Lookups that compiled fresh (including after a corrupt disk entry).
    pub misses: u64,
    /// Entries evicted from the memory layer by capacity pressure.
    pub evictions: u64,
    /// Disk entries rejected as corrupt/truncated/version-skewed.
    pub corrupt_entries: u64,
    /// Disk writes that failed (permissions, full disk, ...). Non-fatal:
    /// the result is still returned, only persistence is lost.
    pub disk_write_errors: u64,
    /// Entries currently resident in the memory layer.
    pub resident: usize,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.disk_hits + self.misses
    }

    /// The counter movement since an `earlier` snapshot of the same cache:
    /// every monotone counter is `self - earlier` (saturating, so snapshots
    /// taken out of order degrade to zeros instead of wrapping), while
    /// `resident` — a gauge, not a counter — carries the later value.
    ///
    /// This is the per-request attribution primitive of the evaluation
    /// service: a handler snapshots the shared cache before and after its
    /// work ([`CompileCache::snapshot`]) and the delta says what *this*
    /// request cost, immune to interleaved lookups racing the subtraction
    /// (concurrent handlers can inflate each other's deltas, but the sum of
    /// all deltas never under-counts a compile).
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            corrupt_entries: self.corrupt_entries.saturating_sub(earlier.corrupt_entries),
            disk_write_errors: self
                .disk_write_errors
                .saturating_sub(earlier.disk_write_errors),
            resident: self.resident,
        }
    }

    /// Warm fraction: hits (either layer) over lookups, 0.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            (self.hits + self.disk_hits) as f64 / total as f64
        }
    }

    /// Total schedule compilations the cache performed ( = misses).
    pub fn compiles(&self) -> u64 {
        self.misses
    }
}

struct MemStore {
    map: HashMap<CacheKey, (u64, Arc<CompiledSchedule>)>,
    stamp: u64,
}

struct CacheInner {
    mem: Mutex<MemStore>,
    capacity: usize,
    disk_dir: Option<PathBuf>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt_entries: AtomicU64,
    disk_write_errors: AtomicU64,
    /// Keys whose compile is in flight right now (single-flight dedup):
    /// concurrent misses on the same key elect one compiling leader, the
    /// rest block on `pending_cv` and re-read the published entry.
    pending: Mutex<HashSet<CacheKey>>,
    pending_cv: Condvar,
}

/// Clears a key's in-flight claim and wakes the waiters — on success, on a
/// compile error, and on unwind alike (RAII, so a panicking compile never
/// strands its followers).
struct PendingGuard<'a> {
    inner: &'a CacheInner,
    key: CacheKey,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.inner
            .pending
            .lock()
            .expect("pending set poisoned")
            .remove(&self.key);
        self.inner.pending_cv.notify_all();
    }
}

/// The shared compile cache. Cloning is cheap (`Arc`) and every clone sees
/// the same store and counters — `DesignFlow` clones share warmth.
#[derive(Clone)]
pub struct CompileCache {
    inner: Arc<CacheInner>,
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache::new()
    }
}

impl fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("CompileCache")
            .field("resident", &s.resident)
            .field("hits", &s.hits)
            .field("disk_hits", &s.disk_hits)
            .field("misses", &s.misses)
            .field("disk_dir", &self.inner.disk_dir)
            .finish()
    }
}

impl CompileCache {
    /// An in-memory cache with [`DEFAULT_MEMORY_CAPACITY`].
    pub fn new() -> Self {
        CompileCache::with_capacity(DEFAULT_MEMORY_CAPACITY)
    }

    /// An in-memory cache holding at most `capacity` entries (min 1);
    /// least-recently-used entries are evicted beyond that.
    pub fn with_capacity(capacity: usize) -> Self {
        CompileCache {
            inner: Arc::new(CacheInner {
                mem: Mutex::new(MemStore {
                    map: HashMap::new(),
                    stamp: 0,
                }),
                capacity: capacity.max(1),
                disk_dir: None,
                hits: AtomicU64::new(0),
                disk_hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                corrupt_entries: AtomicU64::new(0),
                disk_write_errors: AtomicU64::new(0),
                pending: Mutex::new(HashSet::new()),
                pending_cv: Condvar::new(),
            }),
        }
    }

    /// A cache backed by a persistent directory: misses are written through
    /// as atomic `*.blsc` images, and lookups missing in memory try the
    /// directory before recompiling. The directory is created eagerly;
    /// creation failure is recorded as a write error and the cache degrades
    /// to memory-only rather than failing.
    pub fn with_disk_dir(dir: impl Into<PathBuf>) -> Self {
        CompileCache::with_capacity_and_disk_dir(DEFAULT_MEMORY_CAPACITY, dir)
    }

    /// [`CompileCache::with_disk_dir`] with an explicit memory capacity.
    pub fn with_capacity_and_disk_dir(capacity: usize, dir: impl Into<PathBuf>) -> Self {
        let dir: PathBuf = dir.into();
        let mut write_errors = 0;
        let disk_dir = match std::fs::create_dir_all(&dir) {
            Ok(()) => Some(dir),
            Err(_) => {
                write_errors = 1;
                None
            }
        };
        let base = CompileCache::with_capacity(capacity);
        // `Arc::try_unwrap` is safe here: `base` has the only reference.
        let mut inner = Arc::try_unwrap(base.inner).unwrap_or_else(|_| unreachable!());
        inner.disk_dir = disk_dir;
        inner.disk_write_errors = AtomicU64::new(write_errors);
        CompileCache {
            inner: Arc::new(inner),
        }
    }

    /// The persistent directory, when this cache has one.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.inner.disk_dir.as_deref()
    }

    /// The content key the cache would use for this triple.
    pub fn key_for(
        &self,
        alg: &AlgorithmTriplet,
        t: &MappingMatrix,
        ic: &Interconnect,
    ) -> CacheKey {
        schedule_key(alg, t, ic)
    }

    /// The lookup-or-compile entry point: memory, then disk, then
    /// [`CompiledSchedule::try_compile`]. Compile *errors* are returned
    /// (and not cached — `try_compile` rejects oversized inputs in O(1), so
    /// negative caching would buy nothing); compiled schedules are inserted
    /// into memory and written through to disk when configured.
    ///
    /// Lookups are **single-flight**: when several threads miss on the same
    /// key at once, exactly one of them compiles (or reads disk) while the
    /// others block until the entry is published and then take a memory hit
    /// — N concurrent identical requests cost one compile, which the
    /// evaluation service's concurrency tests counter-assert. Distinct keys
    /// never wait on each other, and a leader that errors (or panics)
    /// releases its followers to retry.
    pub fn get_or_compile(
        &self,
        alg: &AlgorithmTriplet,
        t: &MappingMatrix,
        ic: &Interconnect,
    ) -> Result<(Arc<CompiledSchedule>, CacheOutcome), CompileError> {
        let key = self.key_for(alg, t, ic);
        loop {
            if let Some(sched) = self.lookup_memory(&key) {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((sched, CacheOutcome::MemoryHit));
            }
            // Claim the key, or wait for the thread that already has.
            {
                let mut pending = self.inner.pending.lock().expect("pending set poisoned");
                if pending.contains(&key) {
                    while pending.contains(&key) {
                        pending = self
                            .inner
                            .pending_cv
                            .wait(pending)
                            .expect("pending set poisoned");
                    }
                    // The leader published (or failed); re-read memory.
                    continue;
                }
                pending.insert(key);
            }
            let _claim = PendingGuard {
                inner: &self.inner,
                key,
            };
            if let Some(sched) = self.lookup_disk(&key) {
                let sched = Arc::new(sched);
                self.insert_memory(key, Arc::clone(&sched));
                self.inner.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((sched, CacheOutcome::DiskHit));
            }
            let sched = Arc::new(CompiledSchedule::try_compile(alg, t, ic)?);
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
            self.insert_memory(key, Arc::clone(&sched));
            self.write_disk(&key, &sched);
            return Ok((sched, CacheOutcome::Miss));
        }
    }

    /// A point-in-time snapshot of the counters (alias of
    /// [`CompileCache::snapshot`], kept for the original call sites).
    pub fn stats(&self) -> CacheStats {
        self.snapshot()
    }

    /// A coherent snapshot of the counters, taken under the store lock so
    /// `resident` and the counters describe the same instant with respect
    /// to insertions and evictions. Pair two snapshots with
    /// [`CacheStats::delta`] to attribute hits/misses to one request even
    /// while other threads keep the shared cache busy.
    pub fn snapshot(&self) -> CacheStats {
        let mem = self.inner.mem.lock().expect("cache poisoned");
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            disk_hits: self.inner.disk_hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
            corrupt_entries: self.inner.corrupt_entries.load(Ordering::Relaxed),
            disk_write_errors: self.inner.disk_write_errors.load(Ordering::Relaxed),
            resident: mem.map.len(),
        }
    }

    /// Drops every in-memory entry (counters are kept). Used by tests and
    /// the cold/warm bench to force the disk path.
    pub fn clear_memory(&self) {
        self.inner.mem.lock().expect("cache poisoned").map.clear();
    }

    fn lookup_memory(&self, key: &CacheKey) -> Option<Arc<CompiledSchedule>> {
        let mut mem = self.inner.mem.lock().expect("cache poisoned");
        mem.stamp += 1;
        let stamp = mem.stamp;
        mem.map.get_mut(key).map(|(s, sched)| {
            *s = stamp;
            Arc::clone(sched)
        })
    }

    fn insert_memory(&self, key: CacheKey, sched: Arc<CompiledSchedule>) {
        let mut mem = self.inner.mem.lock().expect("cache poisoned");
        mem.stamp += 1;
        let stamp = mem.stamp;
        mem.map.insert(key, (stamp, sched));
        while mem.map.len() > self.inner.capacity {
            let oldest = mem
                .map
                .iter()
                .min_by_key(|(_, (s, _))| *s)
                .map(|(k, _)| *k)
                .expect("map over capacity is non-empty");
            mem.map.remove(&oldest);
            self.inner.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn entry_path(&self, key: &CacheKey) -> Option<PathBuf> {
        self.inner
            .disk_dir
            .as_ref()
            .map(|d| d.join(format!("{}.{DISK_ENTRY_EXT}", key.hex())))
    }

    fn lookup_disk(&self, key: &CacheKey) -> Option<CompiledSchedule> {
        let path = self.entry_path(key)?;
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => return None, // absent (or unreadable): plain miss
        };
        match CompiledSchedule::from_bytes(&bytes) {
            Ok(sched) => Some(sched),
            Err(_) => {
                // Corrupt / truncated / version-skewed: record it, drop the
                // bad file so the recompile's write-through replaces it, and
                // degrade to a miss.
                self.inner.corrupt_entries.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    fn write_disk(&self, key: &CacheKey, sched: &CompiledSchedule) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let bytes = sched.to_bytes();
        // Atomic publish: write a unique temp file, then rename into place.
        // Readers either see the old complete entry or the new one, never a
        // torn write.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
            self.inner.disk_write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_ir::{BoxSet, Dependence, DependenceSet, Predicate};
    use bitlevel_mapping::PaperDesign;

    fn matmul_structure(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul, Expansion II (composed order)",
        )
    }

    fn triple(p: i64) -> (AlgorithmTriplet, MappingMatrix, Interconnect) {
        let design = PaperDesign::TimeOptimal;
        (
            matmul_structure(3, p),
            design.mapping(p),
            design.interconnect(p),
        )
    }

    #[test]
    fn same_triple_hits_different_triple_misses() {
        let cache = CompileCache::new();
        let (alg, t, ic) = triple(3);
        let (first, o1) = cache.get_or_compile(&alg, &t, &ic).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        let (second, o2) = cache.get_or_compile(&alg, &t, &ic).unwrap();
        assert_eq!(o2, CacheOutcome::MemoryHit);
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit returns the same artifact"
        );

        let (alg2, t2, ic2) = triple(2);
        let (_, o3) = cache.get_or_compile(&alg2, &t2, &ic2).unwrap();
        assert_eq!(o3, CacheOutcome::Miss);

        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.disk_hits), (1, 2, 0));
        assert_eq!(s.resident, 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn key_is_content_based_not_identity_based() {
        let cache = CompileCache::new();
        let (alg, t, ic) = triple(3);
        let (alg_b, t_b, ic_b) = triple(3); // fresh, equal values
        assert_eq!(
            cache.key_for(&alg, &t, &ic),
            cache.key_for(&alg_b, &t_b, &ic_b)
        );
        let other = PaperDesign::NearestNeighbour;
        assert_ne!(
            cache.key_for(&alg, &t, &ic),
            cache.key_for(&alg, &other.mapping(3), &other.interconnect(3))
        );
    }

    #[test]
    fn clones_share_the_store() {
        let cache = CompileCache::new();
        let clone = cache.clone();
        let (alg, t, ic) = triple(3);
        cache.get_or_compile(&alg, &t, &ic).unwrap();
        let (_, o) = clone.get_or_compile(&alg, &t, &ic).unwrap();
        assert_eq!(o, CacheOutcome::MemoryHit);
        assert_eq!(clone.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_at_capacity_one() {
        let cache = CompileCache::with_capacity(1);
        let (alg3, t3, ic3) = triple(3);
        let (alg2, t2, ic2) = triple(2);
        cache.get_or_compile(&alg3, &t3, &ic3).unwrap();
        cache.get_or_compile(&alg2, &t2, &ic2).unwrap(); // evicts the first
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().resident, 1);
        let (_, o) = cache.get_or_compile(&alg3, &t3, &ic3).unwrap();
        assert_eq!(o, CacheOutcome::Miss, "evicted entry recompiles");
    }

    #[test]
    fn compile_errors_pass_through_untouched() {
        let cache = CompileCache::new();
        let deps: Vec<Dependence> = (0..65)
            .map(|k| Dependence::uniform(bitlevel_linalg_ivec([1, 0]), &format!("c{k}")))
            .collect();
        let alg = AlgorithmTriplet::new(BoxSet::cube(2, 1, 3), DependenceSet::new(deps), "wide");
        let t = MappingMatrix::new(
            bitlevel_linalg_imat(&[&[1, 0], &[0, 1]]),
            bitlevel_linalg_ivec([1, 1]),
        );
        let ic = Interconnect::new(bitlevel_linalg_imat(&[&[1, 0], &[0, 1]]));
        let err = cache.get_or_compile(&alg, &t, &ic).unwrap_err();
        assert_eq!(err, CompileError::TooManyColumns { m: 65 });
        // Errors count as misses (a compile was attempted) but are not cached.
        assert_eq!(cache.stats().resident, 0);
    }

    fn bitlevel_linalg_ivec<const N: usize>(v: [i64; N]) -> bitlevel_linalg::IVec {
        bitlevel_linalg::IVec::from(v)
    }

    fn bitlevel_linalg_imat(rows: &[&[i64]]) -> bitlevel_linalg::IMat {
        bitlevel_linalg::IMat::from_rows(rows)
    }

    #[test]
    fn concurrent_identical_misses_compile_exactly_once() {
        let cache = CompileCache::new();
        let (alg, t, ic) = triple(3);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = cache.clone();
            let (alg, t, ic) = (alg.clone(), t.clone(), ic.clone());
            handles.push(std::thread::spawn(move || {
                cache.get_or_compile(&alg, &t, &ic).unwrap().0
            }));
        }
        let scheds: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let s = cache.snapshot();
        assert_eq!(s.misses, 1, "single-flight: one compile for 8 racers");
        assert_eq!(s.hits, 7, "followers take memory hits");
        for pair in scheds.windows(2) {
            assert!(
                Arc::ptr_eq(&pair[0], &pair[1]),
                "all racers share the one published artifact"
            );
        }
    }

    #[test]
    fn snapshot_delta_attributes_one_request() {
        let cache = CompileCache::new();
        let (alg, t, ic) = triple(3);
        let before = cache.snapshot();
        cache.get_or_compile(&alg, &t, &ic).unwrap();
        let mid = cache.snapshot();
        cache.get_or_compile(&alg, &t, &ic).unwrap();
        cache.get_or_compile(&alg, &t, &ic).unwrap();
        let after = cache.snapshot();
        let first = mid.delta(&before);
        assert_eq!((first.misses, first.hits), (1, 0));
        let warm = after.delta(&mid);
        assert_eq!((warm.misses, warm.hits), (0, 2));
        assert_eq!(warm.resident, 1, "delta carries the later gauge value");
        // Out-of-order snapshots saturate to zero instead of wrapping.
        let backwards = before.delta(&after);
        assert_eq!((backwards.misses, backwards.hits), (0, 0));
    }

    #[test]
    fn disk_layer_round_trips_and_survives_cold_starts() {
        let dir = std::env::temp_dir().join(format!("blc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (alg, t, ic) = triple(3);
        {
            let cache = CompileCache::with_disk_dir(&dir);
            let (_, o) = cache.get_or_compile(&alg, &t, &ic).unwrap();
            assert_eq!(o, CacheOutcome::Miss);
            assert_eq!(cache.stats().disk_write_errors, 0);
        }
        // A brand-new cache (cold memory) over the same dir: disk hit.
        let cache = CompileCache::with_disk_dir(&dir);
        let (sched, o) = cache.get_or_compile(&alg, &t, &ic).unwrap();
        assert_eq!(o, CacheOutcome::DiskHit);
        assert_eq!(
            *sched,
            CompiledSchedule::try_compile(&alg, &t, &ic).unwrap()
        );
        // And the promoted entry now hits memory.
        let (_, o) = cache.get_or_compile(&alg, &t, &ic).unwrap();
        assert_eq!(o, CacheOutcome::MemoryHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_degrades_to_recompile() {
        let dir = std::env::temp_dir().join(format!("blc-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (alg, t, ic) = triple(3);
        let cache = CompileCache::with_disk_dir(&dir);
        cache.get_or_compile(&alg, &t, &ic).unwrap();
        let path = cache.entry_path(&cache.key_for(&alg, &t, &ic)).unwrap();
        // Corrupt the persisted image, drop memory, and look up again.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        cache.clear_memory();
        let (sched, o) = cache.get_or_compile(&alg, &t, &ic).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!(cache.stats().corrupt_entries, 1);
        assert_eq!(
            *sched,
            CompiledSchedule::try_compile(&alg, &t, &ic).unwrap()
        );
        // The recompile re-published a good entry.
        cache.clear_memory();
        let (_, o) = cache.get_or_compile(&alg, &t, &ic).unwrap();
        assert_eq!(o, CacheOutcome::DiskHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_disk_dir_degrades_to_memory_only() {
        // A path under a *file* cannot be created as a directory.
        let blocker = std::env::temp_dir().join(format!("blc-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"x").unwrap();
        let cache = CompileCache::with_disk_dir(blocker.join("sub"));
        assert!(cache.disk_dir().is_none());
        assert_eq!(cache.stats().disk_write_errors, 1);
        let (alg, t, ic) = triple(2);
        let (_, o) = cache.get_or_compile(&alg, &t, &ic).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        let (_, o) = cache.get_or_compile(&alg, &t, &ic).unwrap();
        assert_eq!(o, CacheOutcome::MemoryHit);
        let _ = std::fs::remove_file(&blocker);
    }
}
