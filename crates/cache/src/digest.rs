//! Stable content digests for cache keys.
//!
//! `std::hash::Hasher` implementations are free to be platform- and
//! process-specific (SipHash is keyed per process), so the cache key needs
//! its own hasher with two fixed properties:
//!
//! * **deterministic across processes** — a warm disk cache written by one
//!   run must be readable by the next, so no per-process keys;
//! * **endianness-pinned** — every multi-byte integer write is routed
//!   through little-endian bytes, so the digest of an
//!   `#[derive(Hash)]` structure is identical on any host.
//!
//! [`StableHasher`] is FNV-1a 64-bit under those rules; [`CacheKey`] runs
//! the same value stream through two different offset bases for a 128-bit
//! digest, which makes accidental collisions across distinct
//! (structure, mapping, machine) triples a non-concern at the scale of any
//! realistic design-space sweep.

use std::fmt;
use std::hash::{Hash, Hasher};

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// The standard FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, unrelated offset basis (digits of pi) for the high half of the
/// 128-bit digest.
pub const FNV_OFFSET_B: u64 = 0x2435_F642_8888_5A30;

/// FNV-1a with all integer writes pinned to little-endian byte order.
#[derive(Debug, Clone, Copy)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A hasher seeded with an explicit offset basis.
    pub fn with_basis(basis: u64) -> Self {
        StableHasher { state: basis }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::with_basis(FNV_OFFSET_A)
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        // usize is hashed as u64 so 32- and 64-bit hosts agree.
        self.write(&(i as u64).to_le_bytes());
    }
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

/// A 128-bit content digest identifying one compiled-schedule artifact.
///
/// Two [`StableHasher`]s with different offset bases consume the same
/// `Hash` stream; their finishes form the (hi, lo) halves. The cache format
/// version is always part of the stream (see [`CacheKey::of_parts`]), so a
/// format bump invalidates every old key rather than colliding with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// High 64 bits (offset basis B).
    pub hi: u64,
    /// Low 64 bits (offset basis A).
    pub lo: u64,
}

impl CacheKey {
    /// Digest of an arbitrary `Hash` value stream plus a format version tag.
    pub fn of_parts<T: Hash + ?Sized>(version: u32, value: &T) -> Self {
        let mut a = StableHasher::with_basis(FNV_OFFSET_A);
        let mut b = StableHasher::with_basis(FNV_OFFSET_B);
        version.hash(&mut a);
        version.hash(&mut b);
        value.hash(&mut a);
        value.hash(&mut b);
        CacheKey {
            hi: b.finish(),
            lo: a.finish(),
        }
    }

    /// The 32-hex-digit rendering used as the on-disk file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_input_sensitive() {
        let k1 = CacheKey::of_parts(1, &("abc", 7u64, vec![1i64, 2, 3]));
        let k2 = CacheKey::of_parts(1, &("abc", 7u64, vec![1i64, 2, 3]));
        assert_eq!(k1, k2);
        assert_ne!(k1, CacheKey::of_parts(1, &("abc", 7u64, vec![1i64, 2, 4])));
        assert_ne!(k1, CacheKey::of_parts(2, &("abc", 7u64, vec![1i64, 2, 3])));
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c — pins the primitive so the
        // on-disk key space never silently changes.
        let mut h = StableHasher::with_basis(FNV_OFFSET_A);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn hex_rendering_is_32_digits() {
        let k = CacheKey::of_parts(1, &42u64);
        assert_eq!(k.hex().len(), 32);
        assert_eq!(k.to_string(), k.hex());
    }

    #[test]
    fn integer_writes_are_width_tagged_not_just_bytes() {
        // u32 and u64 holding the same value digest differently only via
        // their byte widths; usize always hashes like u64.
        let mut a = StableHasher::default();
        7usize.hash(&mut a);
        let mut b = StableHasher::default();
        7u64.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }
}
