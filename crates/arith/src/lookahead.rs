//! Carry-lookahead (parallel-prefix) addition — the catalogue's counterpoint.
//!
//! Every algorithm in Section 3.1's catalogue (add-shift, carry-save,
//! ripple) is a **uniform dependence algorithm**: constant dependence
//! vectors, which is what lets Theorem 3.1 compose them and Definition 4.1
//! map them. Carry-lookahead addition is the classic structure that is
//! *not*: its Kogge–Stone prefix tree combines generate/propagate pairs at
//! distance `2^{level}` — the dependence **distance grows with the level
//! index**, so no finite set of constant vectors describes it. This module
//! implements the functional model (bit-exact, `O(log p)` levels) and makes
//! the non-uniformity checkable, documenting precisely where the paper's
//! framework stops and why its arrays are built from ripple/carry-save
//! cells instead.

use crate::bitcell::{from_bits, to_bits, Bit};
use bitlevel_linalg::IVec;
use serde::{Deserialize, Serialize};

/// A Kogge–Stone carry-lookahead adder for `p`-bit operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CarryLookahead {
    /// Operand width `p ≥ 1`.
    pub p: usize,
}

impl CarryLookahead {
    /// Creates the adder.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "width must be at least 1");
        CarryLookahead { p }
    }

    /// Number of prefix levels: `⌈log₂ p⌉`.
    pub fn levels(&self) -> u32 {
        usize::BITS - (self.p - 1).leading_zeros()
    }

    /// Latency in cell delays: one G/P preparation level, the prefix levels,
    /// and one sum level — `O(log p)`, vs the ripple adder's `O(p)`.
    pub fn latency(&self) -> u64 {
        2 + self.levels() as u64
    }

    /// Adds two `p`-bit numbers through the explicit prefix network,
    /// returning the `p+1`-bit sum.
    ///
    /// # Panics
    /// Panics if an operand exceeds `p` bits.
    pub fn add(&self, a: u128, b: u128) -> u128 {
        let p = self.p;
        let ab = to_bits(a, p);
        let bb = to_bits(b, p);

        // Level 0: generate/propagate per bit.
        let mut g: Vec<Bit> = (0..p).map(|i| ab[i] & bb[i]).collect();
        let mut pr: Vec<Bit> = (0..p).map(|i| ab[i] ^ bb[i]).collect();

        // Prefix levels: combine with the element 2^{level-1} positions back.
        // THIS is the non-uniform dependence: the distance doubles per level.
        let mut dist = 1usize;
        while dist < p {
            let (gprev, pprev) = (g.clone(), pr.clone());
            for i in dist..p {
                g[i] = gprev[i] | (pprev[i] & gprev[i - dist]);
                pr[i] = pprev[i] & pprev[i - dist];
            }
            dist *= 2;
        }

        // Sum level: s_i = a_i ⊕ b_i ⊕ carry_{i-1}, carry_i = prefix g_i.
        let mut bits = Vec::with_capacity(p + 1);
        for i in 0..p {
            let carry_in = if i == 0 { false } else { g[i - 1] };
            bits.push(ab[i] ^ bb[i] ^ carry_in);
        }
        bits.push(g[p - 1]);
        from_bits(&bits)
    }

    /// The dependence *distances* used by each prefix level — `1, 2, 4, …` —
    /// demonstrating that the structure has no constant dependence matrix:
    /// a uniform dependence algorithm would need a single finite vector set
    /// valid at every point.
    pub fn level_distances(&self) -> Vec<IVec> {
        let mut out = Vec::new();
        let mut dist = 1i64;
        while (dist as usize) < self.p {
            // (level, bit) space: one level down, `dist` bits back.
            out.push(IVec::from([1, -dist]));
            dist *= 2;
        }
        out
    }

    /// True iff the prefix network is a uniform dependence algorithm — i.e.
    /// all level distances coincide. Only degenerate widths (`p ≤ 2`, a
    /// single level) qualify; the general structure is non-uniform, which is
    /// the documented boundary of the paper's framework.
    pub fn is_uniform_dependence_algorithm(&self) -> bool {
        self.level_distances().len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exhaustive_small_widths() {
        for p in 1..=6usize {
            let add = CarryLookahead::new(p);
            let max = 1u128 << p;
            for a in 0..max {
                for b in 0..max {
                    assert_eq!(add.add(a, b), a + b, "p={p}: {a}+{b}");
                }
            }
        }
    }

    #[test]
    fn logarithmic_latency_beats_ripple() {
        use crate::RippleAdder;
        for p in [8usize, 16, 32, 64] {
            let cla = CarryLookahead::new(p);
            let ripple = RippleAdder::new(p);
            assert!(cla.latency() < ripple.latency(), "p={p}");
        }
        assert_eq!(CarryLookahead::new(16).levels(), 4);
        assert_eq!(CarryLookahead::new(17).levels(), 5);
    }

    #[test]
    fn non_uniformity_is_structural() {
        // The level distances double: 1, 2, 4, … — no constant vector set.
        let cla = CarryLookahead::new(16);
        let dists = cla.level_distances();
        assert_eq!(dists.len(), 4);
        assert_eq!(dists[0], IVec::from([1, -1]));
        assert_eq!(dists[3], IVec::from([1, -8]));
        assert!(!cla.is_uniform_dependence_algorithm());
        // Degenerate widths collapse to a single level and are uniform.
        assert!(CarryLookahead::new(2).is_uniform_dependence_algorithm());
    }

    proptest! {
        #[test]
        fn prop_addition(p in 1usize..40, seed in any::<u64>()) {
            let mask = (1u128 << p) - 1;
            let a = (seed as u128) & mask;
            let b = (seed as u128).rotate_left(19) & mask;
            prop_assert_eq!(CarryLookahead::new(p).add(a, b), a + b);
        }

        /// Agreement with the (uniform-dependence) ripple adder: same sums,
        /// different dataflow class.
        #[test]
        fn prop_agrees_with_ripple(p in 1usize..30, seed in any::<u64>()) {
            let mask = (1u128 << p) - 1;
            let a = (seed as u128) & mask;
            let b = (seed as u128).rotate_right(7) & mask;
            prop_assert_eq!(
                CarryLookahead::new(p).add(a, b),
                crate::RippleAdder::new(p).add(a, b)
            );
        }
    }
}
