//! Bit-level cells: the Boolean functions of eq. (3.2) and their wide-input
//! generalisations.
//!
//! Every processor of a bit-level array computes some variant of a full
//! adder. The paper's eq. (3.2) defines the 3-input cell:
//!
//! ```text
//! g(x1,x2,x3) = (x1∧x2) ∨ (x2∧x3) ∨ (x3∧x1)      (carry, majority)
//! f(x1,x2,x3) = x1 ⊕ x2 ⊕ x3                      (partial sum, parity)
//! ```
//!
//! Expansion II additionally needs points where "more than three bits have to
//! be summed; hence, we need to generate at least two carry bits and one
//! partial sum bit" — for up to five inputs, the sum fits in three output bits
//! `(s, c, c')` with weights 1, 2 and 4; `c'` is the paper's second carry
//! travelling along `d̄₇ = [0̄, 0, 2]ᵀ`.

/// A single bit. `bool` keeps the cell functions branch-free and lets the
/// compiler pack arrays densely.
pub type Bit = bool;

/// The paper's `f`: 3-input parity (partial-sum bit).
#[inline]
pub fn sum3(x1: Bit, x2: Bit, x3: Bit) -> Bit {
    x1 ^ x2 ^ x3
}

/// The paper's `g`: 3-input majority (carry bit).
#[inline]
pub fn carry3(x1: Bit, x2: Bit, x3: Bit) -> Bit {
    (x1 & x2) | (x2 & x3) | (x3 & x1)
}

/// Full adder over three bits: returns `(sum, carry)`, i.e. `(f, g)`.
#[inline]
pub fn full_add(x1: Bit, x2: Bit, x3: Bit) -> (Bit, Bit) {
    (sum3(x1, x2, x3), carry3(x1, x2, x3))
}

/// Half adder: returns `(sum, carry)`.
#[inline]
pub fn half_add(x1: Bit, x2: Bit) -> (Bit, Bit) {
    (x1 ^ x2, x1 & x2)
}

/// Wide addition of up to five input bits, as required on the `i₁ = p`
/// hyperplane of Expansion II: returns `(s, c, c')` with
/// `s + 2c + 4c' = Σ inputs`.
///
/// "If four of these input bits are one, carry c' will be one. If two and not
/// more than three are ones, then carry c will be one."
///
/// # Panics
/// Panics if more than five inputs are supplied (five is the paper's maximum;
/// a sixth input would need a third carry).
pub fn wide_add(inputs: &[Bit]) -> (Bit, Bit, Bit) {
    assert!(
        inputs.len() <= 5,
        "wide_add supports at most 5 inputs, got {}",
        inputs.len()
    );
    let total = inputs.iter().filter(|&&b| b).count();
    (total & 1 == 1, total & 2 == 2, total & 4 == 4)
}

/// Converts a nonnegative integer to its `width` low-order bits, LSB first —
/// the paper's indexing `a = a_p a_{p-1} … a_1` maps `a_k` to `bits[k-1]`.
///
/// # Panics
/// Panics if `x` does not fit in `width` bits (callers must pick operand
/// ranges that fit the modelled word length `p`).
pub fn to_bits(x: u128, width: usize) -> Vec<Bit> {
    assert!(
        width >= 128 - x.leading_zeros() as usize,
        "{x} does not fit in {width} bits"
    );
    (0..width).map(|k| (x >> k) & 1 == 1).collect()
}

/// Converts an LSB-first bit vector back to an integer.
///
/// # Panics
/// Panics if more than 128 bits are supplied.
pub fn from_bits(bits: &[Bit]) -> u128 {
    assert!(bits.len() <= 128, "from_bits supports at most 128 bits");
    bits.iter()
        .enumerate()
        .fold(0u128, |acc, (k, &b)| acc | ((b as u128) << k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_adder_truth_table() {
        // (x1, x2, x3) -> s + 2c == x1 + x2 + x3 for all 8 combinations.
        for bits in 0..8u8 {
            let x1 = bits & 1 == 1;
            let x2 = bits & 2 == 2;
            let x3 = bits & 4 == 4;
            let (s, c) = full_add(x1, x2, x3);
            let expect = x1 as u8 + x2 as u8 + x3 as u8;
            assert_eq!(s as u8 + 2 * c as u8, expect, "inputs {x1} {x2} {x3}");
            // And f/g individually match eq. (3.2).
            assert_eq!(sum3(x1, x2, x3), s);
            assert_eq!(carry3(x1, x2, x3), c);
        }
    }

    #[test]
    fn half_adder_truth_table() {
        assert_eq!(half_add(false, false), (false, false));
        assert_eq!(half_add(true, false), (true, false));
        assert_eq!(half_add(false, true), (true, false));
        assert_eq!(half_add(true, true), (false, true));
    }

    #[test]
    fn wide_add_matches_paper_carry_rules() {
        // "If four of these input bits are one, carry c' will be one."
        let (s, c, cp) = wide_add(&[true, true, true, true]);
        assert_eq!((s, c, cp), (false, false, true));
        // "If two and not more than three are ones, then carry c will be one."
        let (s, c, cp) = wide_add(&[true, true, false, false]);
        assert_eq!((s, c, cp), (false, true, false));
        let (s, c, cp) = wide_add(&[true, true, true, false, false]);
        assert_eq!((s, c, cp), (true, true, false));
        // Five ones: 5 = 1 + 0·2 + 1·4.
        let (s, c, cp) = wide_add(&[true; 5]);
        assert_eq!((s, c, cp), (true, false, true));
    }

    #[test]
    fn wide_add_exhaustive_weights() {
        for n in 0..32u8 {
            let inputs: Vec<Bit> = (0..5).map(|k| n & (1 << k) != 0).collect();
            let (s, c, cp) = wide_add(&inputs);
            let total = inputs.iter().filter(|&&b| b).count();
            assert_eq!(s as usize + 2 * (c as usize) + 4 * (cp as usize), total);
        }
    }

    #[test]
    #[should_panic(expected = "at most 5 inputs")]
    fn wide_add_rejects_six_inputs() {
        let _ = wide_add(&[true; 6]);
    }

    #[test]
    fn bit_conversions_roundtrip() {
        assert_eq!(to_bits(0b1011, 4), vec![true, true, false, true]);
        assert_eq!(from_bits(&[true, true, false, true]), 0b1011);
        assert_eq!(from_bits(&[]), 0);
        assert_eq!(to_bits(0, 3), vec![false; 3]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn to_bits_checks_width() {
        let _ = to_bits(16, 4);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(x in 0u128..1u128 << 40, extra in 0usize..8) {
            let width = (128 - x.leading_zeros() as usize).max(1) + extra;
            prop_assert_eq!(from_bits(&to_bits(x, width)), x);
        }
    }
}
