//! Bit-level cells: the Boolean functions of eq. (3.2) and their wide-input
//! generalisations.
//!
//! Every processor of a bit-level array computes some variant of a full
//! adder. The paper's eq. (3.2) defines the 3-input cell:
//!
//! ```text
//! g(x1,x2,x3) = (x1∧x2) ∨ (x2∧x3) ∨ (x3∧x1)      (carry, majority)
//! f(x1,x2,x3) = x1 ⊕ x2 ⊕ x3                      (partial sum, parity)
//! ```
//!
//! Expansion II additionally needs points where "more than three bits have to
//! be summed; hence, we need to generate at least two carry bits and one
//! partial sum bit" — for up to five inputs, the sum fits in three output bits
//! `(s, c, c')` with weights 1, 2 and 4; `c'` is the paper's second carry
//! travelling along `d̄₇ = [0̄, 0, 2]ᵀ`.

/// A single bit. `bool` keeps the cell functions branch-free and lets the
/// compiler pack arrays densely.
pub type Bit = bool;

/// The paper's `f`: 3-input parity (partial-sum bit).
#[inline]
pub fn sum3(x1: Bit, x2: Bit, x3: Bit) -> Bit {
    x1 ^ x2 ^ x3
}

/// The paper's `g`: 3-input majority (carry bit).
#[inline]
pub fn carry3(x1: Bit, x2: Bit, x3: Bit) -> Bit {
    (x1 & x2) | (x2 & x3) | (x3 & x1)
}

/// Full adder over three bits: returns `(sum, carry)`, i.e. `(f, g)`.
#[inline]
pub fn full_add(x1: Bit, x2: Bit, x3: Bit) -> (Bit, Bit) {
    (sum3(x1, x2, x3), carry3(x1, x2, x3))
}

/// Half adder: returns `(sum, carry)`.
#[inline]
pub fn half_add(x1: Bit, x2: Bit) -> (Bit, Bit) {
    (x1 ^ x2, x1 & x2)
}

/// Wide addition of up to five input bits, as required on the `i₁ = p`
/// hyperplane of Expansion II: returns `(s, c, c')` with
/// `s + 2c + 4c' = Σ inputs`.
///
/// "If four of these input bits are one, carry c' will be one. If two and not
/// more than three are ones, then carry c will be one."
///
/// # Panics
/// Panics if more than five inputs are supplied (five is the paper's maximum;
/// a sixth input would need a third carry).
pub fn wide_add(inputs: &[Bit]) -> (Bit, Bit, Bit) {
    assert!(
        inputs.len() <= 5,
        "wide_add supports at most 5 inputs, got {}",
        inputs.len()
    );
    let total = inputs.iter().filter(|&&b| b).count();
    (total & 1 == 1, total & 2 == 2, total & 4 == 4)
}

/// Converts a nonnegative integer to its `width` low-order bits, LSB first —
/// the paper's indexing `a = a_p a_{p-1} … a_1` maps `a_k` to `bits[k-1]`.
///
/// # Panics
/// Panics if `x` does not fit in `width` bits (callers must pick operand
/// ranges that fit the modelled word length `p`).
pub fn to_bits(x: u128, width: usize) -> Vec<Bit> {
    assert!(
        width >= 128 - x.leading_zeros() as usize,
        "{x} does not fit in {width} bits"
    );
    (0..width).map(|k| (x >> k) & 1 == 1).collect()
}

/// Converts an LSB-first bit vector back to an integer.
///
/// # Panics
/// Panics if more than 128 bits are supplied.
pub fn from_bits(bits: &[Bit]) -> u128 {
    assert!(bits.len() <= 128, "from_bits supports at most 128 bits");
    bits.iter()
        .enumerate()
        .fold(0u128, |acc, (k, &b)| acc | ((b as u128) << k))
}

/// A machine word holding one [`Bit`] per *lane*: bit `i` of a `LaneWord`
/// belongs to problem instance `i`. All lane functions below are the
/// bitwise (SWAR) forms of the scalar cells above, so evaluating one
/// `LaneWord` expression simulates up to [`MAX_LANES`] independent
/// instances in a single pass.
pub type LaneWord = u64;

/// Number of independent instances a single [`LaneWord`] can carry.
pub const MAX_LANES: usize = LaneWord::BITS as usize;

/// Lane-parallel `f`: 3-input parity in every lane at once.
#[inline]
pub fn sum3_lanes(x1: LaneWord, x2: LaneWord, x3: LaneWord) -> LaneWord {
    x1 ^ x2 ^ x3
}

/// Lane-parallel `g`: 3-input majority in every lane at once.
#[inline]
pub fn carry3_lanes(x1: LaneWord, x2: LaneWord, x3: LaneWord) -> LaneWord {
    (x1 & x2) | (x2 & x3) | (x3 & x1)
}

/// Lane-parallel full adder: `(sum, carry)` per lane.
#[inline]
pub fn full_add_lanes(x1: LaneWord, x2: LaneWord, x3: LaneWord) -> (LaneWord, LaneWord) {
    (sum3_lanes(x1, x2, x3), carry3_lanes(x1, x2, x3))
}

/// Lane-parallel half adder: `(sum, carry)` per lane.
#[inline]
pub fn half_add_lanes(x1: LaneWord, x2: LaneWord) -> (LaneWord, LaneWord) {
    (x1 ^ x2, x1 & x2)
}

/// Lane-parallel wide addition of up to five input words: `(s, c, c')`
/// per lane with `s + 2c + 4c' = Σ inputs` in every lane.
///
/// Implemented as two chained full adders: `(s₁, c₁) = FA(x₁,x₂,x₃)` then
/// `(s, c₂) = FA(s₁,x₄,x₅)`. The two weight-2 carries combine without a
/// third addition because `c₁ + c₂ = (c₁⊕c₂) + 2(c₁∧c₂)`, giving
/// `c = c₁⊕c₂` and `c' = c₁∧c₂` exactly as in the scalar [`wide_add`].
///
/// # Panics
/// Panics if more than five input words are supplied.
pub fn wide_add_lanes(inputs: &[LaneWord]) -> (LaneWord, LaneWord, LaneWord) {
    assert!(
        inputs.len() <= 5,
        "wide_add_lanes supports at most 5 inputs, got {}",
        inputs.len()
    );
    let get = |i: usize| inputs.get(i).copied().unwrap_or(0);
    let (s1, c1) = full_add_lanes(get(0), get(1), get(2));
    let (s, c2) = full_add_lanes(s1, get(3), get(4));
    (s, c1 ^ c2, c1 & c2)
}

/// Reads lane `lane` of a word as a scalar [`Bit`].
///
/// # Panics
/// Panics if `lane >= MAX_LANES`.
#[inline]
pub fn lane_bit(word: LaneWord, lane: usize) -> Bit {
    assert!(lane < MAX_LANES, "lane {lane} out of range");
    (word >> lane) & 1 == 1
}

/// Packs per-lane scalar bits into a word: `bits[i]` becomes lane `i`,
/// all lanes `>= bits.len()` are zero.
///
/// # Panics
/// Panics if more than [`MAX_LANES`] bits are supplied.
pub fn pack_lanes(bits: &[Bit]) -> LaneWord {
    assert!(
        bits.len() <= MAX_LANES,
        "pack_lanes supports at most {MAX_LANES} lanes, got {}",
        bits.len()
    );
    bits.iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | ((b as LaneWord) << i))
}

/// Inverts the lanes of `word` selected by `mask` — the lane-parallel form
/// of a transient bit flip: lane `l` is flipped iff bit `l` of `mask` is
/// set, all other lanes pass through untouched.
#[inline]
pub fn flip_lanes(word: LaneWord, mask: LaneWord) -> LaneWord {
    word ^ mask
}

/// Forces the lanes of `word` selected by `mask` to `value` — the
/// lane-parallel form of a stuck-at fault. Unselected lanes pass through.
#[inline]
pub fn set_lanes(word: LaneWord, mask: LaneWord, value: Bit) -> LaneWord {
    if value {
        word | mask
    } else {
        word & !mask
    }
}

/// Bit-plane transpose: packs one LSB-first bit row per lane into plane
/// words, `planes[k]` holding bit `k` of every lane. This is how the
/// wordized cell semantics turn per-lane operand bit vectors (the scalar
/// cells' storage) into the [`LaneWord`] planes a word-wide walk reads.
///
/// # Panics
/// Panics on an empty batch, more than [`MAX_LANES`] rows, or rows of
/// unequal width.
pub fn pack_bit_planes(rows: &[Vec<Bit>]) -> Vec<LaneWord> {
    assert!(
        (1..=MAX_LANES).contains(&rows.len()),
        "pack_bit_planes takes 1..={MAX_LANES} lanes, got {}",
        rows.len()
    );
    let width = rows[0].len();
    assert!(
        rows.iter().all(|r| r.len() == width),
        "pack_bit_planes requires equal-width rows"
    );
    (0..width)
        .map(|k| {
            rows.iter()
                .enumerate()
                .fold(0, |acc, (lane, row)| acc | ((row[k] as LaneWord) << lane))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_adder_truth_table() {
        // (x1, x2, x3) -> s + 2c == x1 + x2 + x3 for all 8 combinations.
        for bits in 0..8u8 {
            let x1 = bits & 1 == 1;
            let x2 = bits & 2 == 2;
            let x3 = bits & 4 == 4;
            let (s, c) = full_add(x1, x2, x3);
            let expect = x1 as u8 + x2 as u8 + x3 as u8;
            assert_eq!(s as u8 + 2 * c as u8, expect, "inputs {x1} {x2} {x3}");
            // And f/g individually match eq. (3.2).
            assert_eq!(sum3(x1, x2, x3), s);
            assert_eq!(carry3(x1, x2, x3), c);
        }
    }

    #[test]
    fn half_adder_truth_table() {
        assert_eq!(half_add(false, false), (false, false));
        assert_eq!(half_add(true, false), (true, false));
        assert_eq!(half_add(false, true), (true, false));
        assert_eq!(half_add(true, true), (false, true));
    }

    #[test]
    fn wide_add_matches_paper_carry_rules() {
        // "If four of these input bits are one, carry c' will be one."
        let (s, c, cp) = wide_add(&[true, true, true, true]);
        assert_eq!((s, c, cp), (false, false, true));
        // "If two and not more than three are ones, then carry c will be one."
        let (s, c, cp) = wide_add(&[true, true, false, false]);
        assert_eq!((s, c, cp), (false, true, false));
        let (s, c, cp) = wide_add(&[true, true, true, false, false]);
        assert_eq!((s, c, cp), (true, true, false));
        // Five ones: 5 = 1 + 0·2 + 1·4.
        let (s, c, cp) = wide_add(&[true; 5]);
        assert_eq!((s, c, cp), (true, false, true));
    }

    #[test]
    fn wide_add_exhaustive_weights() {
        for n in 0..32u8 {
            let inputs: Vec<Bit> = (0..5).map(|k| n & (1 << k) != 0).collect();
            let (s, c, cp) = wide_add(&inputs);
            let total = inputs.iter().filter(|&&b| b).count();
            assert_eq!(s as usize + 2 * (c as usize) + 4 * (cp as usize), total);
        }
    }

    #[test]
    #[should_panic(expected = "at most 5 inputs")]
    fn wide_add_rejects_six_inputs() {
        let _ = wide_add(&[true; 6]);
    }

    #[test]
    fn bit_conversions_roundtrip() {
        assert_eq!(to_bits(0b1011, 4), vec![true, true, false, true]);
        assert_eq!(from_bits(&[true, true, false, true]), 0b1011);
        assert_eq!(from_bits(&[]), 0);
        assert_eq!(to_bits(0, 3), vec![false; 3]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn to_bits_checks_width() {
        let _ = to_bits(16, 4);
    }

    /// A deterministic pseudo-random word stream for the lane tests.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let hi = (*state >> 33) as u64;
        hi ^ (*state << 31)
    }

    #[test]
    fn lane_cells_match_scalar_cells_in_every_lane() {
        let mut state = 0x1CC7_1993u64;
        for _ in 0..32 {
            let (a, b, c) = (lcg(&mut state), lcg(&mut state), lcg(&mut state));
            let (s, cy) = full_add_lanes(a, b, c);
            assert_eq!(s, sum3_lanes(a, b, c));
            assert_eq!(cy, carry3_lanes(a, b, c));
            let (hs, hc) = half_add_lanes(a, b);
            for lane in 0..MAX_LANES {
                let (x1, x2, x3) = (lane_bit(a, lane), lane_bit(b, lane), lane_bit(c, lane));
                assert_eq!(
                    (lane_bit(s, lane), lane_bit(cy, lane)),
                    full_add(x1, x2, x3)
                );
                assert_eq!((lane_bit(hs, lane), lane_bit(hc, lane)), half_add(x1, x2));
            }
        }
    }

    #[test]
    fn wide_add_lanes_matches_scalar_wide_add_for_all_arities() {
        let mut state = 0xD00D_1993u64;
        for arity in 0..=5usize {
            for _ in 0..16 {
                let words: Vec<LaneWord> = (0..arity).map(|_| lcg(&mut state)).collect();
                let (s, c, cp) = wide_add_lanes(&words);
                for lane in 0..MAX_LANES {
                    let bits: Vec<Bit> = words.iter().map(|&w| lane_bit(w, lane)).collect();
                    let expect = wide_add(&bits);
                    assert_eq!(
                        (lane_bit(s, lane), lane_bit(c, lane), lane_bit(cp, lane)),
                        expect,
                        "arity {arity} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 5 inputs")]
    fn wide_add_lanes_rejects_six_inputs() {
        let _ = wide_add_lanes(&[0; 6]);
    }

    #[test]
    fn pack_lanes_roundtrips_and_masks_high_lanes() {
        let bits = [true, false, true, true];
        let word = pack_lanes(&bits);
        assert_eq!(word, 0b1101);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(lane_bit(word, i), b);
        }
        // Lanes beyond the packed width are zero.
        for lane in bits.len()..MAX_LANES {
            assert!(!lane_bit(word, lane));
        }
        assert_eq!(pack_lanes(&[]), 0);
    }

    #[test]
    fn flip_and_set_lanes_touch_only_masked_lanes() {
        let mut state = 0xFAB_1993u64;
        for _ in 0..16 {
            let (w, mask) = (lcg(&mut state), lcg(&mut state));
            let flipped = flip_lanes(w, mask);
            let forced_one = set_lanes(w, mask, true);
            let forced_zero = set_lanes(w, mask, false);
            for lane in 0..MAX_LANES {
                let hit = lane_bit(mask, lane);
                let orig = lane_bit(w, lane);
                assert_eq!(lane_bit(flipped, lane), orig ^ hit);
                assert_eq!(lane_bit(forced_one, lane), orig | hit);
                assert_eq!(lane_bit(forced_zero, lane), orig & !hit);
            }
        }
    }

    #[test]
    fn pack_bit_planes_transposes_per_lane_rows() {
        let rows = vec![
            to_bits(0b101, 4), // lane 0
            to_bits(0b011, 4), // lane 1
            to_bits(0b110, 4), // lane 2
        ];
        let planes = pack_bit_planes(&rows);
        assert_eq!(planes.len(), 4);
        for (lane, row) in rows.iter().enumerate() {
            for (k, &bit) in row.iter().enumerate() {
                assert_eq!(lane_bit(planes[k], lane), bit, "lane {lane} bit {k}");
            }
        }
        // Unoccupied lanes stay zero in every plane.
        for &plane in &planes {
            assert_eq!(plane >> rows.len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "equal-width rows")]
    fn pack_bit_planes_rejects_ragged_rows() {
        let _ = pack_bit_planes(&[to_bits(1, 2), to_bits(1, 3)]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(x in 0u128..1u128 << 40, extra in 0usize..8) {
            let width = (128 - x.leading_zeros() as usize).max(1) + extra;
            prop_assert_eq!(from_bits(&to_bits(x, width)), x);
        }

        #[test]
        fn prop_wide_add_lanes_weighted_sum(a in any::<u64>(), b in any::<u64>(),
                                            c in any::<u64>(), d in any::<u64>(),
                                            e in any::<u64>()) {
            let (s, cy, cp) = wide_add_lanes(&[a, b, c, d, e]);
            for lane in 0..MAX_LANES {
                let total = [a, b, c, d, e]
                    .iter()
                    .filter(|&&w| lane_bit(w, lane))
                    .count();
                let got = lane_bit(s, lane) as usize
                    + 2 * lane_bit(cy, lane) as usize
                    + 4 * lane_bit(cp, lane) as usize;
                prop_assert_eq!(got, total);
            }
        }
    }
}
