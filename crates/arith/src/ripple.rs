//! Integer addition as a bit-level uniform dependence algorithm.
//!
//! The paper's Section 3.1 closes with "Due to space limitation, the
//! dependence structure of an algorithm for adding two integers is not
//! included here [7]" — the structure lives in the unpublished technical
//! report. We reconstruct the obvious candidate: the **ripple-carry adder**,
//! a 1-dimensional uniform dependence algorithm whose only cross-iteration
//! dependence is the carry (`d̄ = [1]`), plus a **carry-save (3:2) adder**
//! used as a building block when more than two numbers meet at one point.

use crate::bitcell::{from_bits, full_add, to_bits};
use bitlevel_ir::{
    Access, AffineFn, BoxSet, Dependence, DependenceSet, LoopNest, OpKind, Statement,
};
use serde::{Deserialize, Serialize};

/// A `p`-bit ripple-carry adder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RippleAdder {
    /// Word length `p ≥ 1`.
    pub p: usize,
}

impl RippleAdder {
    /// Creates the adder.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "word length must be at least 1");
        RippleAdder { p }
    }

    /// The 1-D index set `{ i : 1 ≤ i ≤ p }`.
    pub fn index_set(&self) -> BoxSet {
        BoxSet::cube(1, 1, self.p as i64)
    }

    /// The dependence structure: a single uniform carry dependence `[1]`.
    pub fn dependences(&self) -> DependenceSet {
        DependenceSet::new(vec![Dependence::uniform([1], "c")])
    }

    /// The loop nest (`a`, `b` arrive bit-per-point; no pipelining needed):
    ///
    /// ```text
    /// DO (i = 1, p)
    ///     c(i) = g(a(i), b(i), c(i-1))
    ///     s(i) = f(a(i), b(i), c(i-1))
    /// END
    /// ```
    pub fn nest(&self) -> LoopNest {
        let n = 1;
        let inputs = || {
            vec![
                Access::new("a", AffineFn::identity(n)),
                Access::new("b", AffineFn::identity(n)),
                Access::new("c", AffineFn::shift_back(&[1].into())),
            ]
        };
        LoopNest::new(
            self.index_set(),
            vec![
                Statement::new(
                    Access::new("c", AffineFn::identity(n)),
                    inputs(),
                    OpKind::CarryBit,
                ),
                Statement::new(
                    Access::new("s", AffineFn::identity(n)),
                    inputs(),
                    OpKind::SumBit,
                ),
            ],
        )
    }

    /// Adds two nonnegative integers through the bit-level carry chain,
    /// returning the `p+1`-bit sum.
    ///
    /// # Panics
    /// Panics if an operand does not fit in `p` bits.
    pub fn add(&self, a: u128, b: u128) -> u128 {
        let a_bits = to_bits(a, self.p);
        let b_bits = to_bits(b, self.p);
        let mut bits = Vec::with_capacity(self.p + 1);
        let mut carry = false;
        for i in 0..self.p {
            let (s, c) = full_add(a_bits[i], b_bits[i], carry);
            bits.push(s);
            carry = c;
        }
        bits.push(carry);
        from_bits(&bits)
    }

    /// Latency of the carry chain: `p` cell delays.
    pub fn latency(&self) -> u64 {
        self.p as u64
    }
}

/// A carry-save (3:2 compressor) adder stage: reduces three `p`-bit numbers
/// to a sum vector and a carry vector in **one** cell delay, independent of
/// `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CarrySaveAdder {
    /// Word length `p ≥ 1`.
    pub p: usize,
}

impl CarrySaveAdder {
    /// Creates the compressor stage.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "word length must be at least 1");
        CarrySaveAdder { p }
    }

    /// Compresses `(x, y, z)` into `(sum, carry)` with
    /// `x + y + z = sum + 2·carry`; all inputs must fit in `p` bits.
    pub fn compress(&self, x: u128, y: u128, z: u128) -> (u128, u128) {
        let xb = to_bits(x, self.p);
        let yb = to_bits(y, self.p);
        let zb = to_bits(z, self.p);
        let mut sum = Vec::with_capacity(self.p);
        let mut carry = Vec::with_capacity(self.p);
        for i in 0..self.p {
            let (s, c) = full_add(xb[i], yb[i], zb[i]);
            sum.push(s);
            carry.push(c);
        }
        (from_bits(&sum), from_bits(&carry))
    }

    /// Constant latency: one full-adder delay.
    pub fn latency(&self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_linalg::IVec;
    use proptest::prelude::*;

    #[test]
    fn ripple_exhaustive_small() {
        for p in 1..=6usize {
            let adder = RippleAdder::new(p);
            let max = 1u128 << p;
            for a in (0..max).step_by(3.min(max as usize)) {
                for b in 0..max {
                    assert_eq!(adder.add(a, b), a + b, "p={p}, {a}+{b}");
                }
            }
        }
    }

    #[test]
    fn ripple_carries_out_top_bit() {
        let adder = RippleAdder::new(4);
        assert_eq!(adder.add(15, 15), 30); // needs the p+1-th bit
        assert_eq!(adder.add(15, 1), 16);
    }

    #[test]
    fn ripple_structure_is_one_dimensional_uniform() {
        let adder = RippleAdder::new(8);
        assert_eq!(adder.index_set().dim(), 1);
        let d = adder.dependences();
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(0).vector, IVec::from([1]));
        assert!(d.all_uniform_over(&adder.index_set()));
        assert_eq!(adder.nest().statements.len(), 2);
        assert_eq!(adder.latency(), 8);
    }

    #[test]
    fn carry_save_identity() {
        let csa = CarrySaveAdder::new(5);
        for (x, y, z) in [(31, 31, 31), (1, 2, 4), (0, 0, 0), (21, 10, 17)] {
            let (s, c) = csa.compress(x, y, z);
            assert_eq!(s + 2 * c, x + y + z, "{x}+{y}+{z}");
        }
        assert_eq!(csa.latency(), 1);
    }

    proptest! {
        #[test]
        fn prop_ripple_add(p in 1usize..30, seed in any::<u64>()) {
            let mask = (1u128 << p) - 1;
            let a = (seed as u128) & mask;
            let b = (seed as u128).rotate_right(13) & mask;
            prop_assert_eq!(RippleAdder::new(p).add(a, b), a + b);
        }

        #[test]
        fn prop_carry_save_weights(p in 1usize..30, seed in any::<u64>()) {
            let mask = (1u128 << p) - 1;
            let x = (seed as u128) & mask;
            let y = (seed as u128).rotate_left(7) & mask;
            let z = (seed as u128).rotate_left(31) & mask;
            let (s, c) = CarrySaveAdder::new(p).compress(x, y, z);
            prop_assert_eq!(s + 2 * c, x + y + z);
        }
    }
}
