//! Carry-save array multiplication.
//!
//! Section 4.2: "In practice, faster arithmetic algorithms such as carry-save
//! multiplication with complexity `t_b = O(p)` can be used to multiply two
//! integers. In this case the speedup of our bit-level architecture is
//! `O(p)`." This module supplies that faster comparator: a `p×p` array of
//! carry-save (3:2) cells followed by a vector-merge ripple stage.
//!
//! The grid reuses the add-shift geometry (cell `(i₁,i₂)` holds partial
//! product `a_{i₂}∧b_{i₁}` of weight `i₁+i₂−2`) but the carry of cell
//! `(i₁,i₂)` is **saved** — passed to the next row at the same column
//! (`[1,0]ᵀ`, weight preserved because the row index contributes one) instead
//! of rippling within the row. All row latencies become constant, so the
//! array settles in `O(p)` time; one final ripple merge of the surviving sum
//! and carry vectors produces the product.

use crate::bitcell::{from_bits, full_add, to_bits, Bit};
use bitlevel_ir::{BoxSet, Dependence, DependenceSet};
use bitlevel_linalg::IVec;
use serde::{Deserialize, Serialize};

/// The carry-save multiplier for word length `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CarrySave {
    /// Word length `p ≥ 1`.
    pub p: usize,
}

impl CarrySave {
    /// Creates the multiplier.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "word length must be at least 1");
        CarrySave { p }
    }

    /// The `p×p` index set of the cell array.
    pub fn index_set(&self) -> BoxSet {
        BoxSet::cube(2, 1, self.p as i64)
    }

    /// The dependence structure of the carry-save array:
    /// `a: [1,0]ᵀ`, `b: [0,1]ᵀ`, `s: [1,−1]ᵀ`, `c: [1,0]ᵀ` — the carry column
    /// differs from add-shift's `[0,1]ᵀ`, which is exactly why no carry chain
    /// serialises a row.
    pub fn dependences(&self) -> DependenceSet {
        DependenceSet::new(vec![
            Dependence::uniform([1, 0], "a"),
            Dependence::uniform([0, 1], "b"),
            Dependence::uniform([1, -1], "s"),
            Dependence::uniform([1, 0], "c"),
        ])
    }

    /// Carry propagation direction (differs from [`crate::AddShift`]).
    pub fn carry_direction() -> IVec {
        IVec::from([1, 0])
    }

    /// Multiplies two nonnegative integers through the carry-save array plus
    /// vector-merge stage.
    ///
    /// # Panics
    /// Panics if an operand does not fit in `p` bits.
    pub fn multiply(&self, a: u128, b: u128) -> u128 {
        let p = self.p;
        let a_bits = to_bits(a, p);
        let b_bits = to_bits(b, p);

        // s[i1][i2], c[i1][i2], 0-based storage for 1-based cells.
        let mut s = vec![vec![false; p]; p];
        let mut c = vec![vec![false; p]; p];
        for i1 in 1..=p {
            for i2 in 1..=p {
                let pp = a_bits[i2 - 1] & b_bits[i1 - 1];
                // Sum in from (i1-1, i2+1); zero at the top row and past the
                // right edge (the weight there is covered by the saved carry).
                let s_in = if i1 > 1 && i2 < p {
                    s[i1 - 2][i2]
                } else {
                    false
                };
                // Carry in from (i1-1, i2): saved carry, same column.
                let c_in = if i1 > 1 { c[i1 - 2][i2 - 1] } else { false };
                let (sb, cb) = full_add(pp, s_in, c_in);
                s[i1 - 1][i2 - 1] = sb;
                c[i1 - 1][i2 - 1] = cb;
            }
        }

        // Product bits 1..p stream out of column 1: bit i = s(i, 1).
        let mut bits: Vec<Bit> = (1..=p).map(|i1| s[i1 - 1][0]).collect();

        // Vector-merge: the remaining weights p..2p-1 hold the last row's
        // sums s(p, i2) (weight p+i2-2, i2 ≥ 2) and saved carries c(p, i2)
        // (weight p+i2-1). Ripple them together.
        let mut carry = false;
        for w in p..=2 * p - 1 {
            // weight w corresponds to product bit w+1
            let s_bit = {
                let i2 = w + 2 - p; // s(p, i2) has weight p+i2-2 = w
                if (2..=p).contains(&i2) {
                    s[p - 1][i2 - 1]
                } else {
                    false
                }
            };
            let c_bit = {
                let i2 = w + 1 - p; // c(p, i2) has weight p+i2-1 = w
                if (1..=p).contains(&i2) {
                    c[p - 1][i2 - 1]
                } else {
                    false
                }
            };
            let (sum, cout) = full_add(s_bit, c_bit, carry);
            bits.push(sum);
            carry = cout;
        }
        debug_assert!(!carry, "product of two p-bit numbers fits in 2p bits");
        from_bits(&bits)
    }

    /// Word-level latency `t_b = O(p)`: `p` constant-time carry-save rows plus
    /// the `p`-bit vector-merge; we use `2p` as the concrete constant
    /// (Section 4.2's comparison only relies on the linear order).
    pub fn word_latency(&self) -> u64 {
        2 * self.p as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exhaustive_small_word_lengths() {
        for p in 1..=5usize {
            let m = CarrySave::new(p);
            let max = 1u128 << p;
            for a in 0..max {
                for b in 0..max {
                    assert_eq!(m.multiply(a, b), a * b, "p={p}, {a} * {b}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_addshift() {
        let p = 6;
        let cs = CarrySave::new(p);
        let asft = crate::AddShift::new(p);
        for (a, b) in [(63, 63), (45, 37), (1, 62), (32, 33)] {
            assert_eq!(cs.multiply(a, b), asft.multiply(a, b));
        }
    }

    #[test]
    fn dependence_structure_saves_carries() {
        let cs = CarrySave::new(4);
        let d = cs.dependences();
        assert_eq!(d.len(), 4);
        // The carry column is [1,0]: down a row, not across the row.
        assert_eq!(d.get(3).cause, "c");
        assert_eq!(d.get(3).vector, IVec::from([1, 0]));
        assert!(d.all_uniform_over(&cs.index_set()));
    }

    #[test]
    fn latency_is_linear_vs_addshift_quadratic() {
        // The whole point of Section 4.2's comparison: t_b(carry-save) = O(p)
        // vs t_b(add-shift) = O(p²).
        for p in [4usize, 8, 16, 32] {
            assert_eq!(CarrySave::new(p).word_latency(), 2 * p as u64);
            assert_eq!(crate::AddShift::new(p).word_latency(), (p * p) as u64);
        }
    }

    proptest! {
        #[test]
        fn prop_exact_for_random_wide_operands(p in 1usize..20, seed in any::<u64>()) {
            let mask = (1u128 << p) - 1;
            let a = (seed as u128).wrapping_mul(0xc2b2ae3d27d4eb4f) & mask;
            let b = (seed as u128).rotate_left(29) & mask;
            prop_assert_eq!(CarrySave::new(p).multiply(a, b), a * b);
        }
    }
}
