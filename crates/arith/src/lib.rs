#![warn(missing_docs)]

//! # bitlevel-arith
//!
//! The arithmetic algorithms of Section 3.1, both as *dependence structures*
//! (inputs to the compositional analysis of Theorem 3.1) and as *bit-exact
//! functional models* (ground truth for every simulator in the workspace):
//!
//! * [`addshift::AddShift`] — the add-shift multiplier of eqs. (3.1)–(3.4)
//!   and Fig. 1, with `D_as = [δ̄₁, δ̄₂, δ̄₃]`;
//! * [`carrysave::CarrySave`] — the `t_b = O(p)` multiplier invoked by
//!   Section 4.2's speedup comparison;
//! * [`ripple::RippleAdder`] / [`ripple::CarrySaveAdder`] — integer addition
//!   (reconstruction of the structure the paper defers to its technical
//!   report);
//! * [`bitcell`] — the Boolean cells of eq. (3.2) (`f` = parity,
//!   `g` = majority) and the 5-input wide adder of Expansion II's `i₁ = p`
//!   plane, plus their lane-parallel (`u64` bit-sliced) forms used by the
//!   batch engine;
//! * [`traits::MultiplierAlgorithm`] — the common catalogue interface.

pub mod addshift;
pub mod baughwooley;
pub mod bitcell;
pub mod carrysave;
pub mod divider;
pub mod lookahead;
pub mod ripple;
pub mod traits;

pub use addshift::{AddShift, AddShiftGrid, BoundaryPolicy};
pub use baughwooley::BaughWooley;
pub use bitcell::{
    carry3, carry3_lanes, flip_lanes, from_bits, full_add, full_add_lanes, half_add,
    half_add_lanes, lane_bit, pack_bit_planes, pack_lanes, set_lanes, sum3, sum3_lanes, to_bits,
    wide_add, wide_add_lanes, Bit, LaneWord, MAX_LANES,
};
pub use carrysave::CarrySave;
pub use divider::NonRestoringDivider;
pub use lookahead::CarryLookahead;
pub use ripple::{CarrySaveAdder, RippleAdder};
pub use traits::MultiplierAlgorithm;
