//! Baugh–Wooley two's-complement multiplication.
//!
//! The catalogue's signed entry: real workloads the paper names (DCT/DFT
//! coefficient matrices, LU pivot updates) have **signed** operands, and the
//! classic array answer is the Baugh–Wooley scheme — the same `p×p`
//! partial-product grid as add-shift/carry-save, with the partial products
//! of the sign row and sign column complemented and two constant correction
//! bits injected (at weights `p` and `2p−1`). The cell geometry, and hence
//! the dependence structure, is unchanged from the unsigned arrays; only the
//! cell Boolean function on two grid edges differs — which is exactly why
//! the paper's compositional analysis extends to signed arithmetic without
//! new dependence work.
//!
//! The functional model sums the corrected partial products through explicit
//! full-adder rows (carry-save accumulation, then a ripple merge), mod
//! `2^{2p}`, and reinterprets the result as a signed `2p`-bit value.

use crate::bitcell::{full_add, Bit};
use bitlevel_ir::{BoxSet, Dependence, DependenceSet};
use serde::{Deserialize, Serialize};

/// Baugh–Wooley signed multiplier for `p`-bit two's-complement operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaughWooley {
    /// Operand width `p ≥ 2` (two's complement).
    pub p: usize,
}

impl BaughWooley {
    /// Creates the multiplier.
    ///
    /// # Panics
    /// Panics if `p < 2` (a 1-bit two's-complement operand has no magnitude
    /// bits).
    pub fn new(p: usize) -> Self {
        assert!(p >= 2, "two's-complement width must be at least 2");
        BaughWooley { p }
    }

    /// Valid operand range: `[−2^{p−1}, 2^{p−1})`.
    pub fn operand_range(&self) -> (i128, i128) {
        (-(1i128 << (self.p - 1)), 1i128 << (self.p - 1))
    }

    /// The `p×p` cell index set (same geometry as the unsigned arrays).
    pub fn index_set(&self) -> BoxSet {
        BoxSet::cube(2, 1, self.p as i64)
    }

    /// The dependence structure — identical to the carry-save array
    /// (`a: [1,0]`, `b: [0,1]`, `s: [1,−1]`, `c: [1,0]`): Baugh–Wooley
    /// changes cell functions, not dataflow.
    pub fn dependences(&self) -> DependenceSet {
        DependenceSet::new(vec![
            Dependence::uniform([1, 0], "a"),
            Dependence::uniform([0, 1], "b"),
            Dependence::uniform([1, -1], "s"),
            Dependence::uniform([1, 0], "c"),
        ])
    }

    /// Multiplies two signed values through the corrected partial-product
    /// grid.
    ///
    /// # Panics
    /// Panics if an operand is outside [`Self::operand_range`].
    pub fn multiply_signed(&self, a: i128, b: i128) -> i128 {
        let p = self.p;
        let (lo, hi) = self.operand_range();
        assert!((lo..hi).contains(&a), "{a} outside signed {p}-bit range");
        assert!((lo..hi).contains(&b), "{b} outside signed {p}-bit range");

        // Two's-complement operand bits, LSB first.
        let mask = (1u128 << p) - 1;
        let abits: Vec<Bit> = (0..p).map(|k| ((a as u128) & mask) >> k & 1 == 1).collect();
        let bbits: Vec<Bit> = (0..p).map(|k| ((b as u128) & mask) >> k & 1 == 1).collect();

        let w = 2 * p; // product width
                       // Accumulator as a bit vector; rows added by explicit adder chains.
        let mut acc = vec![false; w];

        // Partial-product rows with the Baugh–Wooley complement rule: the
        // product bit a_i·b_j is complemented iff exactly one of i, j is the
        // sign position p−1.
        for (j, &bj) in bbits.iter().enumerate() {
            let mut row = vec![false; w];
            for (i, &ai) in abits.iter().enumerate() {
                let pp = ai & bj;
                let corrected = if (i == p - 1) ^ (j == p - 1) { !pp } else { pp };
                row[i + j] = corrected;
            }
            add_into(&mut acc, &row);
        }
        // Correction constants at weights p and 2p−1.
        let mut corr = vec![false; w];
        corr[p] = true;
        corr[2 * p - 1] = true;
        add_into(&mut acc, &corr);

        // Reinterpret as signed 2p-bit.
        let mut value: i128 = 0;
        for (k, &bit) in acc.iter().enumerate().take(w - 1) {
            if bit {
                value += 1i128 << k;
            }
        }
        if acc[w - 1] {
            value -= 1i128 << (w - 1);
        }
        value
    }

    /// Word latency: same order as carry-save (`O(p)` rows + merge).
    pub fn word_latency(&self) -> u64 {
        2 * self.p as u64
    }
}

/// `acc += row` through a ripple chain of full adders (mod `2^len`).
fn add_into(acc: &mut [Bit], row: &[Bit]) {
    debug_assert_eq!(acc.len(), row.len());
    let mut carry = false;
    for i in 0..acc.len() {
        let (s, c) = full_add(acc[i], row[i], carry);
        acc[i] = s;
        carry = c;
    }
    // Carry out of the top bit is the mod-2^len wrap (correct for
    // two's-complement products of in-range operands).
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exhaustive_small_widths() {
        for p in 2..=5usize {
            let m = BaughWooley::new(p);
            let (lo, hi) = m.operand_range();
            for a in lo..hi {
                for b in lo..hi {
                    assert_eq!(m.multiply_signed(a, b), a * b, "p={p}: {a} * {b}");
                }
            }
        }
    }

    #[test]
    fn sign_combinations() {
        let m = BaughWooley::new(8);
        assert_eq!(m.multiply_signed(-128, -128), 16384);
        assert_eq!(m.multiply_signed(-128, 127), -16256);
        assert_eq!(m.multiply_signed(127, -1), -127);
        assert_eq!(m.multiply_signed(0, -77), 0);
    }

    #[test]
    fn agrees_with_unsigned_multipliers_on_nonnegative_operands() {
        let p = 6;
        let bw = BaughWooley::new(p);
        let asft = crate::AddShift::new(p - 1); // p−1 magnitude bits
        for (a, b) in [(17i128, 23i128), (31, 31), (5, 0)] {
            assert_eq!(
                bw.multiply_signed(a, b),
                asft.multiply(a as u128, b as u128) as i128
            );
        }
    }

    #[test]
    fn structure_matches_carry_save_geometry() {
        // Baugh–Wooley only changes cell functions: the dependence structure
        // and index set are the carry-save array's.
        let bw = BaughWooley::new(4);
        let cs = crate::CarrySave::new(4);
        assert_eq!(bw.dependences().matrix(), cs.dependences().matrix());
        assert_eq!(bw.index_set(), cs.index_set());
    }

    #[test]
    #[should_panic(expected = "outside signed")]
    fn out_of_range_operand_panics() {
        let _ = BaughWooley::new(4).multiply_signed(8, 1);
    }

    proptest! {
        #[test]
        fn prop_signed_products(p in 2usize..16, seed in any::<i64>()) {
            let m = BaughWooley::new(p);
            let (lo, hi) = m.operand_range();
            let span = hi - lo;
            let a = lo + ((seed as i128).rem_euclid(span));
            let b = lo + ((seed as i128).rotate_left(13).rem_euclid(span));
            prop_assert_eq!(m.multiply_signed(a, b), a * b);
        }
    }
}
