//! Non-restoring array division.
//!
//! Section 1 of the paper lists division among the word-wise operations the
//! arithmetic-algorithm catalogue must cover ("word-level algorithms, such as
//! matrix multiplications, LU decompositions and convolutions, involve only a
//! limited number of arithmetic algorithms for multiplication, addition and
//! division"). This module supplies the classic **non-restoring
//! controlled-add-subtract (CAS) array** divider: `p` rows of CAS cells, the
//! `k`-th row conditionally adding or subtracting the divisor from the
//! shifted partial remainder; the sign out of each row is the (raw) quotient
//! bit and the next row's control.
//!
//! Dependence structure of the array (cell `(i₁, i₂)` = row `i₁`, bit
//! position `i₂`):
//!
//! * divisor bits travel down the rows: `[1, 0]ᵀ`;
//! * the carry/borrow and the row control `T` ripple along the row:
//!   `[0, 1]ᵀ`;
//! * the partial remainder shifts left between rows: `[1, 1]ᵀ` (row `i₁`'s
//!   cell at weight `w` consumes row `i₁−1`'s bit of weight `w−1`);
//! * the sign (control) feeds back from the top of one row to the bottom of
//!   the next: `[1, −(w−1)]ᵀ`, valid only at `i₂ = 1` — a genuinely long,
//!   conditional dependence, which is exactly why division arrays are harder
//!   to pipeline than multiplication arrays.
//!
//! The functional model performs every row operation through real full-adder
//! cells (two's-complement CAS), not native division.

use crate::bitcell::{full_add, to_bits, Bit};
use bitlevel_ir::{BoxSet, Dependence, DependenceSet, Predicate};
use serde::{Deserialize, Serialize};

/// A non-restoring divider producing a `p`-bit quotient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NonRestoringDivider {
    /// Quotient width `p ≥ 1` (divisor is also `p` bits).
    pub p: usize,
}

impl NonRestoringDivider {
    /// Creates the divider.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "quotient width must be at least 1");
        NonRestoringDivider { p }
    }

    /// The cell array: `p` rows × `w = 2p+1` columns (partial remainders are
    /// two's-complement values of width `w`).
    pub fn index_set(&self) -> BoxSet {
        BoxSet::new(
            bitlevel_linalg::IVec::from([1, 1]),
            bitlevel_linalg::IVec::from([self.p as i64, 2 * self.p as i64 + 1]),
        )
    }

    /// The dependence structure described in the module docs.
    pub fn dependences(&self) -> DependenceSet {
        let w = 2 * self.p as i64 + 1;
        DependenceSet::new(vec![
            Dependence::uniform([1, 0], "b"),
            Dependence::uniform([0, 1], "c,T"),
            Dependence::uniform([1, 1], "r"),
            Dependence::conditional([1, -(w - 1)], "sign", Predicate::eq_const(1, 1)),
        ])
    }

    /// Divides `n` by `d` through the CAS array: returns `(quotient,
    /// remainder)` with `n = q·d + r`, `0 ≤ r < d`.
    ///
    /// # Panics
    /// Panics if `d == 0` or the quotient does not fit in `p` bits
    /// (i.e. `n ≥ d·2^p`).
    pub fn divide(&self, n: u128, d: u128) -> (u128, u128) {
        assert!(d != 0, "division by zero");
        let p = self.p;
        assert!(
            n < d << p,
            "quotient overflow: {n} / {d} does not fit in {p} bits"
        );
        let w = 2 * p + 1; // two's-complement working width

        // Partial remainder R as a w-bit two's-complement bit vector,
        // initialised to the dividend. Invariant (standard non-restoring
        // bound): before processing digit k, R ∈ [−d·2^{k+1}, d·2^{k+1}),
        // so R always fits in w bits.
        let mut r = to_bits(n, w);
        let dbits = to_bits(d, p);

        // Signed quotient digits s_k ∈ {+1, −1}: subtract (s = +1) when the
        // current remainder is nonnegative, add otherwise.
        let mut subtract = true;
        let mut q_signed: i128 = 0;
        for row in 0..p {
            let k = p - 1 - row;
            // Divisor aligned at d·2^k (row k's operand).
            let mut dshift = vec![false; w];
            dshift[k..k + p].copy_from_slice(&dbits);
            // CAS row: R ← R ∓ d·2^k through full adders (two's complement:
            // subtraction adds the complement with carry-in 1).
            let mut carry = subtract;
            for i in 0..w {
                let b = dshift[i] ^ subtract;
                let (s, c) = full_add(r[i], b, carry);
                r[i] = s;
                carry = c;
            }
            q_signed += if subtract { 1i128 << k } else { -(1i128 << k) };
            subtract = !r[w - 1]; // next row's control = sign of R
        }

        // N = d·q_signed + R; correct a final negative remainder.
        let mut rem = signed_value(&r);
        if rem < 0 {
            rem += d as i128;
            q_signed -= 1;
        }
        debug_assert!(rem >= 0 && (rem as u128) < d);
        assert!(q_signed >= 0, "internal: negative quotient");
        (q_signed as u128, rem as u128)
    }

    /// Row latency of the array: `p` CAS rows, each a `2p+1`-bit ripple —
    /// `O(p²)` cell delays, the divider analogue of add-shift.
    pub fn word_latency(&self) -> u64 {
        (self.p * (2 * self.p + 1)) as u64
    }
}

/// Interprets a two's-complement bit vector (LSB first).
fn signed_value(bits: &[Bit]) -> i128 {
    let w = bits.len();
    let mut v: i128 = 0;
    for (i, &b) in bits.iter().enumerate().take(w - 1) {
        if b {
            v += 1i128 << i;
        }
    }
    if bits[w - 1] {
        v -= 1i128 << (w - 1);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_linalg::IVec;
    use proptest::prelude::*;

    #[test]
    fn exhaustive_small_widths() {
        for p in 1..=5usize {
            let div = NonRestoringDivider::new(p);
            let dmax = 1u128 << p;
            for d in 1..dmax {
                let nmax = d << p;
                for n in (0..nmax).step_by(((nmax / 64).max(1)) as usize) {
                    let (q, r) = div.divide(n, d);
                    assert_eq!(q, n / d, "p={p}: {n}/{d}");
                    assert_eq!(r, n % d, "p={p}: {n}%{d}");
                }
            }
        }
    }

    #[test]
    fn edge_cases() {
        let div = NonRestoringDivider::new(4);
        assert_eq!(div.divide(0, 7), (0, 0));
        assert_eq!(div.divide(6, 7), (0, 6));
        assert_eq!(div.divide(7, 7), (1, 0));
        assert_eq!(div.divide(15 * 15 + 14, 15), (15, 14)); // max quotient, max rem
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_panics() {
        let _ = NonRestoringDivider::new(3).divide(5, 0);
    }

    #[test]
    #[should_panic(expected = "quotient overflow")]
    fn quotient_overflow_panics() {
        let _ = NonRestoringDivider::new(3).divide(8 * 3, 3);
    }

    #[test]
    fn dependence_structure_shape() {
        let div = NonRestoringDivider::new(4);
        let deps = div.dependences();
        assert_eq!(deps.len(), 4);
        // Three uniform flows plus the long conditional sign feedback.
        assert!(deps.get(0).is_uniform_over(&div.index_set()));
        assert!(deps.get(2).is_uniform_over(&div.index_set()));
        let sign = deps.get(3);
        assert_eq!(sign.vector, IVec::from([1, -8])); // w−1 = 2p
        assert!(!sign.is_uniform_over(&div.index_set()));
        // The sign feedback is the long-wire culprit: L∞ length grows with p.
        assert!(sign.vector.linf_norm() > deps.get(2).vector.linf_norm());
    }

    #[test]
    fn latency_is_quadratic_like_addshift() {
        assert_eq!(NonRestoringDivider::new(4).word_latency(), 4 * 9);
        assert!(
            NonRestoringDivider::new(8).word_latency()
                > 2 * NonRestoringDivider::new(4).word_latency()
        );
    }

    proptest! {
        #[test]
        fn prop_division_identity(p in 1usize..12, seed in any::<u64>()) {
            let div = NonRestoringDivider::new(p);
            let dmask = (1u128 << p) - 1;
            let d = ((seed as u128) & dmask).max(1);
            let n = (seed as u128).rotate_left(23) % (d << p);
            let (q, r) = div.divide(n, d);
            prop_assert_eq!(q * d + r, n);
            prop_assert!(r < d);
            prop_assert_eq!(q, n / d);
        }
    }
}
