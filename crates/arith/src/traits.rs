//! Common interface over the bit-level arithmetic algorithms.
//!
//! "Since many word-level algorithms involve a limited number of word-level
//! arithmetic algorithms, the dependence structures of these algorithms need
//! to be derived only once" (Section 1). The trait below is that catalogue
//! interface: every arithmetic algorithm exposes its index set, its
//! dependence structure, and its word-level latency `t_b`, so both the
//! expansion machinery (`bitlevel-depanal`) and the word-level baseline
//! simulator (`bitlevel-systolic`) can consume any of them uniformly.

use crate::{AddShift, CarrySave};
use bitlevel_ir::{BoxSet, DependenceSet};

/// A bit-level multiplier algorithm usable inside the expansion and as the
/// multiplier of a word-level PE.
pub trait MultiplierAlgorithm {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Word length `p`.
    fn word_length(&self) -> usize;

    /// The 2-D cell index set.
    fn index_set(&self) -> BoxSet;

    /// The dependence structure of the cell array.
    fn dependences(&self) -> DependenceSet;

    /// Bit-exact multiplication through the cell network.
    fn multiply(&self, a: u128, b: u128) -> u128;

    /// Word-level latency `t_b` when the algorithm implements the
    /// multiply–accumulate of one word-level PE (Section 4.2's comparison):
    /// `O(p²)` for add-shift, `O(p)` for carry-save.
    fn word_latency(&self) -> u64;
}

impl MultiplierAlgorithm for AddShift {
    fn name(&self) -> &'static str {
        "add-shift"
    }
    fn word_length(&self) -> usize {
        self.p
    }
    fn index_set(&self) -> BoxSet {
        AddShift::index_set(self)
    }
    fn dependences(&self) -> DependenceSet {
        AddShift::dependences(self)
    }
    fn multiply(&self, a: u128, b: u128) -> u128 {
        AddShift::multiply(self, a, b)
    }
    fn word_latency(&self) -> u64 {
        AddShift::word_latency(self)
    }
}

impl MultiplierAlgorithm for CarrySave {
    fn name(&self) -> &'static str {
        "carry-save"
    }
    fn word_length(&self) -> usize {
        self.p
    }
    fn index_set(&self) -> BoxSet {
        CarrySave::index_set(self)
    }
    fn dependences(&self) -> DependenceSet {
        CarrySave::dependences(self)
    }
    fn multiply(&self, a: u128, b: u128) -> u128 {
        CarrySave::multiply(self, a, b)
    }
    fn word_latency(&self) -> u64 {
        CarrySave::word_latency(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(m: &dyn MultiplierAlgorithm) {
        assert_eq!(m.index_set().dim(), 2);
        assert!(!m.dependences().is_empty());
        assert_eq!(m.multiply(5, 6), 30);
        assert!(m.word_latency() > 0);
    }

    #[test]
    fn trait_objects_work_for_both_multipliers() {
        check(&AddShift::new(4));
        check(&CarrySave::new(4));
    }

    #[test]
    fn latency_ordering_matches_section_4_2() {
        // For any p > 2, carry-save must be asymptotically (and here
        // concretely) faster.
        for p in 3..20usize {
            let a: &dyn MultiplierAlgorithm = &AddShift::new(p);
            let c: &dyn MultiplierAlgorithm = &CarrySave::new(p);
            assert!(c.word_latency() < a.word_latency(), "p = {p}");
        }
    }

    #[test]
    fn names() {
        assert_eq!(MultiplierAlgorithm::name(&AddShift::new(2)), "add-shift");
        assert_eq!(MultiplierAlgorithm::name(&CarrySave::new(2)), "carry-save");
    }
}
