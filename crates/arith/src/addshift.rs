//! The add-shift multiplication algorithm (Section 3.1, Fig. 1).
//!
//! `s = a × b` is computed by adding the `p` partial products
//! `(a_p∧b_i)…(a_1∧b_i)`, the `i`-th shifted `i−1` positions left. Reshaped to
//! the square of Fig. 1b, cell `(i₁, i₂)` of the `p×p` grid receives
//! `a_{i₂}`, `b_{i₁}`, the carry from `(i₁, i₂−1)` and the partial sum from
//! `(i₁−1, i₂+1)`, and produces a new carry (sent along `δ̄₂ = [0,1]ᵀ`) and a
//! new partial sum (sent along `δ̄₃ = [1,−1]ᵀ`); `a` bits are pipelined along
//! `δ̄₁ = [1,0]ᵀ` and `b` bits along `δ̄₂` — eqs. (3.1)–(3.4).
//!
//! ## Correctness note (deviation from the paper text)
//!
//! The paper sets the boundary inputs `s(i₁, p+1) = 0` and reads the product
//! from `s(i,1)` (i ≤ p) and `s(p, i−p+1)` (p < i ≤ 2p−1). Taken literally,
//! this drops (a) the carry out of the **last cell of each row** (weight
//! `i₁+p−1`) and (b) the final carry `c(p,p)` (weight `2p−1`), so e.g.
//! `7 × 3 = 21` would evaluate to `5` with `p = 3`. The standard wiring —
//! and the one any hardware realisation uses — re-enters the carry out of
//! row `i₁`'s last cell as the diagonal sum input of row `i₁+1`'s last cell
//! (`s(i₁, p+1) := c(i₁, p)`, a `[1,0]ᵀ` edge valid only at `i₂ = p`, the
//! same direction as `δ̄₁`), and exposes `c(p,p)` as product bit `2p`.
//! [`BoundaryPolicy::CarryReentry`] (default) implements that exact version;
//! [`BoundaryPolicy::PaperLiteral`] reproduces the text as written for
//! comparison. Neither changes `D_as`, the index set, or any schedule, so
//! every architectural result of the paper is unaffected.

use crate::bitcell::{from_bits, full_add, to_bits, Bit};
use bitlevel_ir::{
    Access, AffineFn, BoxSet, Dependence, DependenceSet, LoopNest, OpKind, Statement,
};
use bitlevel_linalg::IVec;
use serde::{Deserialize, Serialize};

/// How the right-boundary partial sums `s(i₁, p+1)` are supplied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BoundaryPolicy {
    /// Exact product: `s(i₁, p+1) = c(i₁, p)` (row-end carry re-entry) and
    /// product bit `2p` taken from `c(p, p)`.
    #[default]
    CarryReentry,
    /// The paper's literal initial values `s(i₁, p+1) = 0`; row-end carries
    /// are dropped and the product is truncated to `2p−1` bits. Exact only
    /// when no row-end carry arises (e.g. when one operand is a power of
    /// two).
    PaperLiteral,
}

/// The add-shift multiplier for word length `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddShift {
    /// Word length `p ≥ 1`.
    pub p: usize,
    /// Boundary handling (see [`BoundaryPolicy`]).
    pub policy: BoundaryPolicy,
}

/// The evaluated `p×p` grid of carry and partial-sum bits — the values
/// `c(i₁,i₂)` and `s(i₁,i₂)` of program (3.3). Expansion simulators reuse it.
#[derive(Debug, Clone)]
pub struct AddShiftGrid {
    p: usize,
    /// `s(i₁,i₂)`, row-major, 1-based via the accessor.
    s: Vec<Bit>,
    /// `c(i₁,i₂)`, row-major, 1-based via the accessor.
    c: Vec<Bit>,
}

impl AddShiftGrid {
    /// Partial-sum bit `s(i₁, i₂)`, `1 ≤ i₁, i₂ ≤ p`.
    pub fn s(&self, i1: usize, i2: usize) -> Bit {
        self.s[(i1 - 1) * self.p + (i2 - 1)]
    }

    /// Carry bit `c(i₁, i₂)`, `1 ≤ i₁, i₂ ≤ p`.
    pub fn c(&self, i1: usize, i2: usize) -> Bit {
        self.c[(i1 - 1) * self.p + (i2 - 1)]
    }
}

impl AddShift {
    /// Creates the multiplier with the exact (carry re-entry) policy.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "word length must be at least 1");
        AddShift {
            p,
            policy: BoundaryPolicy::CarryReentry,
        }
    }

    /// Creates the multiplier with the paper's literal boundary values.
    pub fn paper_literal(p: usize) -> Self {
        assert!(p >= 1, "word length must be at least 1");
        AddShift {
            p,
            policy: BoundaryPolicy::PaperLiteral,
        }
    }

    /// The index set `J_as = {ī : 1 ≤ i₁, i₂ ≤ p}` of eq. (3.4).
    pub fn index_set(&self) -> BoxSet {
        BoxSet::cube(2, 1, self.p as i64)
    }

    /// The dependence structure `D_as = [δ̄₁, δ̄₂, δ̄₃]` of eq. (3.4):
    /// `δ̄₁ = [1,0]ᵀ` (a), `δ̄₂ = [0,1]ᵀ` (b and c), `δ̄₃ = [1,−1]ᵀ` (s).
    pub fn dependences(&self) -> DependenceSet {
        DependenceSet::new(vec![
            Dependence::uniform([1, 0], "a"),
            Dependence::uniform([0, 1], "b,c"),
            Dependence::uniform([1, -1], "s"),
        ])
    }

    /// `δ̄₁` — pipelining of `a` bits.
    pub fn delta1() -> IVec {
        IVec::from([1, 0])
    }

    /// `δ̄₂` — pipelining of `b` bits and carry propagation.
    pub fn delta2() -> IVec {
        IVec::from([0, 1])
    }

    /// `δ̄₃` — partial-sum propagation.
    pub fn delta3() -> IVec {
        IVec::from([1, -1])
    }

    /// The broadcast-free loop nest of program (3.3), for consumption by the
    /// general dependence analyser.
    pub fn nest(&self) -> LoopNest {
        let n = 2;
        let d1 = Self::delta1();
        let d2 = Self::delta2();
        let d3 = Self::delta3();
        let adder_inputs = || {
            vec![
                Access::new("a", AffineFn::identity(n)),
                Access::new("b", AffineFn::identity(n)),
                Access::new("c", AffineFn::shift_back(&d2)),
                Access::new("s", AffineFn::shift_back(&d3)),
            ]
        };
        LoopNest::new(
            self.index_set(),
            vec![
                Statement::pipeline("a", n, &d1),
                Statement::pipeline("b", n, &d2),
                Statement::new(
                    Access::new("c", AffineFn::identity(n)),
                    adder_inputs(),
                    OpKind::CarryBit,
                ),
                Statement::new(
                    Access::new("s", AffineFn::identity(n)),
                    adder_inputs(),
                    OpKind::SumBit,
                ),
            ],
        )
    }

    /// Evaluates the whole grid for LSB-first operand bit vectors.
    ///
    /// # Panics
    /// Panics unless both operands supply exactly `p` bits.
    pub fn eval_grid(&self, a_bits: &[Bit], b_bits: &[Bit]) -> AddShiftGrid {
        assert_eq!(a_bits.len(), self.p, "a must have exactly p bits");
        assert_eq!(b_bits.len(), self.p, "b must have exactly p bits");
        let p = self.p;
        let mut grid = AddShiftGrid {
            p,
            s: vec![false; p * p],
            c: vec![false; p * p],
        };
        // Evaluate in row order: cell (i1, i2) needs c(i1, i2-1) (same row,
        // earlier column) and s(i1-1, i2+1) (previous row, later column), so a
        // row-major sweep with columns ascending is a valid topological order.
        for i1 in 1..=p {
            for i2 in 1..=p {
                let x1 = a_bits[i2 - 1] & b_bits[i1 - 1];
                let x2 = if i2 == 1 { false } else { grid.c(i1, i2 - 1) }; // c(i1,0)=0
                let x3 = self.s_input(&grid, i1, i2);
                let (s, c) = full_add(x1, x2, x3);
                grid.s[(i1 - 1) * p + (i2 - 1)] = s;
                grid.c[(i1 - 1) * p + (i2 - 1)] = c;
            }
        }
        grid
    }

    /// The diagonal sum input `s(i₁−1, i₂+1)` of cell `(i₁, i₂)`, resolving
    /// the boundary values per eq. (3.1) and the [`BoundaryPolicy`].
    fn s_input(&self, grid: &AddShiftGrid, i1: usize, i2: usize) -> Bit {
        if i1 == 1 {
            return false; // s(0, i2) = 0
        }
        if i2 == self.p {
            // s(i1-1, p+1): 0 in the paper text, c(i1-1, p) in the exact wiring.
            return match self.policy {
                BoundaryPolicy::PaperLiteral => false,
                BoundaryPolicy::CarryReentry => grid.c(i1 - 1, self.p),
            };
        }
        grid.s(i1 - 1, i2 + 1)
    }

    /// Extracts the product bits from an evaluated grid:
    /// `s_i = s(i, 1)` for `1 ≤ i ≤ p`, `s_i = s(p, i−p+1)` for
    /// `p < i ≤ 2p−1`, plus bit `2p = c(p,p)` under
    /// [`BoundaryPolicy::CarryReentry`].
    pub fn product_bits(&self, grid: &AddShiftGrid) -> Vec<Bit> {
        let p = self.p;
        let mut bits = Vec::with_capacity(2 * p);
        for i in 1..=p {
            bits.push(grid.s(i, 1));
        }
        for i in p + 1..=2 * p - 1 {
            bits.push(grid.s(p, i - p + 1));
        }
        match self.policy {
            BoundaryPolicy::CarryReentry => bits.push(grid.c(p, p)),
            BoundaryPolicy::PaperLiteral => bits.push(false),
        }
        bits
    }

    /// Multiplies two nonnegative integers through the bit-level grid.
    ///
    /// # Panics
    /// Panics if an operand does not fit in `p` bits.
    ///
    /// # Examples
    ///
    /// ```
    /// use bitlevel_arith::AddShift;
    /// let m = AddShift::new(8);
    /// assert_eq!(m.multiply(200, 250), 50_000); // every bit through real cells
    /// ```
    pub fn multiply(&self, a: u128, b: u128) -> u128 {
        let grid = self.eval_grid(&to_bits(a, self.p), &to_bits(b, self.p));
        from_bits(&self.product_bits(&grid))
    }

    /// The word-level latency `t_b` of one multiply (plus accumulate) when an
    /// add-shift multiplier is placed inside a word-level PE: `O(p²)` per
    /// Section 4.2; we use the cell count `p²` as the concrete constant.
    pub fn word_latency(&self) -> u64 {
        (self.p * self.p) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_running_example_p3() {
        // Fig. 1 uses p = 3. Exhaustively verify all 64 products.
        let m = AddShift::new(3);
        for a in 0..8u128 {
            for b in 0..8u128 {
                assert_eq!(m.multiply(a, b), a * b, "{a} * {b}");
            }
        }
    }

    #[test]
    fn exhaustive_small_word_lengths() {
        for p in 1..=5usize {
            let m = AddShift::new(p);
            let max = 1u128 << p;
            for a in 0..max {
                for b in 0..max {
                    assert_eq!(m.multiply(a, b), a * b, "p={p}, {a} * {b}");
                }
            }
        }
    }

    #[test]
    fn paper_literal_drops_row_end_carries() {
        // 7 × 3 with p = 3: the literal text loses the carry out of row 2
        // (weight 16): 21 - 16 = 5.
        let literal = AddShift::paper_literal(3);
        assert_eq!(literal.multiply(7, 3), 5);
        // …while the exact wiring gets it right.
        assert_eq!(AddShift::new(3).multiply(7, 3), 21);
    }

    #[test]
    fn paper_literal_is_exact_for_power_of_two_multiplier() {
        // With b a power of two there is a single nonzero partial-product row
        // and no carries arise anywhere.
        let literal = AddShift::paper_literal(4);
        for a in 0..16u128 {
            for sh in 0..4 {
                let b = 1u128 << sh;
                assert_eq!(literal.multiply(a, b), a * b, "{a} * {b}");
            }
        }
    }

    #[test]
    fn grid_values_match_hand_computation_p2() {
        // a = b = 3 (binary 11), p = 2 — worked in the module docs.
        let m = AddShift::new(2);
        let g = m.eval_grid(&[true, true], &[true, true]);
        assert!(g.s(1, 1)); // a1b1 = 1
        assert!(g.s(1, 2));
        assert!(!g.s(2, 1)); // 1 + s(1,2) = 10
        assert!(g.c(2, 1));
        assert!(!g.s(2, 2));
        assert!(g.c(2, 2)); // becomes product bit 4 (weight 8): 9 = 1001
        assert_eq!(from_bits(&m.product_bits(&g)), 9);
    }

    #[test]
    fn dependence_structure_matches_eq_3_4() {
        let m = AddShift::new(3);
        let d = m.dependences();
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(0).vector, IVec::from([1, 0]));
        assert_eq!(d.get(0).cause, "a");
        assert_eq!(d.get(1).vector, IVec::from([0, 1]));
        assert_eq!(d.get(1).cause, "b,c");
        assert_eq!(d.get(2).vector, IVec::from([1, -1]));
        assert_eq!(d.get(2).cause, "s");
        assert!(d.all_uniform_over(&m.index_set()));
        assert_eq!(m.index_set().cardinality(), 9);
    }

    #[test]
    fn nest_has_four_statements_of_program_3_3() {
        let nest = AddShift::new(3).nest();
        assert_eq!(nest.statements.len(), 4);
        assert_eq!(
            nest.arrays(),
            vec!["a".to_string(), "b".into(), "c".into(), "s".into()]
        );
        // The c and s statements read the same four operands.
        assert_eq!(nest.statements[2].inputs.len(), 4);
        assert_eq!(nest.statements[2].inputs, nest.statements[3].inputs);
    }

    #[test]
    fn word_latency_is_quadratic() {
        assert_eq!(AddShift::new(4).word_latency(), 16);
        assert_eq!(AddShift::new(8).word_latency(), 64);
    }

    #[test]
    #[should_panic(expected = "exactly p bits")]
    fn wrong_operand_width_panics() {
        let m = AddShift::new(3);
        let _ = m.eval_grid(&[true, true], &[true, false, false]);
    }

    proptest! {
        #[test]
        fn prop_exact_for_random_wide_operands(p in 1usize..16, seed in any::<u64>()) {
            let mask = if p == 128 { u128::MAX } else { (1u128 << p) - 1 };
            let a = (seed as u128).wrapping_mul(0x9e3779b97f4a7c15) & mask;
            let b = (seed as u128).rotate_left(17) & mask;
            prop_assert_eq!(AddShift::new(p).multiply(a, b), a * b);
        }
    }
}
