//! Generic cycle-accurate verification of a mapped algorithm.
//!
//! Given an algorithm `(J, D, E)`, a mapping `T = [S; Π]` and a machine
//! description `P`, this simulator *measures* what the closed-form results of
//! Section 4 assert: it walks the schedule cycle by cycle and checks
//!
//! * **makespan** — the number of cycles between the first and last busy
//!   cycle (eq. (4.5) claims `3(u−1)+3(p−1)+1` for the Fig. 4 design);
//! * **conflict-freeness** — no processor executes two points in one cycle;
//! * **causality with routing** — every exercised dependence instance
//!   `(j̄, d̄)` has its producer scheduled early enough that the datum can
//!   traverse its route: `hops(S·d̄) ≤ Π·d̄`;
//! * **processor count and utilisation**;
//! * **link traffic** per interconnection primitive.
//!
//! It also provides mapping-independent structure metrics used by experiment
//! E9: the **critical path** of the dependence DAG (a lower bound on any
//! schedule) and the **fan-in histogram** ("in Expansion II, four or five
//! bits have to be summed on the hyperplane `i₁ = p`. This may cause
//! unbalanced load distribution").

use crate::clocked::ClockedViolation;
use crate::fault::{FaultInjector, NoFaults, TransferFault};
use crate::trace::{NullSink, TraceEvent, TraceSink};
use bitlevel_ir::AlgorithmTriplet;
use bitlevel_linalg::IVec;
use bitlevel_mapping::{Interconnect, MappingMatrix, Routing};
use serde::Serialize;
use std::collections::HashMap;

/// Measured results of simulating a mapped algorithm.
#[derive(Debug, Clone, Serialize)]
pub struct MappedRunReport {
    /// Total busy cycles (first to last, inclusive) — the measured (4.5).
    pub cycles: i64,
    /// Distinct processors used.
    pub processors: usize,
    /// Total computations executed (= |J|).
    pub computations: u128,
    /// True iff no (processor, cycle) pair is used twice.
    pub conflict_free: bool,
    /// True iff every exercised dependence instance meets its routing budget.
    pub causality_ok: bool,
    /// Busy PE-cycles divided by `processors × cycles`.
    pub utilization: f64,
    /// Peak number of PEs busy in any single cycle.
    pub peak_parallelism: usize,
    /// Data movements per interconnection primitive (by column index of `P`).
    pub link_traffic: Vec<u64>,
    /// Total buffer-cycles consumed (slack between budget and hops, summed
    /// over all dependence instances).
    pub buffer_cycles: u64,
}

impl MappedRunReport {
    /// Names of the fields on which `self` and `other` disagree **bit-exactly**
    /// (`utilization` is compared by its IEEE-754 bits, not by `==`, so two
    /// reports agreeing here are byte-for-byte the same measurement). Empty
    /// means the two engines measured the identical run — the
    /// compiled-vs-interpreted cross-check used by the design-flow explorer
    /// and the engine sweep.
    pub fn divergences_from(&self, other: &MappedRunReport) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.cycles != other.cycles {
            out.push("cycles");
        }
        if self.processors != other.processors {
            out.push("processors");
        }
        if self.computations != other.computations {
            out.push("computations");
        }
        if self.conflict_free != other.conflict_free {
            out.push("conflict_free");
        }
        if self.causality_ok != other.causality_ok {
            out.push("causality_ok");
        }
        if self.utilization.to_bits() != other.utilization.to_bits() {
            out.push("utilization");
        }
        if self.peak_parallelism != other.peak_parallelism {
            out.push("peak_parallelism");
        }
        if self.link_traffic != other.link_traffic {
            out.push("link_traffic");
        }
        if self.buffer_cycles != other.buffer_cycles {
            out.push("buffer_cycles");
        }
        out
    }

    /// True iff [`MappedRunReport::divergences_from`] is empty.
    pub fn bit_identical(&self, other: &MappedRunReport) -> bool {
        self.divergences_from(other).is_empty()
    }
}

/// Simulates `alg` under mapping `t` on machine `ic`.
///
/// # Panics
/// Panics on dimension mismatches between the three arguments.
pub fn simulate_mapped(
    alg: &AlgorithmTriplet,
    t: &MappingMatrix,
    ic: &Interconnect,
) -> MappedRunReport {
    simulate_mapped_traced(alg, t, ic, &mut NullSink)
}

/// [`simulate_mapped`] with a [`TraceSink`] observing routes, fires and
/// violations. With [`NullSink`] the guards compile away; the compiled
/// counterpart is [`crate::compiled::CompiledSchedule::mapped_report_traced`]
/// (same rollup counters, cycle-major event order).
pub fn simulate_mapped_traced<K: TraceSink>(
    alg: &AlgorithmTriplet,
    t: &MappingMatrix,
    ic: &Interconnect,
    sink: &mut K,
) -> MappedRunReport {
    simulate_mapped_faulted(alg, t, ic, sink, &NoFaults)
}

/// [`simulate_mapped_traced`] with a [`FaultInjector`] (over the unit bundle
/// `()` — the timing simulator carries no values): dead PEs keep their place
/// in the array (they occupy a processor and can still conflict) but execute
/// nothing, dropped transfers shed their link traffic, duplicated transfers
/// pay it twice. With [`NoFaults`] the fault branches compile away and this
/// *is* [`simulate_mapped_traced`]; the compiled counterpart is
/// [`crate::compiled::CompiledSchedule::mapped_report_faulted`].
pub fn simulate_mapped_faulted<K: TraceSink, F: FaultInjector<()>>(
    alg: &AlgorithmTriplet,
    t: &MappingMatrix,
    ic: &Interconnect,
    sink: &mut K,
    faults: &F,
) -> MappedRunReport {
    assert_eq!(t.n(), alg.dim(), "mapping/algorithm dimension mismatch");
    let set = &alg.index_set;

    // Pre-route every distinct dependence vector once.
    let budgets: Vec<i64> = alg.deps.iter().map(|d| d.vector.dot(&t.schedule)).collect();
    let full_routes: Vec<Option<Routing>> = alg
        .deps
        .iter()
        .zip(&budgets)
        .map(|(d, &budget)| {
            if budget <= 0 {
                return None;
            }
            ic.route(&t.space.matvec(&d.vector), budget)
        })
        .collect();
    if K::ENABLED {
        for (i, r) in full_routes.iter().enumerate() {
            match r {
                Some(r) => sink.record(TraceEvent::ColumnRoute {
                    column: i,
                    hops: r.hops,
                    usage: r.usage.clone(),
                }),
                None => sink.record(TraceEvent::ColumnUnroutable { column: i }),
            }
        }
    }
    let routes: Vec<Option<(IVec, i64)>> = full_routes
        .into_iter()
        .map(|r| r.map(|r| (r.usage, r.buffers)))
        .collect();

    let mut time_min = i64::MAX;
    let mut time_max = i64::MIN;
    let mut occupancy: HashMap<(IVec, i64), u32> = HashMap::new();
    let mut busy_per_cycle: HashMap<i64, usize> = HashMap::new();
    let mut processors: std::collections::HashSet<IVec> = std::collections::HashSet::new();
    let mut link_traffic = vec![0u64; ic.count()];
    let mut buffer_cycles = 0u64;
    let mut causality_ok = true;
    let mut conflict_free = true;
    let mut computations: u128 = 0;

    for q in set.iter_points() {
        let time = t.time(&q);
        let place = t.place(&q);
        time_min = time_min.min(time);
        time_max = time_max.max(time);
        let dead = F::ENABLED && faults.pe_dead(&place);
        if !dead {
            computations += 1;
            *busy_per_cycle.entry(time).or_insert(0) += 1;
        }
        if K::ENABLED {
            sink.record(TraceEvent::PointFired {
                cycle: time,
                point: q.clone(),
                processor: place.clone(),
            });
        }
        if F::ENABLED && dead && K::ENABLED {
            sink.record(TraceEvent::FaultInjected {
                cycle: time,
                point: q.clone(),
                processor: place.clone(),
                column: None,
                kind: "dead_pe".into(),
            });
        }
        let slot = occupancy.entry((place.clone(), time)).or_insert(0);
        *slot += 1;
        if *slot > 1 {
            conflict_free = false;
            if K::ENABLED {
                let v = ClockedViolation::ProcessorConflict {
                    processor: place.to_string(),
                    cycle: time,
                };
                sink.record(TraceEvent::Violation {
                    cycle: time,
                    description: v.to_string(),
                });
            }
        }
        if dead {
            processors.insert(place);
            continue;
        }

        for (di, d) in alg.deps.iter().enumerate() {
            if !d.active_at(&q, set) {
                continue;
            }
            let tf = if F::ENABLED {
                faults.on_transfer(time, &q, di)
            } else {
                TransferFault::None
            };
            if tf == TransferFault::Drop {
                if K::ENABLED {
                    sink.record(TraceEvent::FaultInjected {
                        cycle: time,
                        point: q.clone(),
                        processor: place.clone(),
                        column: Some(di),
                        kind: "dropped_transfer".into(),
                    });
                }
                continue;
            }
            match &routes[di] {
                Some((usage, buffers)) => {
                    let mult: u64 = if tf == TransferFault::Duplicate { 2 } else { 1 };
                    for (j, &cnt) in usage.iter().enumerate() {
                        link_traffic[j] += cnt as u64 * mult;
                    }
                    buffer_cycles += *buffers as u64 * mult;
                    if F::ENABLED && tf == TransferFault::Duplicate && K::ENABLED {
                        sink.record(TraceEvent::FaultInjected {
                            cycle: time,
                            point: q.clone(),
                            processor: place.clone(),
                            column: Some(di),
                            kind: "duplicated_transfer".into(),
                        });
                    }
                }
                None => {
                    causality_ok = false;
                    if K::ENABLED {
                        let v = ClockedViolation::RouteTooSlow {
                            consumer: q.to_string(),
                            column: di,
                            hops: -1,
                            budget: budgets[di],
                        };
                        sink.record(TraceEvent::Violation {
                            cycle: time,
                            description: v.to_string(),
                        });
                    }
                }
            }
        }
        processors.insert(place);
    }

    let cycles = if computations == 0 {
        0
    } else {
        time_max - time_min + 1
    };
    let busy_total: usize = busy_per_cycle.values().sum();
    let peak_parallelism = busy_per_cycle.values().copied().max().unwrap_or(0);
    let utilization = if cycles > 0 && !processors.is_empty() {
        busy_total as f64 / (processors.len() as f64 * cycles as f64)
    } else {
        0.0
    };

    MappedRunReport {
        cycles,
        processors: processors.len(),
        computations,
        conflict_free,
        causality_ok,
        utilization,
        peak_parallelism,
        link_traffic,
        buffer_cycles,
    }
}

/// Rayon-parallel variant of [`simulate_mapped`]: identical report, computed
/// by folding per-thread partial states over point chunks and merging. The
/// per-point work here is small, so the fork/merge overhead only pays off
/// for very large index sets — the `ablations` bench measures the crossover
/// (sequential still wins at ~32k points); an equivalence test pins the two
/// implementations together.
pub fn simulate_mapped_parallel(
    alg: &AlgorithmTriplet,
    t: &MappingMatrix,
    ic: &Interconnect,
) -> MappedRunReport {
    use rayon::prelude::*;

    assert_eq!(t.n(), alg.dim(), "mapping/algorithm dimension mismatch");
    let set = &alg.index_set;
    let routes: Vec<Option<(IVec, i64)>> = alg
        .deps
        .iter()
        .map(|d| {
            let budget = d.vector.dot(&t.schedule);
            if budget <= 0 {
                return None;
            }
            ic.route(&t.space.matvec(&d.vector), budget)
                .map(|r| (r.usage, r.buffers))
        })
        .collect();

    #[derive(Clone)]
    struct Partial {
        time_min: i64,
        time_max: i64,
        occupancy: HashMap<(IVec, i64), u32>,
        busy_per_cycle: HashMap<i64, usize>,
        processors: std::collections::HashSet<IVec>,
        link_traffic: Vec<u64>,
        buffer_cycles: u64,
        causality_ok: bool,
        computations: u128,
    }

    let points: Vec<IVec> = set.iter_points().collect();
    let m = ic.count();
    let merged = points
        .par_chunks(1024.max(points.len() / (rayon::current_num_threads() * 4).max(1)))
        .map(|chunk| {
            let mut p = Partial {
                time_min: i64::MAX,
                time_max: i64::MIN,
                occupancy: HashMap::new(),
                busy_per_cycle: HashMap::new(),
                processors: std::collections::HashSet::new(),
                link_traffic: vec![0; m],
                buffer_cycles: 0,
                causality_ok: true,
                computations: 0,
            };
            for q in chunk {
                let time = t.time(q);
                let place = t.place(q);
                p.time_min = p.time_min.min(time);
                p.time_max = p.time_max.max(time);
                p.computations += 1;
                *p.busy_per_cycle.entry(time).or_insert(0) += 1;
                *p.occupancy.entry((place.clone(), time)).or_insert(0) += 1;
                p.processors.insert(place);
                for (di, d) in alg.deps.iter().enumerate() {
                    if !d.active_at(q, set) {
                        continue;
                    }
                    match &routes[di] {
                        Some((usage, buffers)) => {
                            for (j, &cnt) in usage.iter().enumerate() {
                                p.link_traffic[j] += cnt as u64;
                            }
                            p.buffer_cycles += *buffers as u64;
                        }
                        None => p.causality_ok = false,
                    }
                }
            }
            p
        })
        .reduce_with(|mut a, b| {
            a.time_min = a.time_min.min(b.time_min);
            a.time_max = a.time_max.max(b.time_max);
            a.computations += b.computations;
            for (k, v) in b.busy_per_cycle {
                *a.busy_per_cycle.entry(k).or_insert(0) += v;
            }
            for (k, v) in b.occupancy {
                *a.occupancy.entry(k).or_insert(0) += v;
            }
            a.processors.extend(b.processors);
            for (j, v) in b.link_traffic.into_iter().enumerate() {
                a.link_traffic[j] += v;
            }
            a.buffer_cycles += b.buffer_cycles;
            a.causality_ok &= b.causality_ok;
            a
        });

    let Some(p) = merged else {
        return MappedRunReport {
            cycles: 0,
            processors: 0,
            computations: 0,
            conflict_free: true,
            causality_ok: true,
            utilization: 0.0,
            peak_parallelism: 0,
            link_traffic: vec![0; m],
            buffer_cycles: 0,
        };
    };

    let cycles = p.time_max - p.time_min + 1;
    let conflict_free = p.occupancy.values().all(|&c| c <= 1);
    let busy_total: usize = p.busy_per_cycle.values().sum();
    let peak_parallelism = p.busy_per_cycle.values().copied().max().unwrap_or(0);
    let utilization = if cycles > 0 && !p.processors.is_empty() {
        busy_total as f64 / (p.processors.len() as f64 * cycles as f64)
    } else {
        0.0
    };
    MappedRunReport {
        cycles,
        processors: p.processors.len(),
        computations: p.computations,
        conflict_free,
        causality_ok: p.causality_ok,
        utilization,
        peak_parallelism,
        link_traffic: p.link_traffic,
        buffer_cycles: p.buffer_cycles,
    }
}

/// ASAP (dataflow) depth of every index point: `depth(q̄) = 1 + max` over
/// active incoming dependences of the producer's depth. `Π`-independent.
pub fn asap_depths(alg: &AlgorithmTriplet) -> HashMap<IVec, u64> {
    let set = &alg.index_set;
    // Memoised DFS: depth(q) = 1 + max over active deps of depth(q−d). A
    // temporary 0 sentinel guards against dependence cycles (which would be a
    // bug in the structure; depth is always ≥ 1 for real entries).
    fn depth(q: &IVec, alg: &AlgorithmTriplet, memo: &mut HashMap<IVec, u64>) -> u64 {
        if let Some(&v) = memo.get(q) {
            return v;
        }
        memo.insert(q.clone(), 0);
        let mut best = 0u64;
        let set = &alg.index_set;
        for d in alg.deps.iter() {
            if d.active_at(q, set) {
                let src = q - &d.vector;
                best = best.max(depth(&src, alg, memo));
            }
        }
        let v = best + 1;
        memo.insert(q.clone(), v);
        v
    }
    let mut memo = HashMap::new();
    for q in set.iter_points() {
        depth(&q, alg, &mut memo);
    }
    memo
}

/// The critical path of the dependence DAG: the longest chain of exercised
/// dependence instances, in *computations* (nodes). `Π`-independent — a lower
/// bound on the makespan of **any** schedule that executes one computation
/// per PE per cycle.
pub fn critical_path(alg: &AlgorithmTriplet) -> u64 {
    asap_depths(alg).values().copied().max().unwrap_or(0)
}

/// Mean ASAP depth of the *producers* of one dependence column's exercised
/// instances — "how late is the data this edge carries?".
///
/// This quantifies the paper's Section 3.2 comparison: in Expansion I the
/// inter-iteration edge `d̄₃` carries partial-sum bits produced **shallowly**,
/// while in Expansion II it carries final result bits available only after
/// the whole tile drain, so II's producers are much deeper.
pub fn mean_producer_depth(alg: &AlgorithmTriplet, dep_index: usize) -> Option<f64> {
    let set = &alg.index_set;
    let depths = asap_depths(alg);
    let d = alg.deps.get(dep_index);
    let mut total = 0u64;
    let mut count = 0u64;
    for q in set.iter_points() {
        if d.active_at(&q, set) {
            let src = &q - &d.vector;
            total += depths[&src];
            count += 1;
        }
    }
    (count > 0).then(|| total as f64 / count as f64)
}

/// Fan-in histogram: for each point, the number of active incoming
/// dependences (+1 implicit operand for the partial product); returns
/// `counts[k]` = number of points with `k` active incoming dependence edges.
pub fn fanin_histogram(alg: &AlgorithmTriplet) -> Vec<u64> {
    let set = &alg.index_set;
    let mut counts: Vec<u64> = Vec::new();
    for q in set.iter_points() {
        let k = alg.deps.active_at(&q, set).count();
        if counts.len() <= k {
            counts.resize(k + 1, 0);
        }
        counts[k] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_ir::{BoxSet, Dependence, DependenceSet, Predicate, WordLevelAlgorithm};
    use bitlevel_linalg::IMat;
    use bitlevel_mapping::PaperDesign;

    fn matmul_bitlevel(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul, Expansion II",
        )
    }

    #[test]
    fn fig4_design_measures_eq_4_5() {
        for (u, p) in [(2i64, 2i64), (3, 3), (4, 2), (2, 4)] {
            let alg = matmul_bitlevel(u, p);
            let design = PaperDesign::TimeOptimal;
            let rep = simulate_mapped(&alg, &design.mapping(p), &design.interconnect(p));
            assert_eq!(rep.cycles, 3 * (u - 1) + 3 * (p - 1) + 1, "u={u} p={p}");
            assert_eq!(rep.processors as i64, u * u * p * p);
            assert!(rep.conflict_free);
            assert!(rep.causality_ok);
            assert_eq!(rep.computations, (u as u128).pow(3) * (p as u128).pow(2));
        }
    }

    #[test]
    fn fig5_design_measures_its_formula() {
        for (u, p) in [(2i64, 2i64), (3, 3)] {
            let alg = matmul_bitlevel(u, p);
            let design = PaperDesign::NearestNeighbour;
            let rep = simulate_mapped(&alg, &design.mapping(p), &design.interconnect(p));
            assert_eq!(
                rep.cycles,
                (2 * p + 1) * (u - 1) + 3 * (p - 1) + 1,
                "u={u} p={p}"
            );
            assert_eq!(rep.processors as i64, u * u * p * p);
            assert!(rep.conflict_free && rep.causality_ok);
        }
    }

    #[test]
    fn fig4_faster_than_fig5_but_uses_long_wires() {
        let (u, p) = (4i64, 4i64);
        let alg = matmul_bitlevel(u, p);
        let r4 = simulate_mapped(
            &alg,
            &PaperDesign::TimeOptimal.mapping(p),
            &PaperDesign::TimeOptimal.interconnect(p),
        );
        let r5 = simulate_mapped(
            &alg,
            &PaperDesign::NearestNeighbour.mapping(p),
            &PaperDesign::NearestNeighbour.interconnect(p),
        );
        assert!(r4.cycles < r5.cycles);
        assert_eq!(
            PaperDesign::TimeOptimal.interconnect(p).max_wire_length(),
            p
        );
        assert_eq!(
            PaperDesign::NearestNeighbour
                .interconnect(p)
                .max_wire_length(),
            1
        );
    }

    #[test]
    fn conflict_is_detected() {
        let alg = matmul_bitlevel(2, 2);
        // Break injectivity: zero out one S row.
        let t = MappingMatrix::new(
            IMat::from_rows(&[&[0, 0, 0, 0, 0], &[0, 2, 0, 0, 1]]),
            bitlevel_linalg::IVec::from([1, 1, 1, 2, 1]),
        );
        let rep = simulate_mapped(&alg, &t, &Interconnect::paper_p(2));
        assert!(!rep.conflict_free);
    }

    #[test]
    fn causality_violation_is_detected() {
        let alg = matmul_bitlevel(2, 2);
        // Schedule too tight for the nearest-neighbour machine: Π·d̄₁ = 1 but
        // S·d̄₁ = [p,0] needs p hops.
        let t = PaperDesign::TimeOptimal.mapping(2);
        let rep = simulate_mapped(&alg, &t, &Interconnect::paper_p_prime());
        assert!(!rep.causality_ok);
    }

    #[test]
    fn word_level_matmul_cycles() {
        // The word-level structure (2.4) under Π = [1,1,1], S = [[1,0,0],[0,1,0]]
        // measures 3(u−1)+1 word cycles on the 4-neighbour mesh with a static
        // z (the structure of [4] cited in Section 4.2).
        let u = 4i64;
        let alg = WordLevelAlgorithm::matmul(u).triplet();
        let t = MappingMatrix::new(
            IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]),
            bitlevel_linalg::IVec::from([1, 1, 1]),
        );
        // Mesh plus a static link so the stationary z (S·d̄₃ = 0) is routable.
        let ic = Interconnect::new(IMat::from_rows(&[&[0, 0, 1, -1, 0], &[1, -1, 0, 0, 0]]));
        let rep = simulate_mapped(&alg, &t, &ic);
        assert_eq!(rep.cycles, 3 * (u - 1) + 1);
        assert_eq!(rep.processors as i64, u * u);
        assert!(rep.conflict_free && rep.causality_ok);
    }

    #[test]
    fn critical_path_of_word_level_matmul() {
        // Longest chain: u steps of z accumulation + pipelining ramps; for
        // the uniform structure it is (u−1)·3 + 1 nodes along the extreme
        // diagonal (each of the three unit dependences chains u−1 times).
        let alg = WordLevelAlgorithm::matmul(3).triplet();
        assert_eq!(critical_path(&alg), 7); // 3·(3−1)+1
    }

    #[test]
    fn critical_path_expansion_comparison() {
        // Expansion I's critical path must not exceed Expansion II's: II
        // serialises tiles (full drain before the next tile consumes).
        let i = expansion_structure(Expn::I, 3, 3);
        let ii = expansion_structure(Expn::II, 3, 3);
        assert!(critical_path(&i) <= critical_path(&ii));
    }

    enum Expn {
        I,
        II,
    }

    /// 1-D recurrence structures of eqs. (3.8)/(3.9) for the comparison test.
    fn expansion_structure(e: Expn, u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(1, 1, u).product(&BoxSet::cube(2, 1, p));
        let (d3v, d6v, d7v) = match e {
            Expn::I => (
                Predicate::always(),
                Predicate::eq_upper(0),
                Predicate::ne_const(1, 1)
                    .or(&Predicate::not_in(2, &[1, 2]))
                    .and(&Predicate::eq_upper(0)),
            ),
            Expn::II => (
                Predicate::eq_const(1, p).or(&Predicate::eq_const(2, 1)),
                Predicate::always(),
                Predicate::eq_const(1, p),
            ),
        };
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([1, 0, 0], "x", Predicate::eq_const(1, 1)),
                Dependence::conditional([1, 0, 0], "y", Predicate::eq_const(2, 1)),
                Dependence::conditional([1, 0, 0], "z", d3v),
                Dependence::conditional([0, 1, 0], "x", Predicate::ne_const(1, 1)),
                Dependence::conditional([0, 0, 1], "y,c", Predicate::ne_const(2, 1)),
                Dependence::conditional([0, 1, -1], "z", d6v),
                Dependence::conditional([0, 0, 2], "c'", d7v),
            ]),
            "1-D expansion structure",
        )
    }

    #[test]
    fn fanin_histogram_shows_expansion_ii_wide_adders() {
        let ii = expansion_structure(Expn::II, 3, 3);
        let hist = fanin_histogram(&ii);
        // Some points must have ≥ 4 active incoming edges (the i₁ = p plane),
        // which Expansion I avoids everywhere except j = u.
        assert!(hist.len() >= 5, "{hist:?}");
        let i = expansion_structure(Expn::I, 3, 3);
        let hist_i = fanin_histogram(&i);
        // Expansion I has strictly fewer wide points.
        let wide = |h: &[u64]| h.iter().skip(4).sum::<u64>();
        assert!(wide(&hist_i) < wide(&hist), "{hist_i:?} vs {hist:?}");
    }

    #[test]
    fn parallel_simulation_matches_sequential() {
        for (u, p) in [(2i64, 2i64), (3, 3), (4, 3)] {
            let alg = matmul_bitlevel(u, p);
            for design in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
                let t = design.mapping(p);
                let ic = design.interconnect(p);
                let seq = simulate_mapped(&alg, &t, &ic);
                let par = simulate_mapped_parallel(&alg, &t, &ic);
                assert_eq!(seq.cycles, par.cycles);
                assert_eq!(seq.processors, par.processors);
                assert_eq!(seq.computations, par.computations);
                assert_eq!(seq.conflict_free, par.conflict_free);
                assert_eq!(seq.causality_ok, par.causality_ok);
                assert_eq!(seq.link_traffic, par.link_traffic);
                assert_eq!(seq.buffer_cycles, par.buffer_cycles);
                assert_eq!(seq.peak_parallelism, par.peak_parallelism);
                assert!((seq.utilization - par.utilization).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_simulation_detects_conflicts_too() {
        let alg = matmul_bitlevel(2, 2);
        let t = MappingMatrix::new(
            IMat::from_rows(&[&[0, 0, 0, 0, 0], &[0, 2, 0, 0, 1]]),
            bitlevel_linalg::IVec::from([1, 1, 1, 2, 1]),
        );
        let par = simulate_mapped_parallel(&alg, &t, &Interconnect::paper_p(2));
        assert!(!par.conflict_free);
    }

    #[test]
    fn utilization_and_traffic_are_populated() {
        let alg = matmul_bitlevel(2, 2);
        let d = PaperDesign::TimeOptimal;
        let rep = simulate_mapped(&alg, &d.mapping(2), &d.interconnect(2));
        assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
        assert!(rep.peak_parallelism >= 1);
        assert!(rep.link_traffic.iter().sum::<u64>() > 0);
    }

    #[test]
    fn divergence_report_names_exactly_the_differing_fields() {
        let alg = matmul_bitlevel(2, 2);
        let d = PaperDesign::TimeOptimal;
        let rep = simulate_mapped(&alg, &d.mapping(2), &d.interconnect(2));
        assert!(rep.bit_identical(&rep));
        let mut other = rep.clone();
        other.cycles += 1;
        other.link_traffic[0] += 1;
        assert_eq!(rep.divergences_from(&other), vec!["cycles", "link_traffic"]);
        assert!(!rep.bit_identical(&other));
    }

    #[test]
    fn compiled_and_interpreted_engines_are_bit_identical_on_paper_designs() {
        for (u, p) in [(2i64, 2i64), (3, 2)] {
            let alg = matmul_bitlevel(u, p);
            for d in [PaperDesign::TimeOptimal, PaperDesign::NearestNeighbour] {
                let interp = simulate_mapped(&alg, &d.mapping(p), &d.interconnect(p));
                let compiled = crate::compiled::CompiledSchedule::try_compile(
                    &alg,
                    &d.mapping(p),
                    &d.interconnect(p),
                )
                .expect("paper structures compile")
                .mapped_report();
                assert_eq!(
                    compiled.divergences_from(&interp),
                    Vec::<&str>::new(),
                    "u={u} p={p} {:?}",
                    d
                );
            }
        }
    }
}
