//! Functional simulation of the **Expansion I** matmul structure, with exact
//! carry accounting.
//!
//! Expansion I (eq. (3.11b)) forwards the `p²` partial-sum bits of
//! `z(j̄−h̄₃)` point-to-point (`d̄₃` uniform) and drains the tile diagonally
//! only on the last hyperplane (`d̄₆` at `jₙ = uₙ`, with the second carry
//! `d̄₇` at `q̄₁`). Its interior cells are plain 3-input full adders
//! (`pp + carry-in + forwarded partial sum`), which is exactly why the paper
//! calls it "more computationally uniform".
//!
//! Taken literally, the structure has no consumer for the carry out of each
//! row's last cell (`c(j̄, i₁, p)`, weight `i₁+p−1`): those bits leave the
//! index set, just like the literal add-shift boundary of eq. (3.1). Rather
//! than silently wiring in a fix that changes the paper's dependence
//! structure, this simulator executes the **literal** semantics and records
//! every dropped carry with its weight. The accounting identity
//!
//! ```text
//! result + Σ_dropped 2^weight ≡ Σ_k x(j₁,k)·y(k,j₂)   (mod 2^{2p−1})
//! ```
//!
//! is then *exactly* checkable — the tests verify it for random operands, so
//! the simulator is verified bit-for-bit even though the structure itself is
//! lossy. When no carry is dropped (e.g. sparse operands), the result is
//! exact; [`ExpansionIMatmul::run`] reports which.

use bitlevel_arith::{from_bits, full_add, to_bits, wide_add, Bit};
use serde::Serialize;

/// Functional simulator for the Expansion I bit-level matmul.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ExpansionIMatmul {
    /// Matrix dimension `u ≥ 1`.
    pub u: usize,
    /// Word length `p ≥ 1`.
    pub p: usize,
}

/// One dropped carry: where, and with what weight (bit position − 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DroppedCarry {
    /// Word-level accumulator coordinates `(j₁, j₂)` (1-based).
    pub block: (usize, usize),
    /// Accumulation step `j₃` (1-based).
    pub step: usize,
    /// Power-of-two weight of the lost bit.
    pub weight: u32,
}

/// Result of an Expansion I run.
#[derive(Debug, Clone, Serialize)]
pub struct ExpansionIRun {
    /// The computed product bits (mod `2^{2p−1}`, minus dropped carries).
    pub z: Vec<Vec<u128>>,
    /// Every carry the literal structure lost.
    pub dropped: Vec<DroppedCarry>,
    /// 3-input cell evaluations (the uniform interior).
    pub narrow_cells: u64,
    /// Wide (4–5-input) cell evaluations (only the `j₃ = u` drain plane —
    /// Expansion I's uniformity claim, measurable).
    pub wide_cells: u64,
}

impl ExpansionIRun {
    /// True iff nothing was dropped — the result is the exact product
    /// (mod `2^{2p−1}`).
    pub fn is_exact(&self) -> bool {
        self.dropped.is_empty()
    }

    /// The value lost at block `(j₁, j₂)` (sum of dropped carry weights).
    pub fn lost_value(&self, j1: usize, j2: usize) -> u128 {
        self.dropped
            .iter()
            .filter(|d| d.block == (j1, j2))
            .map(|d| 1u128 << d.weight)
            .sum()
    }
}

impl ExpansionIMatmul {
    /// Creates the simulator.
    ///
    /// # Panics
    /// Panics if `u == 0` or `p == 0`.
    pub fn new(u: usize, p: usize) -> Self {
        assert!(u >= 1 && p >= 1, "dimensions must be positive");
        ExpansionIMatmul { u, p }
    }

    /// Runs the literal Expansion I structure on `u×u` matrices of `p`-bit
    /// entries.
    ///
    /// # Panics
    /// Panics on shape mismatches or operands exceeding `p` bits.
    pub fn run(&self, x: &[Vec<u128>], y: &[Vec<u128>]) -> ExpansionIRun {
        let (u, p) = (self.u, self.p);
        assert_eq!(x.len(), u, "x must be u x u");
        assert_eq!(y.len(), u, "y must be u x u");
        let xb: Vec<Vec<Vec<Bit>>> = x
            .iter()
            .map(|r| {
                assert_eq!(r.len(), u);
                r.iter().map(|&v| to_bits(v, p)).collect()
            })
            .collect();
        let yb: Vec<Vec<Vec<Bit>>> = y
            .iter()
            .map(|r| {
                assert_eq!(r.len(), u);
                r.iter().map(|&v| to_bits(v, p)).collect()
            })
            .collect();

        let mut dropped = Vec::new();
        let mut narrow_cells = 0u64;
        let mut wide_cells = 0u64;
        let mut result = vec![vec![0u128; u]; u];

        for j1 in 1..=u {
            for j2 in 1..=u {
                // Forwarded partial-sum state z(j₃, i₁, i₂).
                let mut zfwd = vec![vec![false; p]; p];
                for j3 in 1..=u {
                    let mut s = vec![vec![false; p]; p];
                    let mut c = vec![vec![false; p]; p];
                    let mut cp = vec![vec![false; p]; p];
                    let last = j3 == u;
                    for i1 in 1..=p {
                        for i2 in 1..=p {
                            let pp = xb[j1 - 1][j3 - 1][i2 - 1] & yb[j3 - 1][j2 - 1][i1 - 1];
                            let c_in = if i2 > 1 { c[i1 - 1][i2 - 2] } else { false };
                            let fwd = zfwd[i1 - 1][i2 - 1];
                            if !last {
                                // Interior: uniform 3-input full adder.
                                let (sb, cb) = full_add(pp, c_in, fwd);
                                s[i1 - 1][i2 - 1] = sb;
                                c[i1 - 1][i2 - 1] = cb;
                                narrow_cells += 1;
                            } else {
                                // Drain plane: add the diagonal partial sum
                                // (d̄₆, literal zero boundary at i₂ = p) and
                                // the chained second carry (d̄₇).
                                let s_diag = if i1 > 1 && i2 < p {
                                    s[i1 - 2][i2]
                                } else {
                                    false
                                };
                                let cp_in = if i2 > 2 { cp[i1 - 1][i2 - 3] } else { false };
                                let (sb, cb, cpb) = wide_add(&[pp, c_in, fwd, s_diag, cp_in]);
                                s[i1 - 1][i2 - 1] = sb;
                                c[i1 - 1][i2 - 1] = cb;
                                cp[i1 - 1][i2 - 1] = cpb;
                                wide_cells += 1;
                            }
                        }
                        // The literal structure loses the row-end carry
                        // (weight i₁ + p − 1 ≤ 2p − 1; only weights below the
                        // accumulator width count as real loss).
                        if c[i1 - 1][p - 1] && (i1 + p - 1) < 2 * p - 1 {
                            dropped.push(DroppedCarry {
                                block: (j1, j2),
                                step: j3,
                                weight: (i1 + p - 1) as u32,
                            });
                        }
                        if last {
                            // Second carries at the row's last two columns
                            // also leave the set on the drain plane.
                            for dcol in [p - 1, p] {
                                if dcol >= 1 && cp[i1 - 1][dcol - 1] {
                                    let w = (i1 + dcol) as u32; // weight i1+dcol-2+2
                                    if (w as usize) < 2 * p - 1 {
                                        dropped.push(DroppedCarry {
                                            block: (j1, j2),
                                            step: j3,
                                            weight: w,
                                        });
                                    }
                                }
                            }
                        }
                    }
                    zfwd = s.clone();
                    if last {
                        // Extract exactly as the add-shift result rule does.
                        let mut bits: Vec<Bit> = Vec::with_capacity(2 * p - 1);
                        for i in 1..=p {
                            bits.push(s[i - 1][0]);
                        }
                        for i in p + 1..=2 * p - 1 {
                            bits.push(s[p - 1][i - p]);
                        }
                        result[j1 - 1][j2 - 1] = from_bits(&bits);
                    }
                }
            }
        }

        ExpansionIRun {
            z: result,
            dropped,
            narrow_cells,
            wide_cells,
        }
    }

    /// Checks the exact accounting identity for a finished run:
    /// `result + lost ≡ true product (mod 2^{2p−1})` for every entry.
    pub fn accounting_holds(&self, x: &[Vec<u128>], y: &[Vec<u128>], run: &ExpansionIRun) -> bool {
        let (u, p) = (self.u, self.p);
        let mask = (1u128 << (2 * p - 1)) - 1;
        for j1 in 1..=u {
            for j2 in 1..=u {
                let truth: u128 = (0..u).map(|k| x[j1 - 1][k] * y[k][j2 - 1]).sum();
                let recon = (run.z[j1 - 1][j2 - 1] + run.lost_value(j1, j2)) & mask;
                if recon != truth & mask {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // tests index parallel matrices
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(u: usize, f: impl Fn(usize, usize) -> u128) -> Vec<Vec<u128>> {
        (0..u).map(|i| (0..u).map(|j| f(i, j)).collect()).collect()
    }

    #[test]
    fn power_of_two_operands_are_exact() {
        // Single-bit rows generate no carries anywhere: the literal
        // structure is exact and equals the native product.
        let sim = ExpansionIMatmul::new(2, 4);
        let x = mat(2, |i, _| 1u128 << i);
        let y = mat(2, |_, j| 1u128 << j);
        let run = sim.run(&x, &y);
        assert!(run.is_exact(), "dropped: {:?}", run.dropped);
        for i in 0..2 {
            for j in 0..2 {
                let want: u128 = (0..2).map(|k| x[i][k] * y[k][j]).sum();
                assert_eq!(run.z[i][j], want);
            }
        }
    }

    #[test]
    fn accounting_identity_on_dense_operands() {
        // Dense operands certainly drop carries; the identity must still
        // hold bit-exactly.
        let sim = ExpansionIMatmul::new(3, 3);
        let x = mat(3, |i, j| ((3 * i + 2 * j + 5) % 8) as u128);
        let y = mat(3, |i, j| ((5 * i + j + 3) % 8) as u128);
        let run = sim.run(&x, &y);
        assert!(!run.dropped.is_empty(), "expected drops for dense operands");
        assert!(sim.accounting_holds(&x, &y, &run));
    }

    #[test]
    fn uniformity_claim_wide_cells_only_on_drain_plane() {
        // "Expansion I is more computationally uniform": all wide cells sit
        // on j₃ = u — exactly u²·p² of them, the rest are 3-input adders.
        let (u, p) = (3usize, 3usize);
        let sim = ExpansionIMatmul::new(u, p);
        let x = mat(u, |_, _| 5);
        let y = mat(u, |_, _| 6);
        let run = sim.run(&x, &y);
        assert_eq!(run.wide_cells, (u * u * p * p) as u64);
        assert_eq!(run.narrow_cells, (u * u * (u - 1) * p * p) as u64);
    }

    #[test]
    fn single_tile_matches_addshift_literal() {
        // u = 1: Expansion I degenerates to one add-shift tile with the
        // paper's literal boundary (drain plane, zero diagonal boundary).
        let p = 3;
        let sim = ExpansionIMatmul::new(1, p);
        let lit = bitlevel_arith::AddShift::paper_literal(p);
        for (a, b) in [(7u128, 3u128), (5, 5), (6, 7), (1, 4)] {
            let run = sim.run(&[vec![a]], &[vec![b]]);
            let mask = (1u128 << (2 * p - 1)) - 1;
            assert_eq!(run.z[0][0], lit.multiply(a, b) & mask, "{a}x{b}");
            assert!(sim.accounting_holds(&[vec![a]], &[vec![b]], &run));
        }
    }

    proptest! {
        /// The accounting identity holds for arbitrary operands: every bit
        /// the literal structure loses is tracked, nothing else is wrong.
        #[test]
        fn prop_accounting_identity(u in 1usize..4, p in 2usize..5, seed in any::<u64>()) {
            let sim = ExpansionIMatmul::new(u, p);
            let mask = (1u128 << p) - 1;
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u128 & mask
            };
            let x: Vec<Vec<u128>> = (0..u).map(|_| (0..u).map(|_| next()).collect()).collect();
            let y: Vec<Vec<u128>> = (0..u).map(|_| (0..u).map(|_| next()).collect()).collect();
            let run = sim.run(&x, &y);
            prop_assert!(sim.accounting_holds(&x, &y, &run));
        }
    }
}
