//! The word-level systolic comparator (Section 4.2).
//!
//! "We can compare the time optimal bit-level architecture in Fig. 4 with the
//! best word-level architecture for matrix multiplication described in the
//! literature [4]. The total execution time of the best word-level
//! architecture … is `(3(u−1)+1)·t_b`, where `t_b` is the time for
//! multiplying two integers and adding two integers."
//!
//! This module simulates that baseline: a `u×u` mesh executing the word-level
//! structure (2.4) under `Π_w = [1,1,1]` (the optimal word-level schedule),
//! where each word cycle costs `t_b` bit-cell delays of the chosen
//! multiplier ([`bitlevel_arith::AddShift`]: `t_b = p²`;
//! [`bitlevel_arith::CarrySave`]: `t_b = 2p`). Products are computed through
//! the actual bit-level functional multiplier models, so even the baseline's
//! arithmetic is bit-exact, not `i64` shortcuts.

use bitlevel_arith::MultiplierAlgorithm;
use serde::Serialize;

/// A word-level systolic matmul array with a pluggable word-PE multiplier.
pub struct WordLevelArray<'m> {
    /// Matrix dimension `u`.
    pub u: usize,
    /// The arithmetic algorithm inside each word-level PE.
    pub multiplier: &'m dyn MultiplierAlgorithm,
}

/// Measured results of a word-level run.
#[derive(Debug, Clone, Serialize)]
pub struct WordRunReport {
    /// Word-level cycles: `3(u−1)+1`.
    pub word_cycles: i64,
    /// Bit-cell cycles: `word_cycles × t_b` — the quantity compared against
    /// the bit-level architecture's (4.5).
    pub bit_cycles: i64,
    /// Number of word-level PEs (`u²`).
    pub processors: usize,
    /// The product matrix (entries exact, computed via the bit-level
    /// multiplier model).
    pub z: Vec<Vec<u128>>,
}

impl<'m> WordLevelArray<'m> {
    /// Creates the array.
    ///
    /// # Panics
    /// Panics if `u == 0`.
    pub fn new(u: usize, multiplier: &'m dyn MultiplierAlgorithm) -> Self {
        assert!(u >= 1, "matrix dimension must be positive");
        WordLevelArray { u, multiplier }
    }

    /// Closed-form word-level cycle count (`Π_w = [1,1,1]` over `[1,u]³`).
    pub fn word_cycles(&self) -> i64 {
        3 * (self.u as i64 - 1) + 1
    }

    /// Closed-form total time in bit-cell cycles: `(3(u−1)+1)·t_b`.
    pub fn bit_cycles(&self) -> i64 {
        self.word_cycles() * self.multiplier.word_latency() as i64
    }

    /// Runs the array: executes the iterations of program (2.3) in wavefront
    /// order (`time = j₁+j₂+j₃`), with the PE at `(j₁, j₂)` holding the
    /// stationary accumulator `z` and each multiply performed by the
    /// bit-level multiplier model.
    ///
    /// # Panics
    /// Panics if the matrices are not `u×u` or entries exceed `p` bits.
    pub fn run(&self, x: &[Vec<u128>], y: &[Vec<u128>]) -> WordRunReport {
        let u = self.u;
        assert_eq!(x.len(), u, "x must be u x u");
        assert_eq!(y.len(), u, "y must be u x u");
        let mut z = vec![vec![0u128; u]; u];

        // Wavefront execution: all iterations with the same Π·j̄ are one word
        // cycle. (The loop order below is equivalent — the structure is a
        // uniform recurrence — but we iterate by wavefront to mirror the
        // schedule and to assert the cycle count.)
        let mut wavefronts = 0i64;
        let (lo, hi) = (3, 3 * u as i64);
        for t in lo..=hi {
            let mut busy = false;
            for j1 in 1..=u as i64 {
                for j2 in 1..=u as i64 {
                    let j3 = t - j1 - j2;
                    if (1..=u as i64).contains(&j3) {
                        busy = true;
                        let prod = self.multiplier.multiply(
                            x[(j1 - 1) as usize][(j3 - 1) as usize],
                            y[(j3 - 1) as usize][(j2 - 1) as usize],
                        );
                        z[(j1 - 1) as usize][(j2 - 1) as usize] += prod;
                    }
                }
            }
            if busy {
                wavefronts += 1;
            }
        }
        debug_assert_eq!(wavefronts, self.word_cycles());

        WordRunReport {
            word_cycles: wavefronts,
            bit_cycles: wavefronts * self.multiplier.word_latency() as i64,
            processors: u * u,
            z,
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // tests index parallel matrices
mod tests {
    use super::*;
    use bitlevel_arith::{AddShift, CarrySave};

    fn mat(u: usize, f: impl Fn(usize, usize) -> u128) -> Vec<Vec<u128>> {
        (0..u).map(|i| (0..u).map(|j| f(i, j)).collect()).collect()
    }

    #[test]
    fn word_cycles_formula() {
        let m = AddShift::new(4);
        assert_eq!(WordLevelArray::new(1, &m).word_cycles(), 1);
        assert_eq!(WordLevelArray::new(4, &m).word_cycles(), 10);
    }

    #[test]
    fn bit_cycles_depend_on_multiplier() {
        let u = 5;
        let p = 6;
        let addshift = AddShift::new(p);
        let carrysave = CarrySave::new(p);
        let a = WordLevelArray::new(u, &addshift);
        let c = WordLevelArray::new(u, &carrysave);
        assert_eq!(a.bit_cycles(), (3 * (u as i64 - 1) + 1) * (p * p) as i64);
        assert_eq!(c.bit_cycles(), (3 * (u as i64 - 1) + 1) * (2 * p) as i64);
        assert!(c.bit_cycles() < a.bit_cycles());
    }

    #[test]
    fn functional_result_is_exact() {
        let p = 5;
        let m = AddShift::new(p);
        let arr = WordLevelArray::new(3, &m);
        let x = mat(3, |i, j| (i * 7 + j * 3 + 1) as u128 % 32);
        let y = mat(3, |i, j| (i * 2 + j * 5 + 2) as u128 % 32);
        let run = arr.run(&x, &y);
        for i in 0..3 {
            for j in 0..3 {
                let want: u128 = (0..3).map(|k| x[i][k] * y[k][j]).sum();
                assert_eq!(run.z[i][j], want);
            }
        }
        assert_eq!(run.word_cycles, 7);
        assert_eq!(run.processors, 9);
    }

    #[test]
    fn both_multipliers_agree_functionally() {
        let p = 4;
        let a_m = AddShift::new(p);
        let c_m = CarrySave::new(p);
        let x = mat(2, |i, j| (3 * i + j + 4) as u128);
        let y = mat(2, |i, j| (2 * i + 5 * j + 1) as u128);
        let za = WordLevelArray::new(2, &a_m).run(&x, &y).z;
        let zc = WordLevelArray::new(2, &c_m).run(&x, &y).z;
        assert_eq!(za, zc);
    }
}
