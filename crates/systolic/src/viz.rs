//! Textual visualisation of bit-level architectures and schedules.
//!
//! Renders the structures the paper draws as figures: the block layout of
//! the Fig. 4/5 arrays (a `u×u` grid of `p×p` cell blocks, since
//! `S = [[p,0,0,1,0],[0,p,0,0,1]]` maps `(j₁, j₂)` to block coordinates and
//! `(i₁, i₂)` within a block), per-link annotations from the routing
//! solution, and cycle-by-cycle activity maps of a mapped schedule.

use crate::trace::TraceRollup;
use bitlevel_ir::AlgorithmTriplet;
use bitlevel_linalg::IVec;
use bitlevel_mapping::{Interconnect, MappingMatrix};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders the processor layout of a mapped algorithm: an ASCII grid of the
/// 2-D processor space with `#` for used PEs, `.` for unused grid slots —
/// for the paper's designs this shows the `u×u` blocks of `p×p` cells of
/// Figs. 4/5.
///
/// # Panics
/// Panics unless the space mapping is 2-D.
pub fn render_processor_grid(alg: &AlgorithmTriplet, t: &MappingMatrix) -> String {
    assert_eq!(t.k() - 1, 2, "grid rendering needs a 2-D processor space");
    let mut used: HashMap<(i64, i64), u64> = HashMap::new();
    for q in alg.index_set.iter_points() {
        let pl = t.place(&q);
        *used.entry((pl[0], pl[1])).or_insert(0) += 1;
    }
    let (min_r, max_r) = minmax(used.keys().map(|k| k.0));
    let (min_c, max_c) = minmax(used.keys().map(|k| k.1));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "processor grid: rows {min_r}..{max_r}, cols {min_c}..{max_c}, {} PEs",
        used.len()
    );
    for r in min_r..=max_r {
        for c in min_c..=max_c {
            out.push(if used.contains_key(&(r, c)) { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Renders the machine's links with their use by each dependence column:
/// the textual counterpart of the arrows in Figs. 4/5, including buffers
/// ("there is a buffer on the interconnection primitive [1,0]ᵀ…").
pub fn render_links(alg: &AlgorithmTriplet, t: &MappingMatrix, ic: &Interconnect) -> String {
    let mut out = String::new();
    let d = alg.dependence_matrix();
    let _ = writeln!(out, "machine primitives (columns of P):");
    for j in 0..ic.count() {
        let col = ic.p.col(j);
        let kind = if col.is_zero() {
            "static (data stays in the PE)"
        } else if col.linf_norm() > 1 {
            "LONG WIRE"
        } else {
            "unit link"
        };
        let _ = writeln!(out, "  P[{j}] = {col}  ({kind})");
    }
    let _ = writeln!(out, "dependence routing (SD = PK with buffers):");
    for (i, dep) in alg.deps.iter().enumerate() {
        let target = t.space.matvec(&d.col(i));
        let budget = d.col(i).dot(&t.schedule);
        match ic.route(&target, budget) {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "  d{} ({}): S*d = {target}, Pi*d = {budget}, hops = {}, buffers = {}",
                    i + 1,
                    dep.cause,
                    r.hops,
                    r.buffers
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  d{} ({}): S*d = {target}, Pi*d = {budget} -> UNROUTABLE",
                    i + 1,
                    dep.cause
                );
            }
        }
    }
    out
}

/// Renders a cycle-by-cycle activity strip: for each cycle, how many PEs
/// fire (the wavefront profile of the schedule).
pub fn render_activity_profile(alg: &AlgorithmTriplet, t: &MappingMatrix) -> String {
    let mut per_cycle: HashMap<i64, usize> = HashMap::new();
    for q in alg.index_set.iter_points() {
        *per_cycle.entry(t.time(&q)).or_insert(0) += 1;
    }
    let (lo, hi) = minmax(per_cycle.keys().copied());
    let peak = per_cycle.values().copied().max().unwrap_or(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "activity profile ({} cycles, peak {} PEs):",
        hi - lo + 1,
        peak
    );
    for cyc in lo..=hi {
        let n = per_cycle.get(&cyc).copied().unwrap_or(0);
        let bar_len = (n * 40).div_ceil(peak);
        let _ = writeln!(out, "  t={:>4} |{:<40}| {n}", cyc - lo, "#".repeat(bar_len));
    }
    out
}

/// Renders which block of the Fig. 4/5 layout each word-level `(j₁, j₂)`
/// pair owns, with the stationary result-bit positions marked — the paper's
/// "data z_ij are stationary and the final results are stored at the eastern
/// and southern boundary points of each small block".
pub fn render_block_structure(u: i64, p: i64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "block layout: {u}x{u} blocks of {p}x{p} bit cells");
    for block_row in 1..=u {
        for i1 in 1..=p {
            for _block_col in 1..=u {
                for i2 in 1..=p {
                    // Result bits of z(block_row, block_col) live on i1 = p
                    // (southern) or i2 = 1 (eastern data flow boundary).
                    let marker = if i1 == p || i2 == 1 { 'Z' } else { 'o' };
                    out.push(marker);
                }
                out.push(' ');
            }
            out.push('\n');
        }
        let _ = writeln!(out, "(blocks j1 = {block_row}, j2 = 1..{u})");
    }
    out
}

/// Renders a per-PE Gantt timeline: one row per processor (sorted by
/// coordinates, truncated to `max_rows`), one column per cycle, `#` where the
/// PE fires. The space-time picture of the schedule — Fig. 4's pipelining
/// made visible.
pub fn render_gantt(alg: &AlgorithmTriplet, t: &MappingMatrix, max_rows: usize) -> String {
    let mut firings: HashMap<IVec, Vec<i64>> = HashMap::new();
    let mut tmin = i64::MAX;
    let mut tmax = i64::MIN;
    for q in alg.index_set.iter_points() {
        let time = t.time(&q);
        tmin = tmin.min(time);
        tmax = tmax.max(time);
        firings.entry(t.place(&q)).or_default().push(time);
    }
    let mut pes: Vec<IVec> = firings.keys().cloned().collect();
    pes.sort();
    let shown = pes.len().min(max_rows);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gantt: {} PEs ({} shown) x {} cycles",
        pes.len(),
        shown,
        tmax - tmin + 1
    );
    for pe in pes.iter().take(shown) {
        let _ = write!(out, "{:>12} |", pe.to_string());
        let times = &firings[pe];
        for cyc in tmin..=tmax {
            out.push(if times.contains(&cyc) { '#' } else { '.' });
        }
        out.push('\n');
    }
    if pes.len() > shown {
        let _ = writeln!(out, "  ... {} more PEs", pes.len() - shown);
    }
    out
}

/// Renders the wavefront profile captured by a trace: one bar per cycle
/// showing how many points fired, from measured events rather than the
/// static schedule — the traced counterpart of [`render_activity_profile`].
pub fn render_trace_wavefront(rollup: &TraceRollup) -> String {
    let mut out = String::new();
    if rollup.wavefront.is_empty() {
        let _ = writeln!(out, "traced wavefront: no firings recorded");
        return out;
    }
    let lo = *rollup.wavefront.keys().next().unwrap();
    let hi = *rollup.wavefront.keys().next_back().unwrap();
    let peak = rollup.peak_wavefront().max(1);
    let _ = writeln!(
        out,
        "traced wavefront ({} cycles, peak {} firings):",
        hi - lo + 1,
        peak
    );
    for cyc in lo..=hi {
        let n = rollup.wavefront.get(&cyc).copied().unwrap_or(0);
        let bar_len = ((n as usize) * 40).div_ceil(peak as usize);
        let _ = writeln!(out, "  t={:>4} |{:<40}| {n}", cyc - lo, "#".repeat(bar_len));
    }
    out
}

/// Renders the per-PE load captured by a trace: one row per processor
/// (heaviest first, truncated to `max_rows`) with a bar proportional to its
/// fire count — the utilisation table behind Figs. 4/5.
pub fn render_trace_pe_load(rollup: &TraceRollup, max_rows: usize) -> String {
    let mut out = String::new();
    let mut pes: Vec<(&IVec, u64)> = rollup.pe_fires.iter().map(|(pe, &n)| (pe, n)).collect();
    // Heaviest first, coordinates as tie-break so output is deterministic.
    pes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let peak = pes.first().map(|&(_, n)| n).unwrap_or(1).max(1);
    let _ = writeln!(
        out,
        "traced PE load: {} PEs, {} firings, utilisation {:.3}",
        pes.len(),
        rollup.fire_total(),
        rollup.utilization()
    );
    let shown = pes.len().min(max_rows);
    for &(pe, n) in pes.iter().take(shown) {
        let bar_len = ((n as usize) * 40).div_ceil(peak as usize);
        let _ = writeln!(
            out,
            "{:>12} |{:<40}| {n}",
            pe.to_string(),
            "#".repeat(bar_len)
        );
    }
    if pes.len() > shown {
        let _ = writeln!(out, "  ... {} more PEs", pes.len() - shown);
    }
    out
}

/// Renders a side-by-side critical-PE heat map from two per-PE fault
/// vulnerability maps (non-masked fault counts per processor, as measured by
/// a fault campaign): one row per PE, most vulnerable first, with one bar
/// per design — the Fig. 4 vs Fig. 5 comparison of where faults hurt.
pub fn render_fault_heatmap(
    left_label: &str,
    left: &std::collections::BTreeMap<IVec, u64>,
    right_label: &str,
    right: &std::collections::BTreeMap<IVec, u64>,
    max_rows: usize,
) -> String {
    let mut pes: Vec<&IVec> = left.keys().chain(right.keys()).collect();
    pes.sort();
    pes.dedup();
    let count =
        |m: &std::collections::BTreeMap<IVec, u64>, pe: &IVec| m.get(pe).copied().unwrap_or(0);
    // Most vulnerable first, coordinates as tie-break for determinism.
    pes.sort_by(|a, b| {
        let (sa, sb) = (
            count(left, a) + count(right, a),
            count(left, b) + count(right, b),
        );
        sb.cmp(&sa).then_with(|| a.cmp(b))
    });
    let peak = pes
        .iter()
        .map(|pe| count(left, pe).max(count(right, pe)))
        .max()
        .unwrap_or(1)
        .max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault vulnerability heat map: {} PEs, non-masked faults per PE ({left_label} vs {right_label})",
        pes.len()
    );
    let shown = pes.len().min(max_rows);
    for pe in pes.iter().take(shown) {
        let (l, r) = (count(left, pe), count(right, pe));
        let bar = |n: u64| "#".repeat(((n as usize) * 20).div_ceil(peak as usize));
        let _ = writeln!(
            out,
            "{:>12} |{:<20}| {l:>3}  |{:<20}| {r:>3}",
            pe.to_string(),
            bar(l),
            bar(r)
        );
    }
    if pes.len() > shown {
        let _ = writeln!(out, "  ... {} more PEs", pes.len() - shown);
    }
    out
}

fn minmax(values: impl Iterator<Item = i64>) -> (i64, i64) {
    values.fold((i64::MAX, i64::MIN), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_ir::{BoxSet, Dependence, DependenceSet, Predicate};
    use bitlevel_mapping::PaperDesign;

    fn matmul_structure(u: i64, p: i64) -> AlgorithmTriplet {
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul",
        )
    }

    #[test]
    fn processor_grid_is_dense_u_p_square() {
        let (u, p) = (2i64, 3i64);
        let alg = matmul_structure(u, p);
        let g = render_processor_grid(&alg, &PaperDesign::TimeOptimal.mapping(p));
        // All (up)² slots used: no '.' in the body.
        assert!(g.contains("36 PEs"), "{g}");
        let body: String = g.lines().skip(1).collect();
        assert!(!body.contains('.'), "{g}");
        assert_eq!(g.lines().skip(1).count() as i64, u * p);
    }

    #[test]
    fn links_report_shows_fig4_buffer_and_long_wires() {
        let p = 3i64;
        let alg = matmul_structure(3, p);
        let s = render_links(
            &alg,
            &PaperDesign::TimeOptimal.mapping(p),
            &PaperDesign::TimeOptimal.interconnect(p),
        );
        assert!(s.contains("LONG WIRE"), "{s}");
        assert!(s.contains("buffers = 1"), "{s}");
        assert!(s.contains("static"), "{s}");
        assert!(!s.contains("UNROUTABLE"), "{s}");
    }

    #[test]
    fn links_report_flags_unroutable() {
        let p = 2i64;
        let alg = matmul_structure(2, p);
        let s = render_links(
            &alg,
            &PaperDesign::TimeOptimal.mapping(p),
            &PaperDesign::NearestNeighbour.interconnect(p),
        );
        assert!(s.contains("UNROUTABLE"), "{s}");
    }

    #[test]
    fn activity_profile_matches_cycle_count() {
        let (u, p) = (2i64, 2i64);
        let alg = matmul_structure(u, p);
        let s = render_activity_profile(&alg, &PaperDesign::TimeOptimal.mapping(p));
        assert!(s.contains("7 cycles"), "{s}");
        // One bar line per cycle.
        assert_eq!(s.lines().filter(|l| l.contains("|")).count(), 7);
    }

    #[test]
    fn gantt_shows_every_pe_firing_u_cubed_over_u2_times() {
        // Each PE executes exactly u computations (the j3 chain): u '#' per
        // row.
        let (u, p) = (2i64, 2i64);
        let alg = matmul_structure(u, p);
        let g = render_gantt(&alg, &PaperDesign::TimeOptimal.mapping(p), 100);
        assert!(g.contains("16 PEs"), "{g}");
        for line in g.lines().skip(1).filter(|l| l.contains('|')) {
            let marks = line.chars().filter(|&c| c == '#').count();
            assert_eq!(marks, u as usize, "{line}");
        }
    }

    #[test]
    fn gantt_truncates_rows() {
        let alg = matmul_structure(2, 2);
        let g = render_gantt(&alg, &PaperDesign::TimeOptimal.mapping(2), 3);
        assert!(g.contains("... 13 more PEs"), "{g}");
    }

    #[test]
    fn trace_wavefront_renders_one_bar_per_cycle() {
        use crate::trace::{RecordingSink, TraceEvent, TraceSink};
        let mut sink = RecordingSink::new();
        for (cycle, point) in [(0, [1, 1]), (0, [1, 2]), (2, [2, 1])] {
            sink.record(TraceEvent::PointFired {
                cycle,
                point: IVec::from(point),
                processor: IVec::from([0]),
            });
        }
        let s = render_trace_wavefront(sink.rollup());
        assert!(s.contains("3 cycles, peak 2"), "{s}");
        assert_eq!(s.lines().filter(|l| l.contains("|")).count(), 3, "{s}");
        // The empty cycle 1 renders a zero-length bar.
        assert!(s.contains("| 0"), "{s}");
    }

    #[test]
    fn trace_wavefront_handles_empty_rollup() {
        let s = render_trace_wavefront(&crate::trace::TraceRollup::default());
        assert!(s.contains("no firings"), "{s}");
    }

    #[test]
    fn trace_pe_load_sorts_heaviest_first_and_truncates() {
        use crate::trace::{RecordingSink, TraceEvent, TraceSink};
        let mut sink = RecordingSink::new();
        for (cycle, pe) in [(0, [0, 0]), (1, [0, 1]), (2, [0, 1]), (3, [1, 0])] {
            sink.record(TraceEvent::PointFired {
                cycle,
                point: IVec::from([cycle]),
                processor: IVec::from(pe),
            });
        }
        let s = render_trace_pe_load(sink.rollup(), 2);
        assert!(s.contains("3 PEs, 4 firings"), "{s}");
        assert!(s.contains("... 1 more PEs"), "{s}");
        // [0, 1] fired twice and must lead the table.
        let first_row = s.lines().nth(1).unwrap();
        assert!(first_row.contains("[0, 1]"), "{s}");
    }

    #[test]
    fn fault_heatmap_compares_designs_and_sorts_by_total_vulnerability() {
        let mut fig4 = std::collections::BTreeMap::new();
        let mut fig5 = std::collections::BTreeMap::new();
        fig4.insert(IVec::from([1, 1]), 4u64);
        fig4.insert(IVec::from([2, 1]), 1u64);
        fig5.insert(IVec::from([1, 1]), 2u64);
        fig5.insert(IVec::from([1, 2]), 3u64);
        let s = render_fault_heatmap("Fig. 4", &fig4, "Fig. 5", &fig5, 10);
        assert!(s.contains("3 PEs"), "{s}");
        assert!(s.contains("Fig. 4 vs Fig. 5"), "{s}");
        // [1, 1] has total 6 and must lead; zero counts render empty bars.
        let first_row = s.lines().nth(1).unwrap();
        assert!(first_row.contains("[1, 1]"), "{s}");
        assert!(first_row.contains("  4 "), "{s}");
        let truncated = render_fault_heatmap("a", &fig4, "b", &fig5, 1);
        assert!(truncated.contains("... 2 more PEs"), "{truncated}");
    }

    #[test]
    fn block_structure_marks_result_boundary() {
        let s = render_block_structure(2, 3);
        // Each block row prints p lines of u blocks; southern row all Z.
        assert!(s.contains("ZZZ"), "{s}");
        assert!(s.contains("Zoo"), "{s}");
    }
}
