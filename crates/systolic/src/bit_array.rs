//! Functional, bit-exact simulation of the Expansion II bit-level matrix
//! multiplication array (the architecture of Figs. 4 and 5).
//!
//! Every cell of the `u×u×u×p×p` compound index space executes the full-adder
//! semantics implied by the dependence structure (3.12):
//!
//! * `x` bits (`x(j₁,j₃)` bit `i₂`) enter a tile on the `i₁ = 1` edge from
//!   the previous `j₂` (d̄₁) and ripple down `i₁` (d̄₄);
//! * `y` bits (`y(j₃,j₂)` bit `i₁`) enter on the `i₂ = 1` edge from the
//!   previous `j₁` (d̄₂) and ripple along `i₂` (d̄₅);
//! * each tile runs a full add-shift multiplication (partial sums along
//!   d̄₆ = `[0̄,1,−1]ᵀ`, carries along d̄₅);
//! * the completed `2p−1` result bits of the accumulator `z(j₁,j₂,j₃−1)` are
//!   injected at the boundary points `i₁ = p` or `i₂ = 1` (d̄₃ at `q̄₂`),
//!   making those cells 4–5-input wide adders whose second carry travels
//!   along d̄₇ = `[0̄,0,2]ᵀ` on the `i₁ = p` plane.
//!
//! ## Arithmetic width
//!
//! The paper's accumulator is `2p−1` bits wide. Carries of weight `2^{2p-1}`
//! and above leave the index set (exactly as in the paper's structure), so
//! the array computes `Z = X·Y mod 2^{2p−1}` — **exact** whenever every
//! accumulated entry fits in `2p−1` bits. [`BitMatmulArray::max_safe_entry`]
//! gives an operand bound that guarantees exactness; the carry re-entry
//! wiring of [`bitlevel_arith::AddShift`] (diagonal boundary input
//! `s(i₁−1, p+1) := c(i₁−1, p)`, a d̄₄-direction edge) is applied inside each
//! tile so no *internal* carry is lost (see the deviation note in
//! `bitlevel-arith`).

use bitlevel_arith::{from_bits, to_bits, wide_add, Bit};
use serde::Serialize;

/// The Expansion II bit-level matmul array for `u×u` matrices of `p`-bit
/// words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BitMatmulArray {
    /// Matrix dimension `u ≥ 1`.
    pub u: usize,
    /// Word length `p ≥ 1`.
    pub p: usize,
}

/// Outcome of one array run.
#[derive(Debug, Clone, Serialize)]
pub struct BitMatmulRun {
    /// The product matrix, each entry reduced mod `2^{2p−1}`.
    pub z: Vec<Vec<u128>>,
    /// Full-adder (3-input) cell evaluations performed.
    pub narrow_cells: u64,
    /// Wide (4–5-input) cell evaluations performed (the `q̄₂` boundary).
    pub wide_cells: u64,
}

impl BitMatmulArray {
    /// Creates the array.
    ///
    /// # Panics
    /// Panics if `u == 0` or `p == 0`.
    pub fn new(u: usize, p: usize) -> Self {
        assert!(u >= 1 && p >= 1, "array dimensions must be positive");
        BitMatmulArray { u, p }
    }

    /// Largest operand entry such that `u` accumulated products are
    /// guaranteed to fit in the `2p−1`-bit accumulator:
    /// `u·m² < 2^{2p−1}` and `m < 2^p`.
    pub fn max_safe_entry(&self) -> u128 {
        let acc_limit = 1u128 << (2 * self.p - 1);
        let mut m = (1u128 << self.p) - 1;
        while m > 0 && (self.u as u128) * m * m >= acc_limit {
            m -= 1;
        }
        m
    }

    /// Runs the array on `x`, `y` (`u×u` matrices of `p`-bit nonnegative
    /// entries) and returns `Z = X·Y mod 2^{2p−1}` together with cell counts.
    ///
    /// # Panics
    /// Panics if the matrices are not `u×u` or an entry exceeds `p` bits.
    pub fn run(&self, x: &[Vec<u128>], y: &[Vec<u128>]) -> BitMatmulRun {
        let (u, p) = (self.u, self.p);
        assert_eq!(x.len(), u, "x must be u x u");
        assert_eq!(y.len(), u, "y must be u x u");

        // Operand bits, LSB first: xb[j1][j3][i2-1], yb[j3][j2][i1-1].
        let xb: Vec<Vec<Vec<Bit>>> = x
            .iter()
            .map(|row| {
                assert_eq!(row.len(), u, "x must be u x u");
                row.iter().map(|&v| to_bits(v, p)).collect()
            })
            .collect();
        let yb: Vec<Vec<Vec<Bit>>> = y
            .iter()
            .map(|row| {
                assert_eq!(row.len(), u, "y must be u x u");
                row.iter().map(|&v| to_bits(v, p)).collect()
            })
            .collect();

        let mut narrow_cells = 0u64;
        let mut wide_cells = 0u64;

        // Accumulator bit state per (j1, j2): the 2p−1 result bits of the
        // most recent tile, stored in "grid position" form: s[i1][i2] of the
        // last completed tile (only the boundary positions carry the result).
        // We keep the whole s grid per (j1, j2) because the injection uses
        // exactly the producing positions (i, 1) and (p, i2).
        let mut prev_s: Vec<Vec<Vec<Vec<Bit>>>> = vec![vec![vec![vec![false; p]; p]; u]; u];

        let mut result = vec![vec![0u128; u]; u];

        // Iterate tiles in j3 order (the accumulation recurrence) — j1/j2
        // tiles are independent; within a tile, row-major (i1 asc, i2 asc) is
        // a topological order of the intra-tile dependences (c: i2−1;
        // s-diagonal: i1−1, i2+1; c': i2−2; injection: previous j3).
        for j3 in 0..u {
            for j1 in 0..u {
                for j2 in 0..u {
                    let mut s = vec![vec![false; p]; p];
                    let mut c = vec![vec![false; p]; p];
                    let mut cp = vec![vec![false; p]; p]; // second carries (i1 = p row)
                    for i1 in 1..=p {
                        for i2 in 1..=p {
                            // d̄₁/d̄₄: the x bit of x(j1, j3), bit index i2.
                            let xbit = xb[j1][j3][i2 - 1];
                            // d̄₂/d̄₅: the y bit of y(j3, j2), bit index i1.
                            let ybit = yb[j3][j2][i1 - 1];
                            let pp = xbit & ybit;
                            // Carry chain along i2 (d̄₅); zero at i2 = 1.
                            let c_in = if i2 > 1 { c[i1 - 1][i2 - 2] } else { false };
                            // Partial-sum diagonal (d̄₆); boundary rules as in
                            // the add-shift tile, with carry re-entry at
                            // i2 = p (exactness fix, see module docs).
                            let s_in = if i1 == 1 {
                                false
                            } else if i2 == p {
                                c[i1 - 2][p - 1]
                            } else {
                                s[i1 - 2][i2]
                            };
                            // Injection of the previous accumulator bit at
                            // the boundary q̄₂ (d̄₃); zero at j3 = 0 (paper's
                            // z(j1, j2, 0) = 0).
                            let on_boundary = i1 == p || i2 == 1;
                            let inject = if on_boundary && j3 > 0 {
                                prev_s[j1][j2][i1 - 1][i2 - 1]
                            } else {
                                false
                            };
                            // Second-carry chain along i₂ on the i1 = p plane
                            // (d̄₇).
                            let cp_in = if i1 == p && i2 > 2 {
                                cp[p - 1][i2 - 3]
                            } else {
                                false
                            };

                            if on_boundary && j3 > 0 {
                                let inputs = [pp, c_in, s_in, inject, cp_in];
                                let used: Vec<Bit> = if i1 == p {
                                    inputs.to_vec()
                                } else {
                                    // Eastern boundary (i2 = 1): no carry-in,
                                    // no second carry.
                                    vec![pp, s_in, inject]
                                };
                                let (sb, cb, cpb) = wide_add(&used);
                                s[i1 - 1][i2 - 1] = sb;
                                c[i1 - 1][i2 - 1] = cb;
                                cp[i1 - 1][i2 - 1] = cpb;
                                wide_cells += 1;
                            } else {
                                let (sb, cb) = bitlevel_arith::full_add(pp, c_in, s_in);
                                s[i1 - 1][i2 - 1] = sb;
                                c[i1 - 1][i2 - 1] = cb;
                                narrow_cells += 1;
                            }
                        }
                    }
                    prev_s[j1][j2] = s;

                    // After the last tile, extract the 2p−1 accumulator bits
                    // exactly as eq. (3.1)'s result rule prescribes.
                    if j3 == u - 1 {
                        let s = &prev_s[j1][j2];
                        let mut bits: Vec<Bit> = Vec::with_capacity(2 * p - 1);
                        for i in 1..=p {
                            bits.push(s[i - 1][0]); // s_i = s(i, 1)
                        }
                        for i in p + 1..=2 * p - 1 {
                            bits.push(s[p - 1][i - p]); // s_i = s(p, i−p+1)
                        }
                        result[j1][j2] = from_bits(&bits);
                    }
                }
            }
        }

        BitMatmulRun {
            z: result,
            narrow_cells,
            wide_cells,
        }
    }

    /// Convenience wrapper returning just the product matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use bitlevel_systolic::BitMatmulArray;
    /// let arr = BitMatmulArray::new(2, 4);
    /// let x = vec![vec![3u128, 1], vec![2, 4]];
    /// let y = vec![vec![1u128, 2], vec![5, 1]];
    /// assert_eq!(arr.multiply(&x, &y), vec![vec![8, 7], vec![22, 8]]);
    /// ```
    pub fn multiply(&self, x: &[Vec<u128>], y: &[Vec<u128>]) -> Vec<Vec<u128>> {
        self.run(x, y).z
    }

    /// The reference product mod `2^{2p−1}` for validation.
    pub fn reference(&self, x: &[Vec<u128>], y: &[Vec<u128>]) -> Vec<Vec<u128>> {
        let u = self.u;
        let mask = (1u128 << (2 * self.p - 1)) - 1;
        let mut z = vec![vec![0u128; u]; u];
        for i in 0..u {
            for j in 0..u {
                let mut acc = 0u128;
                for k in 0..u {
                    acc = (acc + x[i][k] * y[k][j]) & mask;
                }
                z[i][j] = acc;
            }
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(u: usize, f: impl Fn(usize, usize) -> u128) -> Vec<Vec<u128>> {
        (0..u).map(|i| (0..u).map(|j| f(i, j)).collect()).collect()
    }

    #[test]
    fn identity_times_identity() {
        let a = BitMatmulArray::new(3, 3);
        let id = mat(3, |i, j| (i == j) as u128);
        assert_eq!(a.multiply(&id, &id), id);
    }

    #[test]
    fn paper_sized_instance_u3_p3() {
        // Fig. 4's p = u = 3 configuration with safe entries.
        let a = BitMatmulArray::new(3, 3);
        let m = a.max_safe_entry();
        assert!(m >= 3, "need some headroom, got {m}");
        let x = mat(3, |i, j| ((i * 3 + j) as u128) % (m + 1));
        let y = mat(3, |i, j| ((i * 2 + j + 1) as u128) % (m + 1));
        assert_eq!(a.multiply(&x, &y), a.reference(&x, &y));
    }

    #[test]
    fn exact_when_entries_within_safe_bound() {
        for (u, p) in [(2usize, 2usize), (2, 4), (3, 4), (4, 5)] {
            let a = BitMatmulArray::new(u, p);
            let m = a.max_safe_entry();
            let x = mat(u, |i, j| ((7 * i + 3 * j + 1) as u128) % (m + 1));
            let y = mat(u, |i, j| ((5 * i + j + 2) as u128) % (m + 1));
            let got = a.multiply(&x, &y);
            // With safe entries the mod never bites: compare to the true
            // product.
            for i in 0..u {
                for j in 0..u {
                    let want = (0..u).map(|k| x[i][k] * y[k][j]).sum::<u128>();
                    assert_eq!(got[i][j], want, "u={u} p={p} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn wraps_modulo_accumulator_width() {
        // Deliberately overflow the 2p−1-bit accumulator: the array must
        // agree with the mod-2^{2p−1} reference (the paper's fixed-width z).
        let a = BitMatmulArray::new(2, 3);
        let x = mat(2, |_, _| 7); // max 3-bit value
        let y = mat(2, |_, _| 7);
        // 7·7·2 = 98 ≥ 2^5 = 32: overflow certain.
        assert_eq!(a.multiply(&x, &y), a.reference(&x, &y));
    }

    #[test]
    fn wide_cells_count_matches_boundary_geometry() {
        // Wide adders run at q̄₂ (2p−1 points per tile) for every tile with
        // j3 > 0: u²·(u−1)·(2p−1) wide evaluations.
        let (u, p) = (3usize, 3usize);
        let a = BitMatmulArray::new(u, p);
        let x = mat(u, |_, _| 1);
        let y = mat(u, |_, _| 1);
        let run = a.run(&x, &y);
        let expected_wide = (u * u * (u - 1) * (2 * p - 1)) as u64;
        assert_eq!(run.wide_cells, expected_wide);
        let total = (u * u * u * p * p) as u64;
        assert_eq!(run.narrow_cells + run.wide_cells, total);
    }

    #[test]
    fn single_word_case_reduces_to_addshift() {
        // u = 1: the array is exactly one add-shift multiplier.
        let p = 4;
        let a = BitMatmulArray::new(1, p);
        let asft = bitlevel_arith::AddShift::new(p);
        for (xa, ya) in [(11u128, 13u128), (15, 15), (9, 6), (0, 7)] {
            let z = a.multiply(&[vec![xa]], &[vec![ya]]);
            let mask = (1u128 << (2 * p - 1)) - 1;
            assert_eq!(z[0][0], asft.multiply(xa, ya) & mask);
        }
    }

    proptest! {
        #[test]
        fn prop_exact_within_safe_bound(u in 1usize..4, p in 2usize..6, seed in any::<u64>()) {
            let a = BitMatmulArray::new(u, p);
            let m = a.max_safe_entry();
            prop_assume!(m > 0);
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u128 % (m + 1)
            };
            let x: Vec<Vec<u128>> = (0..u).map(|_| (0..u).map(|_| next()).collect()).collect();
            let y: Vec<Vec<u128>> = (0..u).map(|_| (0..u).map(|_| next()).collect()).collect();
            let got = a.multiply(&x, &y);
            for i in 0..u {
                for j in 0..u {
                    let want = (0..u).map(|k| x[i][k] * y[k][j]).sum::<u128>();
                    prop_assert_eq!(got[i][j], want);
                }
            }
        }

        #[test]
        fn prop_wraparound_matches_reference(u in 1usize..3, p in 2usize..4, seed in any::<u64>()) {
            let a = BitMatmulArray::new(u, p);
            let maxv = (1u128 << p) - 1;
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u128 % (maxv + 1)
            };
            let x: Vec<Vec<u128>> = (0..u).map(|_| (0..u).map(|_| next()).collect()).collect();
            let y: Vec<Vec<u128>> = (0..u).map(|_| (0..u).map(|_| next()).collect()).collect();
            prop_assert_eq!(a.multiply(&x, &y), a.reference(&x, &y));
        }
    }
}
