//! Register-transfer-level ("clocked") execution of a mapped algorithm.
//!
//! [`crate::mapped::simulate_mapped`] verifies the *timing structure* of an
//! architecture; this module goes one level lower: it executes the schedule
//! **cycle by cycle with value-carrying tokens**. Each index point fires on
//! its processor at its scheduled cycle, consumes the tokens its active
//! dependences deliver (verifying each token really had time to traverse its
//! route), computes real output values through a pluggable cell semantics,
//! and launches new tokens. Running the Fig. 4 / Fig. 5 matmul designs
//! through this engine and getting bit-correct products out the boundary is
//! the strongest form of "the architecture works" this repository offers.
//!
//! The engine is generic over [`CellSemantics`]; [`MatmulExpansionIICells`]
//! implements the full-adder/wide-adder semantics of the Expansion II matmul
//! structure (3.12), matching [`crate::bit_array::BitMatmulArray`] exactly.

use crate::fault::{FaultInjector, NoFaults, TransferFault};
use crate::trace::{NullSink, TraceEvent, TraceSink};
use bitlevel_arith::{full_add, to_bits, wide_add, Bit};
use bitlevel_ir::AlgorithmTriplet;
use bitlevel_linalg::IVec;
use bitlevel_mapping::{Interconnect, MappingMatrix, Routing};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Per-point computation semantics for the clocked engine.
///
/// Tokens are *bundles*: the full output signal set of a cell travels along
/// every outgoing dependence edge, and each consumer extracts the signals it
/// needs (hardware would route individual wires; bundling loses no fidelity
/// for verification because each edge still exists and is still timed).
pub trait CellSemantics {
    /// The signal bundle carried by tokens.
    type Bundle: Clone + std::fmt::Debug;

    /// Computes the cell at index point `q`. `inputs[i]` is the token
    /// arriving along dependence column `i` (`None` when the dependence is
    /// inactive at `q` or its source lies outside the index set — i.e. an
    /// architectural boundary, which the semantics resolves from operands /
    /// initial values).
    fn compute(&mut self, q: &IVec, inputs: &[Option<Self::Bundle>]) -> Self::Bundle;
}

/// Pure, shareable cell semantics — the compiled backend's counterpart of
/// [`CellSemantics`].
///
/// The compiled engine ([`crate::compiled`]) executes all points of a cycle
/// in parallel, so the semantics must be immutable (`&self`) and shareable
/// across threads (`Sync`), and bundles must be `Send`. Types whose compute
/// is pure implement this trait and delegate their [`CellSemantics`] impl to
/// it, so both engines run literally the same arithmetic.
pub trait SyncCellSemantics: Sync {
    /// The signal bundle carried by tokens (`Send + Sync`: the compiled
    /// engine shares the token arena across worker threads).
    type Bundle: Clone + Send + Sync + std::fmt::Debug;

    /// Computes the cell at index point `q` — same contract as
    /// [`CellSemantics::compute`], minus the mutable receiver.
    fn compute(&self, q: &IVec, inputs: &[Option<Self::Bundle>]) -> Self::Bundle;
}

/// One timing/route violation found by the clocked engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ClockedViolation {
    /// A consumer fired at or before its producer.
    CausalityOrder {
        /// Rendered consumer point.
        consumer: String,
        /// Dependence column index.
        column: usize,
    },
    /// A token could not traverse its route within the schedule slack.
    RouteTooSlow {
        /// Rendered consumer point.
        consumer: String,
        /// Dependence column index.
        column: usize,
        /// Hops needed.
        hops: i64,
        /// Cycles available.
        budget: i64,
    },
    /// Two points fired on the same processor in the same cycle.
    ProcessorConflict {
        /// Rendered processor coordinates.
        processor: String,
        /// Cycle.
        cycle: i64,
    },
    /// An active dependence found no token: its in-set producer had not
    /// fired yet when the consumer needed the value (a scheduling anomaly —
    /// boundary inputs arrive on *inactive* columns and are not violations).
    MissingToken {
        /// Rendered consumer point.
        consumer: String,
        /// Dependence column index.
        column: usize,
    },
}

impl fmt::Display for ClockedViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockedViolation::CausalityOrder { consumer, column } => write!(
                f,
                "causality: {consumer} consumed column d{} at or before its producer fired",
                column + 1
            ),
            ClockedViolation::RouteTooSlow {
                consumer,
                column,
                hops,
                budget,
            } if *hops < 0 => {
                write!(
                    f,
                    "route: column d{} unroutable for {consumer} (slack {budget})",
                    column + 1
                )
            }
            ClockedViolation::RouteTooSlow {
                consumer,
                column,
                hops,
                budget,
            } => write!(
                f,
                "route: {consumer} needs {hops} hops on d{} but has only {budget} cycles",
                column + 1
            ),
            ClockedViolation::ProcessorConflict { processor, cycle } => {
                write!(
                    f,
                    "conflict: two points fired on processor {processor} in cycle {cycle}"
                )
            }
            ClockedViolation::MissingToken { consumer, column } => write!(
                f,
                "missing token: {consumer} found no token on column d{}",
                column + 1
            ),
        }
    }
}

/// Result of a clocked run.
#[derive(Debug, Clone)]
pub struct ClockedRun<B> {
    /// First-to-last busy cycle, inclusive.
    pub cycles: i64,
    /// Output bundle of every index point.
    pub outputs: HashMap<IVec, B>,
    /// All violations (empty for a legal architecture).
    pub violations: Vec<ClockedViolation>,
    /// Maximum tokens simultaneously in flight on any dependence column's
    /// wire set (register pressure per edge class).
    pub peak_in_flight: Vec<u64>,
}

impl<B> ClockedRun<B> {
    /// True iff the run exposed no timing, routing or conflict violations.
    pub fn is_legal(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Executes `alg` under mapping `t` on machine `ic` with the given cell
/// semantics, cycle by cycle.
pub fn run_clocked<S: CellSemantics>(
    alg: &AlgorithmTriplet,
    t: &MappingMatrix,
    ic: &Interconnect,
    semantics: &mut S,
) -> ClockedRun<S::Bundle> {
    run_clocked_traced(alg, t, ic, semantics, &mut NullSink)
}

/// [`run_clocked`] with a [`TraceSink`] observing every route, fire, token
/// and violation. With [`NullSink`] the emission guards compile away and
/// this *is* [`run_clocked`]; the compiled engine
/// ([`crate::compiled::CompiledSchedule::execute_traced`]) reconstructs the
/// identical event stream.
pub fn run_clocked_traced<S: CellSemantics, K: TraceSink>(
    alg: &AlgorithmTriplet,
    t: &MappingMatrix,
    ic: &Interconnect,
    semantics: &mut S,
    sink: &mut K,
) -> ClockedRun<S::Bundle> {
    run_clocked_faulted(alg, t, ic, semantics, sink, &NoFaults)
}

/// [`run_clocked_traced`] with a [`FaultInjector`] perturbing the run:
/// transfer faults apply at token consumption (a dropped transfer skips the
/// consumption bookkeeping entirely; a duplicate re-delivers the previous
/// token of the same edge class), output faults mutate the just-computed
/// bundle before it launches. With [`NoFaults`] every fault branch compiles
/// away and this *is* [`run_clocked_traced`]; the compiled backend
/// ([`crate::compiled::CompiledSchedule::execute_faulted`]) reproduces the
/// identical faulted run bit for bit.
pub fn run_clocked_faulted<S, K, F>(
    alg: &AlgorithmTriplet,
    t: &MappingMatrix,
    ic: &Interconnect,
    semantics: &mut S,
    sink: &mut K,
    faults: &F,
) -> ClockedRun<S::Bundle>
where
    S: CellSemantics,
    K: TraceSink,
    F: FaultInjector<S::Bundle>,
{
    assert_eq!(t.n(), alg.dim(), "mapping/algorithm dimension mismatch");
    let set = &alg.index_set;
    let m = alg.deps.len();

    // Pre-route each dependence column once: hop count on this machine.
    let routes: Vec<Option<Routing>> = alg
        .deps
        .iter()
        .map(|d| {
            let budget = d.vector.dot(&t.schedule);
            ic.route(&t.space.matvec(&d.vector), budget.max(0))
        })
        .collect();
    if K::ENABLED {
        for (i, r) in routes.iter().enumerate() {
            match r {
                Some(r) => sink.record(TraceEvent::ColumnRoute {
                    column: i,
                    hops: r.hops,
                    usage: r.usage.clone(),
                }),
                None => sink.record(TraceEvent::ColumnUnroutable { column: i }),
            }
        }
    }
    let hops: Vec<Option<i64>> = routes.iter().map(|r| r.as_ref().map(|r| r.hops)).collect();

    // Group points by scheduled cycle.
    let mut by_cycle: HashMap<i64, Vec<IVec>> = HashMap::new();
    for q in set.iter_points() {
        by_cycle.entry(t.time(&q)).or_default().push(q);
    }
    let mut cycles_sorted: Vec<i64> = by_cycle.keys().copied().collect();
    cycles_sorted.sort_unstable();

    let mut outputs: HashMap<IVec, S::Bundle> = HashMap::with_capacity(set.cardinality() as usize);
    let mut produced_at: HashMap<IVec, i64> = HashMap::with_capacity(outputs.capacity());
    let mut violations = Vec::new();
    let mut in_flight = vec![0u64; m];
    let mut peak_in_flight = vec![0u64; m];

    // Processor coordinates are interned to dense u32 ids once per distinct
    // processor, so the per-cycle duplicate-fire check probes a HashSet<u32>
    // instead of hashing (and cloning) a full IVec per point.
    let mut proc_ids: HashMap<IVec, u32> = HashMap::new();
    let mut proc_coords: Vec<IVec> = Vec::new();
    let mut fired: HashSet<u32> = HashSet::new();

    for &cycle in &cycles_sorted {
        // Processor conflict detection within the cycle.
        fired.clear();
        // Count in-flight tokens per column: produced but not yet consumed.
        // (Recomputed incrementally: a token launches when its producer
        // fires and retires when its consumer fires.)
        for q in &by_cycle[&cycle] {
            let place = t.place(q);
            let id = match proc_ids.get(&place) {
                Some(&id) => id,
                None => {
                    let id = proc_coords.len() as u32;
                    proc_ids.insert(place.clone(), id);
                    proc_coords.push(place);
                    id
                }
            };
            if K::ENABLED {
                sink.record(TraceEvent::PointFired {
                    cycle,
                    point: q.clone(),
                    processor: proc_coords[id as usize].clone(),
                });
            }
            if !fired.insert(id) {
                let v = ClockedViolation::ProcessorConflict {
                    processor: proc_coords[id as usize].to_string(),
                    cycle,
                };
                if K::ENABLED {
                    sink.record(TraceEvent::Violation {
                        cycle,
                        description: v.to_string(),
                    });
                }
                violations.push(v);
            }

            // Gather inputs.
            let mut inputs: Vec<Option<S::Bundle>> = Vec::with_capacity(m);
            for (i, d) in alg.deps.iter().enumerate() {
                if !d.active_at(q, set) {
                    inputs.push(None);
                    continue;
                }
                let tf = if F::ENABLED {
                    faults.on_transfer(cycle, q, i)
                } else {
                    TransferFault::None
                };
                if tf == TransferFault::Drop {
                    // The token is lost on the wire: no consumption
                    // bookkeeping at all — it stays in flight, unretired.
                    if K::ENABLED {
                        sink.record(TraceEvent::FaultInjected {
                            cycle,
                            point: q.clone(),
                            processor: proc_coords[id as usize].clone(),
                            column: Some(i),
                            kind: "dropped_transfer".into(),
                        });
                    }
                    inputs.push(None);
                    continue;
                }
                let src = q - &d.vector;
                match outputs.get(&src) {
                    Some(bundle) => {
                        let src_time = produced_at[&src];
                        if src_time >= cycle {
                            let v = ClockedViolation::CausalityOrder {
                                consumer: q.to_string(),
                                column: i,
                            };
                            if K::ENABLED {
                                sink.record(TraceEvent::Violation {
                                    cycle,
                                    description: v.to_string(),
                                });
                            }
                            violations.push(v);
                        }
                        match hops[i] {
                            Some(h) if h <= cycle - src_time => {}
                            Some(h) => {
                                let v = ClockedViolation::RouteTooSlow {
                                    consumer: q.to_string(),
                                    column: i,
                                    hops: h,
                                    budget: cycle - src_time,
                                };
                                if K::ENABLED {
                                    sink.record(TraceEvent::Violation {
                                        cycle,
                                        description: v.to_string(),
                                    });
                                }
                                violations.push(v);
                            }
                            None => {
                                let v = ClockedViolation::RouteTooSlow {
                                    consumer: q.to_string(),
                                    column: i,
                                    hops: -1,
                                    budget: cycle - src_time,
                                };
                                if K::ENABLED {
                                    sink.record(TraceEvent::Violation {
                                        cycle,
                                        description: v.to_string(),
                                    });
                                }
                                violations.push(v);
                            }
                        }
                        if K::ENABLED {
                            sink.record(TraceEvent::TokenConsumed {
                                cycle,
                                column: i,
                                at: q.clone(),
                                slack: cycle - src_time,
                            });
                        }
                        in_flight[i] = in_flight[i].saturating_sub(1);
                        if F::ENABLED && tf == TransferFault::Duplicate {
                            // The link re-delivers the previous token of this
                            // edge class: the output of src − d̄, when it
                            // exists (else the stale register is empty).
                            if K::ENABLED {
                                sink.record(TraceEvent::FaultInjected {
                                    cycle,
                                    point: q.clone(),
                                    processor: proc_coords[id as usize].clone(),
                                    column: Some(i),
                                    kind: "duplicated_transfer".into(),
                                });
                            }
                            let stale = if d.active_at(&src, set) {
                                outputs.get(&(&src - &d.vector)).cloned()
                            } else {
                                None
                            };
                            inputs.push(stale);
                        } else {
                            inputs.push(Some(bundle.clone()));
                        }
                    }
                    None => {
                        // `active_at` guarantees the source is in J, so a
                        // miss means the producer has not fired yet: record
                        // it and degrade to a boundary-style None input.
                        let v = ClockedViolation::MissingToken {
                            consumer: q.to_string(),
                            column: i,
                        };
                        if K::ENABLED {
                            sink.record(TraceEvent::Violation {
                                cycle,
                                description: v.to_string(),
                            });
                        }
                        violations.push(v);
                        inputs.push(None);
                    }
                }
            }

            let mut bundle = semantics.compute(q, &inputs);
            if F::ENABLED {
                for kind in faults.on_output(cycle, q, &proc_coords[id as usize], &mut bundle) {
                    if K::ENABLED {
                        sink.record(TraceEvent::FaultInjected {
                            cycle,
                            point: q.clone(),
                            processor: proc_coords[id as usize].clone(),
                            column: None,
                            kind,
                        });
                    }
                }
            }
            // Launch a token per active outgoing edge class (the consumer
            // side will retire it); for in-flight accounting we count one
            // launch per column that will ever consume this output.
            for (i, d) in alg.deps.iter().enumerate() {
                let tgt = q + &d.vector;
                if d.active_at(&tgt, set) {
                    in_flight[i] += 1;
                    peak_in_flight[i] = peak_in_flight[i].max(in_flight[i]);
                    if K::ENABLED {
                        sink.record(TraceEvent::TokenLaunched {
                            cycle,
                            column: i,
                            from: q.clone(),
                        });
                        sink.record(TraceEvent::BufferOccupancy {
                            cycle,
                            column: i,
                            in_flight: in_flight[i],
                        });
                    }
                }
            }
            outputs.insert(q.clone(), bundle);
            produced_at.insert(q.clone(), cycle);
        }
    }

    let cycles = match (cycles_sorted.first(), cycles_sorted.last()) {
        (Some(a), Some(b)) => b - a + 1,
        _ => 0,
    };

    ClockedRun {
        cycles,
        outputs,
        violations,
        peak_in_flight,
    }
}

/// The signal bundle of one Expansion II matmul cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatmulSignals {
    /// The x operand bit held/forwarded by this cell.
    pub x: Bit,
    /// The y operand bit held/forwarded by this cell.
    pub y: Bit,
    /// The partial-sum output (also the accumulator bit at boundary points).
    pub s: Bit,
    /// The carry output.
    pub c: Bit,
    /// The second carry output (i₁ = p plane).
    pub cp: Bit,
}

/// Cell semantics of the Expansion II bit-level matmul structure (3.12):
/// identical arithmetic to [`crate::bit_array::BitMatmulArray`], but driven
/// by the clocked engine instead of a topological sweep.
///
/// Dependence column order must be the [`bitlevel-depanal`]-composed order:
/// `x (d̄₁), y (d̄₂), z (d̄₃), x (d̄₄), y,c (d̄₅), z (d̄₆), c' (d̄₇)`.
pub struct MatmulExpansionIICells {
    u: usize,
    p: usize,
    /// Operand bits: `x_bits[j1][j3][k]`, `y_bits[j3][j2][k]`, LSB first.
    x_bits: Vec<Vec<Vec<Bit>>>,
    y_bits: Vec<Vec<Vec<Bit>>>,
}

impl MatmulExpansionIICells {
    /// Prepares operand bit planes for `u×u` matrices of `p`-bit entries.
    ///
    /// # Panics
    /// Panics if shapes are wrong or entries exceed `p` bits.
    pub fn new(u: usize, p: usize, x: &[Vec<u128>], y: &[Vec<u128>]) -> Self {
        assert_eq!(x.len(), u, "x must be u x u");
        assert_eq!(y.len(), u, "y must be u x u");
        let x_bits = x
            .iter()
            .map(|row| {
                assert_eq!(row.len(), u);
                row.iter().map(|&v| to_bits(v, p)).collect()
            })
            .collect();
        let y_bits = y
            .iter()
            .map(|row| {
                assert_eq!(row.len(), u);
                row.iter().map(|&v| to_bits(v, p)).collect()
            })
            .collect();
        MatmulExpansionIICells {
            u,
            p,
            x_bits,
            y_bits,
        }
    }

    /// Extracts the product matrix (mod `2^{2p−1}`) from a finished run:
    /// accumulator bits live in the `s` signals of the last tile's result
    /// positions `(i,1)` and `(p, i−p+1)`.
    pub fn extract_product(&self, run: &ClockedRun<MatmulSignals>) -> Vec<Vec<u128>> {
        let (u, p) = (self.u, self.p);
        let mut z = vec![vec![0u128; u]; u];
        for j1 in 1..=u {
            for j2 in 1..=u {
                let mut bits: Vec<Bit> = Vec::with_capacity(2 * p - 1);
                for i in 1..=p {
                    bits.push(self.signal_at(run, j1, j2, u, i, 1).s);
                }
                for i in p + 1..=2 * p - 1 {
                    bits.push(self.signal_at(run, j1, j2, u, p, i - p + 1).s);
                }
                z[j1 - 1][j2 - 1] = bitlevel_arith::from_bits(&bits);
            }
        }
        z
    }

    fn signal_at(
        &self,
        run: &ClockedRun<MatmulSignals>,
        j1: usize,
        j2: usize,
        j3: usize,
        i1: usize,
        i2: usize,
    ) -> MatmulSignals {
        let q = IVec::from([j1 as i64, j2 as i64, j3 as i64, i1 as i64, i2 as i64]);
        run.outputs[&q]
    }
}

impl CellSemantics for MatmulExpansionIICells {
    type Bundle = MatmulSignals;

    fn compute(&mut self, q: &IVec, inputs: &[Option<MatmulSignals>]) -> MatmulSignals {
        SyncCellSemantics::compute(self, q, inputs)
    }
}

impl SyncCellSemantics for MatmulExpansionIICells {
    type Bundle = MatmulSignals;

    fn compute(&self, q: &IVec, inputs: &[Option<MatmulSignals>]) -> MatmulSignals {
        let (j1, j2, j3, i1, i2) = (
            q[0] as usize,
            q[1] as usize,
            q[2] as usize,
            q[3] as usize,
            q[4] as usize,
        );
        let p = self.p;

        // x bit: at i1 = 1 from the previous j2 (d̄₁, column 0) or the
        // external operand; below, from the cell above (d̄₄, column 3).
        let x = if i1 == 1 {
            match &inputs[0] {
                Some(b) => b.x,
                None => self.x_bits[j1 - 1][j3 - 1][i2 - 1], // j2 = 1 edge
            }
        } else {
            // A missing d̄₄ token (scheduling anomaly or injected fault) was
            // already recorded by the engine; degrade to a silent wire.
            inputs[3].as_ref().is_some_and(|b| b.x)
        };
        // y bit: at i2 = 1 from the previous j1 (d̄₂, column 1) or external;
        // rightward via d̄₅ (column 4).
        let y = if i2 == 1 {
            match &inputs[1] {
                Some(b) => b.y,
                None => self.y_bits[j3 - 1][j2 - 1][i1 - 1], // j1 = 1 edge
            }
        } else {
            inputs[4].as_ref().is_some_and(|b| b.y)
        };

        let pp = x & y;
        // Carry chain along i₂ (d̄₅); zero at i2 = 1.
        let c_in = if i2 > 1 {
            inputs[4].as_ref().is_some_and(|b| b.c)
        } else {
            false
        };
        // Partial-sum diagonal (d̄₆) with the carry re-entry at i2 = p, which
        // arrives along the d̄₄ edge (same [0̄,1,0] direction).
        let s_in = if i1 == 1 {
            false
        } else if i2 == p {
            inputs[3].as_ref().is_some_and(|b| b.c)
        } else {
            inputs[5].as_ref().is_some_and(|b| b.s)
        };
        // Injection of the previous accumulator bit at the boundary (d̄₃);
        // None at j3 = 1 (z(j̄, 0) = 0).
        let on_boundary = i1 == p || i2 == 1;
        let inject = if on_boundary && j3 > 1 {
            inputs[2].as_ref().is_some_and(|b| b.s)
        } else {
            false
        };
        // Second carry chain on the i1 = p plane (d̄₇).
        let cp_in = if i1 == p && i2 > 2 {
            inputs[6].as_ref().is_some_and(|b| b.cp)
        } else {
            false
        };

        let (s, c, cp) = if on_boundary && j3 > 1 {
            if i1 == p {
                wide_add(&[pp, c_in, s_in, inject, cp_in])
            } else {
                wide_add(&[pp, s_in, inject])
            }
        } else {
            let (s, c) = full_add(pp, c_in, s_in);
            (s, c, false)
        };

        MatmulSignals { x, y, s, c, cp }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitlevel_ir::{BoxSet, Dependence, DependenceSet, Predicate};
    use bitlevel_mapping::PaperDesign;

    fn matmul_structure(u: i64, p: i64) -> AlgorithmTriplet {
        // Composed column order: x, y, z, d4, d5, d6, d7 (matches
        // bitlevel-depanal::compose for the full model).
        let j = BoxSet::cube(3, 1, u).product(&BoxSet::cube(2, 1, p));
        AlgorithmTriplet::new(
            j,
            DependenceSet::new(vec![
                Dependence::conditional([0, 1, 0, 0, 0], "x", Predicate::eq_const(3, 1)),
                Dependence::conditional([1, 0, 0, 0, 0], "y", Predicate::eq_const(4, 1)),
                Dependence::conditional(
                    [0, 0, 1, 0, 0],
                    "z",
                    Predicate::eq_const(3, p).or(&Predicate::eq_const(4, 1)),
                ),
                Dependence::conditional([0, 0, 0, 1, 0], "x", Predicate::ne_const(3, 1)),
                Dependence::conditional([0, 0, 0, 0, 1], "y,c", Predicate::ne_const(4, 1)),
                Dependence::uniform([0, 0, 0, 1, -1], "z"),
                Dependence::conditional([0, 0, 0, 0, 2], "c'", Predicate::eq_const(3, p)),
            ]),
            "bit-level matmul, Expansion II (composed order)",
        )
    }

    fn mats(u: usize, p: usize) -> (Vec<Vec<u128>>, Vec<Vec<u128>>) {
        let arr = crate::BitMatmulArray::new(u, p);
        let m = arr.max_safe_entry();
        let x = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((3 * i + 5 * j + 1) as u128) % (m + 1))
                    .collect()
            })
            .collect();
        let y = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((7 * i + j + 2) as u128) % (m + 1))
                    .collect()
            })
            .collect();
        (x, y)
    }

    #[test]
    fn fig4_clocked_run_computes_correct_products() {
        for (u, p) in [(2usize, 2usize), (3, 3), (2, 4)] {
            let alg = matmul_structure(u as i64, p as i64);
            let design = PaperDesign::TimeOptimal;
            let (x, y) = mats(u, p);
            let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
            let run = run_clocked(
                &alg,
                &design.mapping(p as i64),
                &design.interconnect(p as i64),
                &mut cells,
            );
            assert!(run.is_legal(), "violations: {:?}", run.violations);
            assert_eq!(run.cycles, 3 * (u as i64 - 1) + 3 * (p as i64 - 1) + 1);
            let z = cells.extract_product(&run);
            for i in 0..u {
                for j in 0..u {
                    let want: u128 = (0..u).map(|k| x[i][k] * y[k][j]).sum();
                    assert_eq!(z[i][j], want, "u={u} p={p} Z[{i}][{j}]");
                }
            }
        }
    }

    #[test]
    fn fig5_clocked_run_computes_correct_products() {
        let (u, p) = (3usize, 3usize);
        let alg = matmul_structure(u as i64, p as i64);
        let design = PaperDesign::NearestNeighbour;
        let (x, y) = mats(u, p);
        let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let run = run_clocked(
            &alg,
            &design.mapping(p as i64),
            &design.interconnect(p as i64),
            &mut cells,
        );
        assert!(run.is_legal(), "violations: {:?}", run.violations);
        assert_eq!(
            run.cycles,
            (2 * p as i64 + 1) * (u as i64 - 1) + 3 * (p as i64 - 1) + 1
        );
        let z = cells.extract_product(&run);
        let want = crate::BitMatmulArray::new(u, p).multiply(&x, &y);
        assert_eq!(z, want);
    }

    #[test]
    fn clocked_agrees_with_topological_array_even_under_wraparound() {
        // Overflowing entries: both engines must implement the same
        // mod-2^{2p−1} semantics.
        let (u, p) = (2usize, 3usize);
        let alg = matmul_structure(u as i64, p as i64);
        let x = vec![vec![7u128, 7], vec![7, 7]];
        let y = vec![vec![7u128, 6], vec![5, 7]];
        let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let design = PaperDesign::TimeOptimal;
        let run = run_clocked(
            &alg,
            &design.mapping(3),
            &design.interconnect(3),
            &mut cells,
        );
        assert_eq!(
            cells.extract_product(&run),
            crate::BitMatmulArray::new(u, p).multiply(&x, &y)
        );
    }

    #[test]
    fn illegal_machine_is_reported() {
        // Fig. 4's fast schedule on the wire-poor machine: tokens cannot make
        // their routes; the engine must report RouteTooSlow, not silently
        // compute.
        let (u, p) = (2usize, 2usize);
        let alg = matmul_structure(u as i64, p as i64);
        let (x, y) = mats(u, p);
        let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let run = run_clocked(
            &alg,
            &PaperDesign::TimeOptimal.mapping(p as i64),
            &PaperDesign::NearestNeighbour.interconnect(p as i64),
            &mut cells,
        );
        assert!(!run.is_legal());
        assert!(run
            .violations
            .iter()
            .any(|v| matches!(v, ClockedViolation::RouteTooSlow { .. })));
    }

    #[test]
    fn conflicting_mapping_is_reported() {
        let (u, p) = (2usize, 2usize);
        let alg = matmul_structure(u as i64, p as i64);
        let (x, y) = mats(u, p);
        let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
        // Collapse the space mapping: everything lands on one column of PEs.
        let t = MappingMatrix::new(
            bitlevel_linalg::IMat::from_rows(&[&[0, 0, 0, 0, 0], &[0, 2, 0, 0, 1]]),
            IVec::from([1, 1, 1, 2, 1]),
        );
        let run = run_clocked(&alg, &t, &Interconnect::paper_p(2), &mut cells);
        assert!(run
            .violations
            .iter()
            .any(|v| matches!(v, ClockedViolation::ProcessorConflict { .. })));
    }

    #[test]
    fn missing_tokens_are_recorded_not_panicked() {
        // A schedule that runs d̄₄ (and d̄₆) backwards: consumers at i1 > 1
        // fire before their producers, so their tokens are missing at
        // consumption time. The engine must degrade to recorded
        // MissingToken violations — it used to panic in the matmul cell
        // semantics ("d4 token must exist for i1 > 1").
        let (u, p) = (2usize, 2usize);
        let alg = matmul_structure(u as i64, p as i64);
        let (x, y) = mats(u, p);
        let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let t = MappingMatrix::new(
            PaperDesign::TimeOptimal.mapping(p as i64).space.clone(),
            IVec::from([1, 1, 1, -1, 1]),
        );
        let run = run_clocked(&alg, &t, &Interconnect::paper_p(p as i64), &mut cells);
        assert!(!run.is_legal());
        assert!(run
            .violations
            .iter()
            .any(|v| matches!(v, ClockedViolation::MissingToken { .. })));
        // Every point still fired and produced an output bundle.
        assert_eq!(run.outputs.len(), 32);
    }

    #[test]
    fn in_flight_accounting_is_populated() {
        let (u, p) = (3usize, 3usize);
        let alg = matmul_structure(u as i64, p as i64);
        let (x, y) = mats(u, p);
        let mut cells = MatmulExpansionIICells::new(u, p, &x, &y);
        let design = PaperDesign::TimeOptimal;
        let run = run_clocked(
            &alg,
            &design.mapping(3),
            &design.interconnect(3),
            &mut cells,
        );
        assert_eq!(run.peak_in_flight.len(), 7);
        assert!(run.peak_in_flight.iter().any(|&x| x > 0));
    }
}
