//! Generic Expansion II cell semantics for **any** algorithm of model (3.5).
//!
//! Section 3.2: the word-level model covers "matrix multiplication,
//! convolution, matrix-vector multiplication, discrete cosine transform, and
//! discrete Fourier transform". [`Model35Cells`] executes the Expansion II
//! bit-level structure of *any* such algorithm on the clocked engine
//! ([`crate::clocked::run_clocked`]): operand bits are supplied by
//! caller-provided value functions `x(j̄)`, `y(j̄)`; the accumulator chains
//! along `h̄₃` (injection tokens simply *absent* at chain heads); results are
//! collected at chain tails. The matmul-specific
//! [`crate::clocked::MatmulExpansionIICells`] is the hand-specialised
//! equivalent — a test checks they agree bit for bit.

use crate::batch::{BatchRun, LaneCellSemantics, MatmulLaneSignals, MAX_LANES};
use crate::clocked::{CellSemantics, ClockedRun, MatmulSignals, SyncCellSemantics};
use bitlevel_arith::{
    from_bits, full_add, full_add_lanes, lane_bit, pack_bit_planes, to_bits, wide_add,
    wide_add_lanes, Bit, LaneWord,
};
use bitlevel_ir::{AlgorithmTriplet, WordLevelAlgorithm};
use bitlevel_linalg::IVec;
use std::collections::HashMap;

/// Where each dependence column of a composed Expansion II structure sits.
///
/// `bitlevel-depanal`'s `compose` emits columns in the order
/// `[x?, y?, z, d̄₄, d̄₅, d̄₆, d̄₇]` — the `x`/`y` word columns are present only
/// when the operand is reused at word level. This struct resolves the
/// indices from the structure itself so semantics never hard-code positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnMap {
    /// Index of `d̄₁` (word-level x pipelining), if present.
    pub d1: Option<usize>,
    /// Index of `d̄₂` (word-level y pipelining), if present.
    pub d2: Option<usize>,
    /// Index of `d̄₃` (accumulator injection).
    pub d3: usize,
    /// Index of `d̄₄` (intra-tile x / carry re-entry).
    pub d4: usize,
    /// Index of `d̄₅` (intra-tile y and carry).
    pub d5: usize,
    /// Index of `d̄₆` (partial-sum diagonal).
    pub d6: usize,
    /// Index of `d̄₇` (second carry).
    pub d7: usize,
}

/// Why a dependence structure cannot be resolved into a [`ColumnMap`] —
/// the typed form of what used to be `resolve`'s panic paths, so callers
/// handed an arbitrary structure can degrade instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnMapError {
    /// A word-level column (zero arithmetic part) whose cause is not one of
    /// `x`/`y`/`z`.
    UnexpectedWordColumn {
        /// The offending cause string.
        cause: String,
    },
    /// An arithmetic column outside the Theorem 3.1 set
    /// `{[1,0], [0,1], [1,−1], [0,2]}`.
    UnexpectedArithmeticColumn {
        /// The offending arithmetic part.
        column: Vec<i64>,
    },
    /// A column mixing word-level and arithmetic coordinates.
    MixedColumn {
        /// Dependence index of the offending column.
        index: usize,
    },
    /// A mandatory arithmetic-tile column is absent.
    MissingColumn {
        /// Which column (`d3`…`d7`) is missing.
        name: &'static str,
    },
}

impl std::fmt::Display for ColumnMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnMapError::UnexpectedWordColumn { cause } => {
                write!(f, "unexpected word-level column cause {cause}")
            }
            ColumnMapError::UnexpectedArithmeticColumn { column } => {
                write!(f, "unexpected arithmetic column {column:?}")
            }
            ColumnMapError::MixedColumn { index } => {
                write!(f, "mixed word/arith column at dependence {index}")
            }
            ColumnMapError::MissingColumn { name } => write!(f, "missing {name} column"),
        }
    }
}

impl std::error::Error for ColumnMapError {}

impl ColumnMap {
    /// Resolves the column map of a composed Expansion II structure.
    ///
    /// # Panics
    /// Panics if the structure does not have the Theorem 3.1 shape — use
    /// [`ColumnMap::try_resolve`] where the structure is not trusted.
    pub fn resolve(alg: &AlgorithmTriplet) -> ColumnMap {
        match Self::try_resolve(alg) {
            Ok(cols) => cols,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked variant of [`ColumnMap::resolve`]: structures outside the
    /// Theorem 3.1 shape come back as a typed [`ColumnMapError`] instead of
    /// a panic.
    pub fn try_resolve(alg: &AlgorithmTriplet) -> Result<ColumnMap, ColumnMapError> {
        let n = alg.dim() - 2;
        let mut d1 = None;
        let mut d2 = None;
        let mut d3 = None;
        let mut d4 = None;
        let mut d5 = None;
        let mut d6 = None;
        let mut d7 = None;
        for (i, dep) in alg.deps.iter().enumerate() {
            let (word, arith) = dep.vector.split_at(n);
            if arith.is_zero() {
                // A word-level column: x, y or z by cause.
                match dep.cause.as_str() {
                    "x" => d1 = Some(i),
                    "y" => d2 = Some(i),
                    "z" => d3 = Some(i),
                    other => {
                        return Err(ColumnMapError::UnexpectedWordColumn {
                            cause: other.to_string(),
                        })
                    }
                }
            } else {
                if !word.is_zero() {
                    return Err(ColumnMapError::MixedColumn { index: i });
                }
                match arith.as_slice() {
                    [1, 0] => d4 = Some(i),
                    [0, 1] => d5 = Some(i),
                    [1, -1] => d6 = Some(i),
                    [0, 2] => d7 = Some(i),
                    other => {
                        return Err(ColumnMapError::UnexpectedArithmeticColumn {
                            column: other.to_vec(),
                        })
                    }
                }
            }
        }
        let need = |col: Option<usize>, name: &'static str| {
            col.ok_or(ColumnMapError::MissingColumn { name })
        };
        Ok(ColumnMap {
            d1,
            d2,
            d3: need(d3, "d3")?,
            d4: need(d4, "d4")?,
            d5: need(d5, "d5")?,
            d6: need(d6, "d6")?,
            d7: need(d7, "d7")?,
        })
    }
}

/// Generic Expansion II cell semantics for model (3.5).
pub struct Model35Cells {
    word: WordLevelAlgorithm,
    p: usize,
    cols: ColumnMap,
    /// Operand bit planes keyed by word-level point.
    x_bits: HashMap<IVec, Vec<Bit>>,
    y_bits: HashMap<IVec, Vec<Bit>>,
}

impl Model35Cells {
    /// Builds the semantics from operand value functions: `x_of(j̄)` and
    /// `y_of(j̄)` give the word operands at each word-level index point
    /// (these encode the original array accesses, e.g. `X[j₁][j₃]` for
    /// matmul or `xs[j₁+j₂−1]` for convolution).
    ///
    /// # Panics
    /// Panics if an operand value does not fit in `p` bits, or the structure
    /// is not the composed Expansion II shape for `word`.
    pub fn new(
        word: &WordLevelAlgorithm,
        p: usize,
        alg: &AlgorithmTriplet,
        x_of: impl Fn(&IVec) -> u128,
        y_of: impl Fn(&IVec) -> u128,
    ) -> Self {
        assert_eq!(
            alg.dim(),
            word.dim() + 2,
            "structure/word dimension mismatch"
        );
        let cols = ColumnMap::resolve(alg);
        let mut x_bits = HashMap::new();
        let mut y_bits = HashMap::new();
        for j in word.bounds.iter_points() {
            x_bits.insert(j.clone(), to_bits(x_of(&j), p));
            y_bits.insert(j.clone(), to_bits(y_of(&j), p));
        }
        Model35Cells {
            word: word.clone(),
            p,
            cols,
            x_bits,
            y_bits,
        }
    }

    /// The word-level points that terminate an accumulation chain
    /// (`j̄ + h̄₃ ∉ J_w`): where results are read out.
    pub fn chain_tails(&self) -> Vec<IVec> {
        self.word
            .bounds
            .iter_points()
            .filter(|j| !self.word.bounds.contains(&(j + &self.word.h3)))
            .collect()
    }

    /// Number of accumulation steps feeding the chain ending at `tail`.
    pub fn chain_length(&self, tail: &IVec) -> usize {
        let mut len = 0;
        let mut cur = tail.clone();
        while self.word.bounds.contains(&cur) {
            len += 1;
            cur = &cur - &self.word.h3;
        }
        len
    }

    /// Largest operand value keeping every chain's accumulator within
    /// `2p−1` bits.
    pub fn max_safe_entry(&self) -> u128 {
        let max_len = self
            .chain_tails()
            .iter()
            .map(|t| self.chain_length(t))
            .max()
            .unwrap_or(1) as u128;
        let limit = 1u128 << (2 * self.p - 1);
        let mut m = (1u128 << self.p) - 1;
        while m > 0 && max_len * m * m >= limit {
            m -= 1;
        }
        m
    }

    /// Extracts the accumulated result (mod `2^{2p−1}`) at each chain tail
    /// from a finished clocked run.
    pub fn extract_results(&self, run: &ClockedRun<MatmulSignals>) -> HashMap<IVec, u128> {
        let p = self.p;
        let mut out = HashMap::new();
        for tail in self.chain_tails() {
            let mut bits: Vec<Bit> = Vec::with_capacity(2 * p - 1);
            for i in 1..=p {
                let q = tail.concat(&IVec::from([i as i64, 1]));
                bits.push(run.outputs[&q].s);
            }
            for i in p + 1..=2 * p - 1 {
                let q = tail.concat(&IVec::from([p as i64, (i - p + 1) as i64]));
                bits.push(run.outputs[&q].s);
            }
            out.insert(tail, from_bits(&bits));
        }
        out
    }

    /// The reference accumulated value (mod `2^{2p−1}`) for a chain tail.
    pub fn reference(
        &self,
        tail: &IVec,
        x_of: impl Fn(&IVec) -> u128,
        y_of: impl Fn(&IVec) -> u128,
    ) -> u128 {
        let mask = (1u128 << (2 * self.p - 1)) - 1;
        let mut acc = 0u128;
        let mut cur = tail.clone();
        let mut chain = Vec::new();
        while self.word.bounds.contains(&cur) {
            chain.push(cur.clone());
            cur = &cur - &self.word.h3;
        }
        for j in chain.into_iter().rev() {
            acc = (acc + x_of(&j) * y_of(&j)) & mask;
        }
        acc
    }
}

impl CellSemantics for Model35Cells {
    type Bundle = MatmulSignals;

    fn compute(&mut self, q: &IVec, inputs: &[Option<MatmulSignals>]) -> MatmulSignals {
        SyncCellSemantics::compute(self, q, inputs)
    }
}

impl SyncCellSemantics for Model35Cells {
    type Bundle = MatmulSignals;

    fn compute(&self, q: &IVec, inputs: &[Option<MatmulSignals>]) -> MatmulSignals {
        let n = self.word.dim();
        let (j, i) = q.split_at(n);
        let (i1, i2) = (i[0] as usize, i[1] as usize);
        let p = self.p;
        let cols = self.cols;

        // Operand bits: along the tile edge from the word-level token, or
        // fresh from the operand planes (chain head / no word-level reuse).
        let x = if i1 == 1 {
            cols.d1
                .and_then(|c| inputs[c].as_ref())
                .map(|b| b.x)
                .unwrap_or_else(|| self.x_bits[&j][i2 - 1])
        } else {
            // Missing d4 token (malformed schedule): degrade to a silent
            // zero wire — the engine records the violation separately.
            inputs[cols.d4].as_ref().is_some_and(|b| b.x)
        };
        let y = if i2 == 1 {
            cols.d2
                .and_then(|c| inputs[c].as_ref())
                .map(|b| b.y)
                .unwrap_or_else(|| self.y_bits[&j][i1 - 1])
        } else {
            inputs[cols.d5].as_ref().is_some_and(|b| b.y)
        };

        let pp = x & y;
        let c_in = if i2 > 1 {
            inputs[cols.d5].as_ref().is_some_and(|b| b.c)
        } else {
            false
        };
        let s_in = if i1 == 1 {
            false
        } else if i2 == p {
            inputs[cols.d4].as_ref().is_some_and(|b| b.c) // carry re-entry
        } else {
            inputs[cols.d6].as_ref().is_some_and(|b| b.s)
        };
        let on_boundary = i1 == p || i2 == 1;
        // Injection token absent at chain heads (source outside J).
        let inject = if on_boundary {
            inputs[cols.d3].as_ref().is_some_and(|b| b.s)
        } else {
            false
        };
        let cp_in = if i1 == p && i2 > 2 {
            inputs[cols.d7].as_ref().is_some_and(|b| b.cp)
        } else {
            false
        };

        let has_injection = on_boundary && inputs[cols.d3].is_some();
        let (s, c, cp) = if has_injection {
            if i1 == p {
                wide_add(&[pp, c_in, s_in, inject, cp_in])
            } else {
                wide_add(&[pp, s_in, inject])
            }
        } else {
            let (s, c) = full_add(pp, c_in, s_in);
            (s, c, false)
        };

        MatmulSignals { x, y, s, c, cp }
    }
}

/// Bitwise word form of [`Model35Cells`]: one batch of up to [`MAX_LANES`]
/// independent instances of the *same* model-(3.5) structure (same
/// word-level algorithm, `p` and column map), differing only in operand
/// values.
///
/// Every control decision in the scalar compute body — which dependence
/// column feeds a signal, which adder form fires, whether the injection
/// token is present — is a function of the index point and input *presence*,
/// both lane-uniform, so the body ports to [`LaneWord`] operations verbatim:
/// convolution and matrix–vector batches ride the same word-wide compiled
/// walk as the matmul specialisation
/// ([`crate::batch::MatmulLaneCells`]) instead of degrading to the per-lane
/// [`crate::batch::PerLaneCells`] fallback. The packed token is
/// [`MatmulLaneSignals`] (the Expansion II wire set is shared by all
/// model-(3.5) workloads), so the lane-fault machinery
/// ([`crate::batch::LaneFaultedCells`]) applies unchanged.
pub struct Model35LaneCells {
    p: usize,
    /// Word-level dimension `n` (the first `n` coordinates of an index point
    /// name the word-level point `j̄`).
    n: usize,
    cols: ColumnMap,
    lanes: usize,
    /// Lane-packed operand bit planes: `x_words[j̄][k]` holds bit `k` of
    /// `x(j̄)` for every lane.
    x_words: HashMap<IVec, Vec<LaneWord>>,
    y_words: HashMap<IVec, Vec<LaneWord>>,
    /// Scalar per-lane semantics, for [`crate::batch::LaneView`] replays and
    /// extraction.
    scalar: Vec<Model35Cells>,
}

impl Model35LaneCells {
    /// Packs a batch of scalar semantics, one instance per lane. All
    /// instances must share the structural shape — word-level index set,
    /// bit width `p` and column map — and may differ only in operand values.
    ///
    /// # Panics
    /// Panics on an empty batch, more than [`MAX_LANES`] instances, or
    /// instances with mismatched structure.
    pub fn new(cells: Vec<Model35Cells>) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&cells.len()),
            "batch must hold 1..={MAX_LANES} instances, got {}",
            cells.len()
        );
        let template = &cells[0];
        let (p, cols, n) = (template.p, template.cols, template.word.dim());
        assert!(
            cells.iter().all(|c| c.p == p && c.cols == cols),
            "all lanes must share p and the column map"
        );
        let mut x_words = HashMap::new();
        let mut y_words = HashMap::new();
        let plane = |j: &IVec, bits: fn(&Model35Cells) -> &HashMap<IVec, Vec<Bit>>| {
            let rows: Vec<Vec<Bit>> = cells
                .iter()
                .map(|c| {
                    bits(c)
                        .get(j)
                        .expect("lanes must share the word-level index set")
                        .clone()
                })
                .collect();
            pack_bit_planes(&rows)
        };
        for j in template.x_bits.keys() {
            x_words.insert(j.clone(), plane(j, |c| &c.x_bits));
            y_words.insert(j.clone(), plane(j, |c| &c.y_bits));
        }
        let lanes = cells.len();
        Model35LaneCells {
            p,
            n,
            cols,
            lanes,
            x_words,
            y_words,
            scalar: cells,
        }
    }

    /// The scalar semantics of one lane (for replays and verification).
    pub fn lane_cells(&self, lane: usize) -> &Model35Cells {
        &self.scalar[lane]
    }

    /// Extracts every lane's accumulated result (mod `2^{2p−1}`) at each
    /// chain tail straight from the packed run: only the `2p−1` boundary
    /// accumulator words per tail are read, then split per lane — no
    /// per-lane run materialisation.
    ///
    /// # Panics
    /// Panics if `run` came from a different structure (missing points).
    pub fn extract_results_batch(
        &self,
        run: &BatchRun<MatmulLaneSignals>,
    ) -> Vec<HashMap<IVec, u128>> {
        let p = self.p;
        let mut out = vec![HashMap::new(); self.lanes];
        let mut words: Vec<LaneWord> = Vec::with_capacity(2 * p - 1);
        let mut bits: Vec<Bit> = Vec::with_capacity(2 * p - 1);
        for tail in self.scalar[0].chain_tails() {
            words.clear();
            for i in 1..=p {
                let q = tail.concat(&IVec::from([i as i64, 1]));
                words.push(run.outputs[&q].s);
            }
            for i in p + 1..=2 * p - 1 {
                let q = tail.concat(&IVec::from([p as i64, (i - p + 1) as i64]));
                words.push(run.outputs[&q].s);
            }
            for (lane, results) in out.iter_mut().enumerate() {
                bits.clear();
                bits.extend(words.iter().map(|&w| lane_bit(w, lane)));
                results.insert(tail.clone(), from_bits(&bits));
            }
        }
        out
    }
}

impl LaneCellSemantics for Model35LaneCells {
    type Bundle = MatmulSignals;
    type Packed = MatmulLaneSignals;

    fn lanes(&self) -> usize {
        self.lanes
    }

    // The word-for-word port of the scalar `SyncCellSemantics::compute`
    // above: scalar Bit ops become LaneWord ops, `false` becomes the
    // all-zero word. Presence tests (`is_some`) are untouched — they are
    // schedule properties, identical in every lane.
    fn compute_lanes(&self, q: &IVec, inputs: &[Option<MatmulLaneSignals>]) -> MatmulLaneSignals {
        let (j, i) = q.split_at(self.n);
        let (i1, i2) = (i[0] as usize, i[1] as usize);
        let p = self.p;
        let cols = self.cols;

        let x = if i1 == 1 {
            match cols.d1.and_then(|c| inputs[c].as_ref()) {
                Some(b) => b.x,
                None => self.x_words[&j][i2 - 1],
            }
        } else {
            // Missing d4 token (malformed schedule): degrade to a silent
            // zero word — the engine records the violation separately.
            inputs[cols.d4].as_ref().map_or(0, |b| b.x)
        };
        let y = if i2 == 1 {
            match cols.d2.and_then(|c| inputs[c].as_ref()) {
                Some(b) => b.y,
                None => self.y_words[&j][i1 - 1],
            }
        } else {
            inputs[cols.d5].as_ref().map_or(0, |b| b.y)
        };

        let pp = x & y;
        let c_in = if i2 > 1 {
            inputs[cols.d5].as_ref().map_or(0, |b| b.c)
        } else {
            0
        };
        let s_in = if i1 == 1 {
            0
        } else if i2 == p {
            inputs[cols.d4].as_ref().map_or(0, |b| b.c) // carry re-entry
        } else {
            inputs[cols.d6].as_ref().map_or(0, |b| b.s)
        };
        let on_boundary = i1 == p || i2 == 1;
        let inject = if on_boundary {
            inputs[cols.d3].as_ref().map_or(0, |b| b.s)
        } else {
            0
        };
        let cp_in = if i1 == p && i2 > 2 {
            inputs[cols.d7].as_ref().map_or(0, |b| b.cp)
        } else {
            0
        };

        let has_injection = on_boundary && inputs[cols.d3].is_some();
        let (s, c, cp) = if has_injection {
            if i1 == p {
                wide_add_lanes(&[pp, c_in, s_in, inject, cp_in])
            } else {
                wide_add_lanes(&[pp, s_in, inject])
            }
        } else {
            let (s, c) = full_add_lanes(pp, c_in, s_in);
            (s, c, 0)
        };

        MatmulLaneSignals { x, y, s, c, cp }
    }

    fn compute_lane(
        &self,
        lane: usize,
        q: &IVec,
        inputs: &[Option<MatmulSignals>],
    ) -> MatmulSignals {
        SyncCellSemantics::compute(&self.scalar[lane], q, inputs)
    }

    fn extract_lane(&self, packed: &MatmulLaneSignals, lane: usize) -> MatmulSignals {
        MatmulSignals {
            x: lane_bit(packed.x, lane),
            y: lane_bit(packed.y, lane),
            s: lane_bit(packed.s, lane),
            c: lane_bit(packed.c, lane),
            cp: lane_bit(packed.cp, lane),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocked::run_clocked;
    use bitlevel_linalg::IMat;
    use bitlevel_mapping::{
        check_feasibility, find_optimal_schedule, Interconnect, MappingMatrix, PaperDesign,
    };

    /// Compose Expansion II structures without depending on bitlevel-depanal
    /// (dependency direction): mirror of `compose` for the cases used here.
    fn compose_ii(word: &WordLevelAlgorithm, p: usize) -> AlgorithmTriplet {
        use bitlevel_ir::{Dependence, DependenceSet, Predicate};
        let n = word.dim();
        let (i1, i2) = (n, n + 1);
        let pi = p as i64;
        let lift_w = |h: &IVec| h.concat(&IVec::zeros(2));
        let lift_a = |a: [i64; 2]| IVec::zeros(n).concat(&IVec::from(a));
        let mut deps = Vec::new();
        if let Some(h1) = &word.h1 {
            deps.push(Dependence::conditional(
                lift_w(h1),
                "x",
                Predicate::eq_const(i1, 1),
            ));
        }
        if let Some(h2) = &word.h2 {
            deps.push(Dependence::conditional(
                lift_w(h2),
                "y",
                Predicate::eq_const(i2, 1),
            ));
        }
        deps.push(Dependence::conditional(
            lift_w(&word.h3),
            "z",
            Predicate::eq_const(i1, pi).or(&Predicate::eq_const(i2, 1)),
        ));
        deps.push(Dependence::conditional(
            lift_a([1, 0]),
            "x",
            Predicate::ne_const(i1, 1),
        ));
        deps.push(Dependence::conditional(
            lift_a([0, 1]),
            "y,c",
            Predicate::ne_const(i2, 1),
        ));
        deps.push(Dependence::uniform(lift_a([1, -1]), "z"));
        deps.push(Dependence::conditional(
            lift_a([0, 2]),
            "c'",
            Predicate::eq_const(i1, pi),
        ));
        AlgorithmTriplet::new(
            word.bounds.product(&bitlevel_ir::BoxSet::cube(2, 1, pi)),
            DependenceSet::new(deps),
            "Expansion II structure",
        )
    }

    #[test]
    fn generic_cells_match_matmul_specialisation() {
        let (u, p) = (3usize, 3usize);
        let word = WordLevelAlgorithm::matmul(u as i64);
        let alg = compose_ii(&word, p);
        let m = crate::BitMatmulArray::new(u, p).max_safe_entry();
        let x: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((2 * i + j + 1) as u128) % (m + 1))
                    .collect()
            })
            .collect();
        let y: Vec<Vec<u128>> = (0..u)
            .map(|i| {
                (0..u)
                    .map(|j| ((i + 4 * j + 2) as u128) % (m + 1))
                    .collect()
            })
            .collect();
        let design = PaperDesign::TimeOptimal;

        // Generic route.
        let xo = x.clone();
        let yo = y.clone();
        let mut generic = Model35Cells::new(
            &word,
            p,
            &alg,
            move |j| xo[(j[0] - 1) as usize][(j[2] - 1) as usize],
            move |j| yo[(j[2] - 1) as usize][(j[1] - 1) as usize],
        );
        let run = run_clocked(
            &alg,
            &design.mapping(p as i64),
            &design.interconnect(p as i64),
            &mut generic,
        );
        assert!(run.is_legal(), "{:?}", run.violations);
        let results = generic.extract_results(&run);

        // Specialised route.
        let want = crate::BitMatmulArray::new(u, p).multiply(&x, &y);
        for (tail, value) in results {
            let (j1, j2) = ((tail[0] - 1) as usize, (tail[1] - 1) as usize);
            assert_eq!(value, want[j1][j2], "tail {tail}");
        }
    }

    #[test]
    fn convolution_architecture_end_to_end() {
        // z(j1) = Σ_{j2} x(j1+j2-1)·w(j2): design a machine for the 4-D
        // structure via schedule search, then run it clocked and compare
        // against the direct convolution.
        let (outputs, taps, p) = (4i64, 3i64, 3usize);
        let word = WordLevelAlgorithm::convolution(outputs, taps);
        let alg = compose_ii(&word, p);

        // Keep operands within the 2p−1-bit accumulator bound (3 taps of
        // products must fit in 5 bits for p = 3).
        let xs: Vec<u128> = (0..(outputs + taps - 1))
            .map(|k| (k as u128 % 3) + 1)
            .collect();
        let ws: Vec<u128> = (0..taps).map(|k| (k as u128 % 2) + 1).collect();

        // Space mapping: PEs indexed by (p·j1 + i1, i2) — a (outputs·p) × p
        // grid, one block row per output sample.
        let s = IMat::from_rows(&[&[p as i64, 0, 1, 0], &[0, 0, 0, 1]]);
        // Machine: long vertical wire (for x's [1,−1] word step combined with
        // block stride), plus units, diagonal and static link.
        // Primitives: block-stride vertical wire, static, unit south, unit
        // east, and the diagonal — every S·d̄ column is routable.
        let ic = Interconnect::new(IMat::from_rows(&[
            &[p as i64, 0, 1, 0, 1],
            &[0, 0, 0, 1, -1],
        ]));
        let found = find_optimal_schedule(&s, &alg, &ic, 3).expect("feasible schedule");
        let t = MappingMatrix::new(s, found.pi.clone());
        assert!(check_feasibility(&t, &alg, &ic).is_feasible());

        let xs2 = xs.clone();
        let ws2 = ws.clone();
        let mut cells = Model35Cells::new(
            &word,
            p,
            &alg,
            move |j| xs2[(j[0] + j[1] - 2) as usize],
            move |j| ws2[(j[1] - 1) as usize],
        );
        let safe = cells.max_safe_entry();
        assert!(
            xs.iter().chain(ws.iter()).all(|&v| v <= safe),
            "operands within bound"
        );

        let run = run_clocked(&alg, &t, &ic, &mut cells);
        assert!(run.is_legal(), "{:?}", run.violations);
        let results = cells.extract_results(&run);

        // Chain tails are (j1, taps): one result per output sample.
        assert_eq!(results.len(), outputs as usize);
        for (tail, value) in results {
            let j1 = tail[0];
            let want: u128 = (1..=taps)
                .map(|j2| xs[(j1 + j2 - 2) as usize] * ws[(j2 - 1) as usize])
                .sum();
            assert_eq!(value, want, "output sample {j1}");
        }
    }

    #[test]
    fn matvec_without_y_reuse_runs_generically() {
        // Matrix–vector product: the y operand (matrix entries) has no
        // word-level reuse (d̄₂ absent); operand bits enter every tile edge
        // fresh. 2-D word space -> 4-D structure.
        let (mrows, kcols, p) = (3i64, 3i64, 3usize);
        let word = WordLevelAlgorithm::matvec(mrows, kcols);
        let alg = compose_ii(&word, p);
        assert_eq!(alg.deps.len(), 6); // no d2 column

        let a: Vec<Vec<u128>> = (0..mrows)
            .map(|i| (0..kcols).map(|j| ((i + 2 * j) % 4) as u128).collect())
            .collect();
        let v: Vec<u128> = (0..kcols).map(|k| ((k % 3) + 1) as u128).collect();

        let s = IMat::from_rows(&[&[p as i64, 0, 1, 0], &[0, 0, 0, 1]]);
        // Primitives: block-stride vertical wire, static, unit south, unit
        // east, and the diagonal — every S·d̄ column is routable.
        let ic = Interconnect::new(IMat::from_rows(&[
            &[p as i64, 0, 1, 0, 1],
            &[0, 0, 0, 1, -1],
        ]));
        let found = find_optimal_schedule(&s, &alg, &ic, 3).expect("feasible");
        let t = MappingMatrix::new(s, found.pi);

        let a2 = a.clone();
        let v2 = v.clone();
        let mut cells = Model35Cells::new(
            &word,
            p,
            &alg,
            move |j| v2[(j[1] - 1) as usize], // x(j2): the vector
            move |j| a2[(j[0] - 1) as usize][(j[1] - 1) as usize], // A(j1,j2)
        );
        let run = run_clocked(&alg, &t, &ic, &mut cells);
        assert!(run.is_legal(), "{:?}", run.violations);
        for (tail, value) in cells.extract_results(&run) {
            let i = (tail[0] - 1) as usize;
            let want: u128 = (0..kcols as usize).map(|k| a[i][k] * v[k]).sum();
            assert_eq!(value, want, "row {i}");
        }
    }

    #[test]
    fn column_map_resolution() {
        let word = WordLevelAlgorithm::matmul(2);
        let alg = compose_ii(&word, 2);
        let cols = ColumnMap::resolve(&alg);
        assert_eq!(cols.d1, Some(0));
        assert_eq!(cols.d2, Some(1));
        assert_eq!(cols.d3, 2);
        assert_eq!((cols.d4, cols.d5, cols.d6, cols.d7), (3, 4, 5, 6));
        // Partial model: d2 absent shifts everything.
        let mv = WordLevelAlgorithm::matvec(2, 2);
        let alg = compose_ii(&mv, 2);
        let cols = ColumnMap::resolve(&alg);
        assert_eq!(cols.d1, Some(0));
        assert_eq!(cols.d2, None);
        assert_eq!(cols.d3, 1);
    }

    /// Convolution fixture shared by the batched tests: structure, schedule
    /// and a compiled engine.
    fn convolution_fixture(
        outputs: i64,
        taps: i64,
        p: usize,
    ) -> (
        WordLevelAlgorithm,
        AlgorithmTriplet,
        crate::compiled::CompiledSchedule,
    ) {
        let word = WordLevelAlgorithm::convolution(outputs, taps);
        let alg = compose_ii(&word, p);
        let s = IMat::from_rows(&[&[p as i64, 0, 1, 0], &[0, 0, 0, 1]]);
        let ic = Interconnect::new(IMat::from_rows(&[
            &[p as i64, 0, 1, 0, 1],
            &[0, 0, 0, 1, -1],
        ]));
        let found = find_optimal_schedule(&s, &alg, &ic, 3).expect("feasible schedule");
        let t = MappingMatrix::new(s, found.pi);
        let sched = crate::compiled::CompiledSchedule::compile(&alg, &t, &ic);
        (word, alg, sched)
    }

    fn convolution_lane(
        word: &WordLevelAlgorithm,
        alg: &AlgorithmTriplet,
        p: usize,
        taps: i64,
        seed: u64,
        safe: u128,
    ) -> (Model35Cells, Vec<u128>, Vec<u128>) {
        let len = (word.bounds.upper()[0] + taps - 1) as usize;
        let xs: Vec<u128> = (0..len)
            .map(|k| (seed.wrapping_mul(k as u64 + 3) >> 5) as u128 % (safe + 1))
            .collect();
        let ws: Vec<u128> = (0..taps as usize)
            .map(|k| (seed.wrapping_mul(k as u64 + 11) >> 7) as u128 % (safe + 1))
            .collect();
        let (xs2, ws2) = (xs.clone(), ws.clone());
        let cells = Model35Cells::new(
            word,
            p,
            alg,
            move |j| xs2[(j[0] + j[1] - 2) as usize],
            move |j| ws2[(j[1] - 1) as usize],
        );
        (cells, xs, ws)
    }

    #[test]
    fn batched_convolution_matches_scalar_per_lane() {
        // The tentpole claim: a convolution batch rides one word-wide
        // compiled walk, each lane bit-identical to its scalar run, with
        // results extracted straight from the packed words.
        let (outputs, taps, p) = (3i64, 2i64, 2usize);
        let (word, alg, sched) = convolution_fixture(outputs, taps, p);
        let n_lanes = 7usize; // ragged (not a power of two)
        let mut lanes = Vec::new();
        let mut operands = Vec::new();
        for l in 0..n_lanes {
            let (cells, xs, ws) = convolution_lane(&word, &alg, p, taps, 0x5EED + l as u64, 1);
            // safe=1 keeps every operand within max_safe_entry for any shape.
            assert!(xs
                .iter()
                .chain(ws.iter())
                .all(|&v| v <= cells.max_safe_entry()));
            lanes.push(cells);
            operands.push((xs, ws));
        }
        let batch_cells = Model35LaneCells::new(lanes);
        let run = sched.execute_batch(&batch_cells);
        assert!(run.is_legal(), "{:?}", run.violations);
        assert_eq!(run.lanes, n_lanes);

        let results = batch_cells.extract_results_batch(&run);
        for lane in 0..n_lanes {
            // Lane-for-lane against the scalar compiled engine...
            let scalar = sched.execute(batch_cells.lane_cells(lane));
            let extracted = run.extract_lane_run(&batch_cells, lane);
            assert_eq!(extracted.outputs, scalar.outputs, "lane {lane}");
            // ...and the packed extraction against the direct convolution.
            let (xs, ws) = &operands[lane];
            for (tail, &value) in &results[lane] {
                let j1 = tail[0];
                let want: u128 = (1..=taps)
                    .map(|j2| xs[(j1 + j2 - 2) as usize] * ws[(j2 - 1) as usize])
                    .sum();
                assert_eq!(value, want, "lane {lane} output sample {j1}");
            }
        }
    }

    #[test]
    fn width_one_model35_batch_is_bit_identical_to_execute() {
        let (outputs, taps, p) = (3i64, 2i64, 2usize);
        let (word, alg, sched) = convolution_fixture(outputs, taps, p);
        let (cells, _, _) = convolution_lane(&word, &alg, p, taps, 0xFACE, 1);
        let batch_cells = Model35LaneCells::new(vec![cells]);
        let run = sched.execute_batch(&batch_cells);
        let scalar = sched.execute(batch_cells.lane_cells(0));
        let lane0 = run.extract_lane_run(&batch_cells, 0);
        assert_eq!(lane0.cycles, scalar.cycles);
        assert_eq!(lane0.outputs, scalar.outputs);
    }

    #[test]
    fn batched_matvec_matches_references() {
        // d̄₂ absent (no word-level y reuse): the column-map-driven port must
        // read the y operand plane on every tile edge, per lane.
        let (mrows, kcols, p) = (3i64, 3i64, 3usize);
        let word = WordLevelAlgorithm::matvec(mrows, kcols);
        let alg = compose_ii(&word, p);
        let s = IMat::from_rows(&[&[p as i64, 0, 1, 0], &[0, 0, 0, 1]]);
        let ic = Interconnect::new(IMat::from_rows(&[
            &[p as i64, 0, 1, 0, 1],
            &[0, 0, 0, 1, -1],
        ]));
        let found = find_optimal_schedule(&s, &alg, &ic, 3).expect("feasible");
        let t = MappingMatrix::new(s, found.pi);
        let sched = crate::compiled::CompiledSchedule::compile(&alg, &t, &ic);

        let n_lanes = 5usize;
        let mut lanes = Vec::new();
        let mut operands = Vec::new();
        for l in 0..n_lanes {
            let a: Vec<Vec<u128>> = (0..mrows)
                .map(|i| {
                    (0..kcols)
                        .map(|j| ((i + 2 * j + l as i64) % 4) as u128)
                        .collect()
                })
                .collect();
            let v: Vec<u128> = (0..kcols)
                .map(|k| (((k + l as i64) % 3) + 1) as u128)
                .collect();
            let (a2, v2) = (a.clone(), v.clone());
            lanes.push(Model35Cells::new(
                &word,
                p,
                &alg,
                move |j| v2[(j[1] - 1) as usize],
                move |j| a2[(j[0] - 1) as usize][(j[1] - 1) as usize],
            ));
            operands.push((a, v));
        }
        let batch_cells = Model35LaneCells::new(lanes);
        let run = sched.execute_batch(&batch_cells);
        assert!(run.is_legal(), "{:?}", run.violations);
        let results = batch_cells.extract_results_batch(&run);
        for lane in 0..n_lanes {
            let (a, v) = &operands[lane];
            for (tail, &value) in &results[lane] {
                let i = (tail[0] - 1) as usize;
                let want: u128 = (0..kcols as usize).map(|k| a[i][k] * v[k]).sum();
                assert_eq!(value, want, "lane {lane} row {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "batch must hold")]
    fn empty_model35_batches_are_rejected() {
        let _ = Model35LaneCells::new(Vec::new());
    }

    #[test]
    fn malformed_schedule_degrades_missing_tokens_instead_of_panicking() {
        use crate::clocked::ClockedViolation;
        let (u, p) = (2usize, 2usize);
        let word = WordLevelAlgorithm::matmul(u as i64);
        let alg = compose_ii(&word, p);
        // Π·d̄₄ = −1: every intra-tile x token arrives *after* its consumer —
        // the schedule is illegal and the d4 gather at i1 > 1 sees no token.
        // This used to hit `expect("d4 token for i1 > 1")` and abort; now the
        // cell degrades to a zero wire and the engine records the violation.
        let t = MappingMatrix::new(
            PaperDesign::TimeOptimal.mapping(p as i64).space.clone(),
            IVec::from([1, 1, 1, -1, 1]),
        );
        let ic = PaperDesign::TimeOptimal.interconnect(p as i64);
        let mk_cells = || {
            Model35Cells::new(
                &word,
                p,
                &alg,
                |j| ((j[0] + j[2]) % 2) as u128,
                |j| ((j[1] * j[2]) % 2) as u128,
            )
        };
        let mut interp_cells = mk_cells();
        let run = run_clocked(&alg, &t, &ic, &mut interp_cells);
        assert!(!run.is_legal());
        assert!(run
            .violations
            .iter()
            .any(|v| matches!(v, ClockedViolation::MissingToken { .. })));

        // The compiled engine (sequential fallback: the schedule is not
        // causal) degrades identically, bit for bit.
        let sched = crate::compiled::CompiledSchedule::compile(&alg, &t, &ic);
        let compiled = sched.execute(&mk_cells());
        assert_eq!(compiled.outputs, run.outputs);
        assert_eq!(compiled.violations, run.violations);

        // And the lane-packed cells survive the same malformed schedule.
        let batch = Model35LaneCells::new(vec![mk_cells(), mk_cells()]);
        let brun = sched.execute_batch(&batch);
        assert_eq!(brun.extract_lane_run(&batch, 0).outputs, run.outputs);
        assert_eq!(brun.violations, run.violations);
    }

    #[test]
    fn try_resolve_reports_typed_errors() {
        use bitlevel_ir::{Dependence, DependenceSet};
        let word = WordLevelAlgorithm::matmul(2);
        let alg = compose_ii(&word, 2);
        let base: Vec<Dependence> = alg.deps.iter().cloned().collect();
        let rebuild = |deps: Vec<Dependence>| {
            AlgorithmTriplet::new(alg.index_set.clone(), DependenceSet::new(deps), "mutated")
        };

        // Mandatory arithmetic column absent.
        let mut deps = base.clone();
        deps.remove(5);
        assert_eq!(
            ColumnMap::try_resolve(&rebuild(deps)).unwrap_err(),
            ColumnMapError::MissingColumn { name: "d6" }
        );

        // Arithmetic column outside the Theorem 3.1 set.
        let mut deps = base.clone();
        deps[5] = Dependence::uniform([0, 0, 0, 1, 1], "z");
        assert_eq!(
            ColumnMap::try_resolve(&rebuild(deps)).unwrap_err(),
            ColumnMapError::UnexpectedArithmeticColumn { column: vec![1, 1] }
        );

        // Word-level column with an unknown cause.
        let mut deps = base.clone();
        deps[0] = Dependence::uniform([0, 1, 0, 0, 0], "w");
        assert_eq!(
            ColumnMap::try_resolve(&rebuild(deps)).unwrap_err(),
            ColumnMapError::UnexpectedWordColumn { cause: "w".into() }
        );

        // A column mixing word and arithmetic coordinates.
        let mut deps = base;
        deps[0] = Dependence::uniform([0, 1, 0, 1, 0], "x");
        assert_eq!(
            ColumnMap::try_resolve(&rebuild(deps)).unwrap_err(),
            ColumnMapError::MixedColumn { index: 0 }
        );

        // The well-formed structure still resolves.
        assert!(ColumnMap::try_resolve(&alg).is_ok());
    }

    #[test]
    #[should_panic(expected = "missing d6 column")]
    fn resolve_still_panics_on_malformed_structures() {
        use bitlevel_ir::{Dependence, DependenceSet};
        let word = WordLevelAlgorithm::matmul(2);
        let alg = compose_ii(&word, 2);
        let mut deps: Vec<Dependence> = alg.deps.iter().cloned().collect();
        deps.remove(5);
        let broken =
            AlgorithmTriplet::new(alg.index_set.clone(), DependenceSet::new(deps), "mutated");
        let _ = ColumnMap::resolve(&broken);
    }

    #[test]
    fn chain_metadata() {
        let word = WordLevelAlgorithm::matmul(3);
        let alg = compose_ii(&word, 2);
        let cells = Model35Cells::new(&word, 2, &alg, |_| 1, |_| 1);
        let tails = cells.chain_tails();
        assert_eq!(tails.len(), 9); // one per (j1, j2)
        for t in &tails {
            assert_eq!(t[2], 3); // chains end at j3 = u
            assert_eq!(cells.chain_length(t), 3);
        }
        assert!(cells.max_safe_entry() >= 1);
    }
}
