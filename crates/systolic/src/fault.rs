//! Fault-injection hooks for the simulation engines.
//!
//! Mirrors the [`crate::trace::TraceSink`] pattern: every engine entry point
//! has a `_faulted` form taking a [`FaultInjector`], and the no-op injector
//! [`NoFaults`] sets `ENABLED = false` so the fault paths compile away and
//! the faultless engines stay exactly as fast as before. The concrete
//! seed-deterministic plan type (`FaultPlan` in `bitlevel-fault`) lives one
//! crate up; this module only defines the hook the engines call.
//!
//! Determinism contract: an injector must answer every hook as a pure
//! function of its arguments — [`FaultInjector::on_output`] descriptions in
//! particular may depend only on `(cycle, point, processor)`, never on the
//! bundle content, so the compiled backend can re-derive the event stream
//! without re-running the value phase.

use bitlevel_linalg::IVec;

/// What happens to one token transfer under fault injection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TransferFault {
    /// The transfer proceeds normally.
    #[default]
    None,
    /// The token is lost on the wire: the consumer sees no input (and the
    /// engines skip the consumption bookkeeping entirely).
    Drop,
    /// The link re-delivers the *previous* token of the same edge class
    /// instead of the current one (a stale duplicate).
    Duplicate,
}

/// Deterministic fault-injection hook threaded through the interpreted
/// clocked engine, the mapped timing simulator and the compiled backend.
///
/// All three engines consult the same three questions in the same order, so
/// an identical injector produces bit-identical faulted runs on every
/// backend (see the engine-agreement tests in `tests/fault_injection.rs`).
pub trait FaultInjector<B> {
    /// `false` for [`NoFaults`] lets the engines compile every fault branch
    /// away; real injectors keep the default `true`.
    const ENABLED: bool = true;

    /// True iff the PE at `processor` is dead for the whole run. The mapped
    /// timing simulator uses this to suppress the point's activity; the
    /// value-carrying engines instead silence the output in
    /// [`FaultInjector::on_output`] so the token structure stays complete.
    fn pe_dead(&self, processor: &IVec) -> bool;

    /// Applies output-side faults (dead PE, stuck-at, transient flips) to
    /// the bundle `point` just computed, returning one human-readable kind
    /// string per fault actually injected here. Descriptions must depend
    /// only on `(cycle, point, processor)`, never on the bundle content.
    fn on_output(&self, cycle: i64, point: &IVec, processor: &IVec, bundle: &mut B) -> Vec<String>;

    /// The fault (if any) on the transfer arriving at `point` along
    /// dependence `column` in `cycle`.
    fn on_transfer(&self, cycle: i64, point: &IVec, column: usize) -> TransferFault;
}

/// The no-op injector: `ENABLED = false`, every hook inert. Passing
/// `&NoFaults` makes a `_faulted` engine entry point identical to its
/// faultless original.
pub struct NoFaults;

impl<B> FaultInjector<B> for NoFaults {
    const ENABLED: bool = false;

    #[inline(always)]
    fn pe_dead(&self, _processor: &IVec) -> bool {
        false
    }

    #[inline(always)]
    fn on_output(
        &self,
        _cycle: i64,
        _point: &IVec,
        _processor: &IVec,
        _bundle: &mut B,
    ) -> Vec<String> {
        Vec::new()
    }

    #[inline(always)]
    fn on_transfer(&self, _cycle: i64, _point: &IVec, _column: usize) -> TransferFault {
        TransferFault::None
    }
}

/// Signal bundles whose bits a fault plan can address generically.
///
/// Bit indices are bundle-defined but must be stable: plans serialized for
/// one run must mean the same wires in the next.
pub trait FaultableBundle: Clone {
    /// Number of addressable signal bits in the bundle.
    fn fault_bits() -> usize;

    /// Human-readable name of signal bit `bit` (for fault descriptions).
    fn bit_name(bit: usize) -> &'static str;

    /// Inverts signal bit `bit`.
    fn flip_bit(&mut self, bit: usize);

    /// Forces signal bit `bit` to `value` (stuck-at fault).
    fn set_bit(&mut self, bit: usize, value: bool);

    /// The bundle a dead PE emits: all signals silent.
    fn dead() -> Self;
}

/// The unit bundle of the timing-only mapped simulator: no addressable
/// bits, so output faults (other than `dead_pe`) degenerate to no-ops there.
impl FaultableBundle for () {
    fn fault_bits() -> usize {
        0
    }

    fn bit_name(_bit: usize) -> &'static str {
        ""
    }

    fn flip_bit(&mut self, _bit: usize) {}

    fn set_bit(&mut self, _bit: usize, _value: bool) {}

    fn dead() -> Self {}
}

impl FaultableBundle for crate::clocked::MatmulSignals {
    fn fault_bits() -> usize {
        5
    }

    fn bit_name(bit: usize) -> &'static str {
        ["x", "y", "s", "c", "cp"][bit % 5]
    }

    fn flip_bit(&mut self, bit: usize) {
        match bit % 5 {
            0 => self.x = !self.x,
            1 => self.y = !self.y,
            2 => self.s = !self.s,
            3 => self.c = !self.c,
            _ => self.cp = !self.cp,
        }
    }

    fn set_bit(&mut self, bit: usize, value: bool) {
        match bit % 5 {
            0 => self.x = value,
            1 => self.y = value,
            2 => self.s = value,
            3 => self.c = value,
            _ => self.cp = value,
        }
    }

    fn dead() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocked::MatmulSignals;

    #[test]
    fn no_faults_is_disabled_and_inert() {
        assert!(!<NoFaults as FaultInjector<MatmulSignals>>::ENABLED);
        let mut b = MatmulSignals::default();
        let before = b;
        let p = IVec::from([1, 1]);
        assert!(!FaultInjector::<MatmulSignals>::pe_dead(&NoFaults, &p));
        assert!(NoFaults.on_output(0, &p, &p, &mut b).is_empty());
        assert_eq!(b, before);
        assert_eq!(
            FaultInjector::<MatmulSignals>::on_transfer(&NoFaults, 0, &p, 0),
            TransferFault::None
        );
    }

    #[test]
    fn matmul_signals_bits_round_trip() {
        let mut b = MatmulSignals::default();
        for bit in 0..MatmulSignals::fault_bits() {
            b.flip_bit(bit);
        }
        assert_eq!(
            b,
            MatmulSignals {
                x: true,
                y: true,
                s: true,
                c: true,
                cp: true
            }
        );
        for bit in 0..MatmulSignals::fault_bits() {
            b.set_bit(bit, false);
        }
        assert_eq!(b, MatmulSignals::dead());
        assert_eq!(MatmulSignals::bit_name(2), "s");
    }
}
